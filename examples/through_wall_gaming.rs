//! Through-wall gaming/VR: the paper's first application — streaming 3D
//! motion input from a player in another room.
//!
//! Renders a live top-down ASCII view of the tracked player and reports the
//! real-time margin (processing time vs the 12.5 ms frame budget).
//!
//! ```text
//! cargo run --release --example through_wall_gaming [-- --quick]
//! ```

use std::time::Instant;
use witrack_repro::core::{WiTrack, WiTrackConfig};
use witrack_repro::geom::Vec3;
use witrack_repro::sim::motion::{RandomWalk, Rect};
use witrack_repro::sim::{BodyModel, Channel, Scene, SimConfig, Simulator};

/// Renders the room top-down (x across, y away from the array).
fn render(estimate: Vec3, truth: Vec3) -> String {
    const W: usize = 51;
    const H: usize = 13;
    let mut grid = vec![vec![' '; W]; H];
    let to_cell = |p: Vec3| -> Option<(usize, usize)> {
        let cx = ((p.x + 3.0) / 6.5 * (W - 1) as f64).round() as isize;
        let cy = ((p.y - 2.5) / 7.5 * (H - 1) as f64).round() as isize;
        (cx >= 0 && cx < W as isize && cy >= 0 && cy < H as isize)
            .then_some((cx as usize, cy as usize))
    };
    if let Some((x, y)) = to_cell(truth) {
        grid[y][x] = 'o';
    }
    if let Some((x, y)) = to_cell(estimate) {
        grid[y][x] = if grid[y][x] == 'o' { '@' } else { 'X' };
    }
    let mut out = String::new();
    out.push_str(&format!("+{}+  X=estimate o=truth @=both\n", "-".repeat(W)));
    for row in grid.iter().rev() {
        out.push('|');
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "+{}+  (wall at bottom, array behind it)\n",
        "-".repeat(W)
    ));
    out
}

fn main() {
    let sweep = witrack_repro::demo::sweep_from_args();
    println!("WiTrack through-wall gaming input\n");
    let cfg = WiTrackConfig {
        sweep,
        ..WiTrackConfig::witrack_default()
    };
    let mut witrack = WiTrack::new(cfg).expect("valid configuration");
    let channel = Channel {
        scene: Scene::witrack_lab(true),
        array: witrack.array().clone(),
        body: BodyModel::adult(),
        reference_amplitude: 100.0,
    };
    let motion = RandomWalk::new(Rect::vicon_area(), 1.0, 1.2, 10.0, 0.2, 21);
    let mut sim = Simulator::new(
        SimConfig {
            sweep,
            noise_std: 0.05,
            seed: 21,
        },
        channel,
        Box::new(motion),
    );

    let mut latencies = Vec::new();
    let mut last_view: Option<String> = None;
    let mut frames = 0u64;
    let mut next_view_t = 2.0;
    let mut t0 = Instant::now();
    while let Some(set) = sim.next_sweeps() {
        let refs: Vec<&[f64]> = set.per_rx.iter().map(|v| v.as_slice()).collect();
        if let Some(update) = witrack.push_sweeps(&refs) {
            latencies.push(t0.elapsed().as_secs_f64() * 1e3);
            t0 = Instant::now();
            frames += 1;
            if update.time_s >= next_view_t {
                next_view_t += 2.0;
                if let Some(p) = update.position {
                    let truth = sim.surface_truth(update.time_s);
                    last_view = Some(format!(
                        "t = {:.1} s, player at ({:+.2}, {:.2}, {:.2}):\n{}",
                        update.time_s,
                        p.x,
                        p.y,
                        p.z,
                        render(p, truth)
                    ));
                }
            }
        } else {
            continue;
        }
    }
    if let Some(v) = last_view {
        println!("{v}");
    }
    if latencies.len() > 1 {
        latencies.remove(0); // cold start
    }
    let med = witrack_repro::dsp::stats::median(&latencies);
    let p99 = witrack_repro::dsp::stats::percentile(&latencies, 99.0);
    println!(
        "\n{} frames at {:.0} fps nominal",
        frames,
        sweep.frame_rate_hz()
    );
    println!(
        "processing per frame: median {med:.2} ms, p99 {p99:.2} ms (budget {:.1} ms) -> {}",
        sweep.frame_duration_s() * 1e3,
        if p99 < sweep.frame_duration_s() * 1e3 {
            "real-time"
        } else {
            "NOT real-time"
        }
    );
}
