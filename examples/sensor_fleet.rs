//! A fleet of sensor-equipped rooms streaming into one serving host.
//!
//! Four rooms — different wall layouts, one to three walkers each — feed
//! their baseband sweeps through the `witrack-serve` wire protocol (over
//! the in-process transport) into a sharded engine on this host. Rooms
//! with one walker run the single-target pipeline; busier rooms run
//! `witrack-mtt`. The example prints what each room's sensor reports and
//! the engine's health counters at the end.
//!
//! ```text
//! cargo run --release --example sensor_fleet            # paper-config sweeps
//! cargo run --release --example sensor_fleet -- --quick # reduced sweeps, smoke-test grade
//! ```

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use witrack_repro::core::WiTrackConfig;
use witrack_repro::serve::engine::{EngineConfig, OverloadPolicy};
use witrack_repro::serve::factory::{hello_for, witrack_factory};
use witrack_repro::serve::transport::in_proc_pair;
use witrack_repro::serve::wire::{Message, PipelineKind};
use witrack_repro::serve::{SensorClient, Server};
use witrack_repro::sim::{FleetConfig, FleetSimulator, SimConfig};

fn main() {
    let sweep = witrack_repro::demo::sweep_from_args();
    let base = WiTrackConfig {
        sweep,
        max_round_trip_m: 30.0,
        ..WiTrackConfig::witrack_default()
    };
    let duration_s = 3.0;
    let rooms = 4;
    let fleet_cfg = FleetConfig {
        rooms,
        max_walkers_per_room: 3,
        duration_s,
        sim: SimConfig {
            sweep,
            noise_std: 0.05,
            seed: 42,
        },
    };
    let mut fleet = FleetSimulator::new(fleet_cfg);

    println!("sensor fleet: {rooms} rooms -> one serving host");
    println!(
        "sweep: {} samples, frame period {:.1} ms; {:.0} s of signal per room\n",
        sweep.samples_per_sweep(),
        sweep.frame_duration_s() * 1e3,
        duration_s
    );

    // The serving side: a sharded engine behind the wire protocol.
    let server = Server::start(
        EngineConfig {
            queue_capacity: 8,
            overload: OverloadPolicy::Block,
            ..Default::default()
        },
        witrack_factory(base),
    );
    let (client_end, server_end) = in_proc_pair(64);
    server
        .attach(server_end)
        .expect("attach in-process connection");

    // The sensor side: one multiplexed connection carrying all rooms.
    // Established-target counts per sensor are tallied from the update
    // stream by the client's drain thread.
    let seen: Arc<Mutex<BTreeMap<u32, (u64, usize)>>> = Arc::new(Mutex::new(BTreeMap::new()));
    let sink = Arc::clone(&seen);
    let mut client = SensorClient::connect_with(
        client_end,
        Some(Box::new(move |msg: &Message| {
            if let Message::UpdateBatch(u) = msg {
                let mut seen = sink.lock().expect("tally poisoned");
                let entry = seen.entry(u.sensor_id).or_insert((0, 0));
                entry.0 += u.updates.len() as u64;
                entry.1 = entry
                    .1
                    .max(u.updates.iter().map(|r| r.targets.len()).max().unwrap_or(0));
            }
        })),
    )
    .expect("connect client");

    // Session lifecycle: single-walker rooms get the single-target
    // pipeline, busier rooms the multi-target tracker.
    let mut people = Vec::new();
    for i in 0..rooms as u32 {
        let walkers = fleet.room(i as usize).num_people();
        people.push(walkers);
        let kind = if walkers == 1 {
            PipelineKind::SingleTarget
        } else {
            PipelineKind::MultiTarget
        };
        client.hello(hello_for(&base, i, kind)).expect("hello");
    }

    // Stream the fleet: one wire batch per room per frame.
    let sweeps_per_frame = sweep.sweeps_per_frame;
    let mut pending: Vec<Vec<Vec<Vec<f64>>>> = vec![Vec::new(); rooms];
    let mut seq = vec![0u64; rooms];
    while let Some(round) = fleet.next_round() {
        for rs in round {
            let room = rs.sensor_id as usize;
            pending[room].push(rs.set.per_rx);
            if pending[room].len() == sweeps_per_frame {
                client
                    .send_sweeps(rs.sensor_id, seq[room], &pending[room])
                    .expect("send batch");
                seq[room] += 1;
                pending[room].clear();
            }
        }
    }
    for i in 0..rooms as u32 {
        client.teardown(i).expect("teardown");
    }
    let stats = client.close();

    println!(
        "{:>6} {:>8} {:>14} {:>16}",
        "room", "walkers", "frames back", "peak targets"
    );
    let seen = seen.lock().expect("tally poisoned");
    for (room, walkers) in people.iter().enumerate() {
        let (frames, peak) = seen.get(&(room as u32)).copied().unwrap_or((0, 0));
        println!("{room:>6} {walkers:>8} {frames:>14} {peak:>16}");
    }

    let m = server.shutdown();
    println!(
        "\nclient: {} update batches, {} frames, {} rejects",
        stats.update_batches, stats.frames, stats.rejects
    );
    println!(
        "engine: {} batches in, {} sweeps processed, {} frames emitted",
        m.batches_in, m.sweeps_processed, m.frames_emitted
    );
    println!(
        "health: {} dropped, {} shed to lagging clients, {} seq gaps, peak queue {}",
        m.batches_dropped, m.updates_dropped, m.seq_gaps, m.max_inflight
    );
    println!("\nEvery room kept its own pipeline and identity on one host —");
    println!("the serving layer the paper's single-room prototype never needed.");
}
