//! A fleet of sensor-equipped rooms served as fused *worlds*, not raw
//! sensor streams.
//!
//! Four rooms — different wall layouts, one to three walkers each — feed
//! their baseband sweeps through the `witrack-serve` wire protocol into
//! a sharded engine on this host. Each room is registered as a fused
//! world (`witrack-fuse`): the client subscribes to **rooms** and
//! receives world tracks with covariance, per-zone occupancy, and fleet
//! events — instead of tallying disjoint per-sensor target lists. Rooms
//! with one walker run the single-target pipeline; busier rooms run
//! `witrack-mtt`.
//!
//! ```text
//! cargo run --release --example sensor_fleet            # paper-config sweeps
//! cargo run --release --example sensor_fleet -- --quick # reduced sweeps, smoke-test grade
//! ```
//!
//! With `--stats-out PATH`, the client additionally pulls a live
//! telemetry snapshot over the wire (`StatsQuery` → `StatsReport`)
//! before closing its sessions and writes the Prometheus-style text
//! exposition to `PATH` — CI's observability smoke checks that artifact
//! for the hot-path series.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use witrack_repro::core::WiTrackConfig;
use witrack_repro::fuse::{FuseConfig, Registration, WorldEvent, Zone};
use witrack_repro::geom::RigidTransform;
use witrack_repro::serve::engine::{EngineConfig, OverloadPolicy};
use witrack_repro::serve::factory::{hello_for, witrack_factory};
use witrack_repro::serve::hub::{RoomSpec, WorldConfig};
use witrack_repro::serve::transport::in_proc_pair;
use witrack_repro::serve::wire::{Message, PipelineKind};
use witrack_repro::serve::{SensorClient, Server, SubscriptionBuilder};
use witrack_repro::sim::{FleetConfig, FleetSimulator, SimConfig};

fn main() {
    let sweep = witrack_repro::demo::sweep_from_args();
    let stats_out = {
        let mut args = std::env::args();
        let mut path = None;
        while let Some(a) = args.next() {
            if a == "--stats-out" {
                path = args.next();
            }
        }
        path
    };
    let base = WiTrackConfig {
        sweep,
        max_round_trip_m: 30.0,
        ..WiTrackConfig::witrack_default()
    };
    let duration_s = 3.0;
    let rooms = 4;
    let fleet_cfg = FleetConfig {
        rooms,
        max_walkers_per_room: 3,
        duration_s,
        sim: SimConfig {
            sweep,
            noise_std: 0.05,
            seed: 42,
        },
    };
    let mut fleet = FleetSimulator::new(fleet_cfg);

    println!("sensor fleet: {rooms} rooms -> one serving host, fused world per room");
    println!(
        "sweep: {} samples, frame period {:.1} ms; {:.0} s of signal per room\n",
        sweep.samples_per_sweep(),
        sweep.frame_duration_s() * 1e3,
        duration_s
    );

    // One fused room per sensor: sensor i sits at its room's origin
    // (identity extrinsic), with the room's walkable area as one zone.
    let world = WorldConfig {
        rooms: (0..rooms as u32)
            .map(|i| RoomSpec {
                room_id: i,
                fuse: FuseConfig {
                    frame_period_s: sweep.frame_duration_s(),
                    obs_std_floor_m: 0.25,
                    gate_mahalanobis_sq: 25.0,
                    zones: vec![Zone {
                        id: 100 + i,
                        name: format!("room {i} floor"),
                        x: (-3.0, 3.5),
                        y: (0.0, 10.0),
                    }],
                    ..FuseConfig::default()
                },
                registration: Registration::new().with_sensor(i, RigidTransform::IDENTITY),
            })
            .collect(),
    };
    let server = Server::builder(witrack_factory(base))
        .config(EngineConfig {
            queue_capacity: 8,
            overload: OverloadPolicy::Block,
            ..Default::default()
        })
        .world(world)
        .start();
    let (client_end, server_end) = in_proc_pair(64);
    server
        .attach(server_end)
        .expect("attach in-process connection");

    // Per-room tallies from the *world* stream: fused frames, peak
    // concurrent world tracks, peak occupancy, and event counts by kind.
    #[derive(Default)]
    struct RoomTally {
        world_frames: u64,
        peak_tracks: usize,
        peak_occupancy: u32,
        events: BTreeMap<&'static str, u32>,
    }
    let seen: Arc<Mutex<BTreeMap<u32, RoomTally>>> = Arc::new(Mutex::new(BTreeMap::new()));
    let sink = Arc::clone(&seen);
    let mut client = SensorClient::connect_with(
        client_end,
        Some(Box::new(move |msg: &Message| {
            let mut seen = sink.lock().expect("tally poisoned");
            match msg {
                Message::WorldUpdate(w) => {
                    let tally = seen.entry(w.room_id).or_default();
                    tally.world_frames += 1;
                    tally.peak_tracks = tally.peak_tracks.max(w.frame.tracks.len());
                }
                Message::Event(e) => {
                    let tally = seen.entry(e.room_id).or_default();
                    *tally.events.entry(e.event.kind()).or_default() += 1;
                    if let WorldEvent::OccupancyChanged { count, .. } = e.event {
                        tally.peak_occupancy = tally.peak_occupancy.max(count);
                    }
                }
                _ => {}
            }
        })),
    )
    .expect("connect client");

    // Session lifecycle: subscribe to every room's world, then open the
    // sensor sessions (single-walker rooms get the single-target
    // pipeline, busier rooms the multi-target tracker).
    let mut people = Vec::new();
    for i in 0..rooms as u32 {
        client
            .subscribe_with(SubscriptionBuilder::room(i).build())
            .expect("subscribe");
        let walkers = fleet.room(i as usize).num_people();
        people.push(walkers);
        let kind = if walkers == 1 {
            PipelineKind::SingleTarget
        } else {
            PipelineKind::MultiTarget
        };
        client.hello(hello_for(&base, i, kind)).expect("hello");
    }

    // Stream the fleet: one wire batch per room per frame.
    let sweeps_per_frame = sweep.sweeps_per_frame;
    let mut pending: Vec<Vec<Vec<Vec<f64>>>> = vec![Vec::new(); rooms];
    let mut seq = vec![0u64; rooms];
    while let Some(round) = fleet.next_round() {
        for rs in round {
            let room = rs.sensor_id as usize;
            pending[room].push(rs.set.per_rx);
            if pending[room].len() == sweeps_per_frame {
                client
                    .send_sweeps(rs.sensor_id, seq[room], &pending[room])
                    .expect("send batch");
                seq[room] += 1;
                pending[room].clear();
            }
        }
    }
    // Pull a live telemetry snapshot over the wire while the sessions
    // (and their gauges) are still open: per-sensor frame counts,
    // per-shard queue accounting, per-stage latency quantiles, per-room
    // track/event counters.
    if let Some(path) = &stats_out {
        client.query_stats().expect("stats query");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let report = loop {
            if let Some(r) = client.last_stats() {
                break r;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no StatsReport within 5 s"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        std::fs::write(path, report.render_text()).expect("write stats exposition");
        println!(
            "telemetry: pulled {} series over the wire -> {path}\n",
            report.samples.len()
        );
    }
    for i in 0..rooms as u32 {
        client.teardown(i).expect("teardown");
    }
    let stats = client.close();

    println!(
        "{:>6} {:>8} {:>13} {:>12} {:>10} {:>24}",
        "room", "walkers", "world frames", "peak tracks", "peak occ", "events"
    );
    let seen = seen.lock().expect("tally poisoned");
    for (room, walkers) in people.iter().enumerate() {
        let empty = RoomTally::default();
        let tally = seen.get(&(room as u32)).unwrap_or(&empty);
        let events: Vec<String> = tally
            .events
            .iter()
            .map(|(k, n)| format!("{k}x{n}"))
            .collect();
        println!(
            "{room:>6} {walkers:>8} {:>13} {:>12} {:>10} {:>24}",
            tally.world_frames,
            tally.peak_tracks,
            tally.peak_occupancy,
            events.join(" ")
        );
    }

    let m = server.shutdown();
    println!(
        "\nclient: {} world frames, {} fleet events, {} rejects",
        stats.world_updates, stats.world_events, stats.rejects
    );
    println!(
        "engine: {} batches in, {} sweeps processed, {} sensor frames, {} world frames",
        m.batches_in, m.sweeps_processed, m.frames_emitted, m.world_frames
    );
    println!(
        "health: {} dropped, {} shed to lagging clients, {} seq gaps, peak queue {}",
        m.batches_dropped, m.updates_dropped, m.seq_gaps, m.max_inflight
    );
    println!("\nClients subscribe to rooms, not sensors: every room arrives as one");
    println!("coherent world — tracks with covariance, occupancy, and alerts.");
}
