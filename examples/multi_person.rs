//! Multi-person tracking: the §10 limitation, and the `witrack-mtt`
//! subsystem that lifts it.
//!
//! Part 1 shows why the single-target pipeline cannot handle two people:
//! two moving bodies give each antenna two TOFs; picking one ellipsoid per
//! antenna yields 2³ = 8 candidate positions of which only 2 are real — the
//! ambiguity the paper leaves to future work.
//!
//! Part 2 runs the multi-target tracker over a simulated two-person
//! crossing scene: top-K contour extraction, Hungarian data association,
//! per-track 3D Kalman smoothing, and a tentative → confirmed → coasting →
//! dead lifecycle resolve the same ambiguity that defeats the single-track
//! pipeline.
//!
//! ```text
//! cargo run --release --example multi_person            # both parts
//! cargo run --release --example multi_person -- --quick # Part 1 only
//! ```

use witrack_repro::core::WiTrackConfig;
use witrack_repro::geom::{TArray, Vec3};
use witrack_repro::mtt::{MttConfig, MultiWiTrack};
use witrack_repro::sim::multi::{scenario, MultiSimulator};
use witrack_repro::sim::{Scene, SimConfig};

fn ambiguity_demo() {
    println!("Part 1 — the single-track ambiguity (paper section 10)\n");
    let t = TArray::symmetric(Vec3::new(0.0, 0.0, 1.0), 1.0);

    let alice = Vec3::new(-1.5, 4.0, 1.1);
    let bob = Vec3::new(1.8, 6.5, 0.9);
    let r_alice = t.round_trips(alice);
    let r_bob = t.round_trips(bob);
    println!("Alice at {alice}: round trips {:.2?} m", r_alice);
    println!("Bob   at {bob}: round trips {:.2?} m", r_bob);

    // Each antenna reports two TOFs; enumerate all assignments.
    println!("\nall 2^3 ellipsoid assignments (antenna -> which person's TOF):");
    println!("assignment  solved-position          consistent?");
    let mut consistent = 0;
    for mask in 0..8u8 {
        let pick = |k: usize| {
            if mask & (1 << k) == 0 {
                r_alice[k]
            } else {
                r_bob[k]
            }
        };
        let rts = [pick(0), pick(1), pick(2)];
        let label: String = (0..3)
            .map(|k| if mask & (1 << k) == 0 { 'A' } else { 'B' })
            .collect();
        match t.solve(rts) {
            Ok(p) => {
                let real = p.distance(alice) < 0.01 || p.distance(bob) < 0.01;
                if real {
                    consistent += 1;
                }
                println!(
                    "{label}         {p}   {}",
                    if real {
                        "YES (real person)"
                    } else {
                        "no (ghost)"
                    }
                );
            }
            Err(_) => println!("{label}         (no geometric solution)      no"),
        }
    }
    println!("\n{consistent} of 8 assignments are real people; the rest are ghosts.");
    println!("The single-track bottom contour simply follows the nearer person");
    println!("and never sees the other — the documented operating assumption.\n");
}

fn tracker_demo() {
    println!("Part 2 — witrack-mtt resolving two crossing walkers\n");
    let sweep = witrack_repro::demo::mid_sweep();
    let base = WiTrackConfig {
        sweep,
        max_round_trip_m: 40.0,
        ..WiTrackConfig::witrack_default()
    };
    let cfg = MttConfig::with_base(base);
    let mut wt = MultiWiTrack::new(cfg).expect("valid config");
    let duration = 10.0;
    let mut sim = MultiSimulator::new(
        SimConfig {
            sweep,
            noise_std: 0.05,
            seed: 1,
        },
        Scene::witrack_lab(false),
        wt.array().clone(),
        scenario::two_walker_crossing(duration),
    );
    println!("two walkers, paths crossing mid-room; {duration} s at 200 frames/s");
    println!("(their x paths swap sides while they stay >= 1 m apart)\n");
    println!("   t    truth A (x,y)     truth B (x,y)     established tracks");

    let mut next_report = 1.0;
    let mut errs: Vec<f64> = Vec::new();
    while let Some(set) = sim.next_sweeps() {
        let refs: Vec<&[f64]> = set.per_rx.iter().map(|v| v.as_slice()).collect();
        let Some(u) = wt.push_sweeps(&refs) else {
            continue;
        };
        let truths = [
            sim.surface_truth(0, u.time_s),
            sim.surface_truth(1, u.time_s),
        ];
        if u.time_s > 2.0 {
            for truth in truths {
                if let Some(d) = u
                    .established()
                    .map(|t| t.position.distance(truth))
                    .min_by(|a, b| a.partial_cmp(b).expect("finite"))
                {
                    errs.push(d);
                }
            }
        }
        if u.time_s >= next_report {
            next_report += 1.0;
            let tracks: Vec<String> = u
                .established()
                .map(|t| {
                    format!(
                        "{}@({:+.1},{:.1}) {:?}",
                        t.id, t.position.x, t.position.y, t.phase
                    )
                })
                .collect();
            println!(
                "{:>5.1}  ({:+.2}, {:.2})     ({:+.2}, {:.2})     {}",
                u.time_s,
                truths[0].x,
                truths[0].y,
                truths[1].x,
                truths[1].y,
                tracks.join("  ")
            );
        }
    }
    let med = witrack_repro::dsp::stats::median(&errs);
    println!(
        "\nmedian nearest-track error over both walkers: {:.1} cm",
        med * 100.0
    );
    println!("run `t4_multi_person` in crates/bench for the full scenario matrix.");
}

fn main() {
    println!("WiTrack multi-person: limitation and multi-target tracking\n");
    ambiguity_demo();
    if std::env::args().any(|a| a == "--quick") {
        println!("(--quick: skipping the tracker demo, which needs the mid sweep)");
        return;
    }
    tracker_demo();
}
