//! Antenna geometry explorer: why separation matters (paper §9.3).
//!
//! Pure geometry — no simulation. Shows how the localization ellipsoids get
//! "squashed" as the Tx–Rx separation grows, and how a fixed TOF error maps
//! to different position errors per axis (the paper's explanation for
//! y-accuracy beating x-accuracy).
//!
//! ```text
//! cargo run --example antenna_geometry
//! ```

use witrack_repro::geom::{Ellipsoid, TArray, Vec3};

fn main() {
    println!("WiTrack antenna geometry explorer\n");
    let person = Vec3::new(1.0, 5.0, 1.3);

    println!("-- ellipsoid squashing (fixed 11 m round trip) --");
    println!("separation  semi-minor-axis  eccentricity");
    for sep in [0.25, 0.5, 1.0, 1.5, 2.0] {
        let e = Ellipsoid::new(
            Vec3::new(-sep / 2.0, 0.0, 1.0),
            Vec3::new(sep / 2.0, 0.0, 1.0),
            11.0,
        )
        .expect("valid ellipsoid");
        println!("{sep:<11} {:<16.4} {:.4}", e.semi_minor(), e.eccentricity());
    }
    println!("(smaller semi-minor axis = smaller solution region = better accuracy)\n");

    println!("-- TOF error amplification at {person} --");
    println!("separation  |dx|      |dy|      |dz|   for a +2 cm error on one antenna");
    for sep in [0.25, 0.5, 1.0, 1.5, 2.0] {
        let t = TArray::symmetric(Vec3::new(0.0, 0.0, 1.0), sep);
        let mut r = t.round_trips(person);
        let clean = t.solve(r).expect("exact solve");
        r[0] += 0.02;
        match t.solve(r) {
            Ok(p) => {
                let d = p - clean;
                println!(
                    "{sep:<11} {:<9.3} {:<9.3} {:.3}",
                    d.x.abs(),
                    d.y.abs(),
                    d.z.abs()
                );
            }
            Err(e) => println!("{sep:<11} no solution ({e})"),
        }
    }
    println!("\n(y errors stay small: the bar antennas share the error symmetrically;");
    println!(" x errors shrink fast with separation — the Fig. 10 effect)");

    println!("\n-- beam feasibility (paper Fig. 4) --");
    let t = TArray::symmetric(Vec3::new(0.0, 0.0, 1.0), 1.0);
    let arr = t.antenna_array();
    let p = t.solve(t.round_trips(person)).expect("exact solve");
    println!(
        "solved position {p} is in all beams: {}",
        arr.in_all_beams(p)
    );
    let mirror = Vec3::new(p.x, -p.y, p.z);
    println!(
        "mirror image    {mirror} is in all beams: {}",
        arr.in_all_beams(mirror)
    );
}
