//! Two sensors, one room, one world: cross-sensor fusion and handoff.
//!
//! A 12 m hallway is covered by two WiTrack units facing each other from
//! opposite ends, each reaching 8 m — so the middle 4 m is seen by both
//! and each end by only one. A walker crosses the whole hallway: sensor
//! 0 acquires them, the fusion layer (`witrack-fuse`, served through
//! `witrack-serve` room subscriptions) carries one world track across
//! the coverage boundary, and sensor 1 finishes the job — same identity
//! throughout, with a `Handoff` event marking the switch. The example
//! also auto-calibrates sensor 1's mounting pose from the shared
//! trajectory and compares it to the ground truth.
//!
//! ```text
//! cargo run --release --example room_fusion            # paper-config sweeps
//! cargo run --release --example room_fusion -- --quick # reduced sweeps
//! ```

use std::collections::BTreeMap;
use std::f64::consts::PI;
use std::sync::{Arc, Mutex};
use witrack_repro::core::fall::FallConfig;
use witrack_repro::core::WiTrackConfig;
use witrack_repro::fuse::{
    CalibrationConfig, FuseConfig, Registration, TrackSample, WorldEvent, Zone,
};
use witrack_repro::geom::{AntennaArray, RigidTransform, Vec3};
use witrack_repro::serve::engine::{EngineConfig, OverloadPolicy};
use witrack_repro::serve::factory::{hello_for, witrack_factory};
use witrack_repro::serve::hub::WorldConfig;
use witrack_repro::serve::transport::in_proc_pair;
use witrack_repro::serve::wire::{EventMsg, Message, PipelineKind, WorldUpdateMsg};
use witrack_repro::serve::{SensorClient, Server, SubscriptionBuilder};
use witrack_repro::sim::vantage::{scenario, MultiVantageSimulator};
use witrack_repro::sim::SimConfig;

const HALLWAY_M: f64 = 12.0;
const COVERAGE_M: f64 = 8.0;
const ROOM: u32 = 7;

fn main() {
    // `--quick` selects the mid sweep rather than the usual smoke-grade
    // reduced sweep: fusion quality depends on range resolution, and the
    // reduced sweep's 1.77 m bins leave nothing meaningful to fuse.
    let sweep = if std::env::args().any(|a| a == "--quick") {
        witrack_repro::demo::mid_sweep()
    } else {
        witrack_repro::fmcw::SweepConfig::witrack()
    };
    let base = WiTrackConfig {
        sweep,
        max_round_trip_m: 30.0,
        ..WiTrackConfig::witrack_default()
    };
    let duration_s = 10.0;
    let world_from_s1 = RigidTransform::from_yaw(PI, Vec3::new(0.0, HALLWAY_M, 0.0));

    println!("room fusion: 2 sensors x {COVERAGE_M} m coverage over a {HALLWAY_M} m hallway");
    println!(
        "overlap: y in [{:.0}, {:.0}] m; walker crosses end to end in {duration_s:.0} s\n",
        HALLWAY_M - COVERAGE_M,
        COVERAGE_M
    );

    let mut sim = MultiVantageSimulator::new(
        SimConfig {
            sweep,
            noise_std: 0.05,
            seed: 17,
        },
        AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0),
        scenario::facing_pair(HALLWAY_M, COVERAGE_M),
        scenario::hallway_crossing(HALLWAY_M, duration_s),
    );

    // The serving side: one fused room over both sensors, with a zone per
    // hallway half.
    let registration = Registration::new()
        .with_sensor(0, RigidTransform::IDENTITY)
        .with_sensor(1, world_from_s1)
        // Declared coverage arms the corroboration ghost filter where
        // the two sensors overlap.
        .with_coverage(0, COVERAGE_M)
        .with_coverage(1, COVERAGE_M);
    let fuse_cfg = FuseConfig {
        frame_period_s: sweep.frame_duration_s(),
        obs_std_floor_m: 0.25,
        gate_mahalanobis_sq: 25.0,
        max_uncorroborated_epochs: 150,
        coverage_margin_m: 0.25,
        min_new_track_separation_m: 2.5,
        // The single-target backend reports from its very first fix, so
        // its acquisition transient at a coverage edge can emit garbage
        // positions; a longer world-level gauntlet keeps those tentative.
        confirm_hits: 20,
        // Nobody falls in this demo; tighten the rule so the z-noise of
        // a cross-coverage transition cannot fake an alarm.
        fall: FallConfig {
            ground_z: 0.2,
            drop_fraction: 0.6,
            ..FallConfig::default()
        },
        zones: vec![
            Zone {
                id: 1,
                name: "near half".into(),
                x: (-3.0, 3.0),
                y: (0.0, HALLWAY_M / 2.0),
            },
            Zone {
                id: 2,
                name: "far half".into(),
                x: (-3.0, 3.0),
                y: (HALLWAY_M / 2.0, HALLWAY_M),
            },
        ],
        ..FuseConfig::default()
    };
    let server = Server::builder(witrack_factory(base))
        .config(EngineConfig {
            queue_capacity: 8,
            overload: OverloadPolicy::Block,
            ..Default::default()
        })
        .world(WorldConfig::single_room(ROOM, fuse_cfg, registration))
        .start();
    let (client_end, server_end) = in_proc_pair(64);
    server.attach(server_end).expect("attach");

    // Collect world updates, events, and the raw per-sensor reports (the
    // latter feed the auto-calibration demo).
    type Collected = (
        Vec<WorldUpdateMsg>,
        Vec<EventMsg>,
        BTreeMap<u32, Vec<TrackSample>>,
    );
    let seen: Arc<Mutex<Collected>> = Arc::new(Mutex::new(Default::default()));
    let sink = Arc::clone(&seen);
    let mut client = SensorClient::connect_with(
        client_end,
        Some(Box::new(move |msg: &Message| {
            let mut c = sink.lock().expect("collector poisoned");
            match msg {
                Message::WorldUpdate(w) => c.0.push(w.clone()),
                Message::Event(e) => c.1.push(*e),
                Message::UpdateBatch(u) => {
                    for r in &u.updates {
                        for t in &r.targets {
                            if !t.held {
                                c.2.entry(u.sensor_id)
                                    .or_default()
                                    .push((r.time_s, t.position));
                            }
                        }
                    }
                }
                _ => {}
            }
        })),
    )
    .expect("connect");

    client
        .subscribe_with(SubscriptionBuilder::room(ROOM).build())
        .expect("subscribe");
    for sensor in 0..2 {
        client
            .hello(hello_for(&base, sensor, PipelineKind::SingleTarget))
            .expect("hello");
    }

    let sweeps_per_frame = sweep.sweeps_per_frame;
    let mut pending: Vec<Vec<Vec<Vec<f64>>>> = vec![Vec::new(); 2];
    let mut seq = [0u64; 2];
    while let Some(round) = sim.next_round() {
        for rs in round {
            let v = rs.sensor_id as usize;
            pending[v].push(rs.set.per_rx);
            if pending[v].len() == sweeps_per_frame {
                client
                    .send_sweeps(rs.sensor_id, seq[v], &pending[v])
                    .expect("send");
                seq[v] += 1;
                pending[v].clear();
            }
        }
    }
    for sensor in 0..2 {
        client.teardown(sensor).expect("teardown");
    }
    client.close();

    let (updates, events, trajectories) = Arc::try_unwrap(seen)
        .unwrap_or_else(|_| panic!("collector still shared"))
        .into_inner()
        .expect("collector poisoned");

    // The world track's journey, sampled once a second.
    println!(
        "{:>6} {:>7} {:>22} {:>8} {:>8}",
        "t (s)", "track", "world position (m)", "anchor", "sensors"
    );
    let mut next_sample = 0.5;
    for u in &updates {
        if u.frame.time_s < next_sample {
            continue;
        }
        next_sample += 1.0;
        for t in &u.frame.tracks {
            println!(
                "{:>6.1} {:>7} {:>22} {:>8} {:>8}",
                u.frame.time_s,
                t.id.to_string(),
                t.position.to_string(),
                t.primary_sensor
                    .map(|s| format!("S{s}"))
                    .unwrap_or_else(|| "-".into()),
                t.contributors
            );
        }
    }

    println!("\nfleet events:");
    for e in &events {
        match e.event {
            WorldEvent::TrackBorn {
                track,
                time_s,
                position,
            } => {
                println!("  {time_s:6.2} s  {track} born at {position}")
            }
            WorldEvent::Handoff {
                track,
                from_sensor,
                to_sensor,
                time_s,
            } => {
                println!("  {time_s:6.2} s  {track} handed off S{from_sensor} -> S{to_sensor}")
            }
            WorldEvent::ZoneEntered {
                track,
                zone,
                time_s,
            } => {
                println!("  {time_s:6.2} s  {track} entered zone {zone}")
            }
            WorldEvent::ZoneExited {
                track,
                zone,
                time_s,
            } => {
                println!("  {time_s:6.2} s  {track} left zone {zone}")
            }
            WorldEvent::OccupancyChanged {
                zone,
                count,
                time_s,
            } => {
                println!("  {time_s:6.2} s  zone {zone} occupancy -> {count}")
            }
            other => println!("  {:6.2} s  {}", other.time_s(), other.kind()),
        }
    }

    // Auto-calibration: recover sensor 1's mounting from the shared walk.
    println!("\nauto-calibration from the shared trajectory:");
    match Registration::calibrate(
        0,
        RigidTransform::IDENTITY,
        &trajectories,
        &CalibrationConfig {
            max_pair_dt_s: sweep.frame_duration_s() * 0.6,
            min_pairs: 24,
            max_rms_residual_m: 1.0,
        },
    ) {
        Ok(reg) => {
            let fitted = reg.get(1).expect("sensor 1 calibrated");
            let probe = Vec3::new(0.0, 5.0, 1.0);
            let err = fitted.apply(probe).distance(world_from_s1.apply(probe));
            println!(
                "  fitted S1 origin at {} (truth {}), probe-point error {:.2} m",
                fitted.translation, world_from_s1.translation, err
            );
        }
        Err(e) => println!("  calibration unavailable this run: {e}"),
    }

    let m = server.shutdown();
    println!(
        "\nengine: {} world frames, {} fleet events, {} sensor frames in",
        m.world_frames, m.world_events, m.frames_emitted
    );
    println!("\nOne track, two sensors, zero identity breaks: the world model");
    println!("the paper's single-device prototype could not see.");
}
