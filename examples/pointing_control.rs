//! Point-to-control: the paper's third application (§6.1).
//!
//! The user stands still and points at an instrumented appliance; WiTrack
//! estimates the pointing direction from the arm's radio reflections and
//! toggles the best-aligned device (the paper drove Insteon drivers; we
//! drive an in-memory registry).
//!
//! ```text
//! cargo run --release --example pointing_control
//! ```

use witrack_repro::core::appliance::ApplianceRegistry;
use witrack_repro::core::pointing::{PointingConfig, PointingEstimator};
use witrack_repro::core::{WiTrack, WiTrackConfig};
use witrack_repro::fmcw::TofFrame;
use witrack_repro::geom::{TArray, Vec3};
use witrack_repro::sim::motion::PointingScript;
use witrack_repro::sim::{BodyModel, Channel, Scene, SimConfig, Simulator};

fn main() {
    let sweep = witrack_repro::demo::sweep_from_args();
    println!("WiTrack point-to-control demo\n");

    // The instrumented room.
    let registry = ApplianceRegistry::new();
    registry.register("lamp", Vec3::new(2.5, 7.0, 1.2));
    registry.register("screen", Vec3::new(-2.5, 6.0, 1.1));
    registry.register("shades", Vec3::new(0.5, 9.5, 1.6));

    // The user stands at (0, 5, 1) and points at the lamp.
    let stance = Vec3::new(0.0, 5.0, 1.0);
    let target = Vec3::new(2.5, 7.0, 1.2);
    let shoulder = stance + Vec3::new(0.0, 0.0, 0.45);
    let direction = target - shoulder;
    let script = PointingScript::new(stance, direction, 9);

    let cfg = WiTrackConfig {
        sweep,
        ..WiTrackConfig::witrack_default()
    };
    let mut witrack = WiTrack::new(cfg).expect("valid configuration");
    let channel = Channel {
        scene: Scene::witrack_lab(true),
        array: witrack.array().clone(),
        body: BodyModel::adult(),
        reference_amplitude: 100.0,
    };
    let mut sim = Simulator::new(
        SimConfig {
            sweep,
            noise_std: 0.05,
            seed: 9,
        },
        channel,
        Box::new(script),
    );

    // Record the gesture through the pipeline.
    let mut frames: Vec<Vec<TofFrame>> = vec![Vec::new(); 3];
    while let Some(set) = sim.next_sweeps() {
        let refs: Vec<&[f64]> = set.per_rx.iter().map(|v| v.as_slice()).collect();
        if let Some(update) = witrack.push_sweeps(&refs) {
            for (k, f) in update.frames.into_iter().enumerate() {
                frames[k].push(f);
            }
        }
    }

    // Estimate the pointing direction and drive the appliance.
    let estimator = PointingEstimator::new(
        PointingConfig::default(),
        TArray::symmetric(Vec3::new(0.0, 0.0, 1.0), 1.0),
        sweep.frame_duration_s(),
    );
    match estimator.estimate(&frames) {
        Ok(est) => {
            println!(
                "gesture segmented: lift {:.2}-{:.2}s, drop {:.2}-{:.2}s",
                est.lift_window.0, est.lift_window.1, est.drop_window.0, est.drop_window.1
            );
            println!("estimated direction {}", est.direction);
            match registry.point_and_toggle(est.hand_start, est.direction, 30.0) {
                Some(dev) => println!(
                    "-> toggled '{}' {} (at {})",
                    dev.name,
                    if dev.on { "ON" } else { "OFF" },
                    dev.position
                ),
                None => println!("-> no appliance within 30 degrees of the pointing ray"),
            }
        }
        Err(e) => println!("gesture not recognized: {e}"),
    }
    println!("\nroom state:");
    for a in registry.snapshot() {
        println!("  {:<8} {}", a.name, if a.on { "ON" } else { "off" });
    }
    if std::env::args().any(|a| a == "--quick") {
        println!("\n(note: --quick uses 1.77 m range bins; selection is unreliable there)");
    }
}
