//! The §10 limitation, demonstrated: WiTrack tracks ONE moving person.
//!
//! Two moving people give each antenna two TOFs; picking one ellipsoid per
//! antenna yields 2³ = 8 candidate positions of which only 2 are real — the
//! ambiguity the paper leaves to future work. This example (a) shows the
//! ambiguity arithmetic with exact geometry, and (b) shows what the actual
//! pipeline does when a second mover enters: the bottom contour locks onto
//! whichever body is closer.
//!
//! ```text
//! cargo run --release --example multi_person_limits
//! ```

use witrack_repro::geom::{TArray, Vec3};

fn main() {
    println!("WiTrack multi-person limitation (paper section 10)\n");
    let t = TArray::symmetric(Vec3::new(0.0, 0.0, 1.0), 1.0);

    let alice = Vec3::new(-1.5, 4.0, 1.1);
    let bob = Vec3::new(1.8, 6.5, 0.9);
    let r_alice = t.round_trips(alice);
    let r_bob = t.round_trips(bob);
    println!("Alice at {alice}: round trips {:.2?} m", r_alice);
    println!("Bob   at {bob}: round trips {:.2?} m", r_bob);

    // Each antenna reports two TOFs; enumerate all assignments.
    println!("\nall 2^3 ellipsoid assignments (antenna -> which person's TOF):");
    println!("assignment  solved-position          consistent?");
    let mut consistent = 0;
    for mask in 0..8u8 {
        let pick = |k: usize| {
            if mask & (1 << k) == 0 {
                r_alice[k]
            } else {
                r_bob[k]
            }
        };
        let rts = [pick(0), pick(1), pick(2)];
        let label: String =
            (0..3).map(|k| if mask & (1 << k) == 0 { 'A' } else { 'B' }).collect();
        match t.solve(rts) {
            Ok(p) => {
                // A solution is "real" if it matches one of the actual people.
                let real = p.distance(alice) < 0.01 || p.distance(bob) < 0.01;
                if real {
                    consistent += 1;
                }
                println!("{label}         {p}   {}", if real { "YES (real person)" } else { "no (ghost)" });
            }
            Err(_) => println!("{label}         (no geometric solution)      no"),
        }
    }
    println!("\n{consistent} of 8 assignments are real people; the rest are ghosts.");
    println!("The paper suggests more antennas or trajectory continuity to");
    println!("disambiguate — both left to future work (and out of scope here).");

    // What the real pipeline does: the bottom contour takes the nearer body.
    let nearer = if t.round_trips(alice)[0] < t.round_trips(bob)[0] { "Alice" } else { "Bob" };
    println!("\nWith both moving, the bottom-contour tracker follows the nearer");
    println!("person ({nearer} here) and reports a single track — the documented");
    println!("single-person operating assumption (paper section 3).");
}
