//! Quickstart: track a person walking behind a wall, purely from radio
//! reflections, and compare against the simulator's ground truth.
//!
//! ```text
//! cargo run --release --example quickstart             # full prototype sweep
//! cargo run --release --example quickstart -- --quick  # fast reduced sweep
//! ```

use witrack_repro::core::{Track, WiTrack, WiTrackConfig};
use witrack_repro::geom::Vec3;
use witrack_repro::sim::motion::{RandomWalk, Rect};
use witrack_repro::sim::{BodyModel, Channel, Scene, SimConfig, Simulator};

fn main() {
    let sweep = witrack_repro::demo::sweep_from_args();
    println!("WiTrack quickstart — through-wall 3D tracking");
    println!(
        "sweep: {:.2} GHz bandwidth, {:.0} cm range bins, {:.0} fps\n",
        sweep.bandwidth_hz / 1e9,
        sweep.range_resolution() * 100.0,
        sweep.frame_rate_hz()
    );

    // 1. The device: a T-shaped array behind the wall at y = 0.
    let cfg = WiTrackConfig {
        sweep,
        ..WiTrackConfig::witrack_default()
    };
    let mut witrack = WiTrack::new(cfg).expect("valid configuration");

    // 2. The (simulated) world: a sheetrock wall at y = 2.5 m, clutter, and
    //    a person walking at will 3–9 m away.
    let channel = Channel {
        scene: Scene::witrack_lab(true),
        array: witrack.array().clone(),
        body: BodyModel::adult(),
        reference_amplitude: 100.0,
    };
    let motion = RandomWalk::new(Rect::vicon_area(), 1.0, 1.0, 12.0, 0.25, 7);
    let mut sim = Simulator::new(
        SimConfig {
            sweep,
            noise_std: 0.05,
            seed: 7,
        },
        channel,
        Box::new(motion),
    );

    // 3. Stream sweeps through the pipeline.
    let mut track = Track::new();
    let mut printed = 0;
    while let Some(set) = sim.next_sweeps() {
        let refs: Vec<&[f64]> = set.per_rx.iter().map(|v| v.as_slice()).collect();
        if let Some(update) = witrack.push_sweeps(&refs) {
            track.push_update(&update);
            if let Some(p) = update.position {
                // Print one row per second of simulated time.
                if update.time_s as u64 > printed {
                    printed = update.time_s as u64;
                    let truth = sim.surface_truth(update.time_s);
                    println!(
                        "t={:>5.2}s  estimate {}  truth {}  error {:.2} m",
                        update.time_s,
                        p,
                        truth,
                        p.distance(truth)
                    );
                }
            }
        }
    }

    // 4. Summary.
    let origin = Vec3::new(0.0, 0.0, 1.0);
    println!(
        "\ntracked {} frames; path length {:.1} m",
        track.len(),
        track.path_length()
    );
    if let Some((t0, t1)) = track.time_span() {
        println!("track span {t0:.1}–{t1:.1} s; device at {origin}");
    }
    if std::env::args().any(|a| a == "--quick") {
        println!("(--quick uses 1.77 m range bins; drop it for ~10 cm accuracy)");
    }
}
