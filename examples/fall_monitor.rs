//! Fall monitor: the paper's second application (§6.2, §9.5).
//!
//! Runs the online fall detector against four scripted activities —
//! walking, sitting on a chair, sitting on the floor, and a (simulated)
//! fall — and prints the alarms. Only the fall should trigger.
//!
//! ```text
//! cargo run --release --example fall_monitor [-- --quick]
//! ```

use witrack_repro::core::fall::{FallConfig, FallDetector};
use witrack_repro::core::{WiTrack, WiTrackConfig};
use witrack_repro::geom::Vec3;
use witrack_repro::sim::motion::{Activity, ActivityScript};
use witrack_repro::sim::{BodyModel, Channel, Scene, SimConfig, Simulator};

fn main() {
    let sweep = witrack_repro::demo::sweep_from_args();
    println!("WiTrack fall monitor — elevation-based fall detection\n");

    for (i, activity) in Activity::all().into_iter().enumerate() {
        let cfg = WiTrackConfig {
            sweep,
            ..WiTrackConfig::witrack_default()
        };
        let mut witrack = WiTrack::new(cfg).expect("valid configuration");
        let channel = Channel {
            scene: Scene::witrack_lab(true),
            array: witrack.array().clone(),
            body: BodyModel::adult(),
            reference_amplitude: 100.0,
        };
        let script =
            ActivityScript::generate(activity, Vec3::new(0.0, 5.0, 1.0), 15.0, 40 + i as u64);
        let mut sim = Simulator::new(
            SimConfig {
                sweep,
                noise_std: 0.05,
                seed: 40 + i as u64,
            },
            channel,
            Box::new(script),
        );
        let mut detector = FallDetector::new(FallConfig::default());
        let mut alarms = Vec::new();
        let mut final_z = f64::NAN;
        while let Some(set) = sim.next_sweeps() {
            let refs: Vec<&[f64]> = set.per_rx.iter().map(|v| v.as_slice()).collect();
            if let Some(update) = witrack.push_sweeps(&refs) {
                if update.time_s < 2.0 {
                    continue;
                }
                if let Some(p) = update.position {
                    final_z = p.z;
                    if let Some(event) = detector.push(update.time_s, p.z) {
                        alarms.push(event);
                    }
                }
            }
        }
        print!(
            "{:<14} final elevation {final_z:>5.2} m — ",
            activity.label()
        );
        if alarms.is_empty() {
            println!("no alarm");
        } else {
            for a in &alarms {
                println!(
                    "FALL ALARM at t={:.2}s (dropped {:.2} m -> {:.2} m in ~{:.2} s)",
                    a.time_s, a.from_z, a.to_z, a.transition_s
                );
            }
        }
    }
    println!("\nexpected: alarms only for the Fall activity");
}
