//! Cross-crate integration tests: simulator → FMCW pipeline → geometry →
//! applications, exercised together the way the paper's experiments do.
//!
//! These run the *reduced* sweep (fast in debug builds) except where noted;
//! paper-configuration behavior is validated by `paper_config.rs` and the
//! release-mode harnesses.

use witrack_repro::core::fall::{classify_elevation_track, FallConfig};
use witrack_repro::core::{Track, WiTrack, WiTrackConfig};
use witrack_repro::fmcw::SweepConfig;
use witrack_repro::geom::Vec3;
use witrack_repro::sim::motion::{Activity, ActivityScript, RandomWalk, Rect, Stand};
use witrack_repro::sim::{BodyModel, Channel, Scene, SimConfig, Simulator};

fn quick_sweep() -> SweepConfig {
    witrack_repro::demo::reduced_sweep()
}

fn run_pipeline(
    sweep: SweepConfig,
    through_wall: bool,
    motion: Box<dyn witrack_repro::sim::MotionModel>,
    seed: u64,
) -> (Track, Simulator) {
    let cfg = WiTrackConfig { sweep, max_round_trip_m: 40.0, ..WiTrackConfig::witrack_default() };
    let mut wt = WiTrack::new(cfg).expect("valid config");
    let channel = Channel {
        scene: Scene::witrack_lab(through_wall),
        array: wt.array().clone(),
        body: BodyModel::adult(),
        reference_amplitude: 100.0,
    };
    let mut sim =
        Simulator::new(SimConfig { sweep, noise_std: 0.05, seed }, channel, motion);
    let mut track = Track::new();
    while let Some(set) = sim.next_sweeps() {
        let refs: Vec<&[f64]> = set.per_rx.iter().map(|v| v.as_slice()).collect();
        if let Some(update) = wt.push_sweeps(&refs) {
            if update.time_s >= 2.0 {
                track.push_update(&update);
            }
        }
    }
    // Re-create the sim for ground-truth queries (same seeds ⇒ same world).
    let cfg2 = WiTrackConfig { sweep, ..WiTrackConfig::witrack_default() };
    let wt2 = WiTrack::new(cfg2).expect("valid config");
    let channel = Channel {
        scene: Scene::witrack_lab(through_wall),
        array: wt2.array().clone(),
        body: BodyModel::adult(),
        reference_amplitude: 100.0,
    };
    let sim = Simulator::new(
        SimConfig { sweep, noise_std: 0.05, seed },
        channel,
        Box::new(RandomWalk::new(Rect::vicon_area(), 1.0, 1.0, 1.0, 0.0, seed)),
    );
    (track, sim)
}

#[test]
fn through_wall_walk_produces_continuous_track() {
    let motion = RandomWalk::new(Rect::vicon_area(), 1.0, 1.0, 8.0, 0.2, 11);
    let (track, _) = run_pipeline(quick_sweep(), true, Box::new(motion), 11);
    assert!(track.len() > 300, "only {} track points", track.len());
    // Positions are inside a sane envelope around the room.
    for &(_, p) in track.samples() {
        assert!(p.y > -1.0 && p.y < 14.0, "wild y: {p}");
        assert!(p.x.abs() < 6.0, "wild x: {p}");
    }
    // Time is monotone.
    let times: Vec<f64> = track.samples().iter().map(|&(t, _)| t).collect();
    assert!(times.windows(2).all(|w| w[1] > w[0]));
}

#[test]
fn y_accuracy_beats_x_accuracy_by_geometry() {
    // The paper's §9.1 observation, reproducible even at reduced bandwidth.
    let motion = RandomWalk::new(Rect::vicon_area(), 1.0, 1.0, 10.0, 0.2, 23);
    let sweep = quick_sweep();
    let cfg = WiTrackConfig { sweep, ..WiTrackConfig::witrack_default() };
    let mut wt = WiTrack::new(cfg).expect("valid config");
    let channel = Channel {
        scene: Scene::witrack_lab(true),
        array: wt.array().clone(),
        body: BodyModel::adult(),
        reference_amplitude: 100.0,
    };
    let mut sim = Simulator::new(
        SimConfig { sweep, noise_std: 0.05, seed: 23 },
        channel,
        Box::new(motion),
    );
    let mut ex = Vec::new();
    let mut ey = Vec::new();
    while let Some(set) = sim.next_sweeps() {
        let refs: Vec<&[f64]> = set.per_rx.iter().map(|v| v.as_slice()).collect();
        if let Some(u) = wt.push_sweeps(&refs) {
            if u.time_s < 2.0 {
                continue;
            }
            if let Some(p) = u.position {
                let truth = sim.surface_truth(u.time_s);
                ex.push((p.x - truth.x).abs());
                ey.push((p.y - truth.y).abs());
            }
        }
    }
    let mx = witrack_repro::dsp::stats::median(&ex);
    let my = witrack_repro::dsp::stats::median(&ey);
    assert!(my < mx, "y median {my} should beat x median {mx}");
}

#[test]
fn static_person_is_invisible_then_held() {
    // §10: a person who never moves cannot be separated from furniture.
    let stand = Stand { position: Vec3::new(0.5, 5.0, 1.0), time: 4.0 };
    let (track, _) = run_pipeline(quick_sweep(), true, Box::new(stand), 31);
    assert!(track.is_empty(), "a never-moving person must never be detected");
}

#[test]
fn fall_and_sit_classify_differently_end_to_end() {
    // Tracked (not scripted) elevation series must separate a fall from a
    // chair sit even at reduced bandwidth via the elevation conditions.
    let anchor = Vec3::new(0.0, 5.0, 1.0);
    let fall = ActivityScript::generate(Activity::Fall, anchor, 14.0, 5);
    let (fall_track, _) = run_pipeline(quick_sweep(), true, Box::new(fall), 5);
    let chair = ActivityScript::generate(Activity::Walk, anchor, 14.0, 6);
    let (walk_track, _) = run_pipeline(quick_sweep(), true, Box::new(chair), 6);

    let cfg = FallConfig::default();
    let walk_verdict = classify_elevation_track(&walk_track.elevations(), &cfg);
    assert!(!walk_verdict.is_fall(), "walking misclassified: {walk_verdict:?}");
    // The fall's *descent* must register in the tracked z (the absolute
    // values are coarse at this bandwidth).
    let zs = fall_track.elevations();
    let early: Vec<f64> = zs.iter().take(50).map(|&(_, z)| z).collect();
    let late: Vec<f64> = zs.iter().rev().take(50).map(|&(_, z)| z).collect();
    assert!(
        witrack_repro::dsp::stats::median(&early) > witrack_repro::dsp::stats::median(&late),
        "fall descent not visible in tracked elevation"
    );
}

#[test]
fn line_of_sight_beats_through_wall() {
    let sweep = quick_sweep();
    let mut med3d = Vec::new();
    for through_wall in [false, true] {
        let motion = RandomWalk::new(Rect::vicon_area(), 1.0, 1.0, 8.0, 0.2, 47);
        let cfg = WiTrackConfig { sweep, ..WiTrackConfig::witrack_default() };
        let mut wt = WiTrack::new(cfg).expect("valid config");
        let channel = Channel {
            scene: Scene::witrack_lab(through_wall),
            array: wt.array().clone(),
            body: BodyModel::adult(),
            reference_amplitude: 100.0,
        };
        let mut sim = Simulator::new(
            SimConfig { sweep, noise_std: 0.15, seed: 47 },
            channel,
            Box::new(motion),
        );
        let mut errs = Vec::new();
        while let Some(set) = sim.next_sweeps() {
            let refs: Vec<&[f64]> = set.per_rx.iter().map(|v| v.as_slice()).collect();
            if let Some(u) = wt.push_sweeps(&refs) {
                if u.time_s < 2.0 {
                    continue;
                }
                if let Some(p) = u.position {
                    errs.push(p.distance(sim.surface_truth(u.time_s)));
                }
            }
        }
        med3d.push(witrack_repro::dsp::stats::median(&errs));
    }
    // Through-wall (index 1) should not be better than LOS (index 0) by any
    // meaningful margin.
    assert!(
        med3d[1] > 0.8 * med3d[0],
        "through-wall {} vs LOS {} — wall made things better?",
        med3d[1],
        med3d[0]
    );
}
