//! Cross-crate integration tests: simulator → FMCW pipeline → geometry →
//! applications, exercised together the way the paper's experiments do.
//!
//! These run the *reduced* sweep (fast in debug builds) except where noted;
//! paper-configuration behavior is validated by `paper_config.rs` and the
//! release-mode harnesses.

use witrack_repro::core::fall::{classify_elevation_track, FallConfig};
use witrack_repro::core::{Track, WiTrack, WiTrackConfig};
use witrack_repro::fmcw::SweepConfig;
use witrack_repro::geom::Vec3;
use witrack_repro::mtt::{MttConfig, MultiWiTrack, TrackId};
use witrack_repro::sim::motion::{Activity, ActivityScript, RandomWalk, Rect, Stand};
use witrack_repro::sim::multi::{scenario, MultiSimulator};
use witrack_repro::sim::{BodyModel, Channel, Scene, SimConfig, Simulator};

fn quick_sweep() -> SweepConfig {
    witrack_repro::demo::reduced_sweep()
}

fn run_pipeline(
    sweep: SweepConfig,
    through_wall: bool,
    motion: Box<dyn witrack_repro::sim::MotionModel>,
    seed: u64,
) -> (Track, Simulator) {
    let cfg = WiTrackConfig {
        sweep,
        max_round_trip_m: 40.0,
        ..WiTrackConfig::witrack_default()
    };
    let mut wt = WiTrack::new(cfg).expect("valid config");
    let channel = Channel {
        scene: Scene::witrack_lab(through_wall),
        array: wt.array().clone(),
        body: BodyModel::adult(),
        reference_amplitude: 100.0,
    };
    let mut sim = Simulator::new(
        SimConfig {
            sweep,
            noise_std: 0.05,
            seed,
        },
        channel,
        motion,
    );
    let mut track = Track::new();
    while let Some(set) = sim.next_sweeps() {
        let refs: Vec<&[f64]> = set.per_rx.iter().map(|v| v.as_slice()).collect();
        if let Some(update) = wt.push_sweeps(&refs) {
            if update.time_s >= 2.0 {
                track.push_update(&update);
            }
        }
    }
    // Re-create the sim for ground-truth queries (same seeds ⇒ same world).
    let cfg2 = WiTrackConfig {
        sweep,
        ..WiTrackConfig::witrack_default()
    };
    let wt2 = WiTrack::new(cfg2).expect("valid config");
    let channel = Channel {
        scene: Scene::witrack_lab(through_wall),
        array: wt2.array().clone(),
        body: BodyModel::adult(),
        reference_amplitude: 100.0,
    };
    let sim = Simulator::new(
        SimConfig {
            sweep,
            noise_std: 0.05,
            seed,
        },
        channel,
        Box::new(RandomWalk::new(
            Rect::vicon_area(),
            1.0,
            1.0,
            1.0,
            0.0,
            seed,
        )),
    );
    (track, sim)
}

#[test]
fn through_wall_walk_produces_continuous_track() {
    let motion = RandomWalk::new(Rect::vicon_area(), 1.0, 1.0, 8.0, 0.2, 11);
    let (track, _) = run_pipeline(quick_sweep(), true, Box::new(motion), 11);
    assert!(track.len() > 300, "only {} track points", track.len());
    // Positions are inside a sane envelope around the room.
    for &(_, p) in track.samples() {
        assert!(p.y > -1.0 && p.y < 14.0, "wild y: {p}");
        assert!(p.x.abs() < 6.0, "wild x: {p}");
    }
    // Time is monotone.
    let times: Vec<f64> = track.samples().iter().map(|&(t, _)| t).collect();
    assert!(times.windows(2).all(|w| w[1] > w[0]));
}

#[test]
fn y_accuracy_beats_x_accuracy_by_geometry() {
    // The paper's §9.1 observation, reproducible even at reduced bandwidth.
    let motion = RandomWalk::new(Rect::vicon_area(), 1.0, 1.0, 10.0, 0.2, 23);
    let sweep = quick_sweep();
    let cfg = WiTrackConfig {
        sweep,
        ..WiTrackConfig::witrack_default()
    };
    let mut wt = WiTrack::new(cfg).expect("valid config");
    let channel = Channel {
        scene: Scene::witrack_lab(true),
        array: wt.array().clone(),
        body: BodyModel::adult(),
        reference_amplitude: 100.0,
    };
    let mut sim = Simulator::new(
        SimConfig {
            sweep,
            noise_std: 0.05,
            seed: 23,
        },
        channel,
        Box::new(motion),
    );
    let mut ex = Vec::new();
    let mut ey = Vec::new();
    while let Some(set) = sim.next_sweeps() {
        let refs: Vec<&[f64]> = set.per_rx.iter().map(|v| v.as_slice()).collect();
        if let Some(u) = wt.push_sweeps(&refs) {
            if u.time_s < 2.0 {
                continue;
            }
            if let Some(p) = u.position {
                let truth = sim.surface_truth(u.time_s);
                ex.push((p.x - truth.x).abs());
                ey.push((p.y - truth.y).abs());
            }
        }
    }
    let mx = witrack_repro::dsp::stats::median(&ex);
    let my = witrack_repro::dsp::stats::median(&ey);
    assert!(my < mx, "y median {my} should beat x median {mx}");
}

#[test]
fn static_person_is_invisible_then_held() {
    // §10: a person who never moves cannot be separated from furniture.
    let stand = Stand {
        position: Vec3::new(0.5, 5.0, 1.0),
        time: 4.0,
    };
    let (track, _) = run_pipeline(quick_sweep(), true, Box::new(stand), 31);
    assert!(
        track.is_empty(),
        "a never-moving person must never be detected"
    );
}

#[test]
fn fall_and_sit_classify_differently_end_to_end() {
    // Tracked (not scripted) elevation series must separate a fall from
    // walking. The fall runs at the mid sweep (0.44 m bins): the reduced
    // sweep's 1.77 m bins get amplified ~5× into z by the stem geometry,
    // leaving the tracked elevation too noisy for the descent to register
    // reliably.
    let anchor = Vec3::new(0.0, 5.0, 1.0);
    let fall = ActivityScript::generate(Activity::Fall, anchor, 14.0, 5);
    let (fall_track, _) = run_pipeline(witrack_repro::demo::mid_sweep(), true, Box::new(fall), 5);
    let chair = ActivityScript::generate(Activity::Walk, anchor, 14.0, 6);
    let (walk_track, _) = run_pipeline(quick_sweep(), true, Box::new(chair), 6);

    let cfg = FallConfig::default();
    let walk_verdict = classify_elevation_track(&walk_track.elevations(), &cfg);
    assert!(
        !walk_verdict.is_fall(),
        "walking misclassified: {walk_verdict:?}"
    );
    // The fall's *descent* must register in the tracked z (the absolute
    // values are coarse at this bandwidth).
    let zs = fall_track.elevations();
    let early: Vec<f64> = zs.iter().take(50).map(|&(_, z)| z).collect();
    let late: Vec<f64> = zs.iter().rev().take(50).map(|&(_, z)| z).collect();
    assert!(
        witrack_repro::dsp::stats::median(&early) > witrack_repro::dsp::stats::median(&late),
        "fall descent not visible in tracked elevation"
    );
}

#[test]
fn mtt_resolves_two_crossing_walkers() {
    // The §10 limitation, lifted: two walkers whose floor paths cross
    // (staying ≥ 1 m apart) must come out as two concurrently-confirmed,
    // correctly-separated tracks, and neither identity may swap.
    let sweep = witrack_repro::demo::mid_sweep();
    let base = WiTrackConfig {
        sweep,
        max_round_trip_m: 40.0,
        ..WiTrackConfig::witrack_default()
    };
    let cfg = MttConfig::with_base(base);
    let mut wt = MultiWiTrack::new(cfg).expect("valid config");
    let mut sim = MultiSimulator::new(
        SimConfig {
            sweep,
            noise_std: 0.05,
            seed: 1,
        },
        Scene::witrack_lab(false),
        wt.array().clone(),
        scenario::two_walker_crossing(10.0),
    );

    let warmup_s = 2.5;
    let mut frames = 0usize;
    let mut both_confirmed = 0usize;
    let mut covered = [0usize; 2];
    // The id covering each walker, fixed at first coverage: any later
    // change is an identity swap (the walkers stay ≥ 1 m apart throughout,
    // so there is no excusable ambiguity window).
    let mut owner: [Option<TrackId>; 2] = [None, None];
    let mut swaps = 0usize;

    while let Some(set) = sim.next_sweeps() {
        let refs: Vec<&[f64]> = set.per_rx.iter().map(|v| v.as_slice()).collect();
        let Some(u) = wt.push_sweeps(&refs) else {
            continue;
        };
        if u.time_s < warmup_s {
            continue;
        }
        frames += 1;
        let truths = [
            sim.surface_truth(0, u.time_s),
            sim.surface_truth(1, u.time_s),
        ];
        assert!(
            truths[0].distance(truths[1]) >= 1.0,
            "scenario keeps walkers separated"
        );
        let established: Vec<_> = u.established().collect();
        if established.len() >= 2 {
            both_confirmed += 1;
        }
        let mut covering_ids = [None, None];
        for (i, truth) in truths.iter().enumerate() {
            let nearest = established
                .iter()
                .min_by(|a, b| {
                    a.position
                        .distance(*truth)
                        .partial_cmp(&b.position.distance(*truth))
                        .expect("finite")
                })
                .filter(|t| t.position.distance(*truth) < 1.0);
            if let Some(t) = nearest {
                covered[i] += 1;
                covering_ids[i] = Some(t.id);
                match owner[i] {
                    None => owner[i] = Some(t.id),
                    Some(prev) if prev != t.id => swaps += 1,
                    Some(_) => {}
                }
            }
        }
        // Correctly separated: one track cannot cover both walkers.
        if let (Some(a), Some(b)) = (covering_ids[0], covering_ids[1]) {
            assert_ne!(a, b, "one track covering both walkers at t={}", u.time_s);
        }
    }

    assert!(frames > 1000, "too few frames: {frames}");
    assert!(
        both_confirmed as f64 > 0.9 * frames as f64,
        "two tracks concurrently established on only {both_confirmed}/{frames} frames"
    );
    for (i, c) in covered.iter().enumerate() {
        assert!(
            *c as f64 > 0.85 * frames as f64,
            "walker {i} covered on only {c}/{frames} frames"
        );
    }
    assert_eq!(
        swaps, 0,
        "track identity swapped while walkers were ≥ 1 m apart"
    );
}

#[test]
fn line_of_sight_beats_through_wall() {
    let sweep = quick_sweep();
    let mut med3d = Vec::new();
    for through_wall in [false, true] {
        let motion = RandomWalk::new(Rect::vicon_area(), 1.0, 1.0, 8.0, 0.2, 47);
        let cfg = WiTrackConfig {
            sweep,
            ..WiTrackConfig::witrack_default()
        };
        let mut wt = WiTrack::new(cfg).expect("valid config");
        let channel = Channel {
            scene: Scene::witrack_lab(through_wall),
            array: wt.array().clone(),
            body: BodyModel::adult(),
            reference_amplitude: 100.0,
        };
        let mut sim = Simulator::new(
            SimConfig {
                sweep,
                noise_std: 0.15,
                seed: 47,
            },
            channel,
            Box::new(motion),
        );
        let mut errs = Vec::new();
        while let Some(set) = sim.next_sweeps() {
            let refs: Vec<&[f64]> = set.per_rx.iter().map(|v| v.as_slice()).collect();
            if let Some(u) = wt.push_sweeps(&refs) {
                if u.time_s < 2.0 {
                    continue;
                }
                if let Some(p) = u.position {
                    errs.push(p.distance(sim.surface_truth(u.time_s)));
                }
            }
        }
        med3d.push(witrack_repro::dsp::stats::median(&errs));
    }
    // Through-wall (index 1) should not be better than LOS (index 0) by any
    // meaningful margin.
    assert!(
        med3d[1] > 0.8 * med3d[0],
        "through-wall {} vs LOS {} — wall made things better?",
        med3d[1],
        med3d[0]
    );
}
