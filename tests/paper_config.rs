//! Integration tests at the paper's full configuration (2500-sample sweeps,
//! 1.69 GHz bandwidth). Kept short — one to three seconds of simulated time
//! each — so they stay tractable in debug builds; the full-length accuracy
//! claims are validated by the release-mode harness binaries.

use witrack_repro::core::{WiTrack, WiTrackConfig};
use witrack_repro::fmcw::SweepConfig;
use witrack_repro::geom::Vec3;
use witrack_repro::sim::motion::{RandomWalk, Rect};
use witrack_repro::sim::{BodyModel, Channel, Scene, SimConfig, Simulator};

#[test]
fn paper_config_identities() {
    let sweep = SweepConfig::witrack();
    sweep
        .validate()
        .expect("the paper's configuration must validate");
    assert_eq!(sweep.samples_per_sweep(), 2500);
    assert!((sweep.range_resolution() - 0.0887).abs() < 0.001);
    assert!((sweep.frame_rate_hz() - 80.0).abs() < 1e-9);
}

#[test]
fn paper_config_tracks_a_walker_to_decimeters() {
    let sweep = SweepConfig::witrack();
    let cfg = WiTrackConfig::witrack_default();
    let mut wt = WiTrack::new(cfg).expect("valid config");
    let channel = Channel {
        scene: Scene::witrack_lab(true),
        array: wt.array().clone(),
        body: BodyModel::adult(),
        reference_amplitude: 100.0,
    };
    // 3 s straight-line walk (post-warmup window is ~1 s).
    let motion = RandomWalk::new(
        Rect {
            x_min: -1.0,
            x_max: 1.0,
            y_min: 4.0,
            y_max: 6.0,
        },
        1.0,
        1.0,
        3.0,
        0.0,
        13,
    );
    let mut sim = Simulator::new(
        SimConfig {
            sweep,
            noise_std: 0.05,
            seed: 13,
        },
        channel,
        Box::new(motion),
    );
    let mut errs = Vec::new();
    while let Some(set) = sim.next_sweeps() {
        let refs: Vec<&[f64]> = set.per_rx.iter().map(|v| v.as_slice()).collect();
        if let Some(u) = wt.push_sweeps(&refs) {
            if u.time_s < 2.0 {
                continue;
            }
            if let Some(p) = u.position {
                errs.push(p.distance(sim.surface_truth(u.time_s)));
            }
        }
    }
    assert!(errs.len() > 40, "only {} evaluated frames", errs.len());
    let med = witrack_repro::dsp::stats::median(&errs);
    assert!(med < 0.6, "median 3D error {med} m at paper config");
}

#[test]
fn paper_config_round_trips_are_centimeter_grade() {
    // The per-antenna §4 output, before geometry: raw contour detections at
    // full bandwidth must sit within ~1.5 range bins of the truth.
    let sweep = SweepConfig::witrack();
    let cfg = WiTrackConfig::witrack_default();
    let mut wt = WiTrack::new(cfg).expect("valid config");
    let array = wt.array().clone();
    let channel = Channel {
        scene: Scene::witrack_lab(true),
        array: array.clone(),
        body: BodyModel::adult(),
        reference_amplitude: 100.0,
    };
    let motion = RandomWalk::new(
        Rect {
            x_min: -0.5,
            x_max: 0.5,
            y_min: 4.5,
            y_max: 5.5,
        },
        1.0,
        0.8,
        2.5,
        0.0,
        29,
    );
    let mut sim = Simulator::new(
        SimConfig {
            sweep,
            noise_std: 0.05,
            seed: 29,
        },
        channel,
        Box::new(motion),
    );
    let mut errs = Vec::new();
    while let Some(set) = sim.next_sweeps() {
        let refs: Vec<&[f64]> = set.per_rx.iter().map(|v| v.as_slice()).collect();
        if let Some(u) = wt.push_sweeps(&refs) {
            if u.time_s < 1.5 {
                continue;
            }
            let truth = sim.surface_truth(u.time_s);
            for (k, f) in u.frames.iter().enumerate() {
                if let Some(d) = f.detection {
                    errs.push((d.round_trip_m - array.round_trip(truth, k)).abs());
                }
            }
        }
    }
    assert!(errs.len() > 100, "only {} detections", errs.len());
    let med = witrack_repro::dsp::stats::median(&errs);
    assert!(
        med < 0.27,
        "median raw TOF error {med} m (1.5 bins = 0.27 m)"
    );
}

#[test]
fn solvers_agree_at_paper_config() {
    // Closed form vs Gauss–Newton on the same (noisy) round trips.
    use witrack_repro::geom::multilateration::{solve_least_squares, GaussNewtonConfig};
    use witrack_repro::geom::TArray;
    let t = TArray::symmetric(Vec3::new(0.0, 0.0, 1.0), 1.0);
    let arr = t.antenna_array();
    for (i, p) in [
        Vec3::new(0.5, 4.0, 1.2),
        Vec3::new(-2.0, 7.0, 0.6),
        Vec3::new(2.2, 8.5, 1.6),
    ]
    .iter()
    .enumerate()
    {
        let mut rts = t.round_trips(*p);
        // Perturb by ±2 cm (a realistic TOF error at full bandwidth).
        for (j, r) in rts.iter_mut().enumerate() {
            *r += 0.02 * if (i + j) % 2 == 0 { 1.0 } else { -1.0 };
        }
        let closed = t.solve(rts).expect("solvable");
        let gn = solve_least_squares(&arr, &rts, &GaussNewtonConfig::default())
            .expect("solvable")
            .position;
        assert!(
            closed.distance(gn) < 0.05,
            "solvers disagree: {closed} vs {gn}"
        );
    }
}
