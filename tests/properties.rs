//! Property-based tests on the core invariants, spanning crates.

use proptest::prelude::*;
use witrack_repro::dsp::{fft::dft_naive, Complex, Fft};
use witrack_repro::fmcw::SweepConfig;
use witrack_repro::geom::multilateration::{solve_least_squares, GaussNewtonConfig};
use witrack_repro::geom::{Ellipsoid, Plane, TArray, Vec3};

fn in_room() -> impl Strategy<Value = Vec3> {
    (-2.5f64..2.5, 3.0f64..9.0, 0.2f64..2.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The closed-form T-array solver inverts its own forward model
    /// everywhere in the room, for any plausible geometry.
    #[test]
    fn tarray_solve_inverts_forward(
        p in in_room(),
        sep in 0.25f64..2.0,
        origin_z in 0.5f64..1.5,
    ) {
        let t = TArray::symmetric(Vec3::new(0.0, 0.0, origin_z), sep);
        let hat = t.solve(t.round_trips(p)).expect("exact inputs must solve");
        prop_assert!(hat.distance(p) < 1e-6, "{} vs {}", hat, p);
    }

    /// Gauss–Newton agrees with the closed form on exact inputs.
    #[test]
    fn gauss_newton_matches_closed_form(p in in_room(), sep in 0.3f64..2.0) {
        let t = TArray::symmetric(Vec3::new(0.0, 0.0, 1.0), sep);
        let arr = t.antenna_array();
        let rts = t.round_trips(p).to_vec();
        let gn = solve_least_squares(&arr, &rts, &GaussNewtonConfig::default())
            .expect("solvable");
        prop_assert!(gn.position.distance(p) < 1e-4);
        prop_assert!(gn.residual_rms < 1e-6);
    }

    /// Round-trip distances always define valid (non-degenerate) ellipsoids
    /// whose surface contains the reflector.
    #[test]
    fn round_trips_define_containing_ellipsoids(p in in_room(), sep in 0.25f64..2.0) {
        let t = TArray::symmetric(Vec3::new(0.0, 0.0, 1.0), sep);
        let arr = t.antenna_array();
        for k in 0..3 {
            let e = Ellipsoid::new(
                arr.tx.position,
                arr.rx[k].position,
                arr.round_trip(p, k),
            ).expect("physical round trip");
            prop_assert!(e.contains(p, 1e-9));
        }
    }

    /// A wall bounce is never shorter than the direct path — the invariant
    /// the bottom-contour tracker relies on (§4.3).
    #[test]
    fn bounce_paths_never_shorter(
        a in in_room(),
        b in in_room(),
        wall_x in 3.0f64..6.0,
    ) {
        let wall = Plane::wall_at_x(wall_x);
        if let Some(len) = wall.bounce_path_length(a, b) {
            prop_assert!(len >= a.distance(b) - 1e-9);
        }
    }

    /// FFT/inverse round trip is the identity for arbitrary signals and
    /// lengths (both radix-2 and Bluestein paths).
    #[test]
    fn fft_round_trips(
        n in 2usize..200,
        seed in 0u64..1000,
    ) {
        let data: Vec<Complex> = (0..n)
            .map(|i| {
                let x = ((i as u64 + 1) * (seed + 3)) as f64;
                Complex::new((x * 0.01).sin(), (x * 0.007).cos())
            })
            .collect();
        let mut buf = data.clone();
        let mut plan = Fft::new(n);
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (x, y) in buf.iter().zip(&data) {
            prop_assert!((*x - *y).abs() < 1e-8 * n as f64);
        }
    }

    /// Fast FFT matches the quadratic reference DFT at awkward lengths.
    #[test]
    fn fft_matches_naive(n in 2usize..64, seed in 0u64..100) {
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new(((i as u64 * 7 + seed) % 13) as f64 - 6.0, 0.0))
            .collect();
        let mut fast = data.clone();
        Fft::new(n).forward(&mut fast);
        let slow = dft_naive(&data);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-7 * n as f64);
        }
    }

    /// Beat-frequency ↔ distance mappings invert each other for any
    /// physical sweep configuration.
    #[test]
    fn sweep_mappings_invert(
        bw_ghz in 0.1f64..4.0,
        dur_ms in 0.5f64..10.0,
        dist in 0.5f64..100.0,
    ) {
        let cfg = SweepConfig {
            start_freq_hz: 5.56e9,
            bandwidth_hz: bw_ghz * 1e9,
            sweep_duration_s: dur_ms * 1e-3,
            sample_rate_hz: 1e6,
            sweeps_per_frame: 5,
            transmit_power_w: 1e-3,
        };
        let beat = cfg.beat_for_round_trip(dist);
        prop_assert!((cfg.round_trip_for_beat(beat) - dist).abs() < 1e-9 * dist);
        let bin = cfg.bin_for_round_trip(dist);
        prop_assert!((cfg.round_trip_for_bin(bin) - dist).abs() < 1e-9 * dist);
    }

    /// The empirical CDF's percentile and fraction_below are consistent
    /// inverses on random samples.
    #[test]
    fn cdf_consistency(mut xs in proptest::collection::vec(-100.0f64..100.0, 2..200)) {
        use witrack_repro::dsp::stats::EmpiricalCdf;
        xs.dedup();
        let cdf = EmpiricalCdf::new(xs);
        let n = cdf.len() as f64;
        for p in [10.0, 50.0, 90.0] {
            let v = cdf.percentile(p);
            let f = cdf.fraction_below(v);
            // Percentiles interpolate between order statistics, so the
            // empirical fraction below can undershoot by up to one sample.
            prop_assert!(f >= p / 100.0 - 1.0 / n - 0.02, "p{p}: value {v} fraction {f} n {n}");
        }
    }
}
