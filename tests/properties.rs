//! Property-based tests on the core invariants, spanning crates.

use proptest::prelude::*;
use witrack_repro::dsp::czt::Czt;
use witrack_repro::dsp::{fft::dft_naive, Complex, Fft};
use witrack_repro::fmcw::SweepConfig;
use witrack_repro::geom::multilateration::{solve_least_squares, GaussNewtonConfig};
use witrack_repro::geom::{Ellipsoid, Plane, TArray, Vec3};
use witrack_repro::mtt::{solve_assignment, solve_assignment_greedy, Assignment, CostMatrix};

fn in_room() -> impl Strategy<Value = Vec3> {
    (-2.5f64..2.5, 3.0f64..9.0, 0.2f64..2.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

/// Random small association problems: up to 4×4, each cell feasible with
/// probability ~½ and cost in [0, 100).
fn small_cost_matrix() -> impl Strategy<Value = CostMatrix> {
    (
        0usize..5,
        0usize..5,
        proptest::collection::vec((0.0f64..1.0, 0.0f64..100.0), 16..17),
    )
        .prop_map(|(rows, cols, cells)| {
            let mut m = CostMatrix::new(rows, cols);
            for i in 0..rows {
                for j in 0..cols {
                    let (gate, cost) = cells[i * cols + j];
                    if gate < 0.5 {
                        m.set(i, j, cost);
                    }
                }
            }
            m
        })
}

/// Exhaustive best matching by the solver's objective: maximum cardinality
/// first, then minimum total cost. Returns `(matches, total_cost)`.
fn brute_force_best(cost: &CostMatrix) -> (usize, f64) {
    fn rec(cost: &CostMatrix, row: usize, used: &mut Vec<bool>) -> (usize, f64) {
        if row == cost.rows() {
            return (0, 0.0);
        }
        // Leave this row unmatched...
        let mut best = rec(cost, row + 1, used);
        // ...or match it to any free feasible column.
        for col in 0..cost.cols() {
            if used[col] || !cost.is_feasible(row, col) {
                continue;
            }
            used[col] = true;
            let (m, c) = rec(cost, row + 1, used);
            used[col] = false;
            let cand = (m + 1, c + cost.get(row, col));
            if cand.0 > best.0 || (cand.0 == best.0 && cand.1 < best.1) {
                best = cand;
            }
        }
        best
    }
    rec(cost, 0, &mut vec![false; cost.cols()])
}

/// The matrix with rows and columns reversed.
fn reversed(cost: &CostMatrix) -> CostMatrix {
    let (r, c) = (cost.rows(), cost.cols());
    let mut out = CostMatrix::new(r, c);
    for i in 0..r {
        for j in 0..c {
            let x = cost.get(i, j);
            if x.is_finite() {
                out.set(r - 1 - i, c - 1 - j, x);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The closed-form T-array solver inverts its own forward model
    /// everywhere in the room, for any plausible geometry.
    #[test]
    fn tarray_solve_inverts_forward(
        p in in_room(),
        sep in 0.25f64..2.0,
        origin_z in 0.5f64..1.5,
    ) {
        let t = TArray::symmetric(Vec3::new(0.0, 0.0, origin_z), sep);
        let hat = t.solve(t.round_trips(p)).expect("exact inputs must solve");
        prop_assert!(hat.distance(p) < 1e-6, "{} vs {}", hat, p);
    }

    /// Gauss–Newton agrees with the closed form on exact inputs.
    #[test]
    fn gauss_newton_matches_closed_form(p in in_room(), sep in 0.3f64..2.0) {
        let t = TArray::symmetric(Vec3::new(0.0, 0.0, 1.0), sep);
        let arr = t.antenna_array();
        let rts = t.round_trips(p).to_vec();
        let gn = solve_least_squares(&arr, &rts, &GaussNewtonConfig::default())
            .expect("solvable");
        prop_assert!(gn.position.distance(p) < 1e-4);
        prop_assert!(gn.residual_rms < 1e-6);
    }

    /// Round-trip distances always define valid (non-degenerate) ellipsoids
    /// whose surface contains the reflector.
    #[test]
    fn round_trips_define_containing_ellipsoids(p in in_room(), sep in 0.25f64..2.0) {
        let t = TArray::symmetric(Vec3::new(0.0, 0.0, 1.0), sep);
        let arr = t.antenna_array();
        for k in 0..3 {
            let e = Ellipsoid::new(
                arr.tx.position,
                arr.rx[k].position,
                arr.round_trip(p, k),
            ).expect("physical round trip");
            prop_assert!(e.contains(p, 1e-9));
        }
    }

    /// A wall bounce is never shorter than the direct path — the invariant
    /// the bottom-contour tracker relies on (§4.3).
    #[test]
    fn bounce_paths_never_shorter(
        a in in_room(),
        b in in_room(),
        wall_x in 3.0f64..6.0,
    ) {
        let wall = Plane::wall_at_x(wall_x);
        if let Some(len) = wall.bounce_path_length(a, b) {
            prop_assert!(len >= a.distance(b) - 1e-9);
        }
    }

    /// FFT/inverse round trip is the identity for arbitrary signals and
    /// lengths (both radix-2 and Bluestein paths).
    #[test]
    fn fft_round_trips(
        n in 2usize..200,
        seed in 0u64..1000,
    ) {
        let data: Vec<Complex> = (0..n)
            .map(|i| {
                let x = ((i as u64 + 1) * (seed + 3)) as f64;
                Complex::new((x * 0.01).sin(), (x * 0.007).cos())
            })
            .collect();
        let mut buf = data.clone();
        let mut plan = Fft::new(n);
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (x, y) in buf.iter().zip(&data) {
            prop_assert!((*x - *y).abs() < 1e-8 * n as f64);
        }
    }

    /// Fast FFT matches the quadratic reference DFT at awkward lengths.
    #[test]
    fn fft_matches_naive(n in 2usize..64, seed in 0u64..100) {
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new(((i as u64 * 7 + seed) % 13) as f64 - 6.0, 0.0))
            .collect();
        let mut fast = data.clone();
        Fft::new(n).forward(&mut fast);
        let slow = dft_naive(&data);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-7 * n as f64);
        }
    }

    /// The zoomed chirp-Z transform agrees with the reference DFT over the
    /// kept band for arbitrary lengths and band widths (this sweeps both
    /// the packed two-for-one path and the direct fallback).
    #[test]
    fn czt_matches_naive_band(n in 2usize..96, keep_seed in 0u64..1000) {
        let keep = 1 + (keep_seed as usize) % n;
        let signal: Vec<f64> = (0..n)
            .map(|i| (((i as u64 + 2) * (keep_seed + 5)) as f64 * 0.013).sin())
            .collect();
        let zoom = Czt::new(n, keep).transform(&signal);
        let data: Vec<Complex> = signal.iter().map(|&x| Complex::real(x)).collect();
        let slow = dft_naive(&data);
        for (k, (a, b)) in zoom.iter().zip(&slow).enumerate() {
            prop_assert!((*a - *b).abs() < 1e-8 * n as f64, "bin {k}: {a} vs {b}");
        }
    }

    /// `Czt::transform_into` never allocates after plan creation: across
    /// repeated transforms of varying signals, the caller-owned scratch and
    /// output buffers keep their identity (base pointer) and capacity.
    #[test]
    fn czt_transform_into_never_allocates(n in 2usize..80, seed in 0u64..500) {
        let keep = 1 + (seed as usize) % n;
        let czt = Czt::new(n, keep);
        let mut scratch = czt.make_scratch();
        let mut out = vec![Complex::ZERO; keep];
        let (sp, sc) = (scratch.buf_ptr(), scratch.buf_capacity());
        let (bp, bc) = (scratch.band_ptr(), scratch.band_capacity());
        let (op, oc) = (out.as_ptr(), out.capacity());
        for round in 0..6u64 {
            let signal: Vec<f64> = (0..n)
                .map(|i| (((i as u64 + 1) * (seed + round + 3)) as f64 * 0.021).cos())
                .collect();
            czt.transform_into(&signal, &mut out, &mut scratch);
            prop_assert_eq!(scratch.buf_ptr(), sp, "scratch buffer reallocated");
            prop_assert_eq!(scratch.buf_capacity(), sc);
            prop_assert_eq!(scratch.band_ptr(), bp, "band buffer reallocated");
            prop_assert_eq!(scratch.band_capacity(), bc);
            prop_assert_eq!(out.as_ptr(), op, "output buffer reallocated");
            prop_assert_eq!(out.capacity(), oc);
            prop_assert_eq!(out.len(), keep);
        }
    }

    /// Beat-frequency ↔ distance mappings invert each other for any
    /// physical sweep configuration.
    #[test]
    fn sweep_mappings_invert(
        bw_ghz in 0.1f64..4.0,
        dur_ms in 0.5f64..10.0,
        dist in 0.5f64..100.0,
    ) {
        let cfg = SweepConfig {
            start_freq_hz: 5.56e9,
            bandwidth_hz: bw_ghz * 1e9,
            sweep_duration_s: dur_ms * 1e-3,
            sample_rate_hz: 1e6,
            sweeps_per_frame: 5,
            transmit_power_w: 1e-3,
        };
        let beat = cfg.beat_for_round_trip(dist);
        prop_assert!((cfg.round_trip_for_beat(beat) - dist).abs() < 1e-9 * dist);
        let bin = cfg.bin_for_round_trip(dist);
        prop_assert!((cfg.round_trip_for_bin(bin) - dist).abs() < 1e-9 * dist);
    }

    /// The Hungarian association solver is exactly optimal on small
    /// problems: same cardinality and total cost as exhaustive search.
    #[test]
    fn assignment_matches_brute_force(m in small_cost_matrix()) {
        let a = solve_assignment(&m);
        let (best_matches, best_cost) = brute_force_best(&m);
        prop_assert_eq!(a.matches(), best_matches);
        prop_assert!(
            (a.total_cost - best_cost).abs() < 1e-6,
            "solver cost {} vs brute force {}", a.total_cost, best_cost
        );
    }

    /// Relabeling tracks/detections (reversing rows and columns) cannot
    /// change the objective the solver achieves.
    #[test]
    fn assignment_is_permutation_invariant(m in small_cost_matrix()) {
        let a = solve_assignment(&m);
        let b = solve_assignment(&reversed(&m));
        prop_assert_eq!(a.matches(), b.matches());
        prop_assert!(
            (a.total_cost - b.total_cost).abs() < 1e-6,
            "cost {} vs reversed {}", a.total_cost, b.total_cost
        );
    }

    /// Gating is respected: only cells explicitly made feasible are ever
    /// matched, the two direction maps agree, and the reported total is the
    /// sum of the matched cells.
    #[test]
    fn assignment_respects_gates(m in small_cost_matrix()) {
        for a in [solve_assignment(&m), solve_assignment_greedy(&m)] {
            let mut total = 0.0;
            for (row, col) in a.row_to_col.iter().enumerate() {
                if let Some(col) = *col {
                    prop_assert!(m.is_feasible(row, col), "matched gated pair ({row},{col})");
                    prop_assert_eq!(a.col_to_row[col], Some(row));
                    total += m.get(row, col);
                }
            }
            let matched_cols = a.col_to_row.iter().flatten().count();
            prop_assert_eq!(matched_cols, a.matches());
            prop_assert!((total - a.total_cost).abs() < 1e-9);
        }
    }

    /// The greedy fallback never beats the exact solver (sanity that the
    /// two solve the same objective), and matches it on cardinality-1
    /// problems.
    #[test]
    fn greedy_never_beats_hungarian(m in small_cost_matrix()) {
        let h: Assignment = solve_assignment(&m);
        let g = solve_assignment_greedy(&m);
        prop_assert!(g.matches() <= h.matches());
        if g.matches() == h.matches() {
            prop_assert!(g.total_cost >= h.total_cost - 1e-9);
        }
    }

    /// The empirical CDF's percentile and fraction_below are consistent
    /// inverses on random samples.
    #[test]
    fn cdf_consistency(mut xs in proptest::collection::vec(-100.0f64..100.0, 2..200)) {
        use witrack_repro::dsp::stats::EmpiricalCdf;
        xs.dedup();
        let cdf = EmpiricalCdf::new(xs);
        let n = cdf.len() as f64;
        for p in [10.0, 50.0, 90.0] {
            let v = cdf.percentile(p);
            let f = cdf.fraction_below(v);
            // Percentiles interpolate between order statistics, so the
            // empirical fraction below can undershoot by up to one sample.
            prop_assert!(f >= p / 100.0 - 1.0 / n - 0.02, "p{p}: value {v} fraction {f} n {n}");
        }
    }
}
