//! Facade crate for the WiTrack reproduction workspace.
//!
//! Re-exports the public API of every member crate so examples and
//! integration tests (and downstream users who want everything) can depend
//! on a single crate:
//!
//! * [`geom`] — vectors, ellipsoids, antenna arrays, localization solvers.
//! * [`dsp`] — FFT, Kalman, robust regression, statistics.
//! * [`fmcw`] — FMCW sweep processing: range profiles → clean round trips.
//! * [`sim`] — the RF environment + front-end simulator (the hardware
//!   substitute; see DESIGN.md §2).
//! * [`core`] — the WiTrack pipeline, fall detection, pointing estimation.
//! * [`mtt`] — the multi-target extension: top-K contours, Hungarian
//!   data association, per-track Kalman smoothing, track lifecycle.
//! * [`baselines`] — radio tomographic imaging and strongest-return
//!   tracking, the systems WiTrack is compared against.
//! * [`serve`] — the sharded multi-sensor streaming engine: many sensor
//!   deployments multiplexed over worker shards on one host, with a
//!   length-prefixed binary wire protocol.
//! * [`fuse`] — cross-sensor track fusion: SE(3) sensor registration,
//!   the world-model fusion engine (one coherent track set across
//!   overlapping sensors), and fleet events (occupancy, falls,
//!   handoffs) served through `serve`'s room subscriptions.
//! * [`obs`] — lock-free telemetry: log-bucketed latency histograms, the
//!   labeled metric registry behind the engine's stats, and the flight
//!   recorder of recent anomalies.
//!
//! # Quickstart
//!
//! ```
//! use witrack_repro::core::{WiTrack, WiTrackConfig};
//! use witrack_repro::fmcw::SweepConfig;
//!
//! // A reduced sweep keeps this doc test fast; the default config is the
//! // paper's 5.56–7.25 GHz prototype.
//! let sweep = SweepConfig {
//!     start_freq_hz: 5.56e8,
//!     bandwidth_hz: 1.69e8,
//!     sweep_duration_s: 1e-3,
//!     sample_rate_hz: 100e3,
//!     sweeps_per_frame: 5,
//!     transmit_power_w: 1e-3,
//! };
//! let cfg = WiTrackConfig { sweep, ..WiTrackConfig::witrack_default() };
//! let mut witrack = WiTrack::new(cfg).unwrap();
//! // Feed one baseband sweep per receive antenna per sweep interval:
//! let silent = vec![0.0; sweep.samples_per_sweep()];
//! for _ in 0..sweep.sweeps_per_frame {
//!     let update = witrack.push_sweeps(&[&silent, &silent, &silent]);
//!     if let Some(u) = update {
//!         assert!(u.position.is_none()); // nothing moving yet
//!     }
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use witrack_baselines as baselines;
pub use witrack_core as core;
pub use witrack_dsp as dsp;
pub use witrack_fmcw as fmcw;
pub use witrack_fuse as fuse;
pub use witrack_geom as geom;
pub use witrack_mtt as mtt;
pub use witrack_obs as obs;
pub use witrack_serve as serve;
pub use witrack_sim as sim;

/// Helpers shared by the runnable examples.
pub mod demo {
    use witrack_fmcw::SweepConfig;

    /// A 10×-reduced sweep (169 MHz bandwidth, 100 kS/s) that runs fast
    /// even in debug builds. Range bins are 1.77 m instead of 17.7 cm, so
    /// accuracy is smoke-test-grade only; the examples default to the real
    /// prototype configuration and accept `--quick` to select this one.
    pub fn reduced_sweep() -> SweepConfig {
        SweepConfig {
            start_freq_hz: 5.56e8,
            bandwidth_hz: 1.69e8,
            sweep_duration_s: 1e-3,
            sample_rate_hz: 100e3,
            sweeps_per_frame: 5,
            transmit_power_w: 1e-3,
        }
    }

    /// A 4×-finer variant of [`reduced_sweep`] (676 MHz bandwidth, 250 kS/s;
    /// 0.44 m round-trip bins): [`SweepConfig::witrack_mid`]. Fine enough to
    /// resolve elevation changes and to separate two people, while staying
    /// ~10× cheaper than the paper configuration — the sweet spot for
    /// integration tests that need real resolution in debug builds.
    pub fn mid_sweep() -> SweepConfig {
        SweepConfig::witrack_mid()
    }

    /// Picks the sweep configuration from the process arguments: the paper's
    /// 5.56–7.25 GHz prototype sweep by default, the reduced smoke-test
    /// sweep with `--quick`.
    pub fn sweep_from_args() -> SweepConfig {
        if std::env::args().any(|a| a == "--quick") {
            reduced_sweep()
        } else {
            SweepConfig::witrack()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn reduced_sweep_is_valid_and_fast() {
            let s = reduced_sweep();
            s.validate().unwrap();
            assert_eq!(s.samples_per_sweep(), 100);
            // Same frame cadence structure as the paper config.
            assert_eq!(s.sweeps_per_frame, SweepConfig::witrack().sweeps_per_frame);
        }

        #[test]
        fn mid_sweep_is_valid_and_finer() {
            let s = mid_sweep();
            s.validate().unwrap();
            assert_eq!(s.samples_per_sweep(), 250);
            assert!(
                s.round_trip_per_bin() < 0.5,
                "bin {}",
                s.round_trip_per_bin()
            );
        }
    }
}
