//! CI coverage for the scalar fallback: pins the scalar kernel path for
//! this whole process (own test binary on purpose — the pin is
//! process-wide and must win before any transform work), then proves the
//! pipeline math still holds without SIMD. A host without AVX2/FMA runs
//! every other suite on this path anyway; this test makes that coverage
//! unconditional on vector-capable CI machines too.

use witrack_dsp::{simd, Complex, Czt, Fft};

fn dft_naive(data: &[Complex]) -> Vec<Complex> {
    let n = data.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &x) in data.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc += x * Complex::cis(ang);
            }
            acc
        })
        .collect()
}

#[test]
fn forced_scalar_path_runs_the_whole_transform_stack() {
    assert!(
        simd::force_scalar(),
        "the pin must win: no kernel may run before this test forces scalar"
    );
    assert_eq!(simd::active(), simd::KernelPath::Scalar);
    assert_eq!(simd::active().lanes(), 1);

    // Radix-2 path (the noperm DIF/DIT convolution ladders included, via
    // Bluestein's inner convolution at the non-power-of-two length).
    for n in [16usize, 250] {
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let mut fast = data.clone();
        Fft::new(n).forward(&mut fast);
        let naive = dft_naive(&data);
        for (i, (a, b)) in fast.iter().zip(&naive).enumerate() {
            assert!(
                (*a - *b).abs() <= 1e-9 * n as f64,
                "n={n} bin {i}: {a} vs {b}"
            );
        }
    }

    // Zoomed CZT band, float and quantized inputs, on the scalar path.
    let n = 500;
    let bins = 40;
    let czt = Czt::new(n, bins);
    let mut scratch = czt.make_scratch();
    let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin()).collect();
    let mut band = vec![Complex::ZERO; bins];
    czt.transform_into(&signal, &mut band, &mut scratch);

    let scale = 1.0 / 4096.0;
    let q: Vec<i32> = signal.iter().map(|&s| (s / scale).round() as i32).collect();
    let mut band_q = vec![Complex::ZERO; bins];
    czt.transform_q_into(&q, scale, &mut band_q, &mut scratch);

    let full: Vec<Complex> = dft_naive(
        &signal
            .iter()
            .map(|&s| Complex::new(s, 0.0))
            .collect::<Vec<_>>(),
    );
    for (k, b) in band.iter().enumerate() {
        assert!(
            (*b - full[k]).abs() <= 1e-9 * n as f64,
            "float band bin {k}: {b} vs {}",
            full[k]
        );
        // The quantized path carries the input rounding error (≤ scale/2
        // per sample, n samples), not kernel error.
        assert!(
            (band_q[k] - full[k]).abs() <= 0.5 * scale * n as f64,
            "quantized band bin {k}: {} vs {}",
            band_q[k],
            full[k]
        );
    }
}
