//! Property tests over the SIMD kernel dispatch layer: for random
//! lengths (odd sizes force every tail path), random data, and random
//! non-power-of-two block batches, the dispatched kernels must agree
//! with the scalar references — floats to 1e-9, fixed-point bit-exactly
//! plus the analytic half-step rounding bound of the Q15 multiply.

use proptest::prelude::*;
use witrack_dsp::simd::{self, scalar};
use witrack_dsp::Complex;

fn complexes(n: usize) -> impl Strategy<Value = Vec<Complex>> {
    proptest::collection::vec(
        (-1.0f64..1.0, -1.0f64..1.0).prop_map(|(re, im)| Complex::new(re, im)),
        n..n + 1,
    )
}

fn reals(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0f64..1.0, n..n + 1)
}

fn conj_flag() -> impl Strategy<Value = bool> {
    (0u32..2).prop_map(|b| b == 1)
}

fn close(a: &[Complex], b: &[Complex]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((*x - *y).abs() <= 1e-9, "element {i}: {x} vs {y}");
    }
}

/// Unit-circle twiddles for a stage of half-length `h`.
fn twiddles(h: usize) -> Vec<Complex> {
    (0..h)
        .map(|k| Complex::cis(-std::f64::consts::PI * k as f64 / h as f64))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pointwise_mul_matches_scalar(
        (extra, data, kernel, conj) in (0usize..3, complexes(97), complexes(97), conj_flag())
    ) {
        // Sub-slicing by a random amount yields odd lengths and tails.
        let n = 97 - 4 * extra - 1;
        let mut a = data[..n].to_vec();
        let mut r = a.clone();
        simd::pointwise_mul(&mut a, &kernel[..n], conj);
        scalar::pointwise_mul(&mut r, &kernel[..n], conj);
        close(&a, &r);

        let mut out_a = vec![Complex::ZERO; n];
        let mut out_r = vec![Complex::ZERO; n];
        simd::pointwise_mul_into(&mut out_a, &data[..n], &kernel[..n], conj);
        scalar::pointwise_mul_into(&mut out_r, &data[..n], &kernel[..n], conj);
        close(&out_a, &out_r);
    }

    #[test]
    fn premul_kernels_match_scalar(
        (extra, signal, pre) in (0usize..3, reals(194), complexes(97))
    ) {
        let n = 97 - 4 * extra - 1;
        let mut a = vec![Complex::ZERO; n];
        let mut r = a.clone();
        simd::pack_premul(&mut a, &signal[..2 * n], &pre[..n]);
        scalar::pack_premul(&mut r, &signal[..2 * n], &pre[..n]);
        close(&a, &r);

        let mut a = vec![Complex::ZERO; n];
        let mut r = a.clone();
        simd::scale_premul(&mut a, &signal[..n], &pre[..n]);
        scalar::scale_premul(&mut r, &signal[..n], &pre[..n]);
        close(&a, &r);
    }

    #[test]
    fn window_scale_matches_scalar(
        (extra, src, win, scale) in (0usize..3, reals(101), reals(101), -2.0f64..2.0)
    ) {
        let n = 101 - 4 * extra - 2;
        let mut d_a = vec![0.0; n];
        let mut d_r = vec![0.0; n];
        simd::window_scale(&mut d_a, &src[..n], &win[..n], scale);
        scalar::window_scale(&mut d_r, &src[..n], &win[..n], scale);
        for (i, (x, y)) in d_a.iter().zip(&d_r).enumerate() {
            prop_assert!((x - y).abs() <= 1e-9, "element {}: {} vs {}", i, x, y);
        }
    }

    #[test]
    fn stage_kernels_match_scalar_for_random_batches(
        (hp, blocks, data, conj) in (0u32..7, 1usize..6, complexes(64 * 2 * 5), conj_flag())
    ) {
        // half ∈ {1..64}, block count not a power of two in general.
        let half = 1usize << hp;
        let n = 2 * half * blocks;
        let tw = twiddles(half);

        let mut a = data[..n].to_vec();
        let mut r = a.clone();
        simd::fft_stage(&mut a, half, &tw, conj);
        scalar::fft_stage(&mut r, half, &tw, conj);
        close(&a, &r);

        let mut a = data[..n].to_vec();
        let mut r = a.clone();
        simd::fft_stage_dif(&mut a, half, &tw, conj);
        scalar::fft_stage_dif(&mut r, half, &tw, conj);
        close(&a, &r);
    }

    #[test]
    fn fused_stage_pairs_match_their_composition(
        (hp, blocks, data, conj) in (1u32..6, 1usize..6, complexes(32 * 4 * 5), conj_flag())
    ) {
        let h = 1usize << hp; // 2..32 — the fused kernels require h ≥ 2
        let n = 4 * h * blocks;
        let tw1 = twiddles(h);
        let tw2 = twiddles(2 * h);

        let mut a = data[..n].to_vec();
        let mut r = data[..n].to_vec();
        simd::fft_two_stages(&mut a, h, &tw1, &tw2, conj);
        scalar::fft_stage(&mut r, h, &tw1, conj);
        scalar::fft_stage(&mut r, 2 * h, &tw2, conj);
        close(&a, &r);

        let mut a = data[..n].to_vec();
        let mut r = data[..n].to_vec();
        simd::fft_two_stages_dif(&mut a, h, &tw1, &tw2, conj);
        scalar::fft_stage_dif(&mut r, 2 * h, &tw2, conj);
        scalar::fft_stage_dif(&mut r, h, &tw1, conj);
        close(&a, &r);
    }

    #[test]
    fn quantized_kernels_are_bit_exact_and_half_step_bounded(
        (extra, samples, win, sweeps) in (
            0usize..3,
            proptest::collection::vec(-32768i32..32768, 103..104),
            proptest::collection::vec(0i32..32768, 103..104),
            1usize..6,
        )
    ) {
        let n = 103 - 4 * extra - 1;
        let samples: Vec<i16> = samples[..n].iter().map(|&s| s as i16).collect();
        let win: Vec<i16> = win[..n].iter().map(|&w| w as i16).collect();

        // Bit-exact across dispatch paths, accumulated over several sweeps.
        let mut acc_a = vec![0i32; n];
        let mut acc_r = vec![0i32; n];
        for _ in 0..sweeps {
            simd::window_accum_q(&mut acc_a, &samples, &win);
            scalar::window_accum_q(&mut acc_r, &samples, &win);
        }
        prop_assert_eq!(&acc_a, &acc_r);

        // Half-step bound: mulhrs rounds (s·w)/2^15 to nearest, so each
        // accumulated term sits within 0.5 of the exact product and the
        // sweep sum within 0.5·sweeps.
        for (i, &q) in acc_a.iter().enumerate() {
            let exact = sweeps as f64 * (samples[i] as f64 * win[i] as f64) / 32768.0;
            prop_assert!(
                (q as f64 - exact).abs() <= 0.5 * sweeps as f64 + 1e-9,
                "element {}: accumulated {} vs exact {}",
                i, q, exact
            );
        }

        // Late dequantize: the fused q-input premuls must equal running
        // the float premuls on the dequantized accumulator.
        let pre: Vec<Complex> = (0..n)
            .map(|k| Complex::cis(0.37 * k as f64) * 0.9)
            .collect();
        let scale = 1.0 / (32767.0 * sweeps as f64);
        let deq: Vec<f64> = acc_a.iter().map(|&q| q as f64 * scale).collect();

        let m = n / 2;
        let mut a = vec![Complex::ZERO; m];
        let mut r = vec![Complex::ZERO; m];
        simd::pack_premul_q(&mut a, &acc_a, scale, &pre[..m]);
        scalar::pack_premul(&mut r, &deq, &pre[..m]);
        close(&a, &r);

        let mut a = vec![Complex::ZERO; n];
        let mut r = vec![Complex::ZERO; n];
        simd::scale_premul_q(&mut a, &acc_a, scale, &pre);
        scalar::scale_premul(&mut r, &deq, &pre);
        close(&a, &r);
    }
}
