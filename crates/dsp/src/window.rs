//! Window functions (tapers) for spectral analysis.
//!
//! The FMCW range profile is an FFT over one sweep; windowing trades main-lobe
//! width (range resolution) against side-lobe level (leakage from the strong
//! static "flash" reflectors into neighboring range bins, paper §4.2). The
//! pipeline defaults to a Hann window, which keeps leakage from wall
//! reflections from masking the much weaker body reflection in nearby bins.

use std::f64::consts::PI;

/// Supported window shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowKind {
    /// No taper (all ones).
    Rectangular,
    /// Hann (raised cosine): −31 dB first side lobe.
    Hann,
    /// Hamming: −43 dB first side lobe, wider main lobe.
    Hamming,
    /// Blackman: −58 dB first side lobe, widest main lobe of the set.
    Blackman,
}

impl WindowKind {
    /// Sample `i` of an `n`-point window.
    pub fn sample(self, i: usize, n: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        let x = 2.0 * PI * i as f64 / (n - 1) as f64;
        match self {
            WindowKind::Rectangular => 1.0,
            WindowKind::Hann => 0.5 * (1.0 - x.cos()),
            WindowKind::Hamming => 0.54 - 0.46 * x.cos(),
            WindowKind::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
        }
    }

    /// Generates the full window.
    pub fn generate(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.sample(i, n)).collect()
    }

    /// The process-shared table for this window at length `n`. Window
    /// tables are pure functions of `(kind, n)`, so every pipeline on a
    /// host reads one copy (20 KiB per antenna per sensor at the paper
    /// configuration otherwise). Callers needing a scaled window fold
    /// their scale into the multiply instead of into the table.
    pub fn shared(self, n: usize) -> std::sync::Arc<Vec<f64>> {
        static SHARED: std::sync::OnceLock<
            crate::plan_cache::PlanCache<(WindowKind, usize), Vec<f64>>,
        > = std::sync::OnceLock::new();
        SHARED
            .get_or_init(crate::plan_cache::PlanCache::new)
            .get_or_build((self, n), || self.generate(n))
    }

    /// Coherent gain (mean of the window): the factor by which a windowed
    /// tone's FFT peak is scaled relative to a rectangular window.
    pub fn coherent_gain(self, n: usize) -> f64 {
        self.generate(n).iter().sum::<f64>() / n as f64
    }

    /// The process-shared **Q15 fixed-point** table for this window at
    /// length `n`: `round(w · 32767)` per coefficient, for the integer
    /// front half of the pipeline (`simd::window_accum_q` multiplies i16
    /// wire samples by these with the Q15 rounding multiply). Every
    /// supported window is non-negative, so coefficients fit `0..=32767`
    /// and the `mulhrs` overflow corner (`−32768 · −32768`) can't occur.
    ///
    /// Encoding at 32767 (not 32768) keeps the peak representable; the
    /// uniform `32768/32767` gain this loses is [`Q15_GAIN`], which
    /// callers fold into their final dequantization scale.
    pub fn shared_q15(self, n: usize) -> std::sync::Arc<Vec<i16>> {
        static SHARED: std::sync::OnceLock<
            crate::plan_cache::PlanCache<(WindowKind, usize), Vec<i16>>,
        > = std::sync::OnceLock::new();
        SHARED
            .get_or_init(crate::plan_cache::PlanCache::new)
            .get_or_build((self, n), || {
                (0..n)
                    .map(|i| (self.sample(i, n) * 32767.0).round() as i16)
                    .collect()
            })
    }
}

/// Uniform gain correction for the Q15 window tables: a coefficient
/// stored as `round(w·32767)` but multiplied through `mulhrs`'s `/32768`
/// understates the window by this factor. Fold it into the final
/// dequantization scale.
pub const Q15_GAIN: f64 = 32768.0 / 32767.0;

/// Multiplies a signal by a window in place.
///
/// # Panics
/// Panics if lengths differ.
pub fn apply(signal: &mut [f64], window: &[f64]) {
    assert_eq!(signal.len(), window.len(), "window length mismatch");
    for (s, w) in signal.iter_mut().zip(window) {
        *s *= w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_symmetric() {
        for kind in [WindowKind::Hann, WindowKind::Hamming, WindowKind::Blackman] {
            let w = kind.generate(101);
            for i in 0..101 {
                assert!(
                    (w[i] - w[100 - i]).abs() < 1e-12,
                    "{kind:?} asymmetric at {i}"
                );
            }
        }
    }

    #[test]
    fn hann_peaks_at_one_and_ends_at_zero() {
        let w = WindowKind::Hann.generate(101);
        assert!((w[50] - 1.0).abs() < 1e-12);
        assert!(w[0].abs() < 1e-12);
        assert!(w[100].abs() < 1e-12);
    }

    #[test]
    fn rectangular_is_all_ones() {
        assert!(WindowKind::Rectangular
            .generate(17)
            .iter()
            .all(|&x| x == 1.0));
        assert!((WindowKind::Rectangular.coherent_gain(17) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coherent_gains_match_textbook() {
        // Hann: 0.5, Hamming: 0.54, Blackman: 0.42 (asymptotic).
        assert!((WindowKind::Hann.coherent_gain(4096) - 0.5).abs() < 1e-3);
        assert!((WindowKind::Hamming.coherent_gain(4096) - 0.54).abs() < 1e-3);
        assert!((WindowKind::Blackman.coherent_gain(4096) - 0.42).abs() < 1e-3);
    }

    #[test]
    fn apply_multiplies_in_place() {
        let mut s = vec![2.0; 8];
        let w = WindowKind::Hann.generate(8);
        apply(&mut s, &w);
        for i in 0..8 {
            assert!((s[i] - 2.0 * w[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn shared_windows_deduplicate_by_shape() {
        let a = WindowKind::Hann.shared(64);
        let b = WindowKind::Hann.shared(64);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert_eq!(*a, WindowKind::Hann.generate(64));
        assert!(!std::sync::Arc::ptr_eq(&a, &WindowKind::Hamming.shared(64)));
    }

    #[test]
    fn degenerate_lengths() {
        assert_eq!(WindowKind::Hann.generate(1), vec![1.0]);
        assert!(WindowKind::Blackman.generate(0).is_empty());
    }

    #[test]
    #[should_panic]
    fn apply_length_mismatch_panics() {
        let mut s = vec![1.0; 4];
        apply(&mut s, &[1.0; 5]);
    }
}
