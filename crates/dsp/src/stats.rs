//! Order statistics, dispersion measures, and empirical CDFs.
//!
//! The paper's evaluation reports medians, 90th percentiles, and CDFs of the
//! localization error (Figs. 8–11); the contour tracker needs robust scale
//! (median/MAD) for its noise floor; the gesture detector thresholds on
//! spectral variance (§6.1). This module is the shared home for all of it.

/// Median of a slice, reordering it in place. Returns NaN for empty input.
///
/// Selection-based (`select_nth_unstable`), so O(n) rather than the
/// O(n log n) full sort [`percentile_in_place`] pays — the contour
/// tracker's noise floor takes two medians per antenna per frame, and on
/// the serving hot path the sort was the single most expensive part of
/// the detect stage. NaNs are excluded from the statistic exactly as in
/// [`percentile_in_place`], and the even-length interpolation uses the
/// same expression, so the result is bit-identical to the sort-based
/// percentile at p = 50.
pub fn median_in_place(xs: &mut [f64]) -> f64 {
    let mut n = xs.len();
    let mut i = 0;
    while i < n {
        if xs[i].is_nan() {
            n -= 1;
            xs.swap(i, n);
        } else {
            i += 1;
        }
    }
    if n == 0 {
        return f64::NAN;
    }
    let xs = &mut xs[..n];
    if n == 1 {
        return xs[0];
    }
    // rank = 0.5 · (n − 1): hi is the order statistic selection pins,
    // lo = hi for odd n (frac 0), hi − 1 for even n (frac 0.5).
    let hi = n / 2;
    let (left, hi_v, _) = xs.select_nth_unstable_by(hi, |a, b| a.total_cmp(b));
    let hi_v = *hi_v;
    if n % 2 == 1 {
        return hi_v;
    }
    let lo_v = left.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    lo_v + (hi_v - lo_v) * 0.5
}

/// Median without mutating the input (allocates a copy).
pub fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    median_in_place(&mut v)
}

/// Percentile `p` in `[0, 100]` with linear interpolation between order
/// statistics, reordering the slice in place. NaN for empty input.
///
/// NaNs in the input (corrupt samples upstream) are shuffled to the tail
/// and excluded from the statistic — a garbage value degrades the
/// estimate, it must never panic the caller's thread.
pub fn percentile_in_place(xs: &mut [f64], p: f64) -> f64 {
    let mut n = xs.len();
    let mut i = 0;
    while i < n {
        if xs[i].is_nan() {
            n -= 1;
            xs.swap(i, n);
        } else {
            i += 1;
        }
    }
    if n == 0 {
        return f64::NAN;
    }
    let xs = &mut xs[..n];
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaNs partitioned out"));
    sorted_percentile(xs, p)
}

/// Percentile of an already-sorted slice (linear interpolation).
pub fn sorted_percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Percentile without mutating the input (allocates a copy).
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut v = xs.to_vec();
    percentile_in_place(&mut v, p)
}

/// Arithmetic mean. NaN for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance. NaN for empty input.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median absolute deviation (unscaled). Multiply by 1.4826 for a Gaussian-
/// consistent σ estimate.
pub fn mad(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let med = median(xs);
    let mut dev: Vec<f64> = xs.iter().map(|&x| (x - med).abs()).collect();
    median_in_place(&mut dev)
}

/// An empirical CDF over a sample, ready to print as figure series.
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds the CDF from a sample (NaNs are dropped).
    pub fn new(mut xs: Vec<f64>) -> EmpiricalCdf {
        xs.retain(|x| !x.is_nan());
        xs.sort_by(|a, b| a.partial_cmp(b).expect("NaNs removed"));
        EmpiricalCdf { sorted: xs }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `≤ x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Value at percentile `p` in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        sorted_percentile(&self.sorted, p)
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Evenly-spaced `(value, fraction)` points for plotting, `n ≥ 2` points.
    pub fn plot_points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n < 2 {
            return Vec::new();
        }
        (0..n)
            .map(|i| {
                let p = 100.0 * i as f64 / (n - 1) as f64;
                (self.percentile(p), p / 100.0)
            })
            .collect()
    }

    /// The raw sorted sample.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }
}

/// Running mean/variance accumulator (Welford), for streaming statistics in
/// the real-time pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance (NaN when empty).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 50.0);
        assert_eq!(percentile(&xs, 50.0), 30.0);
        assert_eq!(percentile(&xs, 25.0), 20.0);
        assert!((percentile(&xs, 90.0) - 46.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_excludes_nans_instead_of_panicking() {
        // Corrupt samples upstream can reach the order statistics as
        // NaN; they must degrade the estimate, never panic the thread.
        let mut xs = [f64::NAN, 3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(percentile_in_place(&mut xs, 50.0), 2.0);
        assert_eq!(median(&[f64::NAN, 7.0]), 7.0);
        assert!(median(&[f64::NAN, f64::NAN]).is_nan());
    }

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mad_is_robust_to_one_outlier() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut with_outlier = xs.to_vec();
        with_outlier.push(1000.0);
        assert!((mad(&xs) - 1.0).abs() < 1e-12);
        assert!(mad(&with_outlier) < 3.0);
    }

    #[test]
    fn cdf_fraction_and_percentiles_agree() {
        let cdf = EmpiricalCdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(cdf.len(), 100);
        assert!((cdf.fraction_below(50.0) - 0.5).abs() < 0.01);
        assert!((cdf.median() - 50.5).abs() < 0.01);
        assert!((cdf.percentile(90.0) - 90.1).abs() < 0.01);
        assert_eq!(cdf.fraction_below(0.0), 0.0);
        assert_eq!(cdf.fraction_below(1000.0), 1.0);
    }

    #[test]
    fn cdf_drops_nans_and_plots() {
        let cdf = EmpiricalCdf::new(vec![3.0, f64::NAN, 1.0, 2.0]);
        assert_eq!(cdf.len(), 3);
        let pts = cdf.plot_points(5);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], (1.0, 0.0));
        assert_eq!(pts[4], (3.0, 1.0));
        // Monotone in both coordinates.
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn welford_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - mean(&xs)).abs() < 1e-12);
        assert!((w.variance() - variance(&xs)).abs() < 1e-12);
    }

    #[test]
    fn empty_welford_is_nan() {
        let w = Welford::new();
        assert!(w.mean().is_nan());
        assert!(w.variance().is_nan());
    }
}
