//! Fast Fourier transforms at any length.
//!
//! The FMCW receiver "takes an FFT of the received signal in baseband over
//! every sweep period" (paper §4.1, §7). A sweep is 2.5 ms sampled at
//! 1 MS/s = **2500 samples** — not a power of two. Zero-padding to 4096
//! would change the bin spacing away from the paper's 1/T_sweep = 400 Hz
//! (and thus away from the C/2B = 8.87 cm range bins of Eq. 3), so this
//! module implements:
//!
//! * an iterative, in-place **radix-2** Cooley–Tukey FFT for power-of-two
//!   lengths, and
//! * **Bluestein's chirp-Z algorithm** for everything else, which rewrites an
//!   arbitrary-length DFT as a circular convolution evaluated with the
//!   radix-2 core.
//!
//! A [`Fft`] value is a *plan*: twiddles, bit-reversal tables, and (for
//! Bluestein) the pre-transformed chirp are all precomputed so per-sweep work
//! is allocation-free after plan creation.

use crate::complex::Complex;
use std::f64::consts::PI;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Direction {
    Forward,
    Inverse,
}

/// A reusable FFT plan for a fixed length `n ≥ 1`.
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    kind: PlanKind,
}

#[derive(Debug, Clone)]
enum PlanKind {
    /// `n` is a power of two: direct radix-2.
    Radix2(Radix2Plan),
    /// Arbitrary `n`: Bluestein on top of a radix-2 plan of length `m`.
    Bluestein(Box<BluesteinPlan>),
}

#[derive(Debug, Clone)]
pub(crate) struct Radix2Plan {
    /// Per-stage contiguous twiddle tables, concatenated: the stage with
    /// half-length `h` (`h = 1, 2, 4, …, n/2`) owns `stage_tw[h−1..2h−1]`,
    /// holding `e^{-2πik/2h}` for `k < h` (forward direction). Laying the
    /// stage's twiddles out contiguously — instead of striding through one
    /// length-`n/2` table — lets the butterfly kernel stream them with
    /// vector loads. Total size `n − 1`.
    stage_tw: Vec<Complex>,
    /// Bit-reversal permutation.
    bitrev: Vec<u32>,
}

/// Bluestein is the full-band (`bins = n`, `k0 = 0`) special case of the
/// chirp-Z machinery in [`crate::czt`]; the chirp tables, kernel layout,
/// and convolution all live there. The core is immutable and
/// process-shared by length (every `Fft` of the same non-power-of-two
/// length reuses one set of chirp/kernel tables); only the scratch buffer
/// is per-instance.
#[derive(Debug, Clone)]
struct BluesteinPlan {
    core: std::sync::Arc<crate::czt::CztCore>,
    /// Scratch buffer reused across calls (cloned plans get their own).
    scratch: Vec<Complex>,
}

/// Process-wide registry of shared full-band Bluestein cores, by length.
static SHARED_CORES: std::sync::OnceLock<crate::plan_cache::PlanCache<usize, crate::czt::CztCore>> =
    std::sync::OnceLock::new();

impl Radix2Plan {
    pub(crate) fn new(n: usize) -> Radix2Plan {
        debug_assert!(n.is_power_of_two());
        let mut stage_tw = Vec::with_capacity(n.saturating_sub(1));
        let mut half = 1;
        while half < n {
            let len = 2 * half;
            stage_tw.extend((0..half).map(|k| Complex::cis(-2.0 * PI * k as f64 / len as f64)));
            half *= 2;
        }
        let bits = n.trailing_zeros();
        let bitrev = (0..n as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        Radix2Plan { stage_tw, bitrev }
    }

    /// In-place transform. `dir` selects conjugated twiddles for the inverse;
    /// the caller applies 1/n scaling for inverse transforms.
    pub(crate) fn transform(&self, data: &mut [Complex], dir: Direction) {
        let n = data.len();
        debug_assert_eq!(n, self.bitrev.len());
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.bitrev[i] as usize;
            if j > i {
                data.swap(i, j);
            }
        }
        // Butterflies: each stage reads its own contiguous twiddle table
        // and hands the whole rank to the vectorized kernel in one call —
        // the per-block loop runs inside the selected path, so the narrow
        // early ranks (1024 one-butterfly blocks at `half == 1` for
        // n = 2048) don't pay a dispatch per block.
        self.dit_ladder(data, dir == Direction::Inverse);
    }

    /// Forward decimation-in-frequency transform with **no** bit-reversal
    /// pass: natural-order input, bit-reversed-order spectrum. Paired with
    /// [`Self::inverse_noperm`] around an order-agnostic pointwise multiply,
    /// both permutations cancel — the convolution path uses exactly that.
    pub(crate) fn forward_noperm(&self, data: &mut [Complex]) {
        debug_assert_eq!(data.len(), self.bitrev.len());
        self.dif_ladder(data, false);
    }

    /// Inverse decimation-in-time transform consuming **bit-reversed**
    /// input (as produced by [`Self::forward_noperm`]) and yielding
    /// natural-order output. No 1/n scaling — the caller folds it in.
    pub(crate) fn inverse_noperm(&self, data: &mut [Complex]) {
        debug_assert_eq!(data.len(), self.bitrev.len());
        self.dit_ladder(data, true);
    }

    /// Narrow-to-wide butterfly ranks with adjacent ranks fused two to a
    /// memory pass (radix-2²): rank 1 runs alone through the specialized
    /// add/sub kernel, then `(2,4), (8,16), …` pairs, then at most one
    /// leftover widest rank.
    fn dit_ladder(&self, data: &mut [Complex], conj: bool) {
        let n = data.len();
        if n < 2 {
            return;
        }
        crate::simd::fft_stage(data, 1, &self.stage_tw[0..1], conj);
        let mut half = 2;
        while 4 * half <= n {
            let tw1 = &self.stage_tw[half - 1..2 * half - 1];
            let tw2 = &self.stage_tw[2 * half - 1..4 * half - 1];
            crate::simd::fft_two_stages(data, half, tw1, tw2, conj);
            half *= 4;
        }
        if 2 * half <= n {
            let tw = &self.stage_tw[half - 1..2 * half - 1];
            crate::simd::fft_stage(data, half, tw, conj);
        }
    }

    /// Wide-to-narrow DIF ranks, fused pairwise like [`Self::dit_ladder`]:
    /// `(n/2, n/4), …` down to a possible lone rank 2, with rank 1 always
    /// last through the specialized add/sub kernel.
    fn dif_ladder(&self, data: &mut [Complex], conj: bool) {
        let n = data.len();
        if n < 2 {
            return;
        }
        let mut half = n / 2;
        while half >= 4 {
            let tw1 = &self.stage_tw[half / 2 - 1..half - 1];
            let tw2 = &self.stage_tw[half - 1..2 * half - 1];
            crate::simd::fft_two_stages_dif(data, half / 2, tw1, tw2, conj);
            half /= 4;
        }
        if half == 2 {
            crate::simd::fft_stage_dif(data, 2, &self.stage_tw[1..3], conj);
        }
        crate::simd::fft_stage_dif(data, 1, &self.stage_tw[0..1], conj);
    }
}

impl BluesteinPlan {
    fn new(n: usize) -> BluesteinPlan {
        let core = SHARED_CORES
            .get_or_init(crate::plan_cache::PlanCache::new)
            .get_or_build(n, || crate::czt::CztCore::new(n, n, n, 0));
        let scratch = vec![Complex::ZERO; core.inner_len()];
        BluesteinPlan { core, scratch }
    }

    fn transform(&mut self, data: &mut [Complex], dir: Direction) {
        self.core.transform_in_place(data, &mut self.scratch, dir);
    }
}

impl Fft {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Fft {
        assert!(n > 0, "FFT length must be positive");
        let kind = if n.is_power_of_two() {
            PlanKind::Radix2(Radix2Plan::new(n))
        } else {
            PlanKind::Bluestein(Box::new(BluesteinPlan::new(n)))
        };
        Fft { n, kind }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the plan length is zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward DFT: `X[k] = Σ_n x[n] e^{-2πikn/N}`.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan length.
    pub fn forward(&mut self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length must match plan");
        match &mut self.kind {
            PlanKind::Radix2(p) => p.transform(data, Direction::Forward),
            PlanKind::Bluestein(p) => p.transform(data, Direction::Forward),
        }
    }

    /// In-place inverse DFT (with 1/N normalization), the exact inverse of
    /// [`Fft::forward`].
    pub fn inverse(&mut self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length must match plan");
        match &mut self.kind {
            PlanKind::Radix2(p) => p.transform(data, Direction::Inverse),
            PlanKind::Bluestein(p) => p.transform(data, Direction::Inverse),
        }
        let inv = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv);
        }
    }

    /// Forward DFT of `input` written into `out` (the in-place equivalent of
    /// [`Fft::forward`] for callers that must keep the input intact). Never
    /// allocates after plan creation.
    ///
    /// # Panics
    /// Panics if either slice length differs from the plan length.
    pub fn forward_into(&mut self, input: &[Complex], out: &mut [Complex]) {
        assert_eq!(input.len(), self.n, "input length must match plan");
        assert_eq!(out.len(), self.n, "output length must match plan");
        out.copy_from_slice(input);
        self.forward(out);
    }

    /// Forward DFT of a real signal written into caller-owned `out`. This is
    /// the allocation-free form of [`Fft::forward_real`]: after plan
    /// creation, repeated calls never touch the heap.
    ///
    /// # Panics
    /// Panics if either slice length differs from the plan length.
    pub fn forward_real_into(&mut self, signal: &[f64], out: &mut [Complex]) {
        assert_eq!(signal.len(), self.n, "signal length must match plan");
        assert_eq!(out.len(), self.n, "output length must match plan");
        for (o, &x) in out.iter_mut().zip(signal) {
            *o = Complex::real(x);
        }
        self.forward(out);
    }

    /// Convenience: forward-transforms a real signal, allocating the output.
    /// Hot paths should prefer [`Fft::forward_real_into`].
    pub fn forward_real(&mut self, signal: &[f64]) -> Vec<Complex> {
        assert_eq!(signal.len(), self.n, "buffer length must match plan");
        let mut out = vec![Complex::ZERO; self.n];
        self.forward_real_into(signal, &mut out);
        out
    }
}

/// Reference quadratic-time DFT, used by tests to validate the fast paths.
pub fn dft_naive(data: &[Complex]) -> Vec<Complex> {
    let n = data.len();
    (0..n)
        .map(|k| {
            (0..n)
                .map(|j| data[j] * Complex::cis(-2.0 * PI * (k * j) as f64 / n as f64))
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spectrum_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() <= tol, "bin {i}: {x} vs {y}");
        }
    }

    fn impulse(n: usize, at: usize) -> Vec<Complex> {
        let mut v = vec![Complex::ZERO; n];
        v[at] = Complex::ONE;
        v
    }

    #[test]
    fn noperm_ladders_are_the_permuted_transform() {
        // forward_noperm yields the spectrum in bit-reversed order;
        // inverse_noperm consumes that order. Composed around nothing they
        // must reproduce n·identity, and un-permuting the forward output
        // must match the plain transform.
        for n in [2usize, 4, 8, 64, 512, 2048] {
            let plan = Radix2Plan::new(n);
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.53).sin(), (i as f64 * 0.29).cos()))
                .collect();

            let mut noperm = data.clone();
            plan.forward_noperm(&mut noperm);
            let mut unshuffled = vec![Complex::ZERO; n];
            for (i, &v) in noperm.iter().enumerate() {
                unshuffled[plan.bitrev[i] as usize] = v;
            }
            let mut plain = data.clone();
            plan.transform(&mut plain, Direction::Forward);
            spectrum_close(&unshuffled, &plain, 1e-9 * n as f64);

            plan.inverse_noperm(&mut noperm);
            let round: Vec<Complex> = noperm.iter().map(|v| *v / n as f64).collect();
            spectrum_close(&round, &data, 1e-9 * n as f64);
        }
    }

    #[test]
    fn radix2_matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let mut fast = data.clone();
            Fft::new(n).forward(&mut fast);
            spectrum_close(&fast, &dft_naive(&data), 1e-9 * n as f64);
        }
    }

    #[test]
    fn bluestein_matches_naive_dft() {
        for n in [3usize, 5, 6, 7, 12, 100, 250, 625] {
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).cos(), (i as f64 * 0.11).sin()))
                .collect();
            let mut fast = data.clone();
            Fft::new(n).forward(&mut fast);
            spectrum_close(&fast, &dft_naive(&data), 1e-8 * n as f64);
        }
    }

    #[test]
    fn sweep_length_2500_matches_naive() {
        // The exact WiTrack sweep length.
        let n = 2500;
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::real((2.0 * PI * 40.0 * i as f64 / n as f64).cos()))
            .collect();
        let mut fast = data.clone();
        Fft::new(n).forward(&mut fast);
        let slow = dft_naive(&data);
        spectrum_close(&fast, &slow, 1e-6 * n as f64);
        // Real tone at cycle 40 → peaks at bins 40 and n−40; check the
        // positive-frequency half only.
        let peak = fast[..n / 2].iter().map(|z| z.abs()).enumerate().fold(
            (0usize, 0.0f64),
            |acc, (i, m)| if m > acc.1 { (i, m) } else { acc },
        );
        assert_eq!(peak.0, 40);
        assert!((peak.1 - n as f64 / 2.0).abs() < 1e-6 * n as f64);
    }

    #[test]
    fn inverse_round_trips() {
        for n in [8usize, 100, 625, 1024] {
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
                .collect();
            let mut buf = data.clone();
            let mut plan = Fft::new(n);
            plan.forward(&mut buf);
            plan.inverse(&mut buf);
            spectrum_close(&buf, &data, 1e-10 * n as f64);
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        for n in [16usize, 30] {
            let mut buf = impulse(n, 0);
            Fft::new(n).forward(&mut buf);
            for z in &buf {
                assert!((z.abs() - 1.0).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn shifted_impulse_has_linear_phase() {
        let n = 32;
        let shift = 3;
        let mut buf = impulse(n, shift);
        Fft::new(n).forward(&mut buf);
        for (k, z) in buf.iter().enumerate() {
            let expected = Complex::cis(-2.0 * PI * (k * shift) as f64 / n as f64);
            assert!((*z - expected).abs() < 1e-10);
        }
    }

    #[test]
    fn linearity_holds() {
        let n = 50;
        let a: Vec<Complex> = (0..n)
            .map(|i| Complex::real((i as f64 * 0.2).sin()))
            .collect();
        let b: Vec<Complex> = (0..n)
            .map(|i| Complex::real((i as f64 * 0.9).cos()))
            .collect();
        let mut plan = Fft::new(n);
        let mut fa = a.clone();
        plan.forward(&mut fa);
        let mut fb = b.clone();
        plan.forward(&mut fb);
        let mut fab: Vec<Complex> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| *x * 2.0 + *y * -0.5)
            .collect();
        plan.forward(&mut fab);
        let combined: Vec<Complex> = fa
            .iter()
            .zip(&fb)
            .map(|(x, y)| *x * 2.0 + *y * -0.5)
            .collect();
        spectrum_close(&fab, &combined, 1e-9 * n as f64);
    }

    #[test]
    fn parseval_energy_preserved() {
        let n = 2500;
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::real(((i * i) as f64 * 0.001).sin()))
            .collect();
        let time_energy: f64 = data.iter().map(|z| z.norm_sq()).sum();
        let mut buf = data;
        Fft::new(n).forward(&mut buf);
        let freq_energy: f64 = buf.iter().map(|z| z.norm_sq()).sum::<f64>() / n as f64;
        assert!(
            (time_energy - freq_energy).abs() < 1e-6 * time_energy.max(1.0),
            "{time_energy} vs {freq_energy}"
        );
    }

    #[test]
    fn forward_real_helper() {
        let n = 64;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 5.0 * i as f64 / n as f64).sin())
            .collect();
        let spec = Fft::new(n).forward_real(&signal);
        // Real sine at cycle 5: peaks at bins 5 and n−5.
        let mags: Vec<f64> = spec.iter().map(|z| z.abs()).collect();
        assert!(mags[5] > 0.45 * n as f64);
        assert!(mags[n - 5] > 0.45 * n as f64);
    }

    #[test]
    fn forward_real_into_matches_forward_real() {
        for n in [64usize, 100] {
            let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin()).collect();
            let mut plan = Fft::new(n);
            let alloc = plan.forward_real(&signal);
            let mut out = vec![Complex::ZERO; n];
            plan.forward_real_into(&signal, &mut out);
            spectrum_close(&alloc, &out, 0.0);
        }
    }

    #[test]
    fn forward_into_preserves_input() {
        let n = 32;
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).cos(), (i as f64).sin()))
            .collect();
        let snapshot = input.clone();
        let mut out = vec![Complex::ZERO; n];
        let mut plan = Fft::new(n);
        plan.forward_into(&input, &mut out);
        spectrum_close(&input, &snapshot, 0.0);
        let mut in_place = input.clone();
        plan.forward(&mut in_place);
        spectrum_close(&out, &in_place, 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_length_panics() {
        let _ = Fft::new(0);
    }

    #[test]
    #[should_panic]
    fn wrong_buffer_length_panics() {
        let mut plan = Fft::new(8);
        let mut buf = vec![Complex::ZERO; 4];
        plan.forward(&mut buf);
    }
}
