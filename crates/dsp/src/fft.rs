//! Fast Fourier transforms at any length.
//!
//! The FMCW receiver "takes an FFT of the received signal in baseband over
//! every sweep period" (paper §4.1, §7). A sweep is 2.5 ms sampled at
//! 1 MS/s = **2500 samples** — not a power of two. Zero-padding to 4096
//! would change the bin spacing away from the paper's 1/T_sweep = 400 Hz
//! (and thus away from the C/2B = 8.87 cm range bins of Eq. 3), so this
//! module implements:
//!
//! * an iterative, in-place **radix-2** Cooley–Tukey FFT for power-of-two
//!   lengths, and
//! * **Bluestein's chirp-Z algorithm** for everything else, which rewrites an
//!   arbitrary-length DFT as a circular convolution evaluated with the
//!   radix-2 core.
//!
//! A [`Fft`] value is a *plan*: twiddles, bit-reversal tables, and (for
//! Bluestein) the pre-transformed chirp are all precomputed so per-sweep work
//! is allocation-free after plan creation.

use crate::complex::Complex;
use std::f64::consts::PI;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Inverse,
}

/// A reusable FFT plan for a fixed length `n ≥ 1`.
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    kind: PlanKind,
}

#[derive(Debug, Clone)]
enum PlanKind {
    /// `n` is a power of two: direct radix-2.
    Radix2(Radix2Plan),
    /// Arbitrary `n`: Bluestein on top of a radix-2 plan of length `m`.
    Bluestein(Box<BluesteinPlan>),
}

#[derive(Debug, Clone)]
struct Radix2Plan {
    /// Twiddle factors e^{-2πik/n} for k < n/2 (forward direction).
    twiddles: Vec<Complex>,
    /// Bit-reversal permutation.
    bitrev: Vec<u32>,
}

#[derive(Debug, Clone)]
struct BluesteinPlan {
    /// Chirp w[k] = e^{-iπk²/n} (forward direction).
    chirp: Vec<Complex>,
    /// Forward FFT (length m) of the symmetric extension of conj(chirp).
    kernel_fft: Vec<Complex>,
    /// Inner power-of-two plan of length m ≥ 2n−1.
    inner: Radix2Plan,
    /// Inner length.
    m: usize,
    /// Scratch buffer reused across calls (cloned plans get their own).
    scratch: Vec<Complex>,
}

impl Radix2Plan {
    fn new(n: usize) -> Radix2Plan {
        debug_assert!(n.is_power_of_two());
        let twiddles =
            (0..n / 2).map(|k| Complex::cis(-2.0 * PI * k as f64 / n as f64)).collect();
        let bits = n.trailing_zeros();
        let bitrev = (0..n as u32)
            .map(|i| if bits == 0 { 0 } else { i.reverse_bits() >> (32 - bits) })
            .collect();
        Radix2Plan { twiddles, bitrev }
    }

    /// In-place transform. `dir` selects conjugated twiddles for the inverse;
    /// the caller applies 1/n scaling for inverse transforms.
    fn transform(&self, data: &mut [Complex], dir: Direction) {
        let n = data.len();
        debug_assert_eq!(n, self.bitrev.len());
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.bitrev[i] as usize;
            if j > i {
                data.swap(i, j);
            }
        }
        // Butterflies.
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let tw = self.twiddles[k * stride];
                    let tw = match dir {
                        Direction::Forward => tw,
                        Direction::Inverse => tw.conj(),
                    };
                    let a = data[start + k];
                    let b = data[start + k + half] * tw;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len <<= 1;
        }
    }
}

impl BluesteinPlan {
    fn new(n: usize) -> BluesteinPlan {
        let m = (2 * n - 1).next_power_of_two();
        let inner = Radix2Plan::new(m);
        // w[k] = e^{-iπ k²/n}; compute k² mod 2n to avoid precision loss for
        // large k (e^{-iπ j/n} has period 2n in j).
        let chirp: Vec<Complex> = (0..n)
            .map(|k| {
                let j = (k * k) % (2 * n);
                Complex::cis(-PI * j as f64 / n as f64)
            })
            .collect();
        // Kernel b[j] = conj(w[j]) for j in (−n, n), laid out circularly.
        let mut kernel = vec![Complex::ZERO; m];
        for (j, c) in chirp.iter().enumerate() {
            kernel[j] = c.conj();
            if j > 0 {
                kernel[m - j] = c.conj();
            }
        }
        inner.transform(&mut kernel, Direction::Forward);
        BluesteinPlan { chirp, kernel_fft: kernel, inner, m, scratch: vec![Complex::ZERO; m] }
    }

    fn transform(&mut self, data: &mut [Complex], dir: Direction) {
        let n = data.len();
        let m = self.m;
        self.scratch.clear();
        self.scratch.resize(m, Complex::ZERO);
        // a[k] = x[k] · w[k]   (conjugate chirp for the inverse direction)
        for k in 0..n {
            let w = match dir {
                Direction::Forward => self.chirp[k],
                Direction::Inverse => self.chirp[k].conj(),
            };
            self.scratch[k] = data[k] * w;
        }
        // Circular convolution with the kernel via the inner FFT.
        self.inner.transform(&mut self.scratch, Direction::Forward);
        match dir {
            Direction::Forward => {
                for (s, k) in self.scratch.iter_mut().zip(&self.kernel_fft) {
                    *s = *s * *k;
                }
            }
            Direction::Inverse => {
                // The inverse kernel is the conjugate of the forward kernel;
                // conj(FFT(b))[j] = FFT(conj(b))[−j], and our kernel is
                // symmetric (b[j] = b[−j]), so conjugating the *transformed*
                // kernel is exact.
                for (s, k) in self.scratch.iter_mut().zip(&self.kernel_fft) {
                    *s = *s * k.conj();
                }
            }
        }
        self.inner.transform(&mut self.scratch, Direction::Inverse);
        let inv_m = 1.0 / m as f64;
        for k in 0..n {
            let w = match dir {
                Direction::Forward => self.chirp[k],
                Direction::Inverse => self.chirp[k].conj(),
            };
            data[k] = self.scratch[k] * w * inv_m;
        }
    }
}

impl Fft {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Fft {
        assert!(n > 0, "FFT length must be positive");
        let kind = if n.is_power_of_two() {
            PlanKind::Radix2(Radix2Plan::new(n))
        } else {
            PlanKind::Bluestein(Box::new(BluesteinPlan::new(n)))
        };
        Fft { n, kind }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the plan length is zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward DFT: `X[k] = Σ_n x[n] e^{-2πikn/N}`.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan length.
    pub fn forward(&mut self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length must match plan");
        match &mut self.kind {
            PlanKind::Radix2(p) => p.transform(data, Direction::Forward),
            PlanKind::Bluestein(p) => p.transform(data, Direction::Forward),
        }
    }

    /// In-place inverse DFT (with 1/N normalization), the exact inverse of
    /// [`Fft::forward`].
    pub fn inverse(&mut self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length must match plan");
        match &mut self.kind {
            PlanKind::Radix2(p) => p.transform(data, Direction::Inverse),
            PlanKind::Bluestein(p) => p.transform(data, Direction::Inverse),
        }
        let inv = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv);
        }
    }

    /// Convenience: forward-transforms a real signal, allocating the output.
    pub fn forward_real(&mut self, signal: &[f64]) -> Vec<Complex> {
        assert_eq!(signal.len(), self.n, "buffer length must match plan");
        let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::real(x)).collect();
        self.forward(&mut buf);
        buf
    }
}

/// Reference quadratic-time DFT, used by tests to validate the fast paths.
pub fn dft_naive(data: &[Complex]) -> Vec<Complex> {
    let n = data.len();
    (0..n)
        .map(|k| {
            (0..n)
                .map(|j| data[j] * Complex::cis(-2.0 * PI * (k * j) as f64 / n as f64))
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spectrum_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() <= tol, "bin {i}: {x} vs {y}");
        }
    }

    fn impulse(n: usize, at: usize) -> Vec<Complex> {
        let mut v = vec![Complex::ZERO; n];
        v[at] = Complex::ONE;
        v
    }

    #[test]
    fn radix2_matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let mut fast = data.clone();
            Fft::new(n).forward(&mut fast);
            spectrum_close(&fast, &dft_naive(&data), 1e-9 * n as f64);
        }
    }

    #[test]
    fn bluestein_matches_naive_dft() {
        for n in [3usize, 5, 6, 7, 12, 100, 250, 625] {
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).cos(), (i as f64 * 0.11).sin()))
                .collect();
            let mut fast = data.clone();
            Fft::new(n).forward(&mut fast);
            spectrum_close(&fast, &dft_naive(&data), 1e-8 * n as f64);
        }
    }

    #[test]
    fn sweep_length_2500_matches_naive() {
        // The exact WiTrack sweep length.
        let n = 2500;
        let data: Vec<Complex> =
            (0..n).map(|i| Complex::real((2.0 * PI * 40.0 * i as f64 / n as f64).cos())).collect();
        let mut fast = data.clone();
        Fft::new(n).forward(&mut fast);
        let slow = dft_naive(&data);
        spectrum_close(&fast, &slow, 1e-6 * n as f64);
        // Real tone at cycle 40 → peaks at bins 40 and n−40; check the
        // positive-frequency half only.
        let peak = fast[..n / 2].iter().map(|z| z.abs()).enumerate().fold(
            (0usize, 0.0f64),
            |acc, (i, m)| if m > acc.1 { (i, m) } else { acc },
        );
        assert_eq!(peak.0, 40);
        assert!((peak.1 - n as f64 / 2.0).abs() < 1e-6 * n as f64);
    }

    #[test]
    fn inverse_round_trips() {
        for n in [8usize, 100, 625, 1024] {
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
                .collect();
            let mut buf = data.clone();
            let mut plan = Fft::new(n);
            plan.forward(&mut buf);
            plan.inverse(&mut buf);
            spectrum_close(&buf, &data, 1e-10 * n as f64);
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        for n in [16usize, 30] {
            let mut buf = impulse(n, 0);
            Fft::new(n).forward(&mut buf);
            for z in &buf {
                assert!((z.abs() - 1.0).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn shifted_impulse_has_linear_phase() {
        let n = 32;
        let shift = 3;
        let mut buf = impulse(n, shift);
        Fft::new(n).forward(&mut buf);
        for (k, z) in buf.iter().enumerate() {
            let expected = Complex::cis(-2.0 * PI * (k * shift) as f64 / n as f64);
            assert!((*z - expected).abs() < 1e-10);
        }
    }

    #[test]
    fn linearity_holds() {
        let n = 50;
        let a: Vec<Complex> = (0..n).map(|i| Complex::real((i as f64 * 0.2).sin())).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::real((i as f64 * 0.9).cos())).collect();
        let mut plan = Fft::new(n);
        let mut fa = a.clone();
        plan.forward(&mut fa);
        let mut fb = b.clone();
        plan.forward(&mut fb);
        let mut fab: Vec<Complex> =
            a.iter().zip(&b).map(|(x, y)| *x * 2.0 + *y * -0.5).collect();
        plan.forward(&mut fab);
        let combined: Vec<Complex> =
            fa.iter().zip(&fb).map(|(x, y)| *x * 2.0 + *y * -0.5).collect();
        spectrum_close(&fab, &combined, 1e-9 * n as f64);
    }

    #[test]
    fn parseval_energy_preserved() {
        let n = 2500;
        let data: Vec<Complex> =
            (0..n).map(|i| Complex::real(((i * i) as f64 * 0.001).sin())).collect();
        let time_energy: f64 = data.iter().map(|z| z.norm_sq()).sum();
        let mut buf = data;
        Fft::new(n).forward(&mut buf);
        let freq_energy: f64 = buf.iter().map(|z| z.norm_sq()).sum::<f64>() / n as f64;
        assert!(
            (time_energy - freq_energy).abs() < 1e-6 * time_energy.max(1.0),
            "{time_energy} vs {freq_energy}"
        );
    }

    #[test]
    fn forward_real_helper() {
        let n = 64;
        let signal: Vec<f64> = (0..n).map(|i| (2.0 * PI * 5.0 * i as f64 / n as f64).sin()).collect();
        let spec = Fft::new(n).forward_real(&signal);
        // Real sine at cycle 5: peaks at bins 5 and n−5.
        let mags: Vec<f64> = spec.iter().map(|z| z.abs()).collect();
        assert!(mags[5] > 0.45 * n as f64);
        assert!(mags[n - 5] > 0.45 * n as f64);
    }

    #[test]
    #[should_panic]
    fn zero_length_panics() {
        let _ = Fft::new(0);
    }

    #[test]
    #[should_panic]
    fn wrong_buffer_length_panics() {
        let mut plan = Fft::new(8);
        let mut buf = vec![Complex::ZERO; 4];
        plan.forward(&mut buf);
    }
}
