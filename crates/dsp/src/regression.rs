//! Line fitting: ordinary least squares, Theil–Sen, and Tukey-bisquare IRLS.
//!
//! Paper §6.1 step 3: *"We perform robust regression on the location
//! estimates of the moving hand, and we use the start and end points of the
//! regression from all of the antennas to solve for the initial and final
//! position of the hand."* Contour estimates of a small reflector (an arm)
//! are heavy-tailed — a plain least-squares fit is dragged by the residual
//! multipath spikes, hence the robust variants.

/// A fitted line `y(t) = intercept + slope · t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Line {
    /// Value at `t = 0`.
    pub intercept: f64,
    /// Change per unit `t`.
    pub slope: f64,
}

impl Line {
    /// Evaluates the line at `t`.
    #[inline]
    pub fn at(&self, t: f64) -> f64 {
        self.intercept + self.slope * t
    }
}

/// Errors from the fitting routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than two points, or `ts`/`ys` length mismatch.
    NotEnoughData,
    /// All abscissae identical — the slope is undefined.
    DegenerateAbscissae,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::NotEnoughData => write!(f, "need at least two (t, y) points"),
            FitError::DegenerateAbscissae => write!(f, "all t values identical"),
        }
    }
}

impl std::error::Error for FitError {}

fn validate(ts: &[f64], ys: &[f64]) -> Result<(), FitError> {
    if ts.len() != ys.len() || ts.len() < 2 {
        return Err(FitError::NotEnoughData);
    }
    let t0 = ts[0];
    if ts.iter().all(|&t| (t - t0).abs() < 1e-15) {
        return Err(FitError::DegenerateAbscissae);
    }
    Ok(())
}

/// Ordinary least-squares line fit.
pub fn least_squares(ts: &[f64], ys: &[f64]) -> Result<Line, FitError> {
    validate(ts, ys)?;
    let n = ts.len() as f64;
    let mean_t = ts.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut stt = 0.0;
    let mut sty = 0.0;
    for (&t, &y) in ts.iter().zip(ys) {
        stt += (t - mean_t) * (t - mean_t);
        sty += (t - mean_t) * (y - mean_y);
    }
    let slope = sty / stt;
    Ok(Line {
        intercept: mean_y - slope * mean_t,
        slope,
    })
}

/// Weighted least-squares line fit (helper for IRLS).
fn weighted_least_squares(ts: &[f64], ys: &[f64], ws: &[f64]) -> Option<Line> {
    let sw: f64 = ws.iter().sum();
    if sw <= 0.0 {
        return None;
    }
    let mean_t = ts.iter().zip(ws).map(|(&t, &w)| w * t).sum::<f64>() / sw;
    let mean_y = ys.iter().zip(ws).map(|(&y, &w)| w * y).sum::<f64>() / sw;
    let mut stt = 0.0;
    let mut sty = 0.0;
    for ((&t, &y), &w) in ts.iter().zip(ys).zip(ws) {
        stt += w * (t - mean_t) * (t - mean_t);
        sty += w * (t - mean_t) * (y - mean_y);
    }
    if stt.abs() < 1e-15 {
        return None;
    }
    let slope = sty / stt;
    Some(Line {
        intercept: mean_y - slope * mean_t,
        slope,
    })
}

/// Theil–Sen estimator: slope = median of pairwise slopes, intercept =
/// median of `y − slope·t`. Breakdown point ≈ 29 %.
pub fn theil_sen(ts: &[f64], ys: &[f64]) -> Result<Line, FitError> {
    validate(ts, ys)?;
    let n = ts.len();
    let mut slopes = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            let dt = ts[j] - ts[i];
            if dt.abs() > 1e-15 {
                slopes.push((ys[j] - ys[i]) / dt);
            }
        }
    }
    if slopes.is_empty() {
        return Err(FitError::DegenerateAbscissae);
    }
    let slope = crate::stats::median_in_place(&mut slopes);
    let mut residuals: Vec<f64> = ts.iter().zip(ys).map(|(&t, &y)| y - slope * t).collect();
    let intercept = crate::stats::median_in_place(&mut residuals);
    Ok(Line { intercept, slope })
}

/// Iteratively-reweighted least squares with the Tukey bisquare loss.
///
/// `tuning` is the bisquare cutoff in robust-σ units (4.685 gives 95 %
/// Gaussian efficiency). Residual scale is re-estimated each iteration with
/// the normalized MAD.
pub fn tukey_irls(
    ts: &[f64],
    ys: &[f64],
    tuning: f64,
    iterations: usize,
) -> Result<Line, FitError> {
    validate(ts, ys)?;
    let mut line = least_squares(ts, ys)?;
    let mut ws = vec![1.0; ts.len()];
    for _ in 0..iterations {
        let mut resid: Vec<f64> = ts
            .iter()
            .zip(ys)
            .map(|(&t, &y)| (y - line.at(t)).abs())
            .collect();
        let mad = crate::stats::median_in_place(&mut resid);
        let scale = (mad * 1.4826).max(1e-9);
        for ((&t, &y), w) in ts.iter().zip(ys).zip(ws.iter_mut()) {
            let u = (y - line.at(t)) / (tuning * scale);
            *w = if u.abs() >= 1.0 {
                0.0
            } else {
                let f = 1.0 - u * u;
                f * f
            };
        }
        match weighted_least_squares(ts, ys, &ws) {
            Some(next) => line = next,
            // All points down-weighted to zero: keep the previous fit.
            None => break,
        }
    }
    Ok(line)
}

/// Default robust fit used by the pointing estimator: Tukey IRLS with the
/// standard 4.685 tuning constant and 10 iterations.
pub fn robust_line(ts: &[f64], ys: &[f64]) -> Result<Line, FitError> {
    tukey_irls(ts, ys, 4.685, 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data(n: usize, a: f64, b: f64) -> (Vec<f64>, Vec<f64>) {
        let ts: Vec<f64> = (0..n).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = ts.iter().map(|&t| a + b * t).collect();
        (ts, ys)
    }

    #[test]
    fn ols_recovers_exact_line() {
        let (ts, ys) = line_data(50, 2.0, -0.7);
        let l = least_squares(&ts, &ys).unwrap();
        assert!((l.intercept - 2.0).abs() < 1e-10);
        assert!((l.slope + 0.7).abs() < 1e-10);
        assert!((l.at(1.0) - 1.3).abs() < 1e-10);
    }

    #[test]
    fn theil_sen_recovers_exact_line() {
        let (ts, ys) = line_data(30, -1.0, 2.5);
        let l = theil_sen(&ts, &ys).unwrap();
        assert!((l.intercept + 1.0).abs() < 1e-10);
        assert!((l.slope - 2.5).abs() < 1e-10);
    }

    #[test]
    fn robust_fits_shrug_off_outliers() {
        let (ts, mut ys) = line_data(40, 1.0, 0.5);
        // Corrupt 20% of points with huge spikes (multipath-style).
        for i in [3usize, 11, 19, 24, 27, 31, 35, 38] {
            ys[i] += 25.0;
        }
        let ols = least_squares(&ts, &ys).unwrap();
        let ts_fit = theil_sen(&ts, &ys).unwrap();
        let irls = robust_line(&ts, &ys).unwrap();
        // OLS is dragged far off; both robust fits stay near the truth.
        assert!((ols.intercept - 1.0).abs() > 0.5);
        assert!(
            (ts_fit.slope - 0.5).abs() < 0.05,
            "theil-sen slope {}",
            ts_fit.slope
        );
        assert!((irls.slope - 0.5).abs() < 0.05, "irls slope {}", irls.slope);
        assert!(
            (irls.intercept - 1.0).abs() < 0.1,
            "irls intercept {}",
            irls.intercept
        );
    }

    #[test]
    fn irls_on_clean_data_matches_ols() {
        let (ts, ys) = line_data(25, 0.3, 1.1);
        let a = least_squares(&ts, &ys).unwrap();
        let b = robust_line(&ts, &ys).unwrap();
        assert!((a.slope - b.slope).abs() < 1e-8);
        assert!((a.intercept - b.intercept).abs() < 1e-8);
    }

    #[test]
    fn errors_on_degenerate_input() {
        assert_eq!(least_squares(&[1.0], &[2.0]), Err(FitError::NotEnoughData));
        assert_eq!(
            least_squares(&[1.0, 2.0], &[2.0]),
            Err(FitError::NotEnoughData)
        );
        assert_eq!(
            least_squares(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]),
            Err(FitError::DegenerateAbscissae)
        );
        assert_eq!(
            theil_sen(&[3.0, 3.0], &[1.0, 2.0]),
            Err(FitError::DegenerateAbscissae)
        );
    }

    #[test]
    fn unsorted_abscissae_are_fine() {
        let ts = vec![0.5, 0.1, 0.9, 0.3, 0.7];
        let ys: Vec<f64> = ts.iter().map(|&t| 4.0 - 2.0 * t).collect();
        let l = theil_sen(&ts, &ys).unwrap();
        assert!((l.slope + 2.0).abs() < 1e-10);
        assert!((l.intercept - 4.0).abs() < 1e-10);
    }
}
