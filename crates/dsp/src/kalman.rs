//! A 1-D constant-velocity Kalman filter.
//!
//! Paper §4.4 "Filtering": *"Because human motion is continuous, the
//! variation in a reflector's distance to each receive antenna should stay
//! smooth over time. Thus, WiTrack uses a Kalman Filter to smooth the
//! distance estimates."*
//!
//! The state is `[distance, velocity]` with a constant-velocity process
//! model; the measurement is the (noisy) contour distance of one frame. All
//! matrices are 2×2, hand-expanded — no linear-algebra crate required.

/// Configuration for [`Kalman1D`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KalmanConfig {
    /// Standard deviation of the white process acceleration (m/s²). Human
    /// gait accelerations are a few m/s²; the default is deliberately loose
    /// so the filter tracks direction changes.
    pub process_accel_std: f64,
    /// Standard deviation of the measurement noise (m). Roughly one range
    /// bin (≈ 0.1 m one-way) for the FMCW contour.
    pub measurement_std: f64,
    /// Initial variance on the distance state (m²).
    pub initial_pos_var: f64,
    /// Initial variance on the velocity state (m²/s²).
    pub initial_vel_var: f64,
}

impl Default for KalmanConfig {
    fn default() -> Self {
        KalmanConfig {
            process_accel_std: 2.0,
            measurement_std: 0.1,
            initial_pos_var: 1.0,
            initial_vel_var: 4.0,
        }
    }
}

/// Constant-velocity Kalman filter over scalar measurements.
#[derive(Debug, Clone)]
pub struct Kalman1D {
    cfg: KalmanConfig,
    /// State mean [position, velocity]; `None` until the first measurement.
    state: Option<[f64; 2]>,
    /// State covariance, row-major [[p00, p01], [p10, p11]].
    cov: [[f64; 2]; 2],
    /// Last correction's innovation `y = z − x⁻` and its variance
    /// `s = p00⁻ + r`; `None` until the second measurement (the seeding
    /// update has no prediction to innovate against).
    last_innovation: Option<(f64, f64)>,
}

impl Kalman1D {
    /// Creates an uninitialized filter; the first `update` seeds the state.
    pub fn new(cfg: KalmanConfig) -> Kalman1D {
        Kalman1D {
            cfg,
            state: None,
            cov: [[cfg.initial_pos_var, 0.0], [0.0, cfg.initial_vel_var]],
            last_innovation: None,
        }
    }

    /// Resets to the uninitialized state.
    pub fn reset(&mut self) {
        self.state = None;
        self.cov = [
            [self.cfg.initial_pos_var, 0.0],
            [0.0, self.cfg.initial_vel_var],
        ];
        self.last_innovation = None;
    }

    /// Whether the filter has been seeded by at least one measurement.
    pub fn is_initialized(&self) -> bool {
        self.state.is_some()
    }

    /// Current position estimate (None before the first measurement).
    pub fn position(&self) -> Option<f64> {
        self.state.map(|s| s[0])
    }

    /// Current velocity estimate (None before the first measurement).
    pub fn velocity(&self) -> Option<f64> {
        self.state.map(|s| s[1])
    }

    /// Pins the state to `pos` with zero velocity, keeping the covariance.
    ///
    /// Used while the tracked quantity is held/interpolated (the target
    /// stopped moving): the stale velocity must not keep integrating, but
    /// the filter should resume smoothly from the held position when
    /// measurements return.
    pub fn hold_at(&mut self, pos: f64) {
        self.state = Some([pos, 0.0]);
    }

    /// Time-advances the state by `dt` seconds without a measurement
    /// (used while the person is static / occluded and the contour is
    /// interpolated). Returns the predicted position.
    pub fn predict(&mut self, dt: f64) -> Option<f64> {
        let [x, v] = self.state?;
        let q = self.cfg.process_accel_std * self.cfg.process_accel_std;
        // State transition F = [[1, dt], [0, 1]].
        let nx = x + v * dt;
        // P ← F P Fᵀ + Q(dt)
        let [[p00, p01], [p10, p11]] = self.cov;
        let f00 = p00 + dt * (p10 + p01) + dt * dt * p11;
        let f01 = p01 + dt * p11;
        let f10 = p10 + dt * p11;
        let f11 = p11;
        let dt2 = dt * dt;
        self.cov = [
            [f00 + q * dt2 * dt2 / 4.0, f01 + q * dt2 * dt / 2.0],
            [f10 + q * dt2 * dt / 2.0, f11 + q * dt2],
        ];
        self.state = Some([nx, v]);
        Some(nx)
    }

    /// Predict + correct with measurement `z` after `dt` seconds. Returns the
    /// filtered position. Uses the configured measurement noise.
    pub fn update(&mut self, z: f64, dt: f64) -> f64 {
        let r = self.cfg.measurement_std * self.cfg.measurement_std;
        self.update_with_noise(z, dt, r)
    }

    /// [`Self::update`] with an explicit measurement variance `r_var` for
    /// this one correction — how a fusion layer folds in observations whose
    /// uncertainty varies per source (each sensor reports its own
    /// covariance), making the update an exact covariance-weighted merge.
    ///
    /// `r_var == 0.0` means an exact measurement (full snap to `z`), which
    /// keeps the long-standing `measurement_std: 0.0` configuration of
    /// [`Self::update`] working.
    ///
    /// # Panics
    /// Panics when `r_var` is not finite and non-negative.
    pub fn update_with_noise(&mut self, z: f64, dt: f64, r_var: f64) -> f64 {
        assert!(
            r_var.is_finite() && r_var >= 0.0,
            "measurement variance must be non-negative, got {r_var}"
        );
        if self.state.is_none() {
            self.state = Some([z, 0.0]);
            return z;
        }
        self.predict(dt);
        let [x, v] = self.state.expect("state seeded above");
        let [[p00, p01], [p10, p11]] = self.cov;
        // Innovation with H = [1, 0].
        let y = z - x;
        let s = p00 + r_var;
        // s == 0 only when both the state and the measurement claim
        // certainty (p00 = 0 forces p10 = 0 in a PSD covariance): take
        // the measurement exactly rather than dividing by zero.
        let (k0, k1) = if s > 0.0 {
            (p00 / s, p10 / s)
        } else {
            (1.0, 0.0)
        };
        self.last_innovation = Some((y, s));
        self.state = Some([x + k0 * y, v + k1 * y]);
        // Joseph-free covariance update: P ← (I − K H) P.
        self.cov = [
            [(1.0 - k0) * p00, (1.0 - k0) * p01],
            [p10 - k1 * p00, p11 - k1 * p01],
        ];
        self.state.expect("just set")[0]
    }

    /// Variance of the position estimate.
    pub fn position_variance(&self) -> f64 {
        self.cov[0][0]
    }

    /// Variance of the velocity estimate.
    pub fn velocity_variance(&self) -> f64 {
        self.cov[1][1]
    }

    /// The last correction's innovation `y = z − x⁻` (measurement minus
    /// prediction): the filter's own running measure of how surprising its
    /// measurements are. `None` until the second measurement.
    pub fn innovation(&self) -> Option<f64> {
        self.last_innovation.map(|(y, _)| y)
    }

    /// The last correction's innovation variance `s = p00⁻ + r` — the
    /// denominator of the normalized innovation `y²/s` gating tests use.
    pub fn innovation_variance(&self) -> Option<f64> {
        self.last_innovation.map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_update_seeds_state() {
        let mut kf = Kalman1D::new(KalmanConfig::default());
        assert!(!kf.is_initialized());
        assert_eq!(kf.update(5.0, 0.0125), 5.0);
        assert!(kf.is_initialized());
        assert_eq!(kf.position(), Some(5.0));
        assert_eq!(kf.velocity(), Some(0.0));
    }

    #[test]
    fn converges_to_constant_signal() {
        let mut kf = Kalman1D::new(KalmanConfig::default());
        let mut last = 0.0;
        for _ in 0..200 {
            last = kf.update(3.0, 0.0125);
        }
        assert!((last - 3.0).abs() < 1e-6);
        assert!(kf.velocity().unwrap().abs() < 1e-3);
    }

    #[test]
    fn tracks_linear_motion_and_learns_velocity() {
        let mut kf = Kalman1D::new(KalmanConfig::default());
        let dt = 0.0125;
        let speed = 1.0; // m/s
        for i in 0..400 {
            kf.update(2.0 + speed * dt * i as f64, dt);
        }
        assert!((kf.velocity().unwrap() - speed).abs() < 0.05);
        let true_pos = 2.0 + speed * dt * 399.0;
        assert!((kf.position().unwrap() - true_pos).abs() < 0.02);
    }

    #[test]
    fn smooths_noise() {
        // Deterministic pseudo-noise; the filtered variance must be well
        // below the raw measurement variance.
        let mut kf = Kalman1D::new(KalmanConfig {
            measurement_std: 0.2,
            process_accel_std: 0.5,
            ..KalmanConfig::default()
        });
        let dt = 0.0125;
        let mut raw_sq = 0.0;
        let mut filt_sq = 0.0;
        let mut n = 0.0;
        let mut rng_state = 42u64;
        let mut noise = || {
            // xorshift, mapped to roughly N(0, 1) via sum of uniforms
            let mut s = 0.0;
            for _ in 0..12 {
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                s += (rng_state % 10_000) as f64 / 10_000.0;
            }
            s - 6.0
        };
        for i in 0..1500 {
            let truth = 4.0;
            let z = truth + 0.2 * noise();
            let f = kf.update(z, dt);
            if i > 300 {
                raw_sq += (z - truth) * (z - truth);
                filt_sq += (f - truth) * (f - truth);
                n += 1.0;
            }
        }
        assert!(
            filt_sq / n < 0.25 * raw_sq / n,
            "filtered {} raw {}",
            filt_sq / n,
            raw_sq / n
        );
    }

    #[test]
    fn predict_extrapolates_with_velocity() {
        let mut kf = Kalman1D::new(KalmanConfig::default());
        let dt = 0.0125;
        for i in 0..400 {
            kf.update(1.0 * dt * i as f64, dt);
        }
        let p0 = kf.position().unwrap();
        let p1 = kf.predict(1.0).unwrap();
        assert!((p1 - p0 - 1.0).abs() < 0.1, "predicted step {}", p1 - p0);
        // Prediction inflates uncertainty.
        assert!(kf.position_variance() > 0.0);
    }

    #[test]
    fn predict_before_init_returns_none() {
        let mut kf = Kalman1D::new(KalmanConfig::default());
        assert!(kf.predict(0.1).is_none());
    }

    #[test]
    fn reset_clears_state() {
        let mut kf = Kalman1D::new(KalmanConfig::default());
        kf.update(2.0, 0.01);
        kf.reset();
        assert!(!kf.is_initialized());
        assert!(kf.position().is_none());
    }

    #[test]
    fn innovation_tracks_measurement_surprise() {
        let mut kf = Kalman1D::new(KalmanConfig::default());
        assert!(kf.innovation().is_none());
        kf.update(5.0, 0.0125);
        // The seeding update has no prediction to innovate against.
        assert!(kf.innovation().is_none());
        for _ in 0..100 {
            kf.update(5.0, 0.0125);
        }
        // Converged on a constant: innovations are tiny.
        assert!(kf.innovation().unwrap().abs() < 1e-6);
        // A 1 m jump shows up as a ~1 m innovation.
        kf.update(6.0, 0.0125);
        assert!((kf.innovation().unwrap() - 1.0).abs() < 0.05);
        assert!(kf.innovation_variance().unwrap() > 0.0);
        kf.reset();
        assert!(kf.innovation().is_none());
    }

    #[test]
    fn per_measurement_noise_weights_the_correction() {
        // Two filters converged to 0.0; feed each a 1.0 outlier with very
        // different claimed variances. The trusted (low-variance) one must
        // move much further than the distrusted one.
        let mut trusting = Kalman1D::new(KalmanConfig::default());
        let mut wary = trusting.clone();
        for _ in 0..200 {
            trusting.update(0.0, 0.0125);
            wary.update(0.0, 0.0125);
        }
        let a = trusting.update_with_noise(1.0, 0.0125, 1e-6);
        let b = wary.update_with_noise(1.0, 0.0125, 1e2);
        assert!(a > 0.9, "near-certain measurement barely moved: {a}");
        assert!(b < 0.01, "near-useless measurement over-trusted: {b}");
    }

    #[test]
    #[should_panic]
    fn negative_noise_is_rejected() {
        let mut kf = Kalman1D::new(KalmanConfig::default());
        kf.update_with_noise(1.0, 0.0125, -1.0);
    }

    #[test]
    fn zero_noise_snaps_to_the_measurement() {
        // measurement_std: 0.0 was a legal exact-trust configuration for
        // `update` before `update_with_noise` existed; it must stay one.
        let mut kf = Kalman1D::new(KalmanConfig {
            measurement_std: 0.0,
            ..KalmanConfig::default()
        });
        kf.update(1.0, 0.0125);
        for i in 2..50 {
            let out = kf.update(i as f64, 0.0125);
            assert_eq!(out, i as f64, "exact measurements must be taken exactly");
        }
        assert_eq!(kf.position_variance(), 0.0);
    }

    #[test]
    fn uncertainty_shrinks_with_measurements() {
        let mut kf = Kalman1D::new(KalmanConfig::default());
        kf.update(1.0, 0.0125);
        let v1 = kf.position_variance();
        for _ in 0..50 {
            kf.update(1.0, 0.0125);
        }
        assert!(kf.position_variance() < v1);
    }
}
