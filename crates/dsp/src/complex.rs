//! Minimal complex arithmetic for baseband signal processing.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` parts.
///
/// `#[repr(C)]` guarantees the `(re, im)` field order and no padding, so a
/// `&[Complex]` is exactly the interleaved `[re, im, re, im, …]` `f64`
/// layout the SIMD kernels in [`crate::simd`] load 256 bits at a time.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// 0 + 0i.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// 1 + 0i.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// 0 + 1i.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// A purely real value.
    #[inline]
    pub const fn real(re: f64) -> Complex {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Complex {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    /// From polar form `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Complex {
        Complex::cis(theta) * r
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²` (power).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Argument (phase) in radians, in `(−π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Complex {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, o: Complex) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, o: Complex) {
        *self = *self * o;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, s: f64) -> Complex {
        self.scale(s)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, z: Complex) -> Complex {
        z.scale(self)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, s: f64) -> Complex {
        Complex::new(self.re / s, self.im / s)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, o: Complex) -> Complex {
        let d = o.norm_sq();
        Complex::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Complex {
        Complex::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn multiplication_follows_i_squared() {
        assert_eq!(Complex::I * Complex::I, Complex::real(-1.0));
        let z = Complex::new(3.0, 4.0) * Complex::new(1.0, 2.0);
        assert_eq!(z, Complex::new(-5.0, 10.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(3.0, -2.0);
        let b = Complex::new(-1.5, 0.7);
        assert!(close((a * b) / b, a, 1e-12));
        assert!(close(a / a, Complex::ONE, 1e-12));
    }

    #[test]
    fn cis_lands_on_unit_circle() {
        for theta in [0.0, 0.3, FRAC_PI_2, PI, -1.2, 6.0] {
            let z = Complex::cis(theta);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
        assert!(close(Complex::cis(FRAC_PI_2), Complex::I, 1e-12));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.5, 0.7);
        assert!((z.abs() - 2.5).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex::new(1.0, -3.0);
        assert_eq!(z.conj().conj(), z);
        assert!((z * z.conj() - Complex::real(z.norm_sq())).abs() < 1e-12);
    }

    #[test]
    fn sum_and_scale() {
        let s: Complex = [Complex::ONE, Complex::I, Complex::new(1.0, 1.0)]
            .into_iter()
            .sum();
        assert_eq!(s, Complex::new(2.0, 2.0));
        assert_eq!(s.scale(0.5), Complex::new(1.0, 1.0));
        assert_eq!(s / 2.0, Complex::new(1.0, 1.0));
        assert_eq!(2.0 * Complex::I, Complex::new(0.0, 2.0));
    }
}
