//! Process-wide weak caches for immutable transform plans.
//!
//! Every plan in this crate (CZT chirps/kernels, FFT twiddles, window
//! tables) is immutable after construction and depends only on its shape
//! parameters, so two users with the same configuration can share one
//! instance behind an `Arc`. A serving host runs dozens of identical
//! pipelines per shard — three antennas × N sensors, all at one sweep
//! config — and per-instance tables are the dominant per-sensor memory
//! (a paper-config CZT plan alone is ~85 KiB of twiddles). These caches
//! deduplicate them: `Czt::shared`, `WindowKind::shared`, and the
//! Bluestein core behind `Fft` all key a [`PlanCache`] by their shape.
//!
//! Entries are **weak**: the cache never keeps a plan alive on its own,
//! so a reconfigured process frees the old tables once the last pipeline
//! using them drops. Dead entries are swept opportunistically on every
//! miss.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Process-wide plan-cache hit/miss counters, registered once in the
/// global telemetry registry (`witrack_obs::global()`) as
/// `dsp/plan_cache_{hits,misses}`. A deployment whose miss counter keeps
/// climbing is rebuilding transform tables it should be sharing.
fn cache_counters() -> &'static (witrack_obs::Counter, witrack_obs::Counter) {
    static COUNTERS: OnceLock<(witrack_obs::Counter, witrack_obs::Counter)> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let reg = witrack_obs::global();
        (
            reg.counter("dsp", "plan_cache_hits", witrack_obs::Label::Global),
            reg.counter("dsp", "plan_cache_misses", witrack_obs::Label::Global),
        )
    })
}

/// A weak, keyed cache of `Arc`-shared plans.
pub(crate) struct PlanCache<K, T> {
    map: Mutex<HashMap<K, Weak<T>>>,
}

impl<K: Eq + Hash + Clone, T> PlanCache<K, T> {
    /// An empty cache (usable in `static` position via `OnceLock`).
    pub(crate) fn new() -> PlanCache<K, T> {
        PlanCache {
            map: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the shared plan for `key`, building (and caching) it with
    /// `build` when no live instance exists. The build runs outside any
    /// lock-free fast path but inside the cache lock, so concurrent
    /// requests for the same key build once.
    pub(crate) fn get_or_build(&self, key: K, build: impl FnOnce() -> T) -> Arc<T> {
        let (hits, misses) = cache_counters();
        let mut map = self.map.lock().expect("plan cache poisoned");
        if let Some(live) = map.get(&key).and_then(Weak::upgrade) {
            hits.inc();
            return live;
        }
        misses.inc();
        // Miss: sweep entries whose plans have all been dropped, then build.
        map.retain(|_, w| w.strong_count() > 0);
        let plan = Arc::new(build());
        map.insert(key, Arc::downgrade(&plan));
        plan
    }

    /// Number of live (upgradable) entries — for tests and diagnostics.
    #[cfg(test)]
    pub(crate) fn live_entries(&self) -> usize {
        self.map
            .lock()
            .expect("plan cache poisoned")
            .values()
            .filter(|w| w.strong_count() > 0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_shares_one_instance() {
        let cache: PlanCache<usize, Vec<u8>> = PlanCache::new();
        let a = cache.get_or_build(7, || vec![1, 2, 3]);
        let b = cache.get_or_build(7, || panic!("must reuse the live entry"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.live_entries(), 1);
    }

    #[test]
    fn dropped_entries_are_rebuilt_and_swept() {
        let cache: PlanCache<usize, Vec<u8>> = PlanCache::new();
        let a = cache.get_or_build(1, || vec![1]);
        drop(a);
        assert_eq!(cache.live_entries(), 0);
        let b = cache.get_or_build(2, || vec![2]);
        let again = cache.get_or_build(1, || vec![9]);
        assert_eq!(*again, vec![9], "dead entry was rebuilt");
        drop(b);
        // The dead key-1 slot was swept during the key-2 miss; only the
        // rebuilt entry remains live.
        assert_eq!(cache.live_entries(), 1);
    }
}
