//! Runtime-dispatched SIMD kernels for the DSP hot path.
//!
//! Every per-frame inner loop of the range-profile stage funnels through
//! this module: the complex pointwise multiplies of the pruned-CZT
//! convolution, the radix-2 butterfly passes, the window/pack multiplies
//! that feed the transform, and the fixed-point (i16/i32) front half that
//! keeps wire-quantized sweeps in integer form until the last possible
//! dequantization. Each kernel exists twice:
//!
//! * a **scalar** reference implementation (in [`scalar`]), always
//!   compiled, used directly on non-x86 hosts and kept exercised in CI by
//!   the forced-fallback test; and
//! * an **AVX2+FMA** implementation processing two `f64` complex values
//!   (four lanes) or sixteen `i16` lanes per instruction, compiled behind
//!   `target_feature` and reached only after a runtime
//!   `is_x86_feature_detected!` check.
//!
//! The path is selected **once per process** (first kernel call, i.e. at
//! plan build) and recorded in the global telemetry registry: the
//! `dsp/simd_lanes` gauge holds the selected `f64` lane width (4 for
//! AVX2, 1 for scalar) and the `dsp/scalar_fallbacks` counter increments
//! when selection lands on the scalar path — either because the host
//! lacks AVX2/FMA or because `WITRACK_DSP_FORCE_SCALAR=1` (or
//! [`force_scalar`]) pinned it for testing. Numerically the AVX2 float
//! kernels differ from scalar only by FMA rounding (well inside the 1e-9
//! DFT-equivalence suites); the fixed-point kernels are **bit-exact**
//! across paths, since both round with the same `(a·b + 2^14) >> 15`
//! midpoint rule.
//!
//! This module is the one place in the crate allowed to use `unsafe`
//! (raw intrinsics); the crate-level lint downgrade is scoped here and
//! every unsafe block sits behind the feature-detected dispatch above it.
#![allow(unsafe_code)]

use crate::complex::Complex;
use std::sync::OnceLock;

/// Which kernel implementation the process selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// AVX2 + FMA intrinsics: 2 complex `f64` (4 lanes) / 16 `i16` lanes
    /// per operation.
    Avx2Fma,
    /// Portable scalar reference path.
    Scalar,
}

impl KernelPath {
    /// `f64` lanes the path processes per operation (what the
    /// `dsp/simd_lanes` gauge reports).
    pub fn lanes(self) -> usize {
        match self {
            KernelPath::Avx2Fma => 4,
            KernelPath::Scalar => 1,
        }
    }
}

static PATH: OnceLock<KernelPath> = OnceLock::new();

/// Publishes the selected path to the global telemetry registry.
fn record_selection(path: KernelPath) {
    let reg = witrack_obs::global();
    reg.gauge("dsp", "simd_lanes", witrack_obs::Label::Global)
        .set(path.lanes() as i64);
    let fallbacks = reg.counter("dsp", "scalar_fallbacks", witrack_obs::Label::Global);
    if path == KernelPath::Scalar {
        fallbacks.inc();
    }
}

fn select() -> KernelPath {
    if std::env::var_os("WITRACK_DSP_FORCE_SCALAR").is_some_and(|v| v != "0") {
        return KernelPath::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return KernelPath::Avx2Fma;
        }
    }
    KernelPath::Scalar
}

/// The kernel path this process runs. Selected on first call and fixed
/// for the process lifetime — mixed-path results within one pipeline
/// would make numerical regressions irreproducible.
pub fn active() -> KernelPath {
    *PATH.get_or_init(|| {
        let p = select();
        record_selection(p);
        p
    })
}

/// Pins the scalar path for this process, for tests that must exercise
/// the non-SIMD kernels on SIMD-capable CI hosts. Returns `false` when a
/// kernel call (or another caller) already fixed the path. Must be called
/// before any transform work for the pin to win.
pub fn force_scalar() -> bool {
    let won = PATH.set(KernelPath::Scalar).is_ok();
    if won {
        record_selection(KernelPath::Scalar);
    }
    won
}

/// `buf[i] *= k[i]` (conjugating `k` when `conj` — the inverse-direction
/// CZT kernel multiply).
pub fn pointwise_mul(buf: &mut [Complex], k: &[Complex], conj: bool) {
    debug_assert_eq!(buf.len(), k.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2Fma => unsafe { avx2::pointwise_mul(buf, k, conj) },
        _ => scalar::pointwise_mul(buf, k, conj),
    }
}

/// `out[i] = a[i] * b[i]` (conjugating `b` when `conj`) — the post-chirp
/// multiply writing the convolution output.
pub fn pointwise_mul_into(out: &mut [Complex], a: &[Complex], b: &[Complex], conj: bool) {
    debug_assert_eq!(out.len(), a.len());
    debug_assert_eq!(out.len(), b.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2Fma => unsafe { avx2::pointwise_mul_into(out, a, b, conj) },
        _ => scalar::pointwise_mul_into(out, a, b, conj),
    }
}

/// Two-for-one real-input packing fused with the pre-chirp multiply:
/// `buf[t] = (signal[2t] + i·signal[2t+1]) * pre[t]`. Adjacent real
/// samples already sit in complex (re, im) layout, so the AVX2 path is a
/// straight vector load plus complex multiply.
///
/// # Panics
/// Panics if `signal.len() < 2 * buf.len()` or `pre.len() < buf.len()`.
pub fn pack_premul(buf: &mut [Complex], signal: &[f64], pre: &[Complex]) {
    assert!(signal.len() >= 2 * buf.len());
    assert!(pre.len() >= buf.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2Fma => unsafe { avx2::pack_premul(buf, signal, pre) },
        _ => scalar::pack_premul(buf, signal, pre),
    }
}

/// Real-scalar pre-chirp multiply (the unpacked CZT input path):
/// `buf[j] = pre[j].scale(signal[j])`.
pub fn scale_premul(buf: &mut [Complex], signal: &[f64], pre: &[Complex]) {
    debug_assert_eq!(buf.len(), signal.len());
    debug_assert_eq!(buf.len(), pre.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2Fma => unsafe { avx2::scale_premul(buf, signal, pre) },
        _ => scalar::scale_premul(buf, signal, pre),
    }
}

/// Windowed frame average: `dst[i] = src[i] * win[i] * scale`.
pub fn window_scale(dst: &mut [f64], src: &[f64], win: &[f64], scale: f64) {
    debug_assert_eq!(dst.len(), src.len());
    debug_assert_eq!(dst.len(), win.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2Fma => unsafe { avx2::window_scale(dst, src, win, scale) },
        _ => scalar::window_scale(dst, src, win, scale),
    }
}

/// Fixed-point windowed accumulate, the front half of the quantized
/// pipeline: `accum[i] += mulhrs(samples[i], win_q15[i])`, where `mulhrs`
/// is the Q15 rounding multiply `(a·b + 2^14) >> 15`. Windowing happens
/// *before* accumulation so the running sum stays exact in `i32`
/// (`sweeps_per_frame · 32767` is far below `i32::MAX`). Bit-exact
/// between the scalar and AVX2 paths.
pub fn window_accum_q(accum: &mut [i32], samples: &[i16], win_q15: &[i16]) {
    debug_assert_eq!(accum.len(), samples.len());
    debug_assert_eq!(accum.len(), win_q15.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2Fma => unsafe { avx2::window_accum_q(accum, samples, win_q15) },
        _ => scalar::window_accum_q(accum, samples, win_q15),
    }
}

/// Late-dequantizing two-for-one packing: `buf[t] = (q[2t] + i·q[2t+1])
/// · scale · pre[t]`. This is where the quantized front half re-enters
/// the float domain — fused into the pre-chirp multiply so the
/// dequantized frame is never materialized.
///
/// # Panics
/// Panics if `q.len() < 2 * buf.len()` or `pre.len() < buf.len()`.
pub fn pack_premul_q(buf: &mut [Complex], q: &[i32], scale: f64, pre: &[Complex]) {
    assert!(q.len() >= 2 * buf.len());
    assert!(pre.len() >= buf.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2Fma => unsafe { avx2::pack_premul_q(buf, q, scale, pre) },
        _ => scalar::pack_premul_q(buf, q, scale, pre),
    }
}

/// Late-dequantizing real pre-chirp multiply (unpacked CZT input path):
/// `buf[j] = pre[j].scale(q[j] · scale)`.
pub fn scale_premul_q(buf: &mut [Complex], q: &[i32], scale: f64, pre: &[Complex]) {
    debug_assert_eq!(buf.len(), q.len());
    debug_assert_eq!(buf.len(), pre.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2Fma => unsafe { avx2::scale_premul_q(buf, q, scale, pre) },
        _ => scalar::scale_premul_q(buf, q, scale, pre),
    }
}

/// One radix-2 butterfly pass over a block: `a` and `b` are the lower and
/// upper halves, `tw` the stage's contiguous twiddles (`e^{-2πik/len}`,
/// conjugated on the fly when `conj` for the inverse direction):
/// `(a[k], b[k]) ← (a[k] + tw[k]·b[k], a[k] − tw[k]·b[k])`.
pub fn butterflies(a: &mut [Complex], b: &mut [Complex], tw: &[Complex], conj: bool) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), tw.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2Fma => unsafe { avx2::butterflies(a, b, tw, conj) },
        _ => scalar::butterflies(a, b, tw, conj),
    }
}

/// One whole radix-2 stage: the [`butterflies`] pass applied to every
/// `2·half` block of `data`, with the block loop *inside* the selected
/// kernel. Dispatching per stage instead of per block matters enormously
/// at the narrow early stages — a 2048-point transform has 1024
/// one-butterfly blocks at `half == 1`, and a per-block dispatch (path
/// load + call + slice setup) costs more than the butterfly itself.
///
/// # Panics
/// Panics (debug) if `data.len()` is not a multiple of `2·half` or
/// `tw.len() < half`.
pub fn fft_stage(data: &mut [Complex], half: usize, tw: &[Complex], conj: bool) {
    debug_assert!(data.len().is_multiple_of(2 * half));
    debug_assert!(tw.len() >= half);
    match active() {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2Fma => unsafe { avx2::fft_stage(data, half, tw, conj) },
        _ => scalar::fft_stage(data, half, tw, conj),
    }
}

/// One whole decimation-in-frequency radix-2 stage:
/// `(a[k], b[k]) ← (a[k] + b[k], (a[k] − b[k])·tw[k])` over every
/// `2·half` block. The DIF ladder (widest rank first) maps natural-order
/// input to a bit-reversed-order spectrum *without* a permutation pass —
/// inside a convolution the matching bit-reversed-input DIT inverse
/// undoes the ordering, so both bit-reversal passes vanish.
///
/// # Panics
/// Panics (debug) if `data.len()` is not a multiple of `2·half` or
/// `tw.len() < half`.
pub fn fft_stage_dif(data: &mut [Complex], half: usize, tw: &[Complex], conj: bool) {
    debug_assert!(data.len().is_multiple_of(2 * half));
    debug_assert!(tw.len() >= half);
    match active() {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2Fma => unsafe { avx2::fft_stage_dif(data, half, tw, conj) },
        _ => scalar::fft_stage_dif(data, half, tw, conj),
    }
}

/// Two consecutive DIT ranks — half-lengths `h` (twiddles `tw1`, length
/// `h`) then `2h` (twiddles `tw2`, length `2h`) — fused into **one** pass
/// over memory. Each group of four points is loaded once, carried through
/// both butterfly ranks in registers, and stored once, halving the FFT's
/// dominant cost (load/store traffic). Requires `h ≥ 2` and a power of
/// two (so the vector kernel never needs a tail).
///
/// # Panics
/// Panics (debug) if `h < 2`, `data.len()` is not a multiple of `4h`, or
/// a twiddle table is short.
pub fn fft_two_stages(
    data: &mut [Complex],
    h: usize,
    tw1: &[Complex],
    tw2: &[Complex],
    conj: bool,
) {
    debug_assert!(h >= 2 && h.is_power_of_two());
    debug_assert!(data.len().is_multiple_of(4 * h));
    debug_assert!(tw1.len() >= h && tw2.len() >= 2 * h);
    match active() {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2Fma => unsafe { avx2::fft_two_stages(data, h, tw1, tw2, conj) },
        _ => scalar::fft_two_stages(data, h, tw1, tw2, conj),
    }
}

/// Two consecutive DIF ranks — half-lengths `2h` (twiddles `tw2`) then
/// `h` (twiddles `tw1`) — fused into one pass over memory; the DIF mirror
/// of [`fft_two_stages`]. Same `h ≥ 2` power-of-two requirement.
///
/// # Panics
/// Panics (debug) if `h < 2`, `data.len()` is not a multiple of `4h`, or
/// a twiddle table is short.
pub fn fft_two_stages_dif(
    data: &mut [Complex],
    h: usize,
    tw1: &[Complex],
    tw2: &[Complex],
    conj: bool,
) {
    debug_assert!(h >= 2 && h.is_power_of_two());
    debug_assert!(data.len().is_multiple_of(4 * h));
    debug_assert!(tw1.len() >= h && tw2.len() >= 2 * h);
    match active() {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2Fma => unsafe { avx2::fft_two_stages_dif(data, h, tw1, tw2, conj) },
        _ => scalar::fft_two_stages_dif(data, h, tw1, tw2, conj),
    }
}

/// Scalar reference implementations. Public so the property suites (and
/// the forced-fallback CI test) can pin SIMD results against them
/// regardless of which path the process selected.
pub mod scalar {
    use super::Complex;

    /// Exact Q15 rounding multiply — the semantics of
    /// `_mm256_mulhrs_epi16` on lanes that cannot overflow (window
    /// coefficients are non-negative, so the `−32768 · −32768` corner
    /// never occurs).
    #[inline]
    pub fn mulhrs(a: i16, b: i16) -> i16 {
        (((a as i32 * b as i32) + (1 << 14)) >> 15) as i16
    }

    /// See [`super::pointwise_mul`].
    pub fn pointwise_mul(buf: &mut [Complex], k: &[Complex], conj: bool) {
        if conj {
            for (b, k) in buf.iter_mut().zip(k) {
                *b *= k.conj();
            }
        } else {
            for (b, k) in buf.iter_mut().zip(k) {
                *b *= *k;
            }
        }
    }

    /// See [`super::pointwise_mul_into`].
    pub fn pointwise_mul_into(out: &mut [Complex], a: &[Complex], b: &[Complex], conj: bool) {
        if conj {
            for (o, (x, y)) in out.iter_mut().zip(a.iter().zip(b)) {
                *o = *x * y.conj();
            }
        } else {
            for (o, (x, y)) in out.iter_mut().zip(a.iter().zip(b)) {
                *o = *x * *y;
            }
        }
    }

    /// See [`super::pack_premul`].
    pub fn pack_premul(buf: &mut [Complex], signal: &[f64], pre: &[Complex]) {
        for (t, (b, p)) in buf.iter_mut().zip(pre).enumerate() {
            *b = Complex::new(signal[2 * t], signal[2 * t + 1]) * *p;
        }
    }

    /// See [`super::scale_premul`].
    pub fn scale_premul(buf: &mut [Complex], signal: &[f64], pre: &[Complex]) {
        for (b, (&s, p)) in buf.iter_mut().zip(signal.iter().zip(pre)) {
            *b = p.scale(s);
        }
    }

    /// See [`super::window_scale`].
    pub fn window_scale(dst: &mut [f64], src: &[f64], win: &[f64], scale: f64) {
        for (d, (&s, &w)) in dst.iter_mut().zip(src.iter().zip(win)) {
            *d = s * w * scale;
        }
    }

    /// See [`super::window_accum_q`].
    pub fn window_accum_q(accum: &mut [i32], samples: &[i16], win_q15: &[i16]) {
        for (a, (&s, &w)) in accum.iter_mut().zip(samples.iter().zip(win_q15)) {
            *a += mulhrs(s, w) as i32;
        }
    }

    /// See [`super::pack_premul_q`].
    pub fn pack_premul_q(buf: &mut [Complex], q: &[i32], scale: f64, pre: &[Complex]) {
        for (t, (b, p)) in buf.iter_mut().zip(pre).enumerate() {
            *b = Complex::new(q[2 * t] as f64 * scale, q[2 * t + 1] as f64 * scale) * *p;
        }
    }

    /// See [`super::scale_premul_q`].
    pub fn scale_premul_q(buf: &mut [Complex], q: &[i32], scale: f64, pre: &[Complex]) {
        for (b, (&v, p)) in buf.iter_mut().zip(q.iter().zip(pre)) {
            *b = p.scale(v as f64 * scale);
        }
    }

    /// See [`super::butterflies`].
    pub fn butterflies(a: &mut [Complex], b: &mut [Complex], tw: &[Complex], conj: bool) {
        for k in 0..a.len() {
            let t = if conj { tw[k].conj() } else { tw[k] };
            let x = a[k];
            let y = b[k] * t;
            a[k] = x + y;
            b[k] = x - y;
        }
    }

    /// See [`super::fft_stage`].
    pub fn fft_stage(data: &mut [Complex], half: usize, tw: &[Complex], conj: bool) {
        for block in data.chunks_exact_mut(2 * half) {
            let (a, b) = block.split_at_mut(half);
            butterflies(a, b, &tw[..half], conj);
        }
    }

    /// See [`super::fft_stage_dif`].
    pub fn fft_stage_dif(data: &mut [Complex], half: usize, tw: &[Complex], conj: bool) {
        for block in data.chunks_exact_mut(2 * half) {
            let (a, b) = block.split_at_mut(half);
            for k in 0..half {
                let t = if conj { tw[k].conj() } else { tw[k] };
                let x = a[k];
                let y = b[k];
                a[k] = x + y;
                b[k] = (x - y) * t;
            }
        }
    }

    /// See [`super::fft_two_stages`].
    pub fn fft_two_stages(
        data: &mut [Complex],
        h: usize,
        tw1: &[Complex],
        tw2: &[Complex],
        conj: bool,
    ) {
        for block in data.chunks_exact_mut(4 * h) {
            for k in 0..h {
                let (t1, t2a, t2b) = if conj {
                    (tw1[k].conj(), tw2[k].conj(), tw2[k + h].conj())
                } else {
                    (tw1[k], tw2[k], tw2[k + h])
                };
                let x0 = block[k];
                let x1 = block[k + h] * t1;
                let x2 = block[k + 2 * h];
                let x3 = block[k + 3 * h] * t1;
                let y0 = x0 + x1;
                let y1 = x0 - x1;
                let u2 = (x2 + x3) * t2a;
                let u3 = (x2 - x3) * t2b;
                block[k] = y0 + u2;
                block[k + 2 * h] = y0 - u2;
                block[k + h] = y1 + u3;
                block[k + 3 * h] = y1 - u3;
            }
        }
    }

    /// See [`super::fft_two_stages_dif`].
    pub fn fft_two_stages_dif(
        data: &mut [Complex],
        h: usize,
        tw1: &[Complex],
        tw2: &[Complex],
        conj: bool,
    ) {
        for block in data.chunks_exact_mut(4 * h) {
            for k in 0..h {
                let (t1, t2a, t2b) = if conj {
                    (tw1[k].conj(), tw2[k].conj(), tw2[k + h].conj())
                } else {
                    (tw1[k], tw2[k], tw2[k + h])
                };
                let x0 = block[k];
                let x1 = block[k + h];
                let x2 = block[k + 2 * h];
                let x3 = block[k + 3 * h];
                let y0 = x0 + x2;
                let y2 = (x0 - x2) * t2a;
                let y1 = x1 + x3;
                let y3 = (x1 - x3) * t2b;
                block[k] = y0 + y1;
                block[k + h] = (y0 - y1) * t1;
                block[k + 2 * h] = y2 + y3;
                block[k + 3 * h] = (y2 - y3) * t1;
            }
        }
    }
}

/// AVX2 + FMA implementations. Everything here requires the caller to
/// have verified `avx2` and `fma` support (the dispatchers above only
/// take this branch after `is_x86_feature_detected!`). `Complex` is
/// `#[repr(C)]` `{ re: f64, im: f64 }`, so a `&[Complex]` is a valid
/// `[re, im, re, im, …]` `f64` sequence and one 256-bit register holds
/// two complex values.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::Complex;
    use core::arch::x86_64::*;

    /// Complex multiply of register pairs `a·b`, both `[re0, im0, re1,
    /// im1]`. `CONJ_B` selects `a·conj(b)` at compile time.
    ///
    /// even lane: `ar·br − ai·bi` (or `+` conjugated), odd lane:
    /// `ai·br + ar·bi` (or `−`), via `fmaddsub(a, dup(br), aswap·dup(bi))`.
    #[inline(always)]
    unsafe fn cmul<const CONJ_B: bool>(a: __m256d, b: __m256d) -> __m256d {
        let b_re = _mm256_movedup_pd(b); // [br0, br0, br1, br1]
        let mut b_im = _mm256_permute_pd(b, 0xF); // [bi0, bi0, bi1, bi1]
        if CONJ_B {
            b_im = _mm256_xor_pd(b_im, _mm256_set1_pd(-0.0));
        }
        let a_swap = _mm256_permute_pd(a, 0x5); // [ai0, ar0, ai1, ar1]
        _mm256_fmaddsub_pd(a, b_re, _mm256_mul_pd(a_swap, b_im))
    }

    #[inline(always)]
    unsafe fn load(p: *const Complex) -> __m256d {
        _mm256_loadu_pd(p as *const f64)
    }

    #[inline(always)]
    unsafe fn store(p: *mut Complex, v: __m256d) {
        _mm256_storeu_pd(p as *mut f64, v)
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn pointwise_mul(buf: &mut [Complex], k: &[Complex], conj: bool) {
        let n = buf.len().min(k.len());
        let pairs = n / 2;
        let bp = buf.as_mut_ptr();
        let kp = k.as_ptr();
        if conj {
            for i in 0..pairs {
                store(
                    bp.add(2 * i),
                    cmul::<true>(load(bp.add(2 * i)), load(kp.add(2 * i))),
                );
            }
        } else {
            for i in 0..pairs {
                store(
                    bp.add(2 * i),
                    cmul::<false>(load(bp.add(2 * i)), load(kp.add(2 * i))),
                );
            }
        }
        super::scalar::pointwise_mul(&mut buf[2 * pairs..n], &k[2 * pairs..n], conj);
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn pointwise_mul_into(
        out: &mut [Complex],
        a: &[Complex],
        b: &[Complex],
        conj: bool,
    ) {
        let n = out.len();
        let pairs = n / 2;
        let op = out.as_mut_ptr();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        if conj {
            for i in 0..pairs {
                store(
                    op.add(2 * i),
                    cmul::<true>(load(ap.add(2 * i)), load(bp.add(2 * i))),
                );
            }
        } else {
            for i in 0..pairs {
                store(
                    op.add(2 * i),
                    cmul::<false>(load(ap.add(2 * i)), load(bp.add(2 * i))),
                );
            }
        }
        super::scalar::pointwise_mul_into(
            &mut out[2 * pairs..],
            &a[2 * pairs..n],
            &b[2 * pairs..n],
            conj,
        );
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn pack_premul(buf: &mut [Complex], signal: &[f64], pre: &[Complex]) {
        let n = buf.len();
        let pairs = n / 2;
        let bp = buf.as_mut_ptr();
        let sp = signal.as_ptr();
        let pp = pre.as_ptr();
        for i in 0..pairs {
            // Four consecutive real samples ARE two packed complex values.
            let s = _mm256_loadu_pd(sp.add(4 * i));
            store(bp.add(2 * i), cmul::<false>(s, load(pp.add(2 * i))));
        }
        super::scalar::pack_premul(
            &mut buf[2 * pairs..],
            &signal[4 * pairs..],
            &pre[2 * pairs..n],
        );
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn scale_premul(buf: &mut [Complex], signal: &[f64], pre: &[Complex]) {
        let n = buf.len();
        let pairs = n / 2;
        let bp = buf.as_mut_ptr();
        let sp = signal.as_ptr();
        let pp = pre.as_ptr();
        for i in 0..pairs {
            let s = _mm_loadu_pd(sp.add(2 * i)); // [s0, s1]
                                                 // [s0, s0, s1, s1]: each real scalar duplicated over its pair.
            let dup = _mm256_permute4x64_pd(_mm256_castpd128_pd256(s), 0x50);
            store(bp.add(2 * i), _mm256_mul_pd(load(pp.add(2 * i)), dup));
        }
        super::scalar::scale_premul(
            &mut buf[2 * pairs..],
            &signal[2 * pairs..n],
            &pre[2 * pairs..n],
        );
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn window_scale(dst: &mut [f64], src: &[f64], win: &[f64], scale: f64) {
        let n = dst.len();
        let quads = n / 4;
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let wp = win.as_ptr();
        let sc = _mm256_set1_pd(scale);
        for i in 0..quads {
            let v = _mm256_mul_pd(
                _mm256_mul_pd(
                    _mm256_loadu_pd(sp.add(4 * i)),
                    _mm256_loadu_pd(wp.add(4 * i)),
                ),
                sc,
            );
            _mm256_storeu_pd(dp.add(4 * i), v);
        }
        super::scalar::window_scale(
            &mut dst[4 * quads..],
            &src[4 * quads..n],
            &win[4 * quads..n],
            scale,
        );
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn window_accum_q(accum: &mut [i32], samples: &[i16], win_q15: &[i16]) {
        let n = accum.len();
        let blocks = n / 16;
        let ap = accum.as_mut_ptr();
        let sp = samples.as_ptr();
        let wp = win_q15.as_ptr();
        for i in 0..blocks {
            let s = _mm256_loadu_si256(sp.add(16 * i) as *const __m256i);
            let w = _mm256_loadu_si256(wp.add(16 * i) as *const __m256i);
            let p = _mm256_mulhrs_epi16(s, w); // 16 × round(s·w / 2^15)
            let lo = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(p));
            let hi = _mm256_cvtepi16_epi32(_mm256_extracti128_si256(p, 1));
            let a0 = _mm256_loadu_si256(ap.add(16 * i) as *const __m256i);
            let a1 = _mm256_loadu_si256(ap.add(16 * i + 8) as *const __m256i);
            _mm256_storeu_si256(ap.add(16 * i) as *mut __m256i, _mm256_add_epi32(a0, lo));
            _mm256_storeu_si256(ap.add(16 * i + 8) as *mut __m256i, _mm256_add_epi32(a1, hi));
        }
        super::scalar::window_accum_q(
            &mut accum[16 * blocks..],
            &samples[16 * blocks..n],
            &win_q15[16 * blocks..n],
        );
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn pack_premul_q(
        buf: &mut [Complex],
        q: &[i32],
        scale: f64,
        pre: &[Complex],
    ) {
        let n = buf.len();
        let pairs = n / 2;
        let bp = buf.as_mut_ptr();
        let qp = q.as_ptr();
        let pp = pre.as_ptr();
        let sc = _mm256_set1_pd(scale);
        for i in 0..pairs {
            // Four i32 → four f64 lanes = two packed complex values.
            let qi = _mm_loadu_si128(qp.add(4 * i) as *const __m128i);
            let s = _mm256_mul_pd(_mm256_cvtepi32_pd(qi), sc);
            store(bp.add(2 * i), cmul::<false>(s, load(pp.add(2 * i))));
        }
        super::scalar::pack_premul_q(
            &mut buf[2 * pairs..],
            &q[4 * pairs..],
            scale,
            &pre[2 * pairs..n],
        );
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn scale_premul_q(
        buf: &mut [Complex],
        q: &[i32],
        scale: f64,
        pre: &[Complex],
    ) {
        let n = buf.len();
        let pairs = n / 2;
        let bp = buf.as_mut_ptr();
        let qp = q.as_ptr();
        let pp = pre.as_ptr();
        let sc = _mm_set1_pd(scale);
        for i in 0..pairs {
            let qi = _mm_loadl_epi64(qp.add(2 * i) as *const __m128i); // [q0, q1, _, _]
            let s = _mm_mul_pd(_mm_cvtepi32_pd(qi), sc); // [q0·sc, q1·sc]
            let dup = _mm256_permute4x64_pd(_mm256_castpd128_pd256(s), 0x50);
            store(bp.add(2 * i), _mm256_mul_pd(load(pp.add(2 * i)), dup));
        }
        super::scalar::scale_premul_q(
            &mut buf[2 * pairs..],
            &q[2 * pairs..n],
            scale,
            &pre[2 * pairs..n],
        );
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn butterflies(
        a: &mut [Complex],
        b: &mut [Complex],
        tw: &[Complex],
        conj: bool,
    ) {
        let n = a.len();
        let pairs = n / 2;
        let ap = a.as_mut_ptr();
        let bp = b.as_mut_ptr();
        let tp = tw.as_ptr();
        if conj {
            for k in 0..pairs {
                let y = cmul::<true>(load(bp.add(2 * k)), load(tp.add(2 * k)));
                let x = load(ap.add(2 * k));
                store(ap.add(2 * k), _mm256_add_pd(x, y));
                store(bp.add(2 * k), _mm256_sub_pd(x, y));
            }
        } else {
            for k in 0..pairs {
                let y = cmul::<false>(load(bp.add(2 * k)), load(tp.add(2 * k)));
                let x = load(ap.add(2 * k));
                store(ap.add(2 * k), _mm256_add_pd(x, y));
                store(bp.add(2 * k), _mm256_sub_pd(x, y));
            }
        }
        super::scalar::butterflies(
            &mut a[2 * pairs..],
            &mut b[2 * pairs..],
            &tw[2 * pairs..n],
            conj,
        );
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn fft_stage(data: &mut [Complex], half: usize, tw: &[Complex], conj: bool) {
        if half == 1 {
            // The first rank's lone twiddle is 1 (conjugation included):
            // `(a, b) ← (a + b, a − b)`. Two adjacent blocks are four
            // complex values — shuffle into ([a0, a1], [b0, b1]) halves,
            // add/sub, shuffle back.
            let n = data.len();
            let quads = n / 4;
            let dp = data.as_mut_ptr();
            for i in 0..quads {
                let v0 = load(dp.add(4 * i)); // [a0, b0]
                let v1 = load(dp.add(4 * i + 2)); // [a1, b1]
                let a = _mm256_permute2f128_pd(v0, v1, 0x20); // [a0, a1]
                let b = _mm256_permute2f128_pd(v0, v1, 0x31); // [b0, b1]
                let sum = _mm256_add_pd(a, b);
                let diff = _mm256_sub_pd(a, b);
                store(dp.add(4 * i), _mm256_permute2f128_pd(sum, diff, 0x20));
                store(dp.add(4 * i + 2), _mm256_permute2f128_pd(sum, diff, 0x31));
            }
            for block in data[4 * quads..].chunks_exact_mut(2) {
                let (x, y) = (block[0], block[1]);
                block[0] = x + y;
                block[1] = x - y;
            }
            return;
        }
        for block in data.chunks_exact_mut(2 * half) {
            let (a, b) = block.split_at_mut(half);
            butterflies(a, b, &tw[..half], conj);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn fft_stage_dif(
        data: &mut [Complex],
        half: usize,
        tw: &[Complex],
        conj: bool,
    ) {
        if half == 1 {
            // The last DIF rank's lone twiddle is 1, so it is the same
            // add/sub shuffle as the first DIT rank.
            fft_stage(data, 1, tw, conj);
            return;
        }
        let pairs = half / 2;
        for block in data.chunks_exact_mut(2 * half) {
            let (a, b) = block.split_at_mut(half);
            let ap = a.as_mut_ptr();
            let bp = b.as_mut_ptr();
            let tp = tw.as_ptr();
            if conj {
                for k in 0..pairs {
                    let x = load(ap.add(2 * k));
                    let y = load(bp.add(2 * k));
                    store(ap.add(2 * k), _mm256_add_pd(x, y));
                    let d = _mm256_sub_pd(x, y);
                    store(bp.add(2 * k), cmul::<true>(d, load(tp.add(2 * k))));
                }
            } else {
                for k in 0..pairs {
                    let x = load(ap.add(2 * k));
                    let y = load(bp.add(2 * k));
                    store(ap.add(2 * k), _mm256_add_pd(x, y));
                    let d = _mm256_sub_pd(x, y);
                    store(bp.add(2 * k), cmul::<false>(d, load(tp.add(2 * k))));
                }
            }
            for k in 2 * pairs..half {
                let t = if conj { tw[k].conj() } else { tw[k] };
                let x = a[k];
                let y = b[k];
                a[k] = x + y;
                b[k] = (x - y) * t;
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn fft_two_stages(
        data: &mut [Complex],
        h: usize,
        tw1: &[Complex],
        tw2: &[Complex],
        conj: bool,
    ) {
        // `h` is a power of two ≥ 2, so the k-loop (step 2 complex) has no
        // tail and every pointer below stays in bounds.
        let t1p = tw1.as_ptr();
        let t2p = tw2.as_ptr();
        for block in data.chunks_exact_mut(4 * h) {
            let dp = block.as_mut_ptr();
            macro_rules! body {
                ($conj:literal) => {
                    for k in (0..h).step_by(2) {
                        let t1 = load(t1p.add(k));
                        let x0 = load(dp.add(k));
                        let x1 = cmul::<$conj>(load(dp.add(k + h)), t1);
                        let x2 = load(dp.add(k + 2 * h));
                        let x3 = cmul::<$conj>(load(dp.add(k + 3 * h)), t1);
                        let y0 = _mm256_add_pd(x0, x1);
                        let y1 = _mm256_sub_pd(x0, x1);
                        let u2 = cmul::<$conj>(_mm256_add_pd(x2, x3), load(t2p.add(k)));
                        let u3 = cmul::<$conj>(_mm256_sub_pd(x2, x3), load(t2p.add(k + h)));
                        store(dp.add(k), _mm256_add_pd(y0, u2));
                        store(dp.add(k + 2 * h), _mm256_sub_pd(y0, u2));
                        store(dp.add(k + h), _mm256_add_pd(y1, u3));
                        store(dp.add(k + 3 * h), _mm256_sub_pd(y1, u3));
                    }
                };
            }
            if conj {
                body!(true);
            } else {
                body!(false);
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn fft_two_stages_dif(
        data: &mut [Complex],
        h: usize,
        tw1: &[Complex],
        tw2: &[Complex],
        conj: bool,
    ) {
        let t1p = tw1.as_ptr();
        let t2p = tw2.as_ptr();
        for block in data.chunks_exact_mut(4 * h) {
            let dp = block.as_mut_ptr();
            macro_rules! body {
                ($conj:literal) => {
                    for k in (0..h).step_by(2) {
                        let x0 = load(dp.add(k));
                        let x1 = load(dp.add(k + h));
                        let x2 = load(dp.add(k + 2 * h));
                        let x3 = load(dp.add(k + 3 * h));
                        let y0 = _mm256_add_pd(x0, x2);
                        let y2 = cmul::<$conj>(_mm256_sub_pd(x0, x2), load(t2p.add(k)));
                        let y1 = _mm256_add_pd(x1, x3);
                        let y3 = cmul::<$conj>(_mm256_sub_pd(x1, x3), load(t2p.add(k + h)));
                        let t1 = load(t1p.add(k));
                        store(dp.add(k), _mm256_add_pd(y0, y1));
                        store(dp.add(k + h), cmul::<$conj>(_mm256_sub_pd(y0, y1), t1));
                        store(dp.add(k + 2 * h), _mm256_add_pd(y2, y3));
                        store(dp.add(k + 3 * h), cmul::<$conj>(_mm256_sub_pd(y2, y3), t1));
                    }
                };
            }
            if conj {
                body!(true);
            } else {
                body!(false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.61).sin() + 0.2 * (i as f64 * 1.7).cos())
            .collect()
    }

    fn complexes(n: usize, seed: f64) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                Complex::new(
                    (i as f64 * 0.37 + seed).cos(),
                    (i as f64 * 0.91 - seed).sin(),
                )
            })
            .collect()
    }

    fn close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() <= tol, "element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn dispatched_kernels_match_scalar_reference() {
        // Odd lengths force the tail path on every kernel.
        for n in [0usize, 1, 2, 3, 7, 16, 33, 250] {
            let k = complexes(n, 0.3);
            let mut a = complexes(n, 1.1);
            let mut r = a.clone();
            pointwise_mul(&mut a, &k, false);
            scalar::pointwise_mul(&mut r, &k, false);
            close(&a, &r, 1e-12 * (n + 1) as f64);

            let mut a = complexes(n, 2.2);
            let mut r = a.clone();
            pointwise_mul(&mut a, &k, true);
            scalar::pointwise_mul(&mut r, &k, true);
            close(&a, &r, 1e-12 * (n + 1) as f64);

            let s = signal(2 * n);
            let mut a = vec![Complex::ZERO; n];
            let mut r = a.clone();
            pack_premul(&mut a, &s, &k);
            scalar::pack_premul(&mut r, &s, &k);
            close(&a, &r, 1e-12 * (n + 1) as f64);

            let s = signal(n);
            let mut a = vec![Complex::ZERO; n];
            let mut r = a.clone();
            scale_premul(&mut a, &s, &k);
            scalar::scale_premul(&mut r, &s, &k);
            close(&a, &r, 1e-12 * (n + 1) as f64);
        }
    }

    #[test]
    fn fixed_point_kernels_are_bit_exact_across_paths() {
        for n in [0usize, 1, 15, 16, 17, 100, 2500] {
            let samples: Vec<i16> = (0..n).map(|i| ((i * 2731 + 7) % 65536) as i16).collect();
            let win: Vec<i16> = (0..n).map(|i| ((i * 911) % 32768) as i16).collect();
            let mut a = vec![3i32; n];
            let mut r = a.clone();
            window_accum_q(&mut a, &samples, &win);
            scalar::window_accum_q(&mut r, &samples, &win);
            assert_eq!(a, r, "n={n}");
        }
    }

    #[test]
    fn butterfly_pass_matches_scalar() {
        for half in [1usize, 2, 3, 8, 33] {
            let tw: Vec<Complex> = (0..half)
                .map(|k| Complex::cis(-std::f64::consts::PI * k as f64 / half as f64))
                .collect();
            for conj in [false, true] {
                let mut a = complexes(half, 0.1);
                let mut b = complexes(half, 0.7);
                let (mut ra, mut rb) = (a.clone(), b.clone());
                butterflies(&mut a, &mut b, &tw, conj);
                scalar::butterflies(&mut ra, &mut rb, &tw, conj);
                close(&a, &ra, 1e-12 * (half + 1) as f64);
                close(&b, &rb, 1e-12 * (half + 1) as f64);
            }
        }
    }

    fn stage_tw(half: usize) -> Vec<Complex> {
        (0..half)
            .map(|k| Complex::cis(-std::f64::consts::PI * k as f64 / half as f64))
            .collect()
    }

    #[test]
    fn whole_stage_kernels_match_scalar() {
        // Multiple blocks per stage, including the specialized half == 1
        // pass (with a non-multiple-of-4 total so its scalar tail runs).
        for (n, half) in [(2usize, 1usize), (8, 1), (6, 1), (8, 2), (16, 4), (48, 8)] {
            let tw = stage_tw(half);
            for conj in [false, true] {
                let mut a = complexes(n, 0.4);
                let mut r = a.clone();
                fft_stage(&mut a, half, &tw, conj);
                scalar::fft_stage(&mut r, half, &tw, conj);
                close(&a, &r, 1e-12 * (n + 1) as f64);

                let mut a = complexes(n, 1.9);
                let mut r = a.clone();
                fft_stage_dif(&mut a, half, &tw, conj);
                scalar::fft_stage_dif(&mut r, half, &tw, conj);
                close(&a, &r, 1e-12 * (n + 1) as f64);
            }
        }
    }

    #[test]
    fn fused_two_stage_passes_match_single_stages() {
        // The radix-2² fusion must equal running the two ranks it covers
        // back-to-back through the scalar single-stage reference.
        for (n, h) in [(8usize, 2usize), (16, 2), (16, 4), (64, 8), (256, 16)] {
            let tw1 = stage_tw(h);
            let tw2 = stage_tw(2 * h);
            for conj in [false, true] {
                let mut a = complexes(n, 0.6);
                let mut r = a.clone();
                fft_two_stages(&mut a, h, &tw1, &tw2, conj);
                scalar::fft_stage(&mut r, h, &tw1, conj);
                scalar::fft_stage(&mut r, 2 * h, &tw2, conj);
                close(&a, &r, 1e-12 * (n + 1) as f64);

                let mut a = complexes(n, 2.4);
                let mut r = a.clone();
                fft_two_stages_dif(&mut a, h, &tw1, &tw2, conj);
                scalar::fft_stage_dif(&mut r, 2 * h, &tw2, conj);
                scalar::fft_stage_dif(&mut r, h, &tw1, conj);
                close(&a, &r, 1e-12 * (n + 1) as f64);

                // The scalar fused variants against the same references.
                let mut a = complexes(n, 0.6);
                let mut r = a.clone();
                scalar::fft_two_stages(&mut a, h, &tw1, &tw2, conj);
                scalar::fft_stage(&mut r, h, &tw1, conj);
                scalar::fft_stage(&mut r, 2 * h, &tw2, conj);
                close(&a, &r, 1e-12 * (n + 1) as f64);

                let mut a = complexes(n, 2.4);
                let mut r = a.clone();
                scalar::fft_two_stages_dif(&mut a, h, &tw1, &tw2, conj);
                scalar::fft_stage_dif(&mut r, 2 * h, &tw2, conj);
                scalar::fft_stage_dif(&mut r, h, &tw1, conj);
                close(&a, &r, 1e-12 * (n + 1) as f64);
            }
        }
    }

    #[test]
    fn selection_is_stable_and_reported() {
        let first = active();
        assert_eq!(first, active(), "path must not change once selected");
        assert!(first.lanes() >= 1);
    }
}
