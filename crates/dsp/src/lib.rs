//! DSP substrate for the WiTrack reproduction.
//!
//! Everything signal-processing the system needs, implemented from scratch
//! (the approved dependency list has no FFT/linear-algebra crates, and the
//! point of the reproduction is to own these code paths):
//!
//! * [`Complex`] — complex arithmetic for baseband signals.
//! * [`fft`] — an iterative radix-2 FFT plus a Bluestein chirp-Z fallback so
//!   *exact* non-power-of-two lengths work. WiTrack's sweep is 2500 samples
//!   (2.5 ms at 1 MS/s); transforming at the exact length keeps the paper's
//!   400 Hz bins = 8.87 cm one-way range resolution (Eq. 3).
//! * [`czt`] — the zoomed chirp-Z transform: exactly the `keep_bins` range
//!   bins an indoor scene occupies, computed from the real sweep via
//!   two-for-one packing and a pruned convolution (the per-frame hot path;
//!   see the module docs for the cost accounting).
//! * [`window`] — tapers for spectral analysis.
//! * [`kalman`] — the 1-D constant-velocity Kalman filter used to smooth
//!   per-antenna distance estimates (paper §4.4 "Filtering").
//! * [`filters`] — outlier rejection and hold-last interpolation (paper §4.4
//!   "Outlier Rejection" and "Interpolation").
//! * [`regression`] — ordinary, Theil–Sen, and Tukey-bisquare robust line
//!   fits (paper §6.1 step 3 "robust regression").
//! * [`peak`] — noise-floor estimation, local maxima, and parabolic sub-bin
//!   refinement (the contour-tracking primitives of §4.3).
//! * [`stats`] — order statistics and empirical CDFs for the evaluation
//!   harness (Figs. 8–11 report medians, 90th percentiles, CDFs).
//! * [`simd`] — runtime-dispatched AVX2/scalar kernels behind the hot
//!   inner loops above (the one module permitted `unsafe`, for the raw
//!   intrinsics; the rest of the crate denies it).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod complex;
pub mod czt;
pub mod fft;
pub mod filters;
pub mod kalman;
pub mod peak;
pub(crate) mod plan_cache;
pub mod regression;
pub mod simd;
pub mod stats;
pub mod window;

pub use complex::Complex;
pub use czt::{Czt, CztScratch};
pub use fft::Fft;
pub use kalman::Kalman1D;
