//! Zoomed chirp-Z range transform: the first `keep` bins of an `n`-point
//! DFT, without computing the other `n − keep`.
//!
//! The FMCW receiver needs only the range bins an indoor scene can occupy —
//! roughly 200 of the sweep's 2500 (paper §4.1: beat frequencies map to
//! round-trip distance, and the profiler truncates at `max_round_trip_m`).
//! Computing the full 2500-point DFT and discarding 92% of it is wasted
//! work: Bluestein's identity turns *any* contiguous band of DFT bins into
//! a linear convolution, and the convolution length only has to cover
//! `input + band − 1` points, not `2n − 1`.
//!
//! Two structural savings stack on top of each other:
//!
//! 1. **Pruning** — the inner radix-2 convolution length drops from
//!    `next_pow2(2n − 1)` (8192 for n = 2500) to
//!    `next_pow2(n + keep − 1)`, and the pointwise product shrinks with it.
//! 2. **Real-input two-for-one packing** — a real sweep of even length `n`
//!    is packed into `n/2` complex points `z[t] = x[2t] + i·x[2t+1]`. The
//!    kept band of the `n`-point spectrum unpacks from a *band* of the
//!    `n/2`-point spectrum of `z` (bins `−(keep−1) … keep−1`, i.e.
//!    `2·keep − 1` bins), so the chirp-Z convolution runs over `n/2` input
//!    points. For the paper config (n = 2500, keep ≈ 200) the inner length
//!    falls to `next_pow2(1250 + 399 − 1) = 2048` — a quarter of the full
//!    Bluestein path's butterflies.
//!
//! A [`Czt`] value is a *plan* (chirps, kernel spectrum, twiddles — all
//! precomputed); per-call work happens in a caller-owned [`CztScratch`], so
//! one shared `&Czt` plan can serve several antenna threads, and the hot
//! path never allocates.

use crate::complex::Complex;
use crate::fft::{Direction, Radix2Plan};
use crate::plan_cache::PlanCache;
use std::f64::consts::PI;
use std::sync::{Arc, OnceLock};

/// `e^{-iπ t²/den}` with `t²` reduced mod `2·den` so large `t` keeps full
/// precision (the exponential has period `2·den` in `t²`).
fn chirp(t: usize, den: usize) -> Complex {
    let j = (t * t) % (2 * den);
    Complex::cis(-PI * j as f64 / den as f64)
}

/// Evaluates bins `k0 … k0+bins−1` of the `dft_len`-point DFT of `n_in`
/// complex samples, as one pre-chirp multiply, a circular convolution of
/// length `m = next_pow2(n_in + bins − 1)`, and a post-chirp multiply.
///
/// This is also the engine behind [`crate::fft::Fft`]'s Bluestein path:
/// an arbitrary-length full DFT is the `n_in = dft_len = bins`, `k0 = 0`
/// special case (with the chirps and kernel conjugated for the inverse
/// direction), so the subtle numerics — the mod-2N chirp reduction and the
/// two-arc circular kernel layout — live in exactly one place.
#[derive(Debug, Clone)]
pub(crate) struct CztCore {
    n_in: usize,
    bins: usize,
    /// Inner power-of-two convolution length.
    m: usize,
    inner: Radix2Plan,
    /// `pre[j] = w^{j·k0} · e^{-iπj²/dft_len}` — folded input chirp.
    pre: Vec<Complex>,
    /// `post[s] = e^{-iπs²/dft_len} / m` — output chirp with the inverse
    /// transform's 1/m normalization folded in.
    post: Vec<Complex>,
    /// Forward transform of the circularly-laid-out kernel
    /// `b[u] = e^{+iπu²/dft_len}`, `u ∈ (−n_in, bins)`.
    kernel_fft: Vec<Complex>,
}

impl CztCore {
    /// `k0` is the (possibly negative) index of the first evaluated bin.
    pub(crate) fn new(n_in: usize, dft_len: usize, bins: usize, k0: i64) -> CztCore {
        debug_assert!(n_in >= 1 && bins >= 1);
        let m = (n_in + bins - 1).next_power_of_two();
        let inner = Radix2Plan::new(m);
        let pre: Vec<Complex> = (0..n_in)
            .map(|j| {
                // w^{j·k0} = e^{-2πi·(j·k0 mod dft_len)/dft_len}.
                let jk = (j as i64 * k0).rem_euclid(dft_len as i64);
                Complex::cis(-2.0 * PI * jk as f64 / dft_len as f64) * chirp(j, dft_len)
            })
            .collect();
        let inv_m = 1.0 / m as f64;
        let post: Vec<Complex> = (0..bins).map(|s| chirp(s, dft_len).scale(inv_m)).collect();
        // Kernel b[u] = conj(chirp(u)); b is even in u, laid out circularly
        // over [0, bins) ∪ (m − n_in, m). m ≥ n_in + bins − 1 keeps the two
        // arcs disjoint, so the linear convolution is exact.
        let mut kernel = vec![Complex::ZERO; m];
        for (u, k) in kernel.iter_mut().enumerate().take(bins) {
            *k = chirp(u, dft_len).conj();
        }
        for t in 1..n_in {
            kernel[m - t] = chirp(t, dft_len).conj();
        }
        // Stored in the same bit-reversed order `forward_noperm` leaves the
        // data in, so the convolution's pointwise multiply lines up without
        // either side paying a permutation pass.
        inner.forward_noperm(&mut kernel);
        CztCore {
            n_in,
            bins,
            m,
            inner,
            pre,
            post,
            kernel_fft: kernel,
        }
    }

    /// The inner convolution length (the scratch size a caller must
    /// provide).
    pub(crate) fn inner_len(&self) -> usize {
        self.m
    }

    /// Runs the convolution over `buf` (length `m`; caller has already
    /// written `input[j]·pre[j]` into `buf[..n_in]` and zeroed the rest)
    /// and writes the `bins` outputs into `out`. `dir` conjugates the
    /// kernel and output chirp, turning the evaluated band of the forward
    /// DFT into the same band of the inverse (un-normalized) DFT.
    fn convolve(&self, buf: &mut [Complex], out: &mut [Complex], dir: Direction) {
        debug_assert_eq!(buf.len(), self.m);
        debug_assert_eq!(out.len(), self.bins);
        // DIF forward / DIT inverse with no bit-reversal passes: the
        // spectrum is bit-reversed in between, but the pointwise product
        // is order-agnostic (the kernel transform is stored in the same
        // order) and the inverse restores natural order.
        self.inner.forward_noperm(buf);
        // The kernel is even (b[u] = b[−u]), so conjugating its
        // *transform* — what the Inverse direction needs — is exactly the
        // transform of the conjugated kernel.
        crate::simd::pointwise_mul(buf, &self.kernel_fft, dir == Direction::Inverse);
        self.inner.inverse_noperm(buf);
        crate::simd::pointwise_mul_into(
            out,
            &buf[..self.bins],
            &self.post,
            dir == Direction::Inverse,
        );
    }

    /// Full-spectrum transform with `data` serving as both input and
    /// output — the Bluestein entry point ([`crate::fft::Fft`] wraps this
    /// for non-power-of-two lengths). Requires a plan built with
    /// `bins == n_in` and `k0 == 0`; the caller applies any 1/N
    /// normalization for the inverse direction.
    pub(crate) fn transform_in_place(
        &self,
        data: &mut [Complex],
        buf: &mut [Complex],
        dir: Direction,
    ) {
        debug_assert_eq!(data.len(), self.n_in);
        debug_assert_eq!(self.bins, self.n_in, "in-place needs a full-band plan");
        crate::simd::pointwise_mul_into(
            &mut buf[..self.n_in],
            data,
            &self.pre,
            dir == Direction::Inverse,
        );
        buf[self.n_in..].fill(Complex::ZERO);
        self.convolve(buf, data, dir);
    }
}

#[derive(Debug, Clone)]
enum CztKind {
    /// Even `n`, `keep ≤ n/2`: two-for-one packing. The core evaluates
    /// `2·keep − 1` bins of the `n/2`-point DFT starting at bin `−(keep−1)`;
    /// `unpack[k] = e^{-2πik/n}/2` recombines them into the kept band.
    Packed { core: CztCore, unpack: Vec<Complex> },
    /// General fallback (odd `n`, or `keep > n/2`): chirp-Z straight off the
    /// `n` real samples.
    Direct { core: CztCore },
}

/// A reusable plan computing bins `0 … keep−1` of the `n`-point DFT of a
/// real signal. See the module docs for the algorithm.
#[derive(Debug, Clone)]
pub struct Czt {
    n: usize,
    keep: usize,
    kind: CztKind,
}

/// Caller-owned working memory for [`Czt::transform_into`]. Create one per
/// worker thread with [`Czt::make_scratch`]; the plan itself stays shared
/// and immutable, and repeated transforms never allocate.
#[derive(Debug, Clone)]
pub struct CztScratch {
    /// Inner convolution buffer (length `m`).
    buf: Vec<Complex>,
    /// Band of the packed half-length spectrum (empty for the direct path).
    band: Vec<Complex>,
}

impl CztScratch {
    /// Base pointer of the convolution buffer — lets tests assert the
    /// buffer is never reallocated across transforms.
    pub fn buf_ptr(&self) -> *const Complex {
        self.buf.as_ptr()
    }

    /// Capacity of the convolution buffer, for the same purpose.
    pub fn buf_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Base pointer of the packed-spectrum band buffer (empty and unused —
    /// though still a dangling non-null pointer — when the plan takes the
    /// direct path; check [`CztScratch::band_capacity`] for emptiness).
    pub fn band_ptr(&self) -> *const Complex {
        self.band.as_ptr()
    }

    /// Capacity of the band buffer.
    pub fn band_capacity(&self) -> usize {
        self.band.capacity()
    }
}

/// Process-wide registry of shared [`Czt`] plans, keyed by `(n, keep)`.
static SHARED_PLANS: OnceLock<PlanCache<(usize, usize), Czt>> = OnceLock::new();

impl Czt {
    /// The process-shared plan for `(n, keep)`: built on first request,
    /// then handed out as clones of one `Arc` for as long as any user
    /// holds it. A plan is immutable after construction (all per-call
    /// state lives in [`CztScratch`]), so every pipeline on a host — and
    /// every antenna within each pipeline — can run off one instance
    /// instead of duplicating ~85 KiB of chirp/kernel tables per sensor
    /// per antenna at the paper configuration.
    ///
    /// # Panics
    /// Panics on the same degenerate shapes as [`Czt::new`].
    pub fn shared(n: usize, keep: usize) -> Arc<Czt> {
        SHARED_PLANS
            .get_or_init(PlanCache::new)
            .get_or_build((n, keep), || Czt::new(n, keep))
    }

    /// Builds a plan for `keep` output bins over real inputs of length `n`.
    ///
    /// # Panics
    /// Panics if `n == 0`, `keep == 0`, or `keep > n`.
    pub fn new(n: usize, keep: usize) -> Czt {
        assert!(n > 0, "CZT input length must be positive");
        assert!(keep > 0, "CZT must keep at least one bin");
        assert!(keep <= n, "cannot keep more bins than the DFT has");
        let kind = if n.is_multiple_of(2) && keep <= n / 2 {
            let h = n / 2;
            let band = 2 * keep - 1;
            let core = CztCore::new(h, h, band, -((keep as i64) - 1));
            let unpack = (0..keep)
                .map(|k| Complex::cis(-2.0 * PI * k as f64 / n as f64).scale(0.5))
                .collect();
            CztKind::Packed { core, unpack }
        } else {
            CztKind::Direct {
                core: CztCore::new(n, n, keep, 0),
            }
        };
        Czt { n, keep, kind }
    }

    /// The real input length the plan expects.
    pub fn input_len(&self) -> usize {
        self.n
    }

    /// The number of DFT bins the plan produces.
    pub fn output_len(&self) -> usize {
        self.keep
    }

    /// Inner convolution length (the size of the radix-2 transforms each
    /// call performs) — exposed for benchmarks and diagnostics.
    pub fn inner_len(&self) -> usize {
        match &self.kind {
            CztKind::Packed { core, .. } | CztKind::Direct { core } => core.m,
        }
    }

    /// Allocates working memory sized for this plan.
    pub fn make_scratch(&self) -> CztScratch {
        match &self.kind {
            CztKind::Packed { core, .. } => CztScratch {
                buf: vec![Complex::ZERO; core.m],
                band: vec![Complex::ZERO; core.bins],
            },
            CztKind::Direct { core } => CztScratch {
                buf: vec![Complex::ZERO; core.m],
                band: Vec::new(),
            },
        }
    }

    /// Computes `out[k] = Σ_j signal[j]·e^{-2πijk/n}` for `k < keep`,
    /// allocation-free: all working state lives in `scratch`.
    ///
    /// # Panics
    /// Panics if `signal.len() != n`, `out.len() != keep`, or `scratch` was
    /// made for a different plan shape.
    pub fn transform_into(&self, signal: &[f64], out: &mut [Complex], scratch: &mut CztScratch) {
        assert_eq!(signal.len(), self.n, "signal length must match plan");
        assert_eq!(out.len(), self.keep, "output length must match plan");
        match &self.kind {
            CztKind::Packed { core, unpack } => {
                assert_eq!(
                    scratch.buf.len(),
                    core.m,
                    "scratch built for a different plan"
                );
                assert_eq!(
                    scratch.band.len(),
                    core.bins,
                    "scratch built for a different plan"
                );
                let h = core.n_in;
                crate::simd::pack_premul(&mut scratch.buf[..h], signal, &core.pre);
                scratch.buf[h..].fill(Complex::ZERO);
                core.convolve(&mut scratch.buf, &mut scratch.band, Direction::Forward);
                unpack_band(out, &scratch.band, unpack, self.keep);
            }
            CztKind::Direct { core } => {
                assert_eq!(
                    scratch.buf.len(),
                    core.m,
                    "scratch built for a different plan"
                );
                crate::simd::scale_premul(&mut scratch.buf[..core.n_in], signal, &core.pre);
                scratch.buf[core.n_in..].fill(Complex::ZERO);
                core.convolve(&mut scratch.buf, out, Direction::Forward);
            }
        }
    }

    /// The quantized-front-half twin of [`Czt::transform_into`]: computes
    /// the same kept band from an `i32` fixed-point signal, dequantizing
    /// `signal_q[j] · scale` **inside** the pre-chirp multiply. This is
    /// the last step of the integer pipeline front — the dequantized
    /// frame never exists as an `f64` array, the samples go straight from
    /// `i32` lanes into the chirp product.
    ///
    /// Equivalent (to f64 rounding) to dequantizing into a temporary and
    /// calling [`Czt::transform_into`]; the equivalence suites pin the
    /// two against each other.
    ///
    /// # Panics
    /// Panics if `signal_q.len() != n`, `out.len() != keep`, or `scratch`
    /// was made for a different plan shape.
    pub fn transform_q_into(
        &self,
        signal_q: &[i32],
        scale: f64,
        out: &mut [Complex],
        scratch: &mut CztScratch,
    ) {
        assert_eq!(signal_q.len(), self.n, "signal length must match plan");
        assert_eq!(out.len(), self.keep, "output length must match plan");
        match &self.kind {
            CztKind::Packed { core, unpack } => {
                assert_eq!(
                    scratch.buf.len(),
                    core.m,
                    "scratch built for a different plan"
                );
                assert_eq!(
                    scratch.band.len(),
                    core.bins,
                    "scratch built for a different plan"
                );
                let h = core.n_in;
                crate::simd::pack_premul_q(&mut scratch.buf[..h], signal_q, scale, &core.pre);
                scratch.buf[h..].fill(Complex::ZERO);
                core.convolve(&mut scratch.buf, &mut scratch.band, Direction::Forward);
                unpack_band(out, &scratch.band, unpack, self.keep);
            }
            CztKind::Direct { core } => {
                assert_eq!(
                    scratch.buf.len(),
                    core.m,
                    "scratch built for a different plan"
                );
                crate::simd::scale_premul_q(
                    &mut scratch.buf[..core.n_in],
                    signal_q,
                    scale,
                    &core.pre,
                );
                scratch.buf[core.n_in..].fill(Complex::ZERO);
                core.convolve(&mut scratch.buf, out, Direction::Forward);
            }
        }
    }

    /// Cache-blocked batch transform: runs `transform_into` for each
    /// frame in `signals` back to back through **one** scratch, writing
    /// frame `i`'s bins into `outs[i·keep .. (i+1)·keep]`. Processing a
    /// group of co-planned frames in one call keeps the plan's chirp,
    /// kernel, and twiddle tables (~85 KiB at the paper shape) resident
    /// in cache across the whole group instead of re-faulting them per
    /// frame — the serving engine's shard batching and the `t_dsp` bench
    /// drive this entry point.
    ///
    /// # Panics
    /// Panics if any signal's length differs from the plan, or if
    /// `outs.len() != signals.len() * keep`.
    pub fn transform_many_into(
        &self,
        signals: &[&[f64]],
        outs: &mut [Complex],
        scratch: &mut CztScratch,
    ) {
        assert_eq!(
            outs.len(),
            signals.len() * self.keep,
            "output must hold keep bins per frame"
        );
        for (signal, out) in signals.iter().zip(outs.chunks_exact_mut(self.keep)) {
            self.transform_into(signal, out, scratch);
        }
    }

    /// Convenience wrapper that allocates the output and scratch — for
    /// tests and one-shot callers, not hot paths.
    pub fn transform(&self, signal: &[f64]) -> Vec<Complex> {
        let mut scratch = self.make_scratch();
        let mut out = vec![Complex::ZERO; self.keep];
        self.transform_into(signal, &mut out, &mut scratch);
        out
    }
}

/// Even/odd recombination of the packed half-length band into the kept
/// bins. `band[s] = Z[s − (keep−1)]` of the `n/2`-point packed spectrum;
/// the split is `E[k] = (Z[k] + conj(Z[−k]))/2`,
/// `O[k] = −i(Z[k] − conj(Z[−k]))/2`, `X[k] = E[k] + W_n^k·O[k]`, with
/// `unpack[k] = W_n^k/2` carrying the odd term's half.
fn unpack_band(out: &mut [Complex], band: &[Complex], unpack: &[Complex], keep: usize) {
    let kc = keep - 1;
    for (k, (o, w)) in out.iter_mut().zip(unpack).enumerate() {
        let z = band[kc + k];
        let zr = band[kc - k].conj();
        let e = (z + zr).scale(0.5);
        let od = Complex::new(0.0, -1.0) * (z - zr); // 2·O[k]
        *o = e + *w * od;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::{dft_naive, Fft};

    fn naive_band(signal: &[f64], keep: usize) -> Vec<Complex> {
        let data: Vec<Complex> = signal.iter().map(|&x| Complex::real(x)).collect();
        let mut full = dft_naive(&data);
        full.truncate(keep);
        full
    }

    fn band_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() <= tol, "bin {i}: {x} vs {y}");
        }
    }

    fn test_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.7).sin() + 0.3 * (i as f64 * 2.9).cos())
            .collect()
    }

    #[test]
    fn packed_path_matches_naive_dft() {
        for (n, keep) in [(16usize, 5usize), (30, 7), (100, 50), (250, 20), (2500, 13)] {
            let signal = test_signal(n);
            let czt = Czt::new(n, keep);
            assert!(
                matches!(czt.kind, CztKind::Packed { .. }),
                "n={n} keep={keep}"
            );
            band_close(
                &czt.transform(&signal),
                &naive_band(&signal, keep),
                1e-9 * n as f64,
            );
        }
    }

    #[test]
    fn direct_path_matches_naive_dft() {
        // Odd lengths and keep > n/2 take the unpacked chirp-Z route.
        for (n, keep) in [(25usize, 5usize), (99, 40), (625, 11), (30, 29), (16, 16)] {
            let signal = test_signal(n);
            let czt = Czt::new(n, keep);
            band_close(
                &czt.transform(&signal),
                &naive_band(&signal, keep),
                1e-9 * n as f64,
            );
        }
    }

    #[test]
    fn paper_config_matches_naive_and_bluestein() {
        // The exact WiTrack shape: 2500 samples, ~200 kept range bins.
        let (n, keep) = (2500, 200);
        let signal = test_signal(n);
        let czt = Czt::new(n, keep);
        let zoom = czt.transform(&signal);
        band_close(&zoom, &naive_band(&signal, keep), 1e-9 * n as f64);
        // And against the full-Bluestein-then-truncate production path.
        let mut full = Fft::new(n).forward_real(&signal);
        full.truncate(keep);
        band_close(&zoom, &full, 1e-9 * n as f64);
    }

    #[test]
    fn inner_length_is_pruned() {
        let czt = Czt::new(2500, 200);
        // Packed: next_pow2(1250 + 399 − 1) = 2048, vs Bluestein's 8192.
        assert_eq!(czt.inner_len(), 2048);
        assert_eq!(Czt::new(2500, 1024).inner_len(), 4096);
    }

    #[test]
    fn single_bin_and_tiny_lengths() {
        for (n, keep) in [(1usize, 1usize), (2, 1), (3, 1), (4, 2), (5, 5)] {
            let signal = test_signal(n);
            let czt = Czt::new(n, keep);
            band_close(
                &czt.transform(&signal),
                &naive_band(&signal, keep),
                1e-10 * (n + 1) as f64,
            );
        }
    }

    #[test]
    fn shared_plan_multiple_scratches_agree() {
        // One immutable plan, two scratches (as antenna threads would use).
        let czt = Czt::new(128, 30);
        let a = test_signal(128);
        let b: Vec<f64> = a.iter().map(|x| x * 2.0 - 0.1).collect();
        let mut s1 = czt.make_scratch();
        let mut s2 = czt.make_scratch();
        let mut o1 = vec![Complex::ZERO; 30];
        let mut o2 = vec![Complex::ZERO; 30];
        czt.transform_into(&a, &mut o1, &mut s1);
        czt.transform_into(&b, &mut o2, &mut s2);
        band_close(&o1, &naive_band(&a, 30), 1e-9 * 128.0);
        band_close(&o2, &naive_band(&b, 30), 1e-9 * 128.0);
    }

    #[test]
    fn shared_plans_deduplicate_by_shape() {
        let a = Czt::shared(96, 11);
        let b = Czt::shared(96, 11);
        let c = Czt::shared(96, 12);
        assert!(std::sync::Arc::ptr_eq(&a, &b), "same shape shares one plan");
        assert!(
            !std::sync::Arc::ptr_eq(&a, &c),
            "different keep is a new plan"
        );
        let signal = test_signal(96);
        band_close(&a.transform(&signal), &naive_band(&signal, 11), 1e-9 * 96.0);
    }

    #[test]
    #[should_panic]
    fn zero_keep_panics() {
        let _ = Czt::new(8, 0);
    }

    #[test]
    #[should_panic]
    fn keep_beyond_n_panics() {
        let _ = Czt::new(8, 9);
    }

    #[test]
    #[should_panic]
    fn mismatched_scratch_panics() {
        let a = Czt::new(64, 10);
        let b = Czt::new(2500, 200);
        let mut scratch = a.make_scratch();
        let mut out = vec![Complex::ZERO; 200];
        b.transform_into(&test_signal(2500), &mut out, &mut scratch);
    }
}
