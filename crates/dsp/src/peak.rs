//! Peak detection primitives for contour tracking.
//!
//! Paper §4.3: *"The spectrogram is processed for contour tracking by
//! identifying for each time instance the smallest local frequency maximum
//! that is significantly higher than the noise level."* This module holds
//! the generic pieces — robust noise-floor estimation, local-maximum search,
//! and parabolic sub-bin refinement — which `witrack-fmcw` assembles into the
//! bottom-contour tracker.

use crate::stats;

/// Robust noise-floor estimate of a magnitude spectrum: median + `k`·MAD·1.4826
/// (a Gaussian-consistent robust z-threshold). The median ignores the few
/// strong target bins, unlike a mean.
pub fn noise_floor(magnitudes: &[f64], k: f64) -> f64 {
    noise_floor_with_scratch(magnitudes, k, &mut Vec::new())
}

/// [`noise_floor`] with a caller-owned scratch buffer: zero allocations
/// and exactly two O(n) median selections per call (the free-standing
/// form's median + MAD recomputes the median three times into three
/// fresh vectors). This is the per-frame per-antenna form the contour
/// tracker runs on the serving hot path.
pub fn noise_floor_with_scratch(magnitudes: &[f64], k: f64, scratch: &mut Vec<f64>) -> f64 {
    if magnitudes.is_empty() {
        return f64::NAN;
    }
    scratch.clear();
    scratch.extend_from_slice(magnitudes);
    let med = stats::median_in_place(scratch);
    // |x − median| turns any input NaN into a NaN deviation, which the
    // second selection excludes again — same policy as `stats::mad`.
    for x in scratch.iter_mut() {
        *x = (*x - med).abs();
    }
    let sigma = stats::median_in_place(scratch) * 1.4826;
    med + k * sigma
}

/// Indices of strict local maxima (`m[i−1] < m[i] ≥ m[i+1]`) with value above
/// `threshold`. Endpoints qualify when they exceed their single neighbor.
pub fn local_maxima_above(magnitudes: &[f64], threshold: f64) -> Vec<usize> {
    local_maxima_above_iter(magnitudes, threshold).collect()
}

/// Iterator form of [`local_maxima_above`], for allocation-free hot paths.
pub fn local_maxima_above_iter(
    magnitudes: &[f64],
    threshold: f64,
) -> impl Iterator<Item = usize> + '_ {
    let n = magnitudes.len();
    (0..n).filter(move |&i| {
        let m = magnitudes[i];
        m > threshold && (i == 0 || magnitudes[i - 1] < m) && (i + 1 >= n || magnitudes[i + 1] <= m)
    })
}

/// The first (lowest-index) local maximum above `threshold` — the
/// bottom-contour primitive: the closest strong reflector to the array.
pub fn first_maximum_above(magnitudes: &[f64], threshold: f64) -> Option<usize> {
    let n = magnitudes.len();
    for i in 0..n {
        let m = magnitudes[i];
        if m <= threshold {
            continue;
        }
        let left_ok = i == 0 || magnitudes[i - 1] < m;
        let right_ok = i + 1 >= n || magnitudes[i + 1] <= m;
        if left_ok && right_ok {
            return Some(i);
        }
    }
    None
}

/// Index of the global maximum (the "dominant frequency" the paper's §4.3
/// argues *against* tracking; we keep it as the ablation baseline).
pub fn global_maximum(magnitudes: &[f64]) -> Option<usize> {
    if magnitudes.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &m) in magnitudes.iter().enumerate() {
        if m > magnitudes[best] {
            best = i;
        }
    }
    Some(best)
}

/// Parabolic (three-point) interpolation around a peak at `i`, on the log of
/// the magnitudes (a Gaussian main lobe is a parabola in log-magnitude).
/// Returns the refined fractional index, clamped to `i ± 0.5`.
///
/// Falls back to `i` at the spectrum edges or when the neighborhood is not
/// locally concave.
pub fn parabolic_refine(magnitudes: &[f64], i: usize) -> f64 {
    let n = magnitudes.len();
    if i == 0 || i + 1 >= n {
        return i as f64;
    }
    let eps = 1e-300;
    let l = (magnitudes[i - 1].max(eps)).ln();
    let c = (magnitudes[i].max(eps)).ln();
    let r = (magnitudes[i + 1].max(eps)).ln();
    let denom = l - 2.0 * c + r;
    if denom >= 0.0 {
        // Not concave: no reliable vertex.
        return i as f64;
    }
    let delta = 0.5 * (l - r) / denom;
    i as f64 + delta.clamp(-0.5, 0.5)
}

/// Sum of squared magnitudes in a band `[lo, hi)` — spectral power used by
/// the gesture detector's variance features (§6.1).
pub fn band_power(magnitudes: &[f64], lo: usize, hi: usize) -> f64 {
    let hi = hi.min(magnitudes.len());
    if lo >= hi {
        return 0.0;
    }
    magnitudes[lo..hi].iter().map(|&m| m * m).sum()
}

/// Power-weighted mean index of a magnitude spectrum (spectral centroid),
/// `None` if total power is zero.
pub fn centroid(magnitudes: &[f64]) -> Option<f64> {
    let total: f64 = magnitudes.iter().map(|&m| m * m).sum();
    if total <= 0.0 {
        return None;
    }
    let weighted: f64 = magnitudes
        .iter()
        .enumerate()
        .map(|(i, &m)| i as f64 * m * m)
        .sum();
    Some(weighted / total)
}

/// Power-weighted index variance (spread) around the centroid — the
/// "variance of the signal along the y-axis" feature the paper uses to
/// separate whole-body motion from arm motion (§6.1, Fig. 5).
pub fn spread(magnitudes: &[f64]) -> Option<f64> {
    let c = centroid(magnitudes)?;
    let total: f64 = magnitudes.iter().map(|&m| m * m).sum();
    let weighted: f64 = magnitudes
        .iter()
        .enumerate()
        .map(|(i, &m)| (i as f64 - c) * (i as f64 - c) * m * m)
        .sum();
    Some(weighted / total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone_spectrum(n: usize, peaks: &[(usize, f64)], noise: f64) -> Vec<f64> {
        let mut m = vec![noise; n];
        for &(i, a) in peaks {
            // Small triangular main lobe.
            m[i] = a;
            if i > 0 {
                m[i - 1] = m[i - 1].max(a * 0.5);
            }
            if i + 1 < n {
                m[i + 1] = m[i + 1].max(a * 0.5);
            }
        }
        m
    }

    #[test]
    fn noise_floor_tracks_median_not_peaks() {
        let m = tone_spectrum(100, &[(50, 1000.0)], 1.0);
        let nf = noise_floor(&m, 5.0);
        assert!(nf < 10.0, "floor {nf} should ignore the single huge peak");
    }

    #[test]
    fn first_maximum_is_the_nearest_strong_peak() {
        let m = tone_spectrum(200, &[(40, 10.0), (90, 50.0), (150, 30.0)], 0.5);
        // Bottom contour picks bin 40 even though 90 is stronger.
        assert_eq!(first_maximum_above(&m, 5.0), Some(40));
        // Peak tracker picks the strongest.
        assert_eq!(global_maximum(&m), Some(90));
        // With a higher threshold, the weak nearest peak is skipped.
        assert_eq!(first_maximum_above(&m, 20.0), Some(90));
    }

    #[test]
    fn local_maxima_finds_all_peaks() {
        let m = tone_spectrum(200, &[(40, 10.0), (90, 50.0), (150, 30.0)], 0.5);
        assert_eq!(local_maxima_above(&m, 5.0), vec![40, 90, 150]);
        assert!(local_maxima_above(&m, 100.0).is_empty());
    }

    #[test]
    fn plateaus_do_not_double_count() {
        let m = vec![0.0, 1.0, 5.0, 5.0, 1.0, 0.0];
        // Left edge of the plateau qualifies (`<` on left, `<=` on right),
        // the right edge does not.
        assert_eq!(local_maxima_above(&m, 0.5), vec![2]);
    }

    #[test]
    fn endpoints_can_be_maxima() {
        // Index 3 rises from 0.5 but keeps rising into index 4, so only the
        // two endpoints are maxima.
        let m = vec![9.0, 1.0, 0.5, 1.0, 8.0];
        assert_eq!(local_maxima_above(&m, 0.6), vec![0, 4]);
        assert_eq!(first_maximum_above(&m, 0.6), Some(0));
    }

    #[test]
    fn parabolic_refinement_recovers_fractional_peak() {
        // Sample a Gaussian lobe centered at 50.3.
        let center = 50.3;
        let m: Vec<f64> = (0..100)
            .map(|i| (-((i as f64 - center) / 2.0).powi(2)).exp())
            .collect();
        let i = global_maximum(&m).unwrap();
        let refined = parabolic_refine(&m, i);
        assert!((refined - center).abs() < 0.01, "refined {refined}");
    }

    #[test]
    fn parabolic_refinement_clamps_and_handles_edges() {
        let m = vec![1.0, 5.0, 1.0];
        let r = parabolic_refine(&m, 1);
        assert!((r - 1.0).abs() <= 0.5);
        assert_eq!(parabolic_refine(&m, 0), 0.0);
        assert_eq!(parabolic_refine(&m, 2), 2.0);
        // Flat (non-concave) neighborhood falls back to integer index.
        let flat = vec![2.0, 2.0, 2.0];
        assert_eq!(parabolic_refine(&flat, 1), 1.0);
    }

    #[test]
    fn spread_separates_wide_from_narrow_reflectors() {
        // Wide lobe (whole body) vs narrow lobe (arm) at the same center.
        let wide: Vec<f64> = (0..200)
            .map(|i| (-((i as f64 - 100.0) / 15.0).powi(2)).exp())
            .collect();
        let narrow: Vec<f64> = (0..200)
            .map(|i| (-((i as f64 - 100.0) / 3.0).powi(2)).exp())
            .collect();
        let sw = spread(&wide).unwrap();
        let sn = spread(&narrow).unwrap();
        assert!(sw > 5.0 * sn, "wide {sw} narrow {sn}");
    }

    #[test]
    fn centroid_of_symmetric_spectrum_is_center() {
        let m: Vec<f64> = (0..101)
            .map(|i| (-((i as f64 - 50.0) / 8.0).powi(2)).exp())
            .collect();
        assert!((centroid(&m).unwrap() - 50.0).abs() < 1e-9);
        assert!(centroid(&[0.0; 16]).is_none());
        assert!(spread(&[0.0; 16]).is_none());
    }

    #[test]
    fn band_power_sums_squares() {
        let m = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(band_power(&m, 1, 3), 4.0 + 9.0);
        assert_eq!(band_power(&m, 2, 10), 9.0 + 16.0);
        assert_eq!(band_power(&m, 3, 3), 0.0);
        assert_eq!(band_power(&m, 5, 2), 0.0);
    }
}
