//! Outlier rejection and hold-last interpolation (paper §4.4).
//!
//! Two of the three de-noising stages WiTrack applies to the raw contour:
//!
//! * **Outlier rejection** — "WiTrack rejects impractical jumps in distance
//!   estimates that correspond to unnatural human motion over a very short
//!   period of time" (§4.4). Implemented as a speed gate: a new distance that
//!   implies a speed above a physical bound is discarded.
//! * **Interpolation** — "if a person … remains static, the background-
//!   subtracted signal would not register any strong reflector. In such
//!   scenarios, we assume the person is still in the same position" (§4.4).
//!   Implemented as hold-last-value with an age counter so callers can
//!   distinguish fresh detections from held ones.

/// Speed-gate outlier rejector for a scalar distance stream.
#[derive(Debug, Clone)]
pub struct OutlierGate {
    /// Maximum plausible speed of the tracked quantity (m/s). Round-trip
    /// distances change at up to twice the body speed, so the pipeline uses
    /// ~2 × 3 m/s for walking humans.
    max_speed: f64,
    /// Number of consecutive rejections after which the gate re-seeds on the
    /// next sample (the person may genuinely have "jumped" — e.g. the contour
    /// locked onto a different person or limb).
    max_consecutive_rejects: usize,
    last: Option<f64>,
    rejects: usize,
}

/// Outcome of pushing one sample through [`OutlierGate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GateDecision {
    /// The sample is physically plausible and was accepted.
    Accepted(f64),
    /// The sample implied an impossible speed and was rejected; the carried
    /// value is the previous accepted sample.
    Rejected {
        /// The last accepted value, which callers should keep using.
        held: f64,
        /// Speed (m/s) the rejected sample would have implied.
        implied_speed: f64,
    },
    /// The gate re-seeded on this sample after too many rejections.
    Reseeded(f64),
}

impl GateDecision {
    /// The value a consumer should use after this decision.
    pub fn value(&self) -> f64 {
        match *self {
            GateDecision::Accepted(v) | GateDecision::Reseeded(v) => v,
            GateDecision::Rejected { held, .. } => held,
        }
    }

    /// Whether the incoming sample was kept (accepted or reseeded).
    pub fn kept(&self) -> bool {
        !matches!(self, GateDecision::Rejected { .. })
    }
}

impl OutlierGate {
    /// Creates a gate with the given maximum plausible speed (m/s).
    pub fn new(max_speed: f64, max_consecutive_rejects: usize) -> OutlierGate {
        OutlierGate {
            max_speed,
            max_consecutive_rejects,
            last: None,
            rejects: 0,
        }
    }

    /// Pushes a sample observed `dt` seconds after the previous one.
    ///
    /// While rejecting, the reference value ages: the allowed jump grows by
    /// one `max_speed·dt` budget per rejected frame, because a genuinely
    /// moving target keeps receding from the stale reference. Without this,
    /// one rejection cascades — every subsequent good sample is compared
    /// against an ever-more-stale value and rejected too.
    pub fn push(&mut self, value: f64, dt: f64) -> GateDecision {
        let Some(last) = self.last else {
            self.last = Some(value);
            return GateDecision::Accepted(value);
        };
        let implied_speed = if dt > 0.0 {
            (value - last).abs() / (dt * (self.rejects + 1) as f64)
        } else {
            f64::INFINITY
        };
        if implied_speed <= self.max_speed {
            self.last = Some(value);
            self.rejects = 0;
            GateDecision::Accepted(value)
        } else if self.rejects + 1 >= self.max_consecutive_rejects {
            // The stream has moved on; trust it again.
            self.last = Some(value);
            self.rejects = 0;
            GateDecision::Reseeded(value)
        } else {
            self.rejects += 1;
            GateDecision::Rejected {
                held: last,
                implied_speed,
            }
        }
    }

    /// Last accepted value, if any.
    pub fn last(&self) -> Option<f64> {
        self.last
    }

    /// Clears history.
    pub fn reset(&mut self) {
        self.last = None;
        self.rejects = 0;
    }
}

/// Hold-last-value interpolator for gaps in a detection stream.
#[derive(Debug, Clone, Default)]
pub struct HoldInterpolator {
    last: Option<f64>,
    held_frames: usize,
}

impl HoldInterpolator {
    /// Creates an empty interpolator.
    pub fn new() -> HoldInterpolator {
        HoldInterpolator::default()
    }

    /// Pushes a frame. `Some(v)` is a fresh detection; `None` is a missing
    /// frame which returns the held value (if any).
    pub fn push(&mut self, sample: Option<f64>) -> Option<f64> {
        match sample {
            Some(v) => {
                self.last = Some(v);
                self.held_frames = 0;
                Some(v)
            }
            None => {
                if self.last.is_some() {
                    self.held_frames += 1;
                }
                self.last
            }
        }
    }

    /// How many consecutive frames the current output has been held for
    /// (0 when the last frame was a fresh detection).
    pub fn held_frames(&self) -> usize {
        self.held_frames
    }

    /// Whether the current output is held rather than fresh.
    pub fn is_holding(&self) -> bool {
        self.held_frames > 0
    }

    /// Clears history.
    pub fn reset(&mut self) {
        self.last = None;
        self.held_frames = 0;
    }
}

/// Moving-average smoother over a fixed window (used by the simulator and the
/// gesture segmenter for envelope estimates).
#[derive(Debug, Clone)]
pub struct MovingAverage {
    buf: Vec<f64>,
    head: usize,
    filled: usize,
    sum: f64,
}

impl MovingAverage {
    /// Creates a moving average with window length `len ≥ 1`.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    pub fn new(len: usize) -> MovingAverage {
        assert!(len > 0, "window length must be positive");
        MovingAverage {
            buf: vec![0.0; len],
            head: 0,
            filled: 0,
            sum: 0.0,
        }
    }

    /// Pushes a sample and returns the average over the (possibly partial)
    /// window.
    pub fn push(&mut self, v: f64) -> f64 {
        if self.filled == self.buf.len() {
            self.sum -= self.buf[self.head];
        } else {
            self.filled += 1;
        }
        self.buf[self.head] = v;
        self.sum += v;
        self.head = (self.head + 1) % self.buf.len();
        self.sum / self.filled as f64
    }

    /// Current average without pushing (None when empty).
    pub fn current(&self) -> Option<f64> {
        if self.filled == 0 {
            None
        } else {
            Some(self.sum / self.filled as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_accepts_plausible_motion() {
        let mut g = OutlierGate::new(6.0, 10);
        assert_eq!(g.push(10.0, 0.0125), GateDecision::Accepted(10.0));
        // 5 cm in 12.5 ms = 4 m/s: plausible.
        assert!(g.push(10.05, 0.0125).kept());
    }

    #[test]
    fn gate_rejects_teleport() {
        // Paper §4.4: "the distance repeatedly jumps by more than 5 meters
        // over a span of few milliseconds … WiTrack rejects such outliers."
        let mut g = OutlierGate::new(6.0, 10);
        g.push(10.0, 0.0125);
        let d = g.push(15.0, 0.0125);
        assert!(!d.kept());
        assert_eq!(d.value(), 10.0);
        match d {
            GateDecision::Rejected { implied_speed, .. } => assert!(implied_speed > 100.0),
            _ => panic!("expected rejection"),
        }
    }

    #[test]
    fn gate_reseeds_after_persistent_disagreement() {
        let mut g = OutlierGate::new(6.0, 3);
        g.push(10.0, 0.0125);
        assert!(!g.push(20.0, 0.0125).kept());
        assert!(!g.push(20.0, 0.0125).kept());
        // Third consecutive reject hits the limit → reseed.
        let d = g.push(20.0, 0.0125);
        assert_eq!(d, GateDecision::Reseeded(20.0));
        assert_eq!(g.last(), Some(20.0));
    }

    #[test]
    fn gate_zero_dt_rejects() {
        let mut g = OutlierGate::new(6.0, 10);
        g.push(1.0, 0.0125);
        assert!(!g.push(1.5, 0.0).kept());
    }

    #[test]
    fn hold_interpolator_bridges_gaps() {
        let mut h = HoldInterpolator::new();
        assert_eq!(h.push(None), None);
        assert_eq!(h.push(Some(4.0)), Some(4.0));
        assert!(!h.is_holding());
        assert_eq!(h.push(None), Some(4.0));
        assert_eq!(h.push(None), Some(4.0));
        assert_eq!(h.held_frames(), 2);
        assert!(h.is_holding());
        assert_eq!(h.push(Some(4.1)), Some(4.1));
        assert_eq!(h.held_frames(), 0);
    }

    #[test]
    fn moving_average_over_partial_and_full_window() {
        let mut m = MovingAverage::new(4);
        assert_eq!(m.current(), None);
        assert!((m.push(1.0) - 1.0).abs() < 1e-12);
        assert!((m.push(3.0) - 2.0).abs() < 1e-12);
        m.push(5.0);
        m.push(7.0);
        // Window full: average of 1,3,5,7 = 4.
        assert!((m.current().unwrap() - 4.0).abs() < 1e-12);
        // Push evicts the 1.
        assert!((m.push(9.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn moving_average_zero_len_panics() {
        let _ = MovingAverage::new(0);
    }
}
