//! Prolate spheroids defined by two foci and a constant path-length sum.
//!
//! A round-trip distance measurement `r = |Tx→P| + |P→Rx|` constrains the
//! reflector `P` to the surface `{ p : |p - f1| + |p - f2| = r }` — an
//! ellipsoid of revolution (prolate spheroid) with foci at the transmit and
//! receive antennas and major axis `r` (paper §5, Fig. 4). This module gives
//! that surface a first-class type used by both the localization solvers and
//! the property-based tests.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// An ellipsoid of revolution defined by its two foci and the constant sum of
/// distances (the round-trip distance, also the major-axis length `2a`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ellipsoid {
    /// First focus (the transmit antenna, by convention).
    pub focus_a: Vec3,
    /// Second focus (a receive antenna, by convention).
    pub focus_b: Vec3,
    /// Constant sum of distances to the two foci (meters).
    pub path_sum: f64,
}

/// Why an [`Ellipsoid`] could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EllipsoidError {
    /// `path_sum` is not finite or not positive.
    InvalidPathSum,
    /// `path_sum` is smaller than the focal distance, so the surface is empty.
    DegeneratePathSum,
}

impl std::fmt::Display for EllipsoidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EllipsoidError::InvalidPathSum => write!(f, "path sum must be finite and positive"),
            EllipsoidError::DegeneratePathSum => {
                write!(f, "path sum is smaller than the distance between foci")
            }
        }
    }
}

impl std::error::Error for EllipsoidError {}

impl Ellipsoid {
    /// Creates an ellipsoid, validating that the surface is non-empty.
    pub fn new(focus_a: Vec3, focus_b: Vec3, path_sum: f64) -> Result<Ellipsoid, EllipsoidError> {
        if !path_sum.is_finite() || path_sum <= 0.0 {
            return Err(EllipsoidError::InvalidPathSum);
        }
        if path_sum < focus_a.distance(focus_b) {
            return Err(EllipsoidError::DegeneratePathSum);
        }
        Ok(Ellipsoid {
            focus_a,
            focus_b,
            path_sum,
        })
    }

    /// The center (midpoint of the foci).
    pub fn center(&self) -> Vec3 {
        (self.focus_a + self.focus_b) * 0.5
    }

    /// Semi-major axis `a = path_sum / 2`.
    pub fn semi_major(&self) -> f64 {
        self.path_sum * 0.5
    }

    /// Half the focal distance, `c`.
    pub fn focal_half_distance(&self) -> f64 {
        self.focus_a.distance(self.focus_b) * 0.5
    }

    /// Semi-minor axis `b = sqrt(a² − c²)`.
    ///
    /// The paper's §9.3 geometric argument: for a fixed round-trip distance,
    /// increasing the antenna separation (focal distance) *squashes* the
    /// ellipsoid (smaller `b`), shrinking the solution region and improving
    /// accuracy.
    pub fn semi_minor(&self) -> f64 {
        let a = self.semi_major();
        let c = self.focal_half_distance();
        (a * a - c * c).max(0.0).sqrt()
    }

    /// Eccentricity `e = c / a` in `[0, 1)` for non-degenerate surfaces.
    pub fn eccentricity(&self) -> f64 {
        self.focal_half_distance() / self.semi_major()
    }

    /// Sum of distances from `p` to the two foci.
    #[inline]
    pub fn path_sum_at(&self, p: Vec3) -> f64 {
        p.distance(self.focus_a) + p.distance(self.focus_b)
    }

    /// Signed residual `(|p−f1| + |p−f2|) − path_sum`: zero on the surface,
    /// positive outside, negative inside.
    #[inline]
    pub fn residual(&self, p: Vec3) -> f64 {
        self.path_sum_at(p) - self.path_sum
    }

    /// `true` when `p` lies on the surface within `tol` meters of path sum.
    pub fn contains(&self, p: Vec3, tol: f64) -> bool {
        self.residual(p).abs() <= tol
    }

    /// Gradient of the path-sum field at `p`: the sum of unit vectors from
    /// each focus to `p`. This is the row of the Gauss–Newton Jacobian for
    /// one round-trip measurement.
    pub fn gradient(&self, p: Vec3) -> Vec3 {
        let ga = (p - self.focus_a).normalized_or_zero();
        let gb = (p - self.focus_b).normalized_or_zero();
        ga + gb
    }

    /// A point on the surface in direction `dir` from the center, found by
    /// bisection along the ray (used by tests and by the simulator to place
    /// synthetic reflectors at exact round-trip distances).
    ///
    /// Returns `None` for degenerate direction.
    pub fn surface_point(&self, dir: Vec3) -> Option<Vec3> {
        let d = dir.normalized()?;
        let c = self.center();
        // The surface lies between t = semi_minor and t = semi_major from the
        // center along any ray.
        let mut lo = 0.0_f64;
        let mut hi = self.semi_major() + 1.0;
        // `residual` is monotone increasing along the ray from the center.
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.residual(c + d * mid) > 0.0 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(c + d * (0.5 * (lo + hi)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    fn demo() -> Ellipsoid {
        Ellipsoid::new(Vec3::new(-1.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0), 6.0).unwrap()
    }

    #[test]
    fn axes_match_textbook_values() {
        let e = demo();
        assert_close(e.semi_major(), 3.0, 1e-12);
        assert_close(e.focal_half_distance(), 1.0, 1e-12);
        assert_close(e.semi_minor(), (8.0_f64).sqrt(), 1e-12);
        assert_close(e.eccentricity(), 1.0 / 3.0, 1e-12);
        assert_eq!(e.center(), Vec3::ZERO);
    }

    #[test]
    fn vertices_lie_on_surface() {
        let e = demo();
        // Major-axis vertices at (±a, 0, 0), minor at (0, ±b, 0) and (0, 0, ±b).
        assert!(e.contains(Vec3::new(3.0, 0.0, 0.0), 1e-9));
        assert!(e.contains(Vec3::new(-3.0, 0.0, 0.0), 1e-9));
        let b = e.semi_minor();
        assert!(e.contains(Vec3::new(0.0, b, 0.0), 1e-9));
        assert!(e.contains(Vec3::new(0.0, 0.0, -b), 1e-9));
    }

    #[test]
    fn residual_sign_inside_outside() {
        let e = demo();
        assert!(e.residual(Vec3::ZERO) < 0.0);
        assert!(e.residual(Vec3::new(10.0, 10.0, 10.0)) > 0.0);
    }

    #[test]
    fn surface_point_has_exact_path_sum() {
        let e = demo();
        for dir in [
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(-1.0, 0.5, 0.0),
            Vec3::Z,
            Vec3::new(0.3, -0.7, 0.648),
        ] {
            let p = e.surface_point(dir).unwrap();
            assert_close(e.path_sum_at(p), e.path_sum, 1e-6);
        }
    }

    #[test]
    fn gradient_is_outward_normal_direction() {
        let e = demo();
        let p = e.surface_point(Vec3::new(0.2, 1.0, 0.4)).unwrap();
        let g = e.gradient(p);
        // Moving along the gradient increases the residual.
        let step = g.normalized().unwrap() * 1e-6;
        assert!(e.residual(p + step) > e.residual(p));
    }

    #[test]
    fn separation_squashes_ellipsoid() {
        // Paper §9.3: fixed round-trip distance, growing antenna separation
        // => smaller semi-minor axis.
        let r = 8.0;
        let mut last = f64::INFINITY;
        for sep in [0.25, 0.5, 1.0, 1.5, 2.0] {
            let e = Ellipsoid::new(
                Vec3::new(-sep / 2.0, 0.0, 0.0),
                Vec3::new(sep / 2.0, 0.0, 0.0),
                r,
            )
            .unwrap();
            assert!(e.semi_minor() < last);
            last = e.semi_minor();
        }
    }

    #[test]
    fn constructor_validates() {
        let f1 = Vec3::ZERO;
        let f2 = Vec3::new(4.0, 0.0, 0.0);
        assert_eq!(
            Ellipsoid::new(f1, f2, 2.0),
            Err(EllipsoidError::DegeneratePathSum)
        );
        assert_eq!(
            Ellipsoid::new(f1, f2, -1.0),
            Err(EllipsoidError::InvalidPathSum)
        );
        assert_eq!(
            Ellipsoid::new(f1, f2, f64::NAN),
            Err(EllipsoidError::InvalidPathSum)
        );
        assert!(Ellipsoid::new(f1, f2, 4.0).is_ok()); // degenerate segment allowed
    }
}
