//! Gauss–Newton least-squares localization for arbitrary antenna arrays.
//!
//! The closed form in [`crate::tarray`] only covers the exact T geometry.
//! The paper notes (§5) that adding receive antennas over-constrains the
//! system and adds robustness to noise; this module implements that general
//! case: find `p` minimizing
//!
//! ```text
//! Σₖ ( |p − tx| + |p − rxₖ| − rₖ )²
//! ```
//!
//! with a damped Gauss–Newton iteration. Each residual's gradient is the sum
//! of unit vectors from the two foci to `p` (see
//! [`crate::ellipsoid::Ellipsoid::gradient`]), so the normal equations are a
//! 3×3 solve per iteration.
//!
//! Planar arrays (all WiTrack arrays are planar — they hang on a wall) have a
//! mirror ambiguity: reflecting the solution across the array plane preserves
//! every round trip. The solver seeds *in front of* the array (along the
//! transmit boresight) and, if it still converges behind, mirrors and
//! re-polishes, implementing the paper's "only the intersection within the
//! antenna beams is feasible" rule.

use crate::antenna::AntennaArray;
use crate::vec3::Vec3;

/// Tuning for the Gauss–Newton solver. The defaults converge in < 10
/// iterations for all WiTrack geometries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussNewtonConfig {
    /// Maximum iterations before giving up.
    pub max_iterations: usize,
    /// Convergence threshold on the step length (meters).
    pub step_tolerance: f64,
    /// Levenberg damping added to the normal-equation diagonal.
    pub damping: f64,
}

impl Default for GaussNewtonConfig {
    fn default() -> Self {
        GaussNewtonConfig {
            max_iterations: 50,
            step_tolerance: 1e-9,
            damping: 1e-9,
        }
    }
}

/// Solver failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolveError {
    /// Fewer round trips than receive antennas, or vice versa.
    MeasurementCountMismatch {
        /// Number of receive antennas in the array.
        expected: usize,
        /// Number of round-trip measurements supplied.
        got: usize,
    },
    /// A measurement is non-finite or non-positive.
    InvalidMeasurement,
    /// The normal equations became singular (degenerate geometry).
    SingularGeometry,
    /// The iteration did not converge within the configured budget.
    DidNotConverge {
        /// RMS of the round-trip residuals at the last iterate (meters).
        residual_rms: f64,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::MeasurementCountMismatch { expected, got } => {
                write!(f, "expected {expected} round trips, got {got}")
            }
            SolveError::InvalidMeasurement => write!(f, "round-trip distance not finite/positive"),
            SolveError::SingularGeometry => write!(f, "normal equations singular"),
            SolveError::DidNotConverge { residual_rms } => {
                write!(f, "did not converge (residual RMS {residual_rms:.4} m)")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Result of a successful solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveResult {
    /// Estimated reflector position (world frame).
    pub position: Vec3,
    /// RMS of the per-antenna round-trip residuals at the solution (meters).
    /// For over-constrained arrays this measures measurement consistency.
    pub residual_rms: f64,
    /// Iterations used.
    pub iterations: usize,
}

/// Solves a 3×3 linear system `m · x = b` by Gaussian elimination with
/// partial pivoting. Returns `None` if the matrix is singular.
// Index loops mirror the textbook elimination; iterator forms would need
// split borrows of two rows of `m` and read worse.
#[allow(clippy::needless_range_loop)]
fn solve_3x3(mut m: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<Vec3> {
    for col in 0..3 {
        // Pivot.
        let mut pivot = col;
        for row in (col + 1)..3 {
            if m[row][col].abs() > m[pivot][col].abs() {
                pivot = row;
            }
        }
        if m[pivot][col].abs() < 1e-14 {
            return None;
        }
        m.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in (col + 1)..3 {
            let f = m[row][col] / m[col][col];
            for k in col..3 {
                m[row][k] -= f * m[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = [0.0_f64; 3];
    for col in (0..3).rev() {
        let mut s = b[col];
        for k in (col + 1)..3 {
            s -= m[col][k] * x[k];
        }
        x[col] = s / m[col][col];
    }
    Some(Vec3::new(x[0], x[1], x[2]))
}

fn residual_rms(array: &AntennaArray, round_trips: &[f64], p: Vec3) -> f64 {
    let n = round_trips.len() as f64;
    let ss: f64 = round_trips
        .iter()
        .enumerate()
        .map(|(k, &r)| {
            let e = array.round_trip(p, k) - r;
            e * e
        })
        .sum();
    (ss / n).sqrt()
}

/// One damped Gauss–Newton descent from `seed`. Returns the final iterate and
/// the iteration count; does not decide success.
fn descend(
    array: &AntennaArray,
    round_trips: &[f64],
    seed: Vec3,
    cfg: &GaussNewtonConfig,
) -> Result<(Vec3, usize), SolveError> {
    let tx = array.tx.position;
    let mut p = seed;
    for iter in 0..cfg.max_iterations {
        // Build normal equations JᵀJ · Δ = −Jᵀr.
        let mut jtj = [[0.0_f64; 3]; 3];
        let mut jtr = [0.0_f64; 3];
        for (k, &r) in round_trips.iter().enumerate() {
            let rx = array.rx[k].position;
            let g = (p - tx).normalized_or_zero() + (p - rx).normalized_or_zero();
            let res = array.round_trip(p, k) - r;
            let gc = [g.x, g.y, g.z];
            for i in 0..3 {
                for j in 0..3 {
                    jtj[i][j] += gc[i] * gc[j];
                }
                jtr[i] += gc[i] * res;
            }
        }
        for (i, row) in jtj.iter_mut().enumerate() {
            row[i] += cfg.damping;
        }
        let step =
            solve_3x3(jtj, [-jtr[0], -jtr[1], -jtr[2]]).ok_or(SolveError::SingularGeometry)?;
        p += step;
        if step.norm() < cfg.step_tolerance {
            return Ok((p, iter + 1));
        }
    }
    Ok((p, cfg.max_iterations))
}

/// Localizes a reflector from round-trip distances with damped Gauss–Newton.
///
/// `round_trips[k]` is the measured `|tx→p| + |p→rx[k]|` for antenna `k`.
/// Works for exactly three antennas (unique intersection) and for
/// over-constrained arrays (least-squares fit).
pub fn solve_least_squares(
    array: &AntennaArray,
    round_trips: &[f64],
    cfg: &GaussNewtonConfig,
) -> Result<SolveResult, SolveError> {
    if round_trips.len() != array.num_rx() {
        return Err(SolveError::MeasurementCountMismatch {
            expected: array.num_rx(),
            got: round_trips.len(),
        });
    }
    if round_trips.iter().any(|r| !r.is_finite() || *r <= 0.0) {
        return Err(SolveError::InvalidMeasurement);
    }

    // Seed in front of the array, halfway out along the mean one-way range.
    let mean_range = round_trips.iter().sum::<f64>() / (2.0 * round_trips.len() as f64);
    let seed = array.centroid() + array.tx.boresight * mean_range.max(0.5);

    let (mut p, mut iters) = descend(array, round_trips, seed, cfg)?;

    // Planar-array mirror ambiguity: if we converged behind the beams,
    // reflect across the array plane and re-polish (paper §5's beam
    // feasibility rule).
    if !array.in_all_beams(p) {
        let n = array.tx.boresight;
        let d = (p - array.tx.position).dot(n);
        let mirrored = p - n * (2.0 * d);
        let (p2, it2) = descend(array, round_trips, mirrored, cfg)?;
        if array.in_all_beams(p2) {
            p = p2;
            iters += it2;
        }
    }

    let rms = residual_rms(array, round_trips, p);
    // Declare non-convergence when the fit is far worse than any plausible
    // noise level (meters of residual indicate a wrong basin or bad data).
    if !p.is_finite() || rms > 1.0 {
        return Err(SolveError::DidNotConverge { residual_rms: rms });
    }
    Ok(SolveResult {
        position: p,
        residual_rms: rms,
        iterations: iters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tarray::TArray;

    fn assert_vec_close(a: Vec3, b: Vec3, tol: f64) {
        assert!(a.distance(b) <= tol, "{a} vs {b} (dist {})", a.distance(b));
    }

    #[test]
    fn recovers_exact_position_for_t_array() {
        let arr = AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0);
        for p in [
            Vec3::new(0.5, 4.0, 1.2),
            Vec3::new(-2.0, 3.0, 0.4),
            Vec3::new(3.0, 9.0, 1.8),
        ] {
            let r = arr.round_trips(p);
            let out = solve_least_squares(&arr, &r, &GaussNewtonConfig::default()).unwrap();
            assert_vec_close(out.position, p, 1e-6);
            assert!(out.residual_rms < 1e-7);
        }
    }

    #[test]
    fn agrees_with_closed_form() {
        let t = TArray::symmetric(Vec3::new(0.0, 0.0, 1.2), 0.8);
        let arr = t.antenna_array();
        let p = Vec3::new(1.5, 6.0, 0.7);
        let mut r = t.round_trips(p);
        // Perturb measurements slightly: both solvers should land close to
        // each other (they optimize the same geometry).
        r[0] += 0.005;
        r[1] -= 0.003;
        r[2] += 0.004;
        let closed = t.solve(r).unwrap();
        let gn = solve_least_squares(&arr, &r, &GaussNewtonConfig::default()).unwrap();
        assert_vec_close(closed, gn.position, 0.05);
    }

    #[test]
    fn overconstrained_array_averages_noise() {
        // With 6 antennas and symmetric noise, the LS solution should be
        // closer to the truth than the worst-case 3-antenna solve.
        let arr = AntennaArray::t_shape_extended(Vec3::new(0.0, 0.0, 1.0), 1.0, 3);
        let p = Vec3::new(0.8, 5.0, 1.1);
        let mut r = arr.round_trips(p);
        let noise = [0.02, -0.02, 0.02, -0.02, 0.02, -0.02];
        for (ri, ni) in r.iter_mut().zip(noise) {
            *ri += ni;
        }
        let out = solve_least_squares(&arr, &r, &GaussNewtonConfig::default()).unwrap();
        assert!(
            out.position.distance(p) < 0.25,
            "err {}",
            out.position.distance(p)
        );
        assert!(out.residual_rms > 0.0); // inconsistent data leaves residual
    }

    #[test]
    fn mirror_ambiguity_resolved_to_front() {
        let arr = AntennaArray::t_shape(Vec3::ZERO, 1.0);
        let p = Vec3::new(0.3, 3.5, 0.6);
        let r = arr.round_trips(p);
        let out = solve_least_squares(&arr, &r, &GaussNewtonConfig::default()).unwrap();
        assert!(out.position.y > 0.0);
        assert_vec_close(out.position, p, 1e-6);
    }

    #[test]
    fn rejects_count_mismatch_and_bad_values() {
        let arr = AntennaArray::t_shape(Vec3::ZERO, 1.0);
        assert!(matches!(
            solve_least_squares(&arr, &[5.0, 5.0], &GaussNewtonConfig::default()),
            Err(SolveError::MeasurementCountMismatch {
                expected: 3,
                got: 2
            })
        ));
        assert!(matches!(
            solve_least_squares(
                &arr,
                &[5.0, f64::INFINITY, 5.0],
                &GaussNewtonConfig::default()
            ),
            Err(SolveError::InvalidMeasurement)
        ));
    }

    #[test]
    fn solve_3x3_identity_and_singular() {
        let id = [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]];
        let x = solve_3x3(id, [1.0, 2.0, 3.0]).unwrap();
        assert_vec_close(x, Vec3::new(1.0, 2.0, 3.0), 1e-12);
        let sing = [[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 1.0, 1.0]];
        assert!(solve_3x3(sing, [1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn solve_3x3_general_system() {
        // m · (2, -1, 0.5) = b
        let m = [[3.0, 1.0, -2.0], [1.0, -4.0, 1.0], [2.0, 0.0, 5.0]];
        let x_true = Vec3::new(2.0, -1.0, 0.5);
        let b = [
            m[0][0] * x_true.x + m[0][1] * x_true.y + m[0][2] * x_true.z,
            m[1][0] * x_true.x + m[1][1] * x_true.y + m[1][2] * x_true.z,
            m[2][0] * x_true.x + m[2][1] * x_true.y + m[2][2] * x_true.z,
        ];
        let x = solve_3x3(m, b).unwrap();
        assert_vec_close(x, x_true, 1e-10);
    }

    #[test]
    fn moderate_noise_keeps_error_bounded() {
        let arr = AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0);
        let p = Vec3::new(-1.0, 6.0, 1.4);
        let mut r = arr.round_trips(p);
        r[0] += 0.03;
        r[1] += 0.01;
        r[2] -= 0.02;
        let out = solve_least_squares(&arr, &r, &GaussNewtonConfig::default()).unwrap();
        assert!(
            out.position.distance(p) < 0.6,
            "err {}",
            out.position.distance(p)
        );
    }
}
