//! Infinite planes and rays.
//!
//! Walls in the simulator are planes: a static wall reflection is a mirror
//! image of the transmitter in the wall, and *dynamic multipath* — a signal
//! that bounces off the person and then off a wall before reaching a receive
//! antenna (paper §4.3) — is computed by mirroring the receive antenna across
//! the wall plane. The mirror construction guarantees the indirect path is
//! geometrically valid and strictly longer than the direct path, which is
//! exactly the property WiTrack's bottom-contour tracker relies on.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// An infinite plane in Hessian normal form: points `p` with
/// `normal · p = offset`, where `normal` is unit length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Plane {
    normal: Vec3,
    offset: f64,
}

impl Plane {
    /// Builds a plane from a (not necessarily unit) normal and a point on it.
    ///
    /// Returns `None` if the normal is degenerate (near zero).
    pub fn from_point_normal(point: Vec3, normal: Vec3) -> Option<Plane> {
        let n = normal.normalized()?;
        Some(Plane {
            normal: n,
            offset: n.dot(point),
        })
    }

    /// A vertical wall parallel to the `xz` plane at depth `y`.
    ///
    /// This is the geometry of the paper's through-wall experiments: the
    /// antennas face the wall, the person moves behind it (larger `y`).
    pub fn wall_at_y(y: f64) -> Plane {
        Plane {
            normal: Vec3::Y,
            offset: y,
        }
    }

    /// A vertical wall parallel to the `yz` plane at `x`.
    pub fn wall_at_x(x: f64) -> Plane {
        Plane {
            normal: Vec3::X,
            offset: x,
        }
    }

    /// A horizontal plane (floor/ceiling) at elevation `z`.
    pub fn floor_at_z(z: f64) -> Plane {
        Plane {
            normal: Vec3::Z,
            offset: z,
        }
    }

    /// The unit normal of the plane.
    pub fn normal(&self) -> Vec3 {
        self.normal
    }

    /// The signed distance from `p` to the plane (positive on the normal's
    /// side).
    #[inline]
    pub fn signed_distance(&self, p: Vec3) -> f64 {
        self.normal.dot(p) - self.offset
    }

    /// The absolute distance from `p` to the plane.
    #[inline]
    pub fn distance(&self, p: Vec3) -> f64 {
        self.signed_distance(p).abs()
    }

    /// The orthogonal projection of `p` onto the plane.
    pub fn project(&self, p: Vec3) -> Vec3 {
        p - self.normal * self.signed_distance(p)
    }

    /// The mirror image of `p` across the plane.
    ///
    /// Mirroring a receive antenna across a wall turns the person→wall→antenna
    /// bounce into a straight person→mirror-antenna segment, so the bounce
    /// path length is `|person - mirror(antenna)|`.
    pub fn mirror(&self, p: Vec3) -> Vec3 {
        p - self.normal * (2.0 * self.signed_distance(p))
    }

    /// Length of the specular bounce path `a → plane → b`.
    ///
    /// Returns `None` when `a` and `b` lie on opposite sides of the plane
    /// (no specular bounce exists between them).
    pub fn bounce_path_length(&self, a: Vec3, b: Vec3) -> Option<f64> {
        let da = self.signed_distance(a);
        let db = self.signed_distance(b);
        if da * db < 0.0 {
            return None;
        }
        Some(a.distance(self.mirror(b)))
    }

    /// The specular reflection point on the plane for the bounce `a → b`.
    ///
    /// Returns `None` when no bounce exists (opposite sides) or the geometry
    /// is degenerate (both points on the plane).
    pub fn bounce_point(&self, a: Vec3, b: Vec3) -> Option<Vec3> {
        let da = self.signed_distance(a);
        let db = self.signed_distance(b);
        if da * db < 0.0 {
            return None;
        }
        let bm = self.mirror(b);
        let ray = Ray::through(a, bm)?;
        self.intersect_ray(&ray)
    }

    /// Intersects a ray with the plane; returns the intersection point if the
    /// ray (with `t >= 0`) hits it.
    pub fn intersect_ray(&self, ray: &Ray) -> Option<Vec3> {
        let denom = self.normal.dot(ray.direction);
        if denom.abs() < 1e-12 {
            return None;
        }
        let t = (self.offset - self.normal.dot(ray.origin)) / denom;
        if t < 0.0 {
            return None;
        }
        Some(ray.at(t))
    }
}

/// A half-line: `origin + t * direction`, `t >= 0`, with unit `direction`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Start of the ray.
    pub origin: Vec3,
    /// Unit direction.
    pub direction: Vec3,
}

impl Ray {
    /// Builds a ray given an origin and (not necessarily unit) direction.
    pub fn new(origin: Vec3, direction: Vec3) -> Option<Ray> {
        Some(Ray {
            origin,
            direction: direction.normalized()?,
        })
    }

    /// Builds the ray from `a` through `b`.
    pub fn through(a: Vec3, b: Vec3) -> Option<Ray> {
        Ray::new(a, b - a)
    }

    /// The point at parameter `t` along the ray.
    #[inline]
    pub fn at(&self, t: f64) -> Vec3 {
        self.origin + self.direction * t
    }

    /// Distance from a point to the ray's supporting line.
    pub fn distance_to_point(&self, p: Vec3) -> f64 {
        let v = p - self.origin;
        let along = v.dot(self.direction);
        (v - self.direction * along).norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn wall_distance_and_projection() {
        let wall = Plane::wall_at_y(3.0);
        let p = Vec3::new(1.0, 5.0, 2.0);
        assert_close(wall.signed_distance(p), 2.0, 1e-12);
        assert_eq!(wall.project(p), Vec3::new(1.0, 3.0, 2.0));
    }

    #[test]
    fn mirror_is_involution() {
        let wall =
            Plane::from_point_normal(Vec3::new(1.0, 2.0, 3.0), Vec3::new(1.0, 1.0, -0.5)).unwrap();
        let p = Vec3::new(-2.0, 0.5, 4.0);
        let m = wall.mirror(p);
        assert!(wall.mirror(m).distance(p) < 1e-12);
        // Mirror is equidistant on the other side.
        assert_close(wall.signed_distance(m), -wall.signed_distance(p), 1e-12);
    }

    #[test]
    fn bounce_path_is_longer_than_direct() {
        // Side wall at x = 5; two points well inside x < 5.
        let wall = Plane::wall_at_x(5.0);
        let a = Vec3::new(0.0, 0.0, 1.0);
        let b = Vec3::new(1.0, 6.0, 1.0);
        let bounce = wall.bounce_path_length(a, b).unwrap();
        assert!(
            bounce > a.distance(b),
            "bounce {bounce} direct {}",
            a.distance(b)
        );
    }

    #[test]
    fn bounce_point_lies_on_plane_and_path_lengths_agree() {
        let wall = Plane::wall_at_x(4.0);
        let a = Vec3::new(0.0, 1.0, 0.5);
        let b = Vec3::new(2.0, 7.0, 1.5);
        let q = wall.bounce_point(a, b).unwrap();
        assert_close(wall.distance(q), 0.0, 1e-9);
        let via = a.distance(q) + q.distance(b);
        assert_close(via, wall.bounce_path_length(a, b).unwrap(), 1e-9);
    }

    #[test]
    fn bounce_rejects_opposite_sides() {
        let wall = Plane::wall_at_y(3.0);
        let a = Vec3::new(0.0, 1.0, 0.0); // y < 3
        let b = Vec3::new(0.0, 5.0, 0.0); // y > 3
        assert!(wall.bounce_path_length(a, b).is_none());
    }

    #[test]
    fn ray_plane_intersection() {
        let floor = Plane::floor_at_z(0.0);
        let r = Ray::new(Vec3::new(0.0, 0.0, 2.0), Vec3::new(1.0, 0.0, -1.0)).unwrap();
        let hit = floor.intersect_ray(&r).unwrap();
        assert!(hit.distance(Vec3::new(2.0, 0.0, 0.0)) < 1e-12);
        // Parallel ray misses.
        let r2 = Ray::new(Vec3::new(0.0, 0.0, 2.0), Vec3::X).unwrap();
        assert!(floor.intersect_ray(&r2).is_none());
        // Ray pointing away misses.
        let r3 = Ray::new(Vec3::new(0.0, 0.0, 2.0), Vec3::Z).unwrap();
        assert!(floor.intersect_ray(&r3).is_none());
    }

    #[test]
    fn ray_point_distance() {
        let r = Ray::new(Vec3::ZERO, Vec3::X).unwrap();
        assert_close(r.distance_to_point(Vec3::new(5.0, 3.0, 4.0)), 5.0, 1e-12);
    }

    #[test]
    fn degenerate_normal_rejected() {
        assert!(Plane::from_point_normal(Vec3::ZERO, Vec3::ZERO).is_none());
        assert!(Ray::new(Vec3::ZERO, Vec3::ZERO).is_none());
    }
}
