//! Directional antennas and the WiTrack array geometry.
//!
//! The prototype uses WA5VJB directional antennas (paper §7): one transmit
//! antenna at the crossing of a "T", two receive antennas on the horizontal
//! bar, and one receive antenna below (Fig. 1(a)). Directionality matters
//! twice in the system:
//!
//! * it suppresses people *behind* the array (paper §3's single-person
//!   operating assumption), and
//! * it disambiguates the two ellipse/ellipsoid intersection points — only
//!   the one inside every beam is feasible (paper §5, Fig. 4(a)).

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A simple rotationally-symmetric directional beam: power gain
/// `cos(θ)^order` for `θ` within the front half-space, zero behind.
///
/// `order = 0` is an isotropic front hemisphere; larger orders narrow the
/// beam. WA5VJB log-periodic antennas have roughly 60–70° half-power
/// beamwidth, which `order ≈ 2` approximates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BeamPattern {
    /// Cosine exponent controlling beam width.
    pub order: f64,
}

impl BeamPattern {
    /// An isotropic (hemispherical) pattern.
    pub const HEMISPHERE: BeamPattern = BeamPattern { order: 0.0 };

    /// Default pattern approximating the prototype's WA5VJB antennas.
    pub const WA5VJB: BeamPattern = BeamPattern { order: 2.0 };

    /// Creates a pattern with the given cosine exponent (clamped to `>= 0`).
    pub fn new(order: f64) -> BeamPattern {
        BeamPattern {
            order: order.max(0.0),
        }
    }

    /// Linear power gain for a ray at angle `theta` (radians) off boresight.
    /// Zero for `|theta| >= π/2` (back half-space).
    pub fn gain(&self, theta: f64) -> f64 {
        let c = theta.cos();
        // Treat the numerical fuzz of cos(π/2) as "behind".
        if c <= 1e-12 {
            0.0
        } else if self.order == 0.0 {
            1.0
        } else {
            c.powf(self.order)
        }
    }

    /// Half-power beamwidth in radians (full width): the angle span where
    /// gain ≥ 0.5.
    pub fn half_power_beamwidth(&self) -> f64 {
        if self.order == 0.0 {
            std::f64::consts::PI
        } else {
            2.0 * (0.5_f64.powf(1.0 / self.order)).acos()
        }
    }
}

/// A directional antenna: a position, a boresight direction, and a beam.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Antenna {
    /// Phase-center position (meters, world frame).
    pub position: Vec3,
    /// Unit boresight direction.
    pub boresight: Vec3,
    /// Beam pattern.
    pub beam: BeamPattern,
}

impl Antenna {
    /// Creates an antenna; the boresight is normalized.
    ///
    /// Returns `None` if the boresight direction is degenerate.
    pub fn new(position: Vec3, boresight: Vec3, beam: BeamPattern) -> Option<Antenna> {
        Some(Antenna {
            position,
            boresight: boresight.normalized()?,
            beam,
        })
    }

    /// An antenna facing the room (+y boresight) with the default beam.
    pub fn facing_room(position: Vec3) -> Antenna {
        Antenna {
            position,
            boresight: Vec3::Y,
            beam: BeamPattern::WA5VJB,
        }
    }

    /// Linear power gain toward point `p` (zero if `p` is behind the antenna).
    pub fn gain_toward(&self, p: Vec3) -> f64 {
        match (p - self.position).angle_to(self.boresight) {
            Some(theta) => self.beam.gain(theta),
            None => 1.0, // p coincides with the antenna: boresight by convention
        }
    }

    /// Whether point `p` is inside the antenna's front half-space.
    pub fn sees(&self, p: Vec3) -> bool {
        (p - self.position).dot(self.boresight) > 0.0
    }
}

/// A transmit antenna plus `N ≥ 3` receive antennas, the full sensing array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AntennaArray {
    /// The single transmit antenna.
    pub tx: Antenna,
    /// Receive antennas, in a fixed order that the TOF streams follow.
    pub rx: Vec<Antenna>,
}

/// Errors constructing an [`AntennaArray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayError {
    /// Fewer than three receive antennas cannot resolve a 3D location (§5).
    TooFewReceivers,
}

impl std::fmt::Display for ArrayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArrayError::TooFewReceivers => {
                write!(
                    f,
                    "3D localization requires at least three receive antennas"
                )
            }
        }
    }
}

impl std::error::Error for ArrayError {}

impl AntennaArray {
    /// Builds an array, enforcing the three-receiver minimum.
    pub fn new(tx: Antenna, rx: Vec<Antenna>) -> Result<AntennaArray, ArrayError> {
        if rx.len() < 3 {
            return Err(ArrayError::TooFewReceivers);
        }
        Ok(AntennaArray { tx, rx })
    }

    /// The paper's default "T" arrangement facing +y:
    ///
    /// * Tx at `origin` (the crossing point of the T),
    /// * Rx0 at `origin - (sep, 0, 0)` and Rx1 at `origin + (sep, 0, 0)`
    ///   (the horizontal bar),
    /// * Rx2 at `origin - (0, 0, sep)` (below, for elevation).
    ///
    /// `sep` is the Tx–Rx separation (1 m by default in the paper, varied
    /// from 0.25 m to 2 m in Fig. 10).
    pub fn t_shape(origin: Vec3, sep: f64) -> AntennaArray {
        let mk = Antenna::facing_room;
        AntennaArray {
            tx: mk(origin),
            rx: vec![
                mk(origin - Vec3::new(sep, 0.0, 0.0)),
                mk(origin + Vec3::new(sep, 0.0, 0.0)),
                mk(origin - Vec3::new(0.0, 0.0, sep)),
            ],
        }
    }

    /// A T-shape with `extra` additional receive antennas interleaved on the
    /// bar and the stem, for the §5 over-constrained configuration (ablation
    /// A2 in DESIGN.md).
    pub fn t_shape_extended(origin: Vec3, sep: f64, extra: usize) -> AntennaArray {
        let mut array = AntennaArray::t_shape(origin, sep);
        for i in 0..extra {
            // Alternate: above the crossing, then half-separation points.
            let offset = match i % 4 {
                0 => Vec3::new(0.0, 0.0, sep),
                1 => Vec3::new(-sep / 2.0, 0.0, 0.0),
                2 => Vec3::new(sep / 2.0, 0.0, 0.0),
                _ => Vec3::new(0.0, 0.0, -sep / 2.0),
            };
            array.rx.push(Antenna::facing_room(origin + offset));
        }
        array
    }

    /// Number of receive antennas.
    pub fn num_rx(&self) -> usize {
        self.rx.len()
    }

    /// Exact round-trip distance from the transmitter to a reflector at `p`
    /// and back to receive antenna `k`. This is the quantity the FMCW
    /// front end measures (paper Eq. 4).
    pub fn round_trip(&self, p: Vec3, k: usize) -> f64 {
        self.tx.position.distance(p) + p.distance(self.rx[k].position)
    }

    /// Round-trip distances to every receive antenna.
    pub fn round_trips(&self, p: Vec3) -> Vec<f64> {
        (0..self.rx.len()).map(|k| self.round_trip(p, k)).collect()
    }

    /// Whether `p` is within the front half-space of *all* antennas —
    /// the feasibility condition used to pick among ellipsoid intersections.
    pub fn in_all_beams(&self, p: Vec3) -> bool {
        self.tx.sees(p) && self.rx.iter().all(|a| a.sees(p))
    }

    /// The centroid of all antenna positions (used as a solver seed).
    pub fn centroid(&self) -> Vec3 {
        let sum: Vec3 = std::iter::once(self.tx.position)
            .chain(self.rx.iter().map(|a| a.position))
            .sum();
        sum / (1.0 + self.rx.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn beam_gain_boundaries() {
        let b = BeamPattern::WA5VJB;
        assert_close(b.gain(0.0), 1.0, 1e-12);
        assert_eq!(b.gain(std::f64::consts::FRAC_PI_2), 0.0);
        assert_eq!(b.gain(2.0), 0.0); // behind
        assert!(b.gain(0.5) > b.gain(1.0)); // monotone fall-off
    }

    #[test]
    fn hemisphere_is_flat() {
        let b = BeamPattern::HEMISPHERE;
        assert_close(b.gain(0.1), 1.0, 1e-12);
        assert_close(b.gain(1.4), 1.0, 1e-12);
        assert_eq!(b.gain(1.7), 0.0);
    }

    #[test]
    fn half_power_beamwidth_narrows_with_order() {
        let wide = BeamPattern::new(1.0).half_power_beamwidth();
        let narrow = BeamPattern::new(8.0).half_power_beamwidth();
        assert!(narrow < wide);
        // order 2: gain(θ)=cos²θ = 0.5 at θ = 45°, so HPBW = 90°.
        assert_close(
            BeamPattern::WA5VJB.half_power_beamwidth(),
            std::f64::consts::FRAC_PI_2,
            1e-12,
        );
    }

    #[test]
    fn antenna_sees_front_not_back() {
        let a = Antenna::facing_room(Vec3::ZERO);
        assert!(a.sees(Vec3::new(0.0, 3.0, 0.0)));
        assert!(!a.sees(Vec3::new(0.0, -3.0, 0.0)));
        assert!(a.gain_toward(Vec3::new(0.0, -3.0, 0.0)) == 0.0);
        assert!(a.gain_toward(Vec3::new(0.0, 3.0, 0.0)) > 0.9);
    }

    #[test]
    fn t_shape_matches_paper_layout() {
        let arr = AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0);
        assert_eq!(arr.num_rx(), 3);
        assert_eq!(arr.tx.position, Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(arr.rx[0].position, Vec3::new(-1.0, 0.0, 1.0));
        assert_eq!(arr.rx[1].position, Vec3::new(1.0, 0.0, 1.0));
        assert_eq!(arr.rx[2].position, Vec3::new(0.0, 0.0, 0.0));
        // Every Tx–Rx distance equals the separation (paper §9.3 setup).
        for k in 0..3 {
            assert_close(arr.tx.position.distance(arr.rx[k].position), 1.0, 1e-12);
        }
    }

    #[test]
    fn round_trip_is_sum_of_legs() {
        let arr = AntennaArray::t_shape(Vec3::ZERO, 1.0);
        let p = Vec3::new(0.5, 4.0, 0.2);
        let r = arr.round_trip(p, 1);
        assert_close(
            r,
            p.distance(arr.tx.position) + p.distance(arr.rx[1].position),
            1e-12,
        );
        assert_eq!(arr.round_trips(p).len(), 3);
    }

    #[test]
    fn in_all_beams_requires_positive_y() {
        let arr = AntennaArray::t_shape(Vec3::ZERO, 1.0);
        assert!(arr.in_all_beams(Vec3::new(0.0, 2.0, 0.5)));
        assert!(!arr.in_all_beams(Vec3::new(0.0, -2.0, 0.5)));
    }

    #[test]
    fn array_requires_three_receivers() {
        let tx = Antenna::facing_room(Vec3::ZERO);
        let rx = vec![
            Antenna::facing_room(Vec3::X),
            Antenna::facing_room(-Vec3::X),
        ];
        assert_eq!(
            AntennaArray::new(tx, rx,).unwrap_err(),
            ArrayError::TooFewReceivers
        );
    }

    #[test]
    fn extended_array_adds_receivers() {
        let arr = AntennaArray::t_shape_extended(Vec3::ZERO, 1.0, 2);
        assert_eq!(arr.num_rx(), 5);
        // All added antennas still face the room.
        assert!(arr.rx.iter().all(|a| a.boresight == Vec3::Y));
    }

    #[test]
    fn centroid_of_t_is_on_the_stem() {
        let arr = AntennaArray::t_shape(Vec3::ZERO, 1.0);
        let c = arr.centroid();
        assert_close(c.x, 0.0, 1e-12);
        assert_close(c.y, 0.0, 1e-12);
        assert_close(c.z, -0.25, 1e-12);
    }
}
