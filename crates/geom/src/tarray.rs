//! Closed-form 3D localization for the "T" antenna geometry.
//!
//! The paper solves the three-ellipsoid intersection offline with MATLAB's
//! symbolic library, "so the ellipsoid equations need to be solved only once
//! for any fixed antenna positioning" (§7). For the T geometry the symbolic
//! solution is simple enough to derive by hand; this module is that
//! derivation, and doubles as the real-time fast path.
//!
//! # Derivation
//!
//! Work in the array-local frame: Tx at the origin, receive antennas at
//! `A₀ = (−d, 0, 0)`, `A₁ = (+d, 0, 0)` (the bar) and `A₂ = (0, 0, −h)`
//! (the stem), beams facing `+y`. A reflector at `P` with `R = |P|` produces
//! round-trip distances `rₖ = |P| + |P − Aₖ|`. Squaring
//! `|P − Aₖ| = rₖ − R` gives the linear relations
//!
//! ```text
//! Aₖ·P = (|Aₖ|² − rₖ²)/2 + rₖ R           (k = 0, 1, 2)
//! ```
//!
//! Adding the `k = 0` and `k = 1` relations (their `Aₖ` cancel) eliminates
//! `P` entirely and yields the range:
//!
//! ```text
//! R = ((r₀² + r₁²)/2 − d²) / (r₀ + r₁)
//! ```
//!
//! after which the `k = 1` relation gives `x`, the `k = 2` relation gives
//! `z`, and `y = +√(R² − x² − z²)` — the positive branch, because the
//! directional antennas only see the front half-space (paper §5, Fig. 4).

use crate::antenna::AntennaArray;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Closed-form solver for the T antenna arrangement.
///
/// `origin` is the transmit antenna's world position; `bar_sep` is the Tx–Rx
/// distance along the bar; `stem_sep` the distance to the lower antenna. The
/// paper uses `bar_sep == stem_sep` (1 m default, 0.25–2 m in Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TArray {
    /// World position of the transmit antenna (crossing point of the T).
    pub origin: Vec3,
    /// Separation between Tx and each bar receive antenna (meters).
    pub bar_sep: f64,
    /// Separation between Tx and the lower (stem) receive antenna (meters).
    pub stem_sep: f64,
}

/// Failure modes of the closed-form solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TArrayError {
    /// A round-trip distance is non-finite or non-positive.
    InvalidMeasurement,
    /// The implied range `R` is not positive — the measurements are shorter
    /// than physically possible for this array.
    RangeNotPositive,
    /// A round-trip distance is smaller than the implied range `R`
    /// (`|P − Aₖ|` would be negative).
    InconsistentRoundTrip,
    /// `R² − x² − z²` is significantly negative: no real intersection point.
    /// Carries the magnitude of the violation (m²).
    NoRealSolution(f64),
}

impl std::fmt::Display for TArrayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TArrayError::InvalidMeasurement => {
                write!(f, "round-trip distance is not finite/positive")
            }
            TArrayError::RangeNotPositive => write!(f, "implied range is not positive"),
            TArrayError::InconsistentRoundTrip => {
                write!(f, "round-trip distance smaller than implied range")
            }
            TArrayError::NoRealSolution(v) => {
                write!(
                    f,
                    "ellipsoids do not intersect in front of the array (deficit {v:.4} m^2)"
                )
            }
        }
    }
}

impl std::error::Error for TArrayError {}

/// Fraction of `R²` by which `y²` may go negative before we refuse to clamp.
/// Small violations are measurement noise; large ones are inconsistent data.
const CLAMP_TOLERANCE: f64 = 0.05;

impl TArray {
    /// A T-array with equal bar and stem separations (the paper's setup).
    pub fn symmetric(origin: Vec3, sep: f64) -> TArray {
        TArray {
            origin,
            bar_sep: sep,
            stem_sep: sep,
        }
    }

    /// The matching [`AntennaArray`] (for the simulator and the generic
    /// solver). Receive-antenna order: bar-left, bar-right, stem.
    pub fn antenna_array(&self) -> AntennaArray {
        let mut arr = AntennaArray::t_shape(self.origin, self.bar_sep);
        arr.rx[2].position = self.origin - Vec3::new(0.0, 0.0, self.stem_sep);
        arr
    }

    /// Solves for the 3D position from the three round-trip distances
    /// `[r_bar_left, r_bar_right, r_stem]` (meters), in the world frame.
    pub fn solve(&self, round_trips: [f64; 3]) -> Result<Vec3, TArrayError> {
        let [r0, r1, r2] = round_trips;
        for r in round_trips {
            if !r.is_finite() || r <= 0.0 {
                return Err(TArrayError::InvalidMeasurement);
            }
        }
        let d = self.bar_sep;
        let h = self.stem_sep;

        // Range from the bar pair.
        let range = ((r0 * r0 + r1 * r1) / 2.0 - d * d) / (r0 + r1);
        if range <= 0.0 || range.is_nan() {
            return Err(TArrayError::RangeNotPositive);
        }
        if r0 < range || r1 < range || r2 < range {
            return Err(TArrayError::InconsistentRoundTrip);
        }

        // x from the bar-right relation A₁ = (d, 0, 0):
        //   d·x = (d² − r₁²)/2 + r₁ R
        let x = ((d * d - r1 * r1) / 2.0 + r1 * range) / d;

        // z from the stem relation A₂ = (0, 0, −h):
        //   −h·z = (h² − r₂²)/2 + r₂ R
        let z = -((h * h - r2 * r2) / 2.0 + r2 * range) / h;

        let y_sq = range * range - x * x - z * z;
        let y = if y_sq >= 0.0 {
            y_sq.sqrt()
        } else if -y_sq <= CLAMP_TOLERANCE * range * range {
            // Mild violation: the true point is near the array plane and
            // noise pushed y² negative. Clamp to the plane.
            0.0
        } else {
            return Err(TArrayError::NoRealSolution(-y_sq));
        };

        Ok(self.origin + Vec3::new(x, y, z))
    }

    /// Forward model: exact round-trip distances for a reflector at world
    /// position `p`, in the same order [`TArray::solve`] consumes.
    pub fn round_trips(&self, p: Vec3) -> [f64; 3] {
        let arr = self.antenna_array();
        [
            arr.round_trip(p, 0),
            arr.round_trip(p, 1),
            arr.round_trip(p, 2),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_vec_close(a: Vec3, b: Vec3, tol: f64) {
        assert!(a.distance(b) <= tol, "{a} vs {b} (dist {})", a.distance(b));
    }

    #[test]
    fn solve_inverts_forward_model() {
        let t = TArray::symmetric(Vec3::new(0.0, 0.0, 1.0), 1.0);
        for p in [
            Vec3::new(0.5, 4.0, 1.2),
            Vec3::new(-2.0, 3.0, 0.4),
            Vec3::new(3.0, 9.0, 1.8),
            Vec3::new(0.0, 2.5, 1.0),
            Vec3::new(1.0, 11.0, 0.1),
        ] {
            let r = t.round_trips(p);
            let hat = t.solve(r).unwrap();
            assert_vec_close(hat, p, 1e-8);
        }
    }

    #[test]
    fn solve_handles_asymmetric_stem() {
        let t = TArray {
            origin: Vec3::new(0.0, 0.0, 1.5),
            bar_sep: 0.8,
            stem_sep: 1.2,
        };
        let p = Vec3::new(-1.0, 5.0, 0.9);
        let hat = t.solve(t.round_trips(p)).unwrap();
        assert_vec_close(hat, p, 1e-8);
    }

    #[test]
    fn world_frame_translation_respected() {
        let t = TArray::symmetric(Vec3::new(10.0, -3.0, 2.0), 1.0);
        let p = Vec3::new(10.5, 1.0, 1.5); // y > -3 so in front of array
        let hat = t.solve(t.round_trips(p)).unwrap();
        assert_vec_close(hat, p, 1e-8);
    }

    #[test]
    fn rejects_garbage_measurements() {
        let t = TArray::symmetric(Vec3::ZERO, 1.0);
        assert_eq!(
            t.solve([f64::NAN, 5.0, 5.0]),
            Err(TArrayError::InvalidMeasurement)
        );
        assert_eq!(
            t.solve([-1.0, 5.0, 5.0]),
            Err(TArrayError::InvalidMeasurement)
        );
        // All round trips ≈ 0 → range not positive.
        assert!(matches!(
            t.solve([0.1, 0.1, 0.1]),
            Err(TArrayError::RangeNotPositive | TArrayError::InconsistentRoundTrip)
        ));
    }

    #[test]
    fn rejects_wildly_inconsistent_round_trips() {
        let t = TArray::symmetric(Vec3::ZERO, 1.0);
        let p = Vec3::new(0.0, 4.0, 0.0);
        let mut r = t.round_trips(p);
        // Stem antenna claims the reflector is much closer than the range —
        // impossible geometry.
        r[2] = 2.0;
        assert!(t.solve(r).is_err());
    }

    #[test]
    fn near_plane_point_is_clamped_not_rejected() {
        let t = TArray::symmetric(Vec3::ZERO, 1.0);
        // A point exactly on the array plane (y = 0) with a tiny perturbation
        // of the measurements should clamp to y = 0 rather than error.
        let p = Vec3::new(0.7, 0.0, 0.9);
        let mut r = t.round_trips(p);
        r[0] += 1e-4;
        let hat = t.solve(r).unwrap();
        assert!(hat.y.abs() < 0.2);
    }

    #[test]
    fn noise_in_measurements_produces_bounded_error() {
        // ±1 cm of round-trip noise should perturb the solution by at most a
        // few tens of centimeters at 4 m range with 1 m separation.
        let t = TArray::symmetric(Vec3::new(0.0, 0.0, 1.0), 1.0);
        let p = Vec3::new(0.5, 4.0, 1.3);
        let mut r = t.round_trips(p);
        r[0] += 0.01;
        r[1] -= 0.01;
        r[2] += 0.01;
        let hat = t.solve(r).unwrap();
        assert!(hat.distance(p) < 0.5, "error {}", hat.distance(p));
    }

    #[test]
    fn antenna_array_matches_geometry() {
        let t = TArray {
            origin: Vec3::new(1.0, 2.0, 3.0),
            bar_sep: 0.5,
            stem_sep: 0.75,
        };
        let arr = t.antenna_array();
        assert_eq!(arr.tx.position, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(arr.rx[0].position, Vec3::new(0.5, 2.0, 3.0));
        assert_eq!(arr.rx[1].position, Vec3::new(1.5, 2.0, 3.0));
        assert_eq!(arr.rx[2].position, Vec3::new(1.0, 2.0, 2.25));
    }
}
