//! Geometric substrate for the WiTrack reproduction.
//!
//! WiTrack ("3D Tracking via Body Radio Reflections", NSDI 2014) localizes a
//! person by intersecting ellipsoids: each receive antenna's round-trip
//! distance constrains the reflector to an ellipsoid whose foci are the
//! transmit antenna and that receive antenna (paper §5). This crate provides
//! everything geometric the system needs:
//!
//! * [`Vec3`] — plain 3D vector/point algebra.
//! * [`Plane`] — wall planes with mirror images (used by the simulator's
//!   dynamic-multipath model) and ray intersection.
//! * [`Ellipsoid`] — prolate spheroids defined by two foci and a round-trip
//!   (major-axis) distance.
//! * [`Antenna`] / [`AntennaArray`] — directional antennas with a cosine-power
//!   beam model, plus the paper's default "T" arrangement.
//! * [`tarray`] — the closed-form 3D solution for the exact T geometry
//!   (the paper solved this symbolically offline; we derive it in code).
//! * [`multilateration`] — a Gauss–Newton least-squares solver for arbitrary
//!   and over-constrained arrays (the paper's "more antennas add robustness"
//!   extension in §5).
//! * [`rigid`] — SE(3) transforms registering each sensor's local frame
//!   into a shared world frame, with the closed-form least-squares
//!   point-set alignment (`witrack-fuse` auto-calibration builds on it).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod antenna;
pub mod ellipsoid;
pub mod multilateration;
pub mod plane;
pub mod rigid;
pub mod tarray;
pub mod vec3;

pub use antenna::{Antenna, AntennaArray, BeamPattern};
pub use ellipsoid::Ellipsoid;
pub use multilateration::{solve_least_squares, GaussNewtonConfig, SolveError};
pub use plane::{Plane, Ray};
pub use rigid::{align_point_sets, AlignError, Alignment, RigidTransform};
pub use tarray::{TArray, TArrayError};
pub use vec3::Vec3;

/// Speed of light in vacuum (m/s). The paper's Eq. 2–4 constant `C`.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;
