//! Plain 3D vector/point type.
//!
//! The coordinate convention throughout the workspace follows the paper's
//! Fig. 1/§5: the antenna "T" lies in the `xz` plane (`x` horizontal along
//! the bar, `z` vertical), and `y` points away from the array into the room
//! (the beam direction). All distances are in meters.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3D vector (or point) with `f64` components, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// Horizontal axis along the antenna bar.
    pub x: f64,
    /// Depth axis: positive `y` points into the room (antenna boresight).
    pub y: f64,
    /// Vertical axis (elevation).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along `x`.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along `y`.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along `z`.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to another point.
    #[inline]
    pub fn distance_sq(self, other: Vec3) -> f64 {
        (self - other).norm_sq()
    }

    /// Distance in the horizontal `xy` plane only (ignores elevation).
    #[inline]
    pub fn distance_xy(self, other: Vec3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Returns the unit vector in this direction.
    ///
    /// Returns `None` when the norm is too small to normalize reliably.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Like [`Vec3::normalized`] but returns the zero vector for degenerate
    /// input, for call sites where "no direction" is acceptable.
    #[inline]
    pub fn normalized_or_zero(self) -> Vec3 {
        self.normalized().unwrap_or(Vec3::ZERO)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Angle between two vectors in radians, in `[0, π]`.
    ///
    /// Returns `None` if either vector is (near) zero.
    pub fn angle_to(self, other: Vec3) -> Option<f64> {
        let na = self.norm();
        let nb = other.norm();
        if na < 1e-12 || nb < 1e-12 {
            return None;
        }
        let c = (self.dot(other) / (na * nb)).clamp(-1.0, 1.0);
        Some(c.acos())
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// `true` if all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Projection of this point onto the horizontal plane (`z = 0`).
    #[inline]
    pub fn xy(self) -> Vec3 {
        Vec3::new(self.x, self.y, 0.0)
    }

    /// Returns the component along axis `i` (`0 → x`, `1 → y`, `2 → z`).
    ///
    /// # Panics
    /// Panics if `i > 2`.
    #[inline]
    pub fn component(self, i: usize) -> f64 {
        match i {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("Vec3 component index out of range: {i}"),
        }
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 component index out of range: {i}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        *self = *self / s;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn dot_and_cross_are_consistent() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 5.0, 0.5);
        // a·(a×b) = 0 and b·(a×b) = 0
        let c = a.cross(b);
        assert_close(a.dot(c), 0.0, 1e-12);
        assert_close(b.dot(c), 0.0, 1e-12);
    }

    #[test]
    fn cross_of_axes_follows_right_hand_rule() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn norm_of_pythagorean_triple() {
        assert_close(Vec3::new(3.0, 4.0, 0.0).norm(), 5.0, 1e-12);
        assert_close(Vec3::new(2.0, 3.0, 6.0).norm(), 7.0, 1e-12);
    }

    #[test]
    fn normalized_rejects_zero() {
        assert!(Vec3::ZERO.normalized().is_none());
        let v = Vec3::new(0.0, 0.0, 2.0).normalized().unwrap();
        assert_close(v.norm(), 1.0, 1e-12);
        assert_eq!(v, Vec3::Z);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = Vec3::new(3.0, 5.0, -1.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(2.0, 3.0, 0.0));
    }

    #[test]
    fn angle_between_orthogonal_vectors_is_right() {
        let th = Vec3::X.angle_to(Vec3::Y).unwrap();
        assert_close(th, std::f64::consts::FRAC_PI_2, 1e-12);
        let th = Vec3::X.angle_to(Vec3::X * 7.0).unwrap();
        assert_close(th, 0.0, 1e-7);
        assert!(Vec3::ZERO.angle_to(Vec3::X).is_none());
    }

    #[test]
    fn distance_xy_ignores_elevation() {
        let a = Vec3::new(0.0, 0.0, 10.0);
        let b = Vec3::new(3.0, 4.0, -10.0);
        assert_close(a.distance_xy(b), 5.0, 1e-12);
    }

    #[test]
    fn indexing_matches_components() {
        let v = Vec3::new(1.5, -2.5, 3.5);
        assert_eq!(v[0], 1.5);
        assert_eq!(v[1], -2.5);
        assert_eq!(v[2], 3.5);
        assert_eq!(v.component(2), 3.5);
    }

    #[test]
    #[should_panic]
    fn indexing_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn sum_accumulates() {
        let pts = [Vec3::X, Vec3::Y, Vec3::Z, Vec3::new(1.0, 1.0, 1.0)];
        let s: Vec3 = pts.iter().copied().sum();
        assert_eq!(s, Vec3::new(2.0, 2.0, 2.0));
    }
}
