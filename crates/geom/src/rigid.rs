//! Rigid (SE(3)) transforms: sensor→world registration.
//!
//! A multi-sensor deployment only becomes a *system* once every sensor's
//! measurements live in one shared coordinate frame. Each WiTrack unit
//! reports positions in its own local frame (the antenna "T" at its
//! configured origin, `y` along its boresight); a [`RigidTransform`] maps
//! that local frame into the deployment's world frame. Extrinsics are
//! either surveyed at install time or auto-calibrated from a shared
//! walker trajectory via [`align_point_sets`] — the closed-form
//! least-squares absolute-orientation solution (Horn 1987, quaternion
//! form), computed here with a shifted power iteration so no external
//! linear-algebra crate is needed.

use crate::vec3::Vec3;
use std::ops::Mul;

/// A proper rigid transform: `p ↦ R p + t` with `R ∈ SO(3)`.
///
/// Stored as a row-major rotation matrix plus a translation. Construct
/// via [`RigidTransform::identity`], [`RigidTransform::from_yaw`],
/// [`RigidTransform::from_axis_angle`], or [`align_point_sets`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RigidTransform {
    /// Rotation matrix, row-major: `rotation[r][c]`.
    pub rotation: [[f64; 3]; 3],
    /// Translation applied after the rotation.
    pub translation: Vec3,
}

impl RigidTransform {
    /// The identity transform.
    pub const IDENTITY: RigidTransform = RigidTransform {
        rotation: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
        translation: Vec3::ZERO,
    };

    /// Identity transform (function form, for call sites that prefer it).
    pub fn identity() -> RigidTransform {
        Self::IDENTITY
    }

    /// A rotation of `yaw` radians about the vertical (`z`) axis followed
    /// by `translation` — the common case for wall-mounted sensors, which
    /// share gravity's `z` but face different directions.
    pub fn from_yaw(yaw: f64, translation: Vec3) -> RigidTransform {
        let (s, c) = yaw.sin_cos();
        RigidTransform {
            rotation: [[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]],
            translation,
        }
    }

    /// A rotation of `angle` radians about `axis` (Rodrigues), followed by
    /// `translation`. Returns `None` when `axis` is (near) zero.
    pub fn from_axis_angle(axis: Vec3, angle: f64, translation: Vec3) -> Option<RigidTransform> {
        let u = axis.normalized()?;
        let (s, c) = angle.sin_cos();
        let ic = 1.0 - c;
        let rotation = [
            [
                c + u.x * u.x * ic,
                u.x * u.y * ic - u.z * s,
                u.x * u.z * ic + u.y * s,
            ],
            [
                u.y * u.x * ic + u.z * s,
                c + u.y * u.y * ic,
                u.y * u.z * ic - u.x * s,
            ],
            [
                u.z * u.x * ic - u.y * s,
                u.z * u.y * ic + u.x * s,
                c + u.z * u.z * ic,
            ],
        ];
        Some(RigidTransform {
            rotation,
            translation,
        })
    }

    /// Applies the full transform to a point: `R p + t`.
    #[inline]
    pub fn apply(&self, p: Vec3) -> Vec3 {
        self.rotate(p) + self.translation
    }

    /// Applies only the rotation — for direction-like quantities
    /// (velocities, pointing directions) that must not be translated.
    #[inline]
    pub fn rotate(&self, v: Vec3) -> Vec3 {
        let r = &self.rotation;
        Vec3::new(
            r[0][0] * v.x + r[0][1] * v.y + r[0][2] * v.z,
            r[1][0] * v.x + r[1][1] * v.y + r[1][2] * v.z,
            r[2][0] * v.x + r[2][1] * v.y + r[2][2] * v.z,
        )
    }

    /// The inverse transform: `p ↦ Rᵀ (p − t)`.
    pub fn inverse(&self) -> RigidTransform {
        let r = &self.rotation;
        let rt = [
            [r[0][0], r[1][0], r[2][0]],
            [r[0][1], r[1][1], r[2][1]],
            [r[0][2], r[1][2], r[2][2]],
        ];
        let inv = RigidTransform {
            rotation: rt,
            translation: Vec3::ZERO,
        };
        RigidTransform {
            translation: -inv.rotate(self.translation),
            rotation: rt,
        }
    }

    /// Composition: `(self ∘ other)(p) = self(other(p))`.
    pub fn compose(&self, other: &RigidTransform) -> RigidTransform {
        let a = &self.rotation;
        let b = &other.rotation;
        let mut rotation = [[0.0; 3]; 3];
        for (i, row) in rotation.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = a[i][0] * b[0][j] + a[i][1] * b[1][j] + a[i][2] * b[2][j];
            }
        }
        RigidTransform {
            rotation,
            translation: self.apply(other.translation),
        }
    }

    /// Rotates a *diagonal* covariance (per-axis variances) into this
    /// transform's target frame, returning the diagonal of `R D Rᵀ`.
    ///
    /// The off-diagonal terms the rotation introduces are dropped — the
    /// conservative per-axis summary cross-sensor gating needs, without
    /// carrying full matrices through the wire.
    pub fn rotate_variances(&self, diag: Vec3) -> Vec3 {
        let r = &self.rotation;
        let row = |i: usize| {
            r[i][0] * r[i][0] * diag.x + r[i][1] * r[i][1] * diag.y + r[i][2] * r[i][2] * diag.z
        };
        Vec3::new(row(0), row(1), row(2))
    }

    /// `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.translation.is_finite() && self.rotation.iter().flatten().all(|v| v.is_finite())
    }

    /// Maximum absolute deviation of `RᵀR` from the identity — a health
    /// check for transforms assembled from external configuration.
    pub fn orthonormality_error(&self) -> f64 {
        let r = &self.rotation;
        let mut worst = 0.0_f64;
        for i in 0..3 {
            for j in 0..3 {
                let dot = r[0][i] * r[0][j] + r[1][i] * r[1][j] + r[2][i] * r[2][j];
                let expect = if i == j { 1.0 } else { 0.0 };
                worst = worst.max((dot - expect).abs());
            }
        }
        worst
    }
}

impl Default for RigidTransform {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Mul for RigidTransform {
    type Output = RigidTransform;
    fn mul(self, rhs: RigidTransform) -> RigidTransform {
        self.compose(&rhs)
    }
}

/// Why [`align_point_sets`] refused a correspondence set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignError {
    /// The two slices have different lengths.
    MismatchedLengths,
    /// Fewer than 3 correspondences (SE(3) needs three non-collinear
    /// points to be determined).
    TooFewPoints,
    /// One of the point sets has (near) zero spread around its centroid,
    /// so the rotation is undetermined.
    Degenerate,
}

impl std::fmt::Display for AlignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlignError::MismatchedLengths => write!(f, "point sets differ in length"),
            AlignError::TooFewPoints => write!(f, "need at least 3 correspondences"),
            AlignError::Degenerate => write!(f, "point set has no spread; rotation undetermined"),
        }
    }
}

impl std::error::Error for AlignError {}

/// The result of a least-squares point-set alignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alignment {
    /// The fitted transform mapping `src` points onto `dst` points.
    pub transform: RigidTransform,
    /// RMS residual `|T(src_i) − dst_i|` over all correspondences (m).
    pub rms_residual: f64,
}

/// Least-squares rigid alignment: finds the `T ∈ SE(3)` minimizing
/// `Σ |T(src_i) − dst_i|²` over paired correspondences (Horn's
/// closed-form quaternion solution).
///
/// This is how a fleet auto-calibrates: two sensors that both tracked the
/// same calibration walker hand their trajectory samples (paired by
/// timestamp) to this function and receive the transform carrying one
/// sensor's frame into the other's.
///
/// The dominant eigenvector of Horn's 4×4 profile matrix is extracted
/// with a shifted power iteration (the matrix is symmetric and tiny, so
/// ~100 iterations reach well past `f64` round-off for well-conditioned
/// inputs).
pub fn align_point_sets(src: &[Vec3], dst: &[Vec3]) -> Result<Alignment, AlignError> {
    if src.len() != dst.len() {
        return Err(AlignError::MismatchedLengths);
    }
    let n = src.len();
    if n < 3 {
        return Err(AlignError::TooFewPoints);
    }
    let inv_n = 1.0 / n as f64;
    let c_src: Vec3 = src.iter().copied().sum::<Vec3>() * inv_n;
    let c_dst: Vec3 = dst.iter().copied().sum::<Vec3>() * inv_n;

    // Cross-covariance S[a][b] = Σ src'_a · dst'_b of the demeaned sets.
    let mut s = [[0.0_f64; 3]; 3];
    let mut spread_src = 0.0;
    let mut spread_dst = 0.0;
    for (&p, &q) in src.iter().zip(dst) {
        let a = p - c_src;
        let b = q - c_dst;
        spread_src += a.norm_sq();
        spread_dst += b.norm_sq();
        for (i, row) in s.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell += a.component(i) * b.component(j);
            }
        }
    }
    if spread_src * inv_n < 1e-12 || spread_dst * inv_n < 1e-12 {
        return Err(AlignError::Degenerate);
    }

    // Horn's symmetric 4×4 profile matrix N; its dominant eigenvector is
    // the optimal rotation quaternion (w, x, y, z).
    let (sxx, sxy, sxz) = (s[0][0], s[0][1], s[0][2]);
    let (syx, syy, syz) = (s[1][0], s[1][1], s[1][2]);
    let (szx, szy, szz) = (s[2][0], s[2][1], s[2][2]);
    let nm = [
        [sxx + syy + szz, syz - szy, szx - sxz, sxy - syx],
        [syz - szy, sxx - syy - szz, sxy + syx, szx + sxz],
        [szx - sxz, sxy + syx, -sxx + syy - szz, syz + szy],
        [sxy - syx, szx + sxz, syz + szy, -sxx - syy + szz],
    ];
    let q = dominant_eigenvector(&nm);
    let rotation = quaternion_to_matrix(q);
    let mut transform = RigidTransform {
        rotation,
        translation: Vec3::ZERO,
    };
    transform.translation = c_dst - transform.rotate(c_src);

    let rms_residual = (src
        .iter()
        .zip(dst)
        .map(|(&p, &q)| transform.apply(p).distance_sq(q))
        .sum::<f64>()
        * inv_n)
        .sqrt();
    Ok(Alignment {
        transform,
        rms_residual,
    })
}

/// Most-positive eigenvalue's eigenvector of a symmetric 4×4.
///
/// Exact route: the characteristic polynomial (Faddeev–LeVerrier), its
/// largest root by Newton from a Gershgorin upper bound (monotone and
/// quadratic for a polynomial with all-real roots), then the null vector
/// of `M − λI` read off the adjugate — machine precision regardless of
/// the eigengap. Falls back to a shifted power iteration only when the
/// top eigenvalue is (numerically) repeated, where the adjugate vanishes
/// and *any* vector of the eigenspace is an equally optimal rotation.
fn dominant_eigenvector(m: &[[f64; 4]; 4]) -> [f64; 4] {
    let lambda = largest_eigenvalue(m);
    let mut b = *m;
    for (i, row) in b.iter_mut().enumerate() {
        row[i] -= lambda;
    }
    // adj(B) is rank one (= v wᵀ) when λ is a simple eigenvalue; every
    // nonzero column is the eigenvector. Take the largest for stability.
    let adj = adjugate4(&b);
    let mut best = [0.0; 4];
    let mut best_norm = 0.0;
    for col in (0..4).map(|c| [adj[0][c], adj[1][c], adj[2][c], adj[3][c]]) {
        let n = col.iter().map(|x| x * x).sum::<f64>();
        if n > best_norm {
            best_norm = n;
            best = col;
        }
    }
    let scale = m
        .iter()
        .flatten()
        .map(|v| v.abs())
        .fold(0.0_f64, f64::max)
        .max(1.0);
    if best_norm.sqrt() > scale * scale * scale * 1e-9 {
        return best;
    }
    // Degenerate (repeated λ): power-iterate the shifted matrix.
    let shift = m
        .iter()
        .map(|row| row.iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0_f64, f64::max);
    let mut a = *m;
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += shift;
    }
    let mut v = [1.0, 0.3, 0.2, 0.1];
    for _ in 0..4096 {
        let mut w = [0.0_f64; 4];
        for (i, row) in a.iter().enumerate() {
            w[i] = row[0] * v[0] + row[1] * v[1] + row[2] * v[2] + row[3] * v[3];
        }
        let norm = (w.iter().map(|x| x * x).sum::<f64>()).sqrt();
        if norm < 1e-300 {
            v = [0.1, 1.0, 0.2, 0.3]; // restart off the unlucky start
            continue;
        }
        for (x, y) in v.iter_mut().zip(&w) {
            *x = y / norm;
        }
    }
    v
}

/// Largest eigenvalue of a symmetric 4×4: Newton on the characteristic
/// polynomial from above its largest root.
fn largest_eigenvalue(m: &[[f64; 4]; 4]) -> f64 {
    // Faddeev–LeVerrier: p(λ) = λ⁴ + c1 λ³ + c2 λ² + c3 λ + c4.
    let tr = |a: &[[f64; 4]; 4]| a[0][0] + a[1][1] + a[2][2] + a[3][3];
    let mul = |a: &[[f64; 4]; 4], b: &[[f64; 4]; 4]| {
        let mut out = [[0.0; 4]; 4];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..4).map(|k| a[i][k] * b[k][j]).sum();
            }
        }
        out
    };
    let add_diag = |mut a: [[f64; 4]; 4], c: f64| {
        for (i, row) in a.iter_mut().enumerate() {
            row[i] += c;
        }
        a
    };
    let m1 = *m;
    let c1 = -tr(&m1);
    let m2 = mul(m, &add_diag(m1, c1));
    let c2 = -tr(&m2) / 2.0;
    let m3 = mul(m, &add_diag(m2, c2));
    let c3 = -tr(&m3) / 3.0;
    let m4 = mul(m, &add_diag(m3, c3));
    let c4 = -tr(&m4) / 4.0;
    // Newton from a Gershgorin bound (≥ every root): monotone descent to
    // the largest root; quadratic once close.
    let mut x = m
        .iter()
        .map(|row| row.iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0_f64, f64::max)
        + 1.0;
    for _ in 0..200 {
        let p = (((x + c1) * x + c2) * x + c3) * x + c4;
        let dp = ((4.0 * x + 3.0 * c1) * x + 2.0 * c2) * x + c3;
        if dp.abs() < 1e-300 {
            break;
        }
        let step = p / dp;
        x -= step;
        if step.abs() <= x.abs() * 1e-16 + 1e-300 {
            break;
        }
    }
    x
}

/// Adjugate (transposed cofactor matrix) of a 4×4.
fn adjugate4(b: &[[f64; 4]; 4]) -> [[f64; 4]; 4] {
    let det3 = |r: [usize; 3], c: [usize; 3]| {
        b[r[0]][c[0]] * (b[r[1]][c[1]] * b[r[2]][c[2]] - b[r[1]][c[2]] * b[r[2]][c[1]])
            - b[r[0]][c[1]] * (b[r[1]][c[0]] * b[r[2]][c[2]] - b[r[1]][c[2]] * b[r[2]][c[0]])
            + b[r[0]][c[2]] * (b[r[1]][c[0]] * b[r[2]][c[1]] - b[r[1]][c[1]] * b[r[2]][c[0]])
    };
    let others = |k: usize| {
        let mut o = [0usize; 3];
        let mut n = 0;
        for i in 0..4 {
            if i != k {
                o[n] = i;
                n += 1;
            }
        }
        o
    };
    let mut adj = [[0.0; 4]; 4];
    for (j, row) in adj.iter_mut().enumerate() {
        for (i, cell) in row.iter_mut().enumerate() {
            let sign = if (i + j) % 2 == 0 { 1.0 } else { -1.0 };
            // adj[j][i] = cofactor(i, j): minor deletes row i, column j.
            *cell = sign * det3(others(i), others(j));
        }
    }
    adj
}

/// Unit quaternion `(w, x, y, z)` → rotation matrix.
fn quaternion_to_matrix(q: [f64; 4]) -> [[f64; 3]; 3] {
    let norm = (q.iter().map(|x| x * x).sum::<f64>()).sqrt();
    let [w, x, y, z] = q.map(|c| c / norm);
    [
        [
            1.0 - 2.0 * (y * y + z * z),
            2.0 * (x * y - z * w),
            2.0 * (x * z + y * w),
        ],
        [
            2.0 * (x * y + z * w),
            1.0 - 2.0 * (x * x + z * z),
            2.0 * (y * z - x * w),
        ],
        [
            2.0 * (x * z - y * w),
            2.0 * (y * z + x * w),
            1.0 - 2.0 * (x * x + y * y),
        ],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn assert_close(a: Vec3, b: Vec3, tol: f64) {
        assert!(a.distance(b) <= tol, "{a} vs {b}");
    }

    #[test]
    fn identity_is_a_no_op() {
        let p = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(RigidTransform::IDENTITY.apply(p), p);
        assert_eq!(RigidTransform::default().rotate(p), p);
    }

    #[test]
    fn yaw_rotates_in_the_floor_plane() {
        let t = RigidTransform::from_yaw(FRAC_PI_2, Vec3::new(10.0, 0.0, 0.0));
        // +y (boresight) swings to −x under a +90° yaw, then translates.
        assert_close(
            t.apply(Vec3::new(0.0, 2.0, 1.0)),
            Vec3::new(8.0, 0.0, 1.0),
            1e-12,
        );
        // z is untouched.
        assert_eq!(t.rotate(Vec3::Z), Vec3::Z);
    }

    #[test]
    fn axis_angle_matches_yaw_about_z() {
        let a = RigidTransform::from_yaw(0.7, Vec3::new(1.0, 2.0, 3.0));
        let b = RigidTransform::from_axis_angle(Vec3::Z, 0.7, Vec3::new(1.0, 2.0, 3.0)).unwrap();
        for p in [Vec3::X, Vec3::Y, Vec3::new(0.3, -1.0, 2.0)] {
            assert_close(a.apply(p), b.apply(p), 1e-12);
        }
        assert!(RigidTransform::from_axis_angle(Vec3::ZERO, 1.0, Vec3::ZERO).is_none());
    }

    #[test]
    fn inverse_round_trips() {
        let t = RigidTransform::from_axis_angle(
            Vec3::new(1.0, 2.0, -0.5),
            1.3,
            Vec3::new(4.0, -1.0, 2.0),
        )
        .unwrap();
        let inv = t.inverse();
        for p in [Vec3::ZERO, Vec3::new(3.0, 5.0, -2.0), Vec3::X] {
            assert_close(inv.apply(t.apply(p)), p, 1e-12);
            assert_close(t.apply(inv.apply(p)), p, 1e-12);
        }
    }

    #[test]
    fn composition_applies_right_to_left() {
        let a = RigidTransform::from_yaw(FRAC_PI_2, Vec3::ZERO);
        let b = RigidTransform::from_yaw(0.0, Vec3::new(1.0, 0.0, 0.0));
        let ab = a * b; // translate, then rotate
        assert_close(ab.apply(Vec3::ZERO), Vec3::new(0.0, 1.0, 0.0), 1e-12);
        let ba = b * a; // rotate, then translate
        assert_close(ba.apply(Vec3::ZERO), Vec3::new(1.0, 0.0, 0.0), 1e-12);
    }

    #[test]
    fn variance_rotation_preserves_trace_and_positivity() {
        let t = RigidTransform::from_axis_angle(Vec3::new(0.2, 1.0, 0.4), 2.1, Vec3::ZERO).unwrap();
        let d = Vec3::new(0.04, 0.09, 0.25);
        let r = t.rotate_variances(d);
        assert!(r.x > 0.0 && r.y > 0.0 && r.z > 0.0);
        assert!(((r.x + r.y + r.z) - (d.x + d.y + d.z)).abs() < 1e-12);
        // A yaw of 90° swaps the x and y variances exactly.
        let yaw = RigidTransform::from_yaw(FRAC_PI_2, Vec3::ZERO);
        let s = yaw.rotate_variances(d);
        assert!((s.x - d.y).abs() < 1e-12 && (s.y - d.x).abs() < 1e-12);
    }

    #[test]
    fn alignment_recovers_a_known_transform() {
        let truth = RigidTransform::from_axis_angle(
            Vec3::new(0.1, 0.2, 1.0),
            2.4,
            Vec3::new(5.0, -3.0, 1.0),
        )
        .unwrap();
        let src: Vec<Vec3> = (0..24)
            .map(|i| {
                let t = i as f64 * 0.37;
                Vec3::new(t.sin() * 2.0, 0.5 * t, (0.7 * t).cos())
            })
            .collect();
        let dst: Vec<Vec3> = src.iter().map(|&p| truth.apply(p)).collect();
        let a = align_point_sets(&src, &dst).unwrap();
        assert!(a.rms_residual < 1e-9, "rms {}", a.rms_residual);
        for &p in &src {
            assert_close(a.transform.apply(p), truth.apply(p), 1e-9);
        }
        assert!(a.transform.orthonormality_error() < 1e-12);
    }

    #[test]
    fn alignment_is_least_squares_under_noise() {
        let truth = RigidTransform::from_yaw(PI * 0.75, Vec3::new(12.0, 0.0, 0.0));
        // Deterministic pseudo-noise.
        let mut state = 7u64;
        let mut noise = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0 - 0.5
        };
        let src: Vec<Vec3> = (0..200)
            .map(|i| {
                let t = i as f64 * 0.05;
                Vec3::new(
                    2.0 * t.cos(),
                    4.0 + 2.0 * t.sin(),
                    1.0 + 0.1 * (3.0 * t).sin(),
                )
            })
            .collect();
        let dst: Vec<Vec3> = src
            .iter()
            .map(|&p| truth.apply(p) + Vec3::new(noise(), noise(), noise()) * 0.05)
            .collect();
        let a = align_point_sets(&src, &dst).unwrap();
        // Residual is on the order of the injected noise, and the fitted
        // transform lands points within a few cm of the true mapping.
        assert!(a.rms_residual < 0.1, "rms {}", a.rms_residual);
        for &p in &src {
            assert!(a.transform.apply(p).distance(truth.apply(p)) < 0.05);
        }
    }

    #[test]
    fn alignment_rejects_bad_input() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(
            align_point_sets(&[p, p], &[p, p, p]),
            Err(AlignError::MismatchedLengths)
        );
        assert_eq!(
            align_point_sets(&[p, p], &[p, p]),
            Err(AlignError::TooFewPoints)
        );
        assert_eq!(
            align_point_sets(&[p, p, p], &[p, p, p]),
            Err(AlignError::Degenerate)
        );
    }
}
