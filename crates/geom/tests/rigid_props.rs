//! Property tests on the SE(3) registration layer: group axioms hold to
//! numerical precision, and least-squares alignment recovers arbitrary
//! rigid transforms from exact correspondences.

use proptest::prelude::*;
use witrack_geom::rigid::align_point_sets;
use witrack_geom::{RigidTransform, Vec3};

fn vec3() -> impl Strategy<Value = Vec3> {
    (-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn transform() -> impl Strategy<Value = RigidTransform> {
    (
        (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0),
        -3.1f64..3.1,
        vec3(),
    )
        .prop_map(|((ax, ay, az), angle, t)| {
            let axis = Vec3::new(ax, ay, az + 1.5); // never the zero axis
            RigidTransform::from_axis_angle(axis, angle, t).expect("nonzero axis")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn inverse_composes_to_identity((t, p) in (transform(), vec3())) {
        let round = t.inverse().compose(&t);
        prop_assert!(round.apply(p).distance(p) < 1e-9, "{}", round.apply(p));
        let round = t.compose(&t.inverse());
        prop_assert!(round.apply(p).distance(p) < 1e-9);
    }

    #[test]
    fn composition_matches_sequential_application((a, b, p) in (transform(), transform(), vec3())) {
        let composed = a.compose(&b).apply(p);
        let sequential = a.apply(b.apply(p));
        prop_assert!(composed.distance(sequential) < 1e-9);
    }

    #[test]
    fn composition_is_associative((a, b, c, p) in (transform(), transform(), transform(), vec3())) {
        let left = (a * b) * c;
        let right = a * (b * c);
        prop_assert!(left.apply(p).distance(right.apply(p)) < 1e-9);
    }

    #[test]
    fn rotation_preserves_lengths_and_angles((t, p, q) in (transform(), vec3(), vec3())) {
        prop_assert!((t.rotate(p).norm() - p.norm()).abs() < 1e-9);
        prop_assert!((t.rotate(p).dot(t.rotate(q)) - p.dot(q)).abs() < 1e-7);
        prop_assert!(t.orthonormality_error() < 1e-12);
    }

    #[test]
    fn alignment_recovers_random_transforms(
        (t, seeds) in (transform(), proptest::collection::vec(vec3(), 8..20))
    ) {
        // Spread the correspondence cloud so it is never near-degenerate.
        let src: Vec<Vec3> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| s + Vec3::new(3.0 * (i as f64).sin(), 3.0 * (i as f64).cos(), i as f64 * 0.5))
            .collect();
        let dst: Vec<Vec3> = src.iter().map(|&p| t.apply(p)).collect();
        let a = align_point_sets(&src, &dst).unwrap();
        prop_assert!(a.rms_residual < 1e-9, "rms {}", a.rms_residual);
        for &p in &src {
            prop_assert!(a.transform.apply(p).distance(t.apply(p)) < 1e-8);
        }
    }
}
