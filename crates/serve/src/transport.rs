//! Message transports: how encoded wire frames move between a sensor
//! client and the engine.
//!
//! Two implementations ship:
//!
//! * [`InProcTransport`] — a pair of bounded in-process byte-frame queues.
//!   Tests and benches exercise the full wire path (encode → frame queue →
//!   decode) with no sockets, and the bounded send side gives the same
//!   backpressure shape a kernel socket buffer would.
//! * [`TcpTransport`] — a `TcpStream` carrying the same frames, used by the
//!   loopback [`TcpServer`](crate::server::TcpServer).
//!
//! A transport [`split`](Transport::split)s into an independently-owned
//! send half and receive half so a connection can be serviced by one
//! reader thread and one writer thread without locking.

use crate::pool::{BatchSamples, PooledBatch, PooledBuf, SamplePools};
use crate::wire::{self, DecodedMsgQ, Message, WireError, HEADER_LEN};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};

/// An encoded wire frame in flight on an in-process queue: plain owned
/// bytes, or a pool-backed buffer that recycles once the receiving side
/// has decoded it.
pub enum WireFrame {
    /// A caller-owned frame.
    Owned(Vec<u8>),
    /// A pool-backed frame (e.g. an engine outbox encode buffer).
    Pooled(PooledBuf<u8>),
}

impl std::ops::Deref for WireFrame {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            WireFrame::Owned(v) => v,
            WireFrame::Pooled(p) => p,
        }
    }
}

/// What the pooled receive path yields.
pub enum RxMsg {
    /// A sweep batch, its samples decoded into a pooled buffer in the
    /// representation they arrived in (f64, or i16 + scale for quantized
    /// wire) — ready for
    /// [`crate::engine::EngineHandle::submit_batch_pooled`].
    Batch(PooledBatch),
    /// Any other message, decoded owned.
    Control(Message),
}

/// The sending half of a transport.
pub trait TransportTx: Send {
    /// Sends one already-encoded wire frame (blocking while the peer's
    /// buffer is full). The hot path for senders that pre-encode.
    fn send_frame(&mut self, frame: Vec<u8>) -> io::Result<()>;

    /// Sends one pool-backed frame. Implementations recycle the buffer as
    /// soon as the bytes are on their way (TCP) or once the peer has
    /// decoded them (in-process); the default detaches the buffer and
    /// falls back to [`Self::send_frame`].
    fn send_pooled(&mut self, frame: PooledBuf<u8>) -> io::Result<()> {
        self.send_frame(frame.into_vec())
    }

    /// Encodes and sends one message.
    fn send_msg(&mut self, msg: &Message) -> io::Result<()> {
        self.send_frame(wire::encode(msg))
    }

    /// Signals end-of-stream to the peer while leaving the receive
    /// direction open. Dropping the half does this implicitly for
    /// in-process queues, but a duplex socket needs an explicit
    /// write-side shutdown.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The receiving half of a transport.
pub trait TransportRx: Send {
    /// Receives the next message, blocking until one arrives. `Ok(None)`
    /// means the peer closed cleanly.
    fn recv_msg(&mut self) -> io::Result<Option<Message>>;

    /// [`Self::recv_msg`], but sweep batches (either wire form) land as
    /// [`RxMsg::Batch`] with their samples decoded into a buffer from
    /// `pools` — the zero-allocation ingest path. f64 batches fill a
    /// buffer from `pools.f64s`; quantized batches **stay in i16**
    /// (`pools.i16s`) with their scale attached, feeding the pipeline's
    /// fixed-point front half. The default decodes owned and repacks;
    /// the in-tree transports override it to decode straight into the
    /// pooled buffer.
    fn recv_msg_pooled(&mut self, pools: &SamplePools) -> io::Result<Option<RxMsg>> {
        Ok(self.recv_msg()?.map(|msg| match msg {
            Message::SweepBatch(b) => {
                let shape = b.shape();
                let mut samples = pools.f64s.get(b.data.len());
                samples.extend_from_slice(&b.data);
                RxMsg::Batch(PooledBatch {
                    shape,
                    samples: BatchSamples::F64(samples),
                })
            }
            Message::SweepBatchQ(q) => {
                let shape = q.shape();
                let mut samples = pools.i16s.get(q.data.len());
                samples.extend_from_slice(&q.data);
                RxMsg::Batch(PooledBatch {
                    shape,
                    samples: BatchSamples::I16(samples, q.scale),
                })
            }
            other => RxMsg::Control(other),
        }))
    }
}

/// A bidirectional message channel that splits into its two halves.
pub trait Transport: Send {
    /// The send-half type.
    type Tx: TransportTx + 'static;
    /// The receive-half type.
    type Rx: TransportRx + 'static;

    /// Splits into independently-owned send and receive halves.
    fn split(self) -> io::Result<(Self::Tx, Self::Rx)>;
}

fn wire_to_io(e: WireError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Packs a [`wire::decode_into_q`] result into an [`RxMsg`], dropping
/// (recycling) whichever pooled buffer the frame didn't fill.
fn decoded_to_rx(
    decoded: DecodedMsgQ,
    samples: PooledBuf<f64>,
    samples_q: PooledBuf<i16>,
) -> RxMsg {
    match decoded {
        DecodedMsgQ::Sweeps(shape) => RxMsg::Batch(PooledBatch {
            shape,
            samples: BatchSamples::F64(samples),
        }),
        DecodedMsgQ::SweepsQ(shape, scale) => RxMsg::Batch(PooledBatch {
            shape,
            samples: BatchSamples::I16(samples_q, scale),
        }),
        DecodedMsgQ::Other(msg) => RxMsg::Control(msg),
    }
}

/// A frame-scoped decode failure: the frame's bytes were corrupt, but the
/// surrounding stream is still correctly framed (its length prefix was
/// valid and fully consumed), so the receiver may discard the frame and
/// keep reading. Contrast with a corrupt *header*, which desyncs a byte
/// stream irrecoverably and surfaces as a plain
/// [`io::ErrorKind::InvalidData`] error.
#[derive(Debug)]
pub struct CorruptFrameError(pub WireError);

impl std::fmt::Display for CorruptFrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt frame payload: {}", self.0)
    }
}

impl std::error::Error for CorruptFrameError {}

fn corrupt_frame(e: WireError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, CorruptFrameError(e))
}

/// Whether a receive error is scoped to one frame (see
/// [`CorruptFrameError`]): the caller may record the corruption, reject
/// the frame, and continue receiving on the same transport.
pub fn recv_error_is_frame_scoped(e: &io::Error) -> bool {
    e.get_ref()
        .is_some_and(|inner| inner.is::<CorruptFrameError>())
}

// ---------------------------------------------------------------------------
// In-process transport.

/// In-process send half: encoded frames into a bounded queue.
pub struct InProcTx {
    tx: SyncSender<WireFrame>,
}

/// In-process receive half.
pub struct InProcRx {
    rx: Receiver<WireFrame>,
}

/// One endpoint of an in-process duplex channel (see [`in_proc_pair`]).
pub struct InProcTransport {
    tx: InProcTx,
    rx: InProcRx,
}

/// Creates a connected pair of in-process transports. Each direction is a
/// bounded queue of `capacity` frames: a sender whose peer stops draining
/// blocks, exactly like a filled socket buffer.
pub fn in_proc_pair(capacity: usize) -> (InProcTransport, InProcTransport) {
    let (a_tx, b_rx) = sync_channel(capacity);
    let (b_tx, a_rx) = sync_channel(capacity);
    (
        InProcTransport {
            tx: InProcTx { tx: a_tx },
            rx: InProcRx { rx: a_rx },
        },
        InProcTransport {
            tx: InProcTx { tx: b_tx },
            rx: InProcRx { rx: b_rx },
        },
    )
}

impl TransportTx for InProcTx {
    fn send_frame(&mut self, frame: Vec<u8>) -> io::Result<()> {
        self.tx
            .send(WireFrame::Owned(frame))
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer dropped"))
    }

    /// Pool-backed frames cross the queue as-is (no copy); the buffer
    /// recycles when the peer finishes decoding it — even across threads,
    /// since the pool handle is shared.
    fn send_pooled(&mut self, frame: PooledBuf<u8>) -> io::Result<()> {
        self.tx
            .send(WireFrame::Pooled(frame))
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer dropped"))
    }
}

impl InProcTx {
    /// Non-blocking send: `Ok(false)` when the queue is full (frame not
    /// sent), `Err` when the peer dropped.
    pub fn try_send_msg(&mut self, msg: &Message) -> io::Result<bool> {
        match self.tx.try_send(WireFrame::Owned(wire::encode(msg))) {
            Ok(()) => Ok(true),
            Err(TrySendError::Full(_)) => Ok(false),
            Err(TrySendError::Disconnected(_)) => {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer dropped"))
            }
        }
    }
}

impl TransportRx for InProcRx {
    fn recv_msg(&mut self) -> io::Result<Option<Message>> {
        match self.rx.recv() {
            Err(_) => Ok(None), // all senders dropped: clean close
            Ok(frame) => {
                let (msg, used) = wire::decode(&frame).map_err(corrupt_frame)?;
                if used != frame.len() {
                    return Err(corrupt_frame(WireError::BadPayload(
                        "frame carries extra bytes",
                    )));
                }
                Ok(Some(msg))
            }
        }
    }

    fn recv_msg_pooled(&mut self, pools: &SamplePools) -> io::Result<Option<RxMsg>> {
        match self.rx.recv() {
            Err(_) => Ok(None),
            Ok(frame) => {
                let mut samples = pools.f64s.get(0);
                let mut samples_q = pools.i16s.get(0);
                let (decoded, used) = wire::decode_into_q(&frame, &mut samples, &mut samples_q)
                    .map_err(corrupt_frame)?;
                if used != frame.len() {
                    return Err(corrupt_frame(WireError::BadPayload(
                        "frame carries extra bytes",
                    )));
                }
                Ok(Some(decoded_to_rx(decoded, samples, samples_q)))
            }
        }
    }
}

impl Transport for InProcTransport {
    type Tx = InProcTx;
    type Rx = InProcRx;

    fn split(self) -> io::Result<(InProcTx, InProcRx)> {
        Ok((self.tx, self.rx))
    }
}

// ---------------------------------------------------------------------------
// TCP transport.

/// A `TcpStream` carrying wire frames.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wraps a connected stream. `TCP_NODELAY` is enabled: frames are
    /// latency-sensitive and already batched at the protocol layer.
    pub fn new(stream: TcpStream) -> TcpTransport {
        let _ = stream.set_nodelay(true);
        TcpTransport { stream }
    }

    /// Connects to `addr` (e.g. a loopback [`TcpServer`]'s address).
    ///
    /// [`TcpServer`]: crate::server::TcpServer
    pub fn connect(addr: std::net::SocketAddr) -> io::Result<TcpTransport> {
        Ok(TcpTransport::new(TcpStream::connect(addr)?))
    }
}

/// TCP send half.
pub struct TcpTx {
    stream: TcpStream,
}

/// TCP receive half with its streaming read buffer.
pub struct TcpRx {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Transport for TcpTransport {
    type Tx = TcpTx;
    type Rx = TcpRx;

    fn split(self) -> io::Result<(TcpTx, TcpRx)> {
        let writer = self.stream.try_clone()?;
        Ok((
            TcpTx { stream: writer },
            TcpRx {
                stream: self.stream,
                buf: Vec::new(),
            },
        ))
    }
}

impl TransportTx for TcpTx {
    fn send_frame(&mut self, frame: Vec<u8>) -> io::Result<()> {
        self.stream.write_all(&frame)
    }

    /// Writes the bytes and drops the guard — the buffer is back in its
    /// pool as soon as the kernel has them.
    fn send_pooled(&mut self, frame: PooledBuf<u8>) -> io::Result<()> {
        self.stream.write_all(&frame)
    }

    fn finish(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }
}

impl TcpRx {
    /// Reads exactly one frame into the half's reused byte buffer: the
    /// 12-byte header names the payload length, so over-reading (and
    /// having to buffer spill for the next call) never happens.
    /// `Ok(false)` on clean EOF.
    fn fill_one_frame(&mut self) -> io::Result<bool> {
        self.buf.resize(HEADER_LEN, 0);
        if !read_exact_or_eof(&mut self.stream, &mut self.buf)? {
            return Ok(false);
        }
        let (_, frame_len) = wire::decode_header(&self.buf).map_err(wire_to_io)?;
        self.buf.resize(frame_len, 0);
        self.stream.read_exact(&mut self.buf[HEADER_LEN..])?;
        Ok(true)
    }
}

impl TransportRx for TcpRx {
    // Once fill_one_frame() succeeds the stream is positioned exactly at
    // the next frame boundary, so a payload that fails to decode is a
    // frame-scoped loss — the connection may keep reading. Only a corrupt
    // *header* (caught inside fill_one_frame) desyncs the byte stream.
    fn recv_msg(&mut self) -> io::Result<Option<Message>> {
        if !self.fill_one_frame()? {
            return Ok(None);
        }
        let (msg, _) = wire::decode(&self.buf).map_err(corrupt_frame)?;
        Ok(Some(msg))
    }

    fn recv_msg_pooled(&mut self, pools: &SamplePools) -> io::Result<Option<RxMsg>> {
        if !self.fill_one_frame()? {
            return Ok(None);
        }
        let mut samples = pools.f64s.get(0);
        let mut samples_q = pools.i16s.get(0);
        let (decoded, _) =
            wire::decode_into_q(&self.buf, &mut samples, &mut samples_q).map_err(corrupt_frame)?;
        Ok(Some(decoded_to_rx(decoded, samples, samples_q)))
    }
}

/// Fills `buf` from `r`; `Ok(false)` on a clean EOF at offset 0,
/// `UnexpectedEof` if the stream dies mid-buffer.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Teardown;

    #[test]
    fn in_proc_pair_round_trips() {
        let (a, b) = in_proc_pair(4);
        let (mut a_tx, _a_rx) = a.split().unwrap();
        let (_b_tx, mut b_rx) = b.split().unwrap();
        a_tx.send_msg(&Message::Teardown(Teardown { sensor_id: 3 }))
            .unwrap();
        let got = b_rx.recv_msg().unwrap().unwrap();
        assert_eq!(got, Message::Teardown(Teardown { sensor_id: 3 }));
        drop(a_tx);
        assert!(b_rx.recv_msg().unwrap().is_none(), "drop closes cleanly");
    }

    #[test]
    fn in_proc_try_send_reports_full() {
        let (a, b) = in_proc_pair(1);
        let (mut a_tx, _a_rx) = a.split().unwrap();
        let (_b_tx, b_rx) = b.split().unwrap();
        let msg = Message::Teardown(Teardown { sensor_id: 0 });
        assert!(a_tx.try_send_msg(&msg).unwrap());
        assert!(!a_tx.try_send_msg(&msg).unwrap(), "bounded queue is full");
        drop(b_rx);
    }
}
