//! witrack-serve: a sharded multi-sensor streaming engine for the WiTrack
//! pipelines.
//!
//! One tracking pipeline runs ~50× faster than its 80 frames/s real-time
//! budget (see `BENCH_throughput.json`), so a single host can multiplex
//! dozens of sensor deployments. This crate is the serving layer that
//! makes that real:
//!
//! * [`wire`] — the length-prefixed binary protocol sensors speak:
//!   `Hello` (session open + stream shape), `SweepBatch` (sequence-numbered
//!   baseband), its wire-v2 quantized form `SweepBatchQ` (i16 steps + one
//!   f64 scale: 4× fewer sample bytes, fidelity-neutral for ≤16-bit
//!   front ends), `Teardown`, and the server's `UpdateBatch`/`Reject`.
//! * [`pool`] — recycled buffers ([`BufPool`]/[`PooledBuf`]) carrying
//!   decoded samples from socket to shard and encoded updates from shard
//!   to socket: the steady-state ingest path performs zero heap
//!   allocation per message.
//! * [`transport`] — how frames move: an in-process bounded-queue pair
//!   (tests and benches run the full wire path with no sockets) or a
//!   loopback `TcpStream`. Both decode sweep samples straight into
//!   pooled buffers (`recv_msg_pooled`).
//! * [`engine`] — the [`ShardedEngine`]: each sensor id is pinned to one
//!   worker shard owning its [`FramePipeline`](witrack_core::FramePipeline)
//!   instances, with bounded-queue backpressure, drop/lag metrics, and
//!   sequence-gap accounting.
//! * [`server`] / [`client`] — the connection layer over any transport,
//!   multiplexing many sensors per connection, and the sensor-side client
//!   (with a reconnecting variant surviving transport loss).
//! * [`program`] — programmable subscription filters (wire v3): a
//!   compiled predicate DSL (kind/zone/track matchers, debounce,
//!   rate-limit, occupancy-threshold combinators) the world hub
//!   evaluates *before* encode/fan-out, plus the
//!   [`SubscriptionBuilder`] fluent client API.
//! * [`fault`] — seeded chaos injection ([`FaultyTransport`]): drop,
//!   duplicate, reorder, corrupt, stall, and burst faults over any
//!   transport, for the degradation tests and the `t_chaos` matrix.
//! * [`factory`] — stock pipeline construction from a `Hello` (single- or
//!   multi-target per sensor, one shared base configuration).
//! * [`metrics`] — relaxed-atomic counters and their snapshot.
//!
//! ```
//! use std::sync::Arc;
//! use witrack_serve::engine::{EngineConfig, EngineEvent, ShardedEngine};
//! use witrack_serve::factory::{hello_for, witrack_factory};
//! use witrack_serve::wire::{Message, PipelineKind, SweepBatch};
//! use witrack_core::WiTrackConfig;
//! use witrack_fmcw::SweepConfig;
//!
//! // A reduced sweep keeps this doc test fast.
//! let sweep = SweepConfig {
//!     start_freq_hz: 5.56e8,
//!     bandwidth_hz: 1.69e8,
//!     sweep_duration_s: 1e-3,
//!     sample_rate_hz: 100e3,
//!     sweeps_per_frame: 5,
//!     transmit_power_w: 1e-3,
//! };
//! let base = WiTrackConfig { sweep, ..WiTrackConfig::witrack_default() };
//! let (engine, events) = ShardedEngine::start(
//!     EngineConfig::default(),
//!     witrack_factory(base),
//! );
//! let handle = engine.handle();
//! handle.submit(Message::Hello(hello_for(&base, 7, PipelineKind::SingleTarget))).unwrap();
//! // One frame of silence for sensor 7: 5 sweeps × 3 antennas.
//! let sweeps = vec![vec![vec![0.0; sweep.samples_per_sweep()]; 3]; 5];
//! handle.submit_batch(SweepBatch::from_sweeps(7, 0, &sweeps)).unwrap();
//! let event = events.recv().unwrap();
//! match event {
//!     EngineEvent::Updates(u) => {
//!         assert_eq!(u.sensor_id, 7);
//!         assert_eq!(u.updates.len(), 1); // one frame report
//!     }
//!     other => panic!("expected updates, got {other:?}"),
//! }
//! engine.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod engine;
pub mod factory;
pub mod fault;
pub mod hub;
pub mod metrics;
pub mod pool;
pub mod program;
pub mod server;
pub mod transport;
pub mod wire;

pub use client::{BackoffConfig, ClientStats, ReconnectingClient, SensorClient};
pub use engine::{
    ConnSink, EngineBuilder, EngineConfig, EngineEvent, EngineHandle, OverloadPolicy,
    PipelineFactory, ShardedEngine, SubmitError, Submitted, UpdateSink,
};
pub use factory::{hello_for, hello_quantized_for, witrack_factory};
pub use fault::{
    FaultCounters, FaultPlan, FaultPlanBuilder, FaultPlanHandle, FaultStats, FaultyTransport,
    FaultyTx,
};
pub use hub::{RoomSpec, WorldConfig};
pub use metrics::{EngineMetrics, MetricsSnapshot};
pub use pool::{BufPool, PoolStats, PooledBatch, PooledBuf};
pub use program::{
    CompiledProgram, EvalResult, EventCtx, EventKind, EventKinds, FilterProgram, Op, ProgramError,
    ProgramState, SubscriptionBuilder,
};
pub use server::{Server, ServerBuilder, TcpServer};
pub use transport::{
    in_proc_pair, recv_error_is_frame_scoped, CorruptFrameError, InProcTransport, RxMsg,
    TcpTransport, Transport, WireFrame,
};
pub use wire::{
    EventMsg, Hello, HistoWire, Message, PipelineKind, Reject, RejectCode, StatsQuery, StatsReport,
    StatsSample, StatsValue, Subscribe, SubscribeAck, SubscribeV3, SubscriptionStats, SweepBatch,
    SweepBatchQ, SweepShape, Teardown, Unsubscribe, UpdateBatch, WireError, WorldUpdateMsg,
};
