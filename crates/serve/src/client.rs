//! Sensor-side client: speaks the wire protocol over any [`Transport`].
//!
//! One [`SensorClient`] owns one connection and may multiplex any number
//! of sensors over it. Server→client traffic (update batches, rejects) is
//! drained by a dedicated thread so the sending path can never deadlock
//! against a full return queue; the drain counts everything it sees and
//! optionally hands each message to a caller-supplied handler.

use crate::transport::{Transport, TransportRx, TransportTx};
use crate::wire::{
    Hello, Message, StatsQuery, StatsReport, Subscribe, SweepBatch, SweepBatchQ, Teardown,
};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Counters of everything the drain thread saw.
#[derive(Debug, Default)]
struct Counters {
    update_batches: AtomicU64,
    frames: AtomicU64,
    targets: AtomicU64,
    rejects: AtomicU64,
    world_updates: AtomicU64,
    world_events: AtomicU64,
    stats_reports: AtomicU64,
}

/// A point-in-time copy of the client's receive counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Update batches received.
    pub update_batches: u64,
    /// Frame reports received.
    pub frames: u64,
    /// Targets across all received reports.
    pub targets: u64,
    /// Reject notices received.
    pub rejects: u64,
    /// Fused `WorldUpdate` frames received.
    pub world_updates: u64,
    /// Fleet `Event` frames received.
    pub world_events: u64,
    /// `StatsReport` snapshots received.
    pub stats_reports: u64,
}

/// Callback receiving every server→client message, in arrival order.
pub type UpdateHandler = dyn FnMut(&Message) + Send;

/// A wire-protocol client for one connection.
pub struct SensorClient<T: Transport> {
    /// `None` only after [`Self::close`] dropped it to signal EOF.
    tx: Option<T::Tx>,
    counters: Arc<Counters>,
    /// The newest `StatsReport` the drain saw, if any.
    last_stats: Arc<Mutex<Option<StatsReport>>>,
    drain: Option<JoinHandle<()>>,
}

impl<T: Transport> SensorClient<T> {
    /// Connects over `transport`, counting server messages silently.
    pub fn connect(transport: T) -> io::Result<SensorClient<T>> {
        Self::connect_with(transport, None)
    }

    /// Connects over `transport`; `handler`, when given, sees every
    /// server→client message from the drain thread.
    pub fn connect_with(
        transport: T,
        handler: Option<Box<UpdateHandler>>,
    ) -> io::Result<SensorClient<T>> {
        let (tx, rx) = transport.split()?;
        let counters = Arc::new(Counters::default());
        let last_stats = Arc::new(Mutex::new(None));
        let drain = {
            let counters = Arc::clone(&counters);
            let last_stats = Arc::clone(&last_stats);
            std::thread::spawn(move || drain_main(rx, counters, last_stats, handler))
        };
        Ok(SensorClient {
            tx: Some(tx),
            counters,
            last_stats,
            drain: Some(drain),
        })
    }

    /// Opens a sensor session.
    pub fn hello(&mut self, hello: Hello) -> io::Result<()> {
        self.tx().send_msg(&Message::Hello(hello))
    }

    /// Sends one sweep batch.
    pub fn send_batch(&mut self, batch: SweepBatch) -> io::Result<()> {
        self.tx().send_msg(&Message::SweepBatch(batch))
    }

    /// Sends per-sweep, per-antenna slices as one batch.
    pub fn send_sweeps(
        &mut self,
        sensor_id: u32,
        seq: u64,
        sweeps: &[Vec<Vec<f64>>],
    ) -> io::Result<()> {
        self.send_batch(SweepBatch::from_sweeps(sensor_id, seq, sweeps))
    }

    /// Sends one quantized (wire v2, i16) sweep batch — 4× fewer sample
    /// bytes than [`Self::send_batch`]. Announce intent by setting
    /// [`Hello::quantized`] on the session's hello.
    pub fn send_batch_q(&mut self, batch: SweepBatchQ) -> io::Result<()> {
        self.tx().send_msg(&Message::SweepBatchQ(batch))
    }

    /// Quantizes and sends per-sweep, per-antenna slices as one v2 batch.
    pub fn send_sweeps_quantized(
        &mut self,
        sensor_id: u32,
        seq: u64,
        sweeps: &[Vec<Vec<f64>>],
    ) -> io::Result<()> {
        self.send_batch_q(SweepBatchQ::from_sweeps(sensor_id, seq, sweeps))
    }

    /// Closes a sensor session.
    pub fn teardown(&mut self, sensor_id: u32) -> io::Result<()> {
        self.tx()
            .send_msg(&Message::Teardown(Teardown { sensor_id }))
    }

    /// Subscribes this connection to a fused room's world stream
    /// (`WorldUpdate`/`Event` frames; wire v2). An unknown room comes
    /// back as a `Reject` with
    /// [`RejectCode::UnknownSubscription`](crate::wire::RejectCode).
    pub fn subscribe(&mut self, sub: Subscribe) -> io::Result<()> {
        self.tx().send_msg(&Message::Subscribe(sub))
    }

    /// Asks the server for a metrics snapshot (`StatsQuery`, wire v2).
    /// The answering `StatsReport` arrives asynchronously on the drain
    /// thread: poll [`Self::last_stats`] (or watch
    /// [`ClientStats::stats_reports`], or use a handler) for it.
    pub fn query_stats(&mut self) -> io::Result<()> {
        self.tx()
            .send_msg(&Message::StatsQuery(StatsQuery::default()))
    }

    /// The newest [`StatsReport`] received so far, if any.
    pub fn last_stats(&self) -> Option<StatsReport> {
        self.last_stats.lock().expect("stats poisoned").clone()
    }

    /// Direct access to the send half (e.g. for pre-encoded frames).
    ///
    /// # Panics
    /// Panics after [`Self::close`].
    pub fn tx(&mut self) -> &mut T::Tx {
        self.tx.as_mut().expect("client closed")
    }

    /// Receive counters so far.
    pub fn stats(&self) -> ClientStats {
        ClientStats {
            update_batches: self.counters.update_batches.load(Ordering::Relaxed),
            frames: self.counters.frames.load(Ordering::Relaxed),
            targets: self.counters.targets.load(Ordering::Relaxed),
            rejects: self.counters.rejects.load(Ordering::Relaxed),
            world_updates: self.counters.world_updates.load(Ordering::Relaxed),
            world_events: self.counters.world_events.load(Ordering::Relaxed),
            stats_reports: self.counters.stats_reports.load(Ordering::Relaxed),
        }
    }

    /// Hangs up (closing every sensor the server attributed to this
    /// connection), waits for the server to finish responding, and
    /// returns the final counters.
    pub fn close(mut self) -> ClientStats {
        // Signal EOF (explicitly for sockets, implicitly by dropping for
        // in-process queues); the drain keeps running until the server
        // hangs up its side, so late updates still count.
        if let Some(tx) = self.tx.as_mut() {
            let _ = tx.finish();
        }
        self.tx = None;
        if let Some(d) = self.drain.take() {
            d.join().expect("client drain panicked");
        }
        self.stats()
    }
}

fn drain_main<Rx: TransportRx>(
    mut rx: Rx,
    counters: Arc<Counters>,
    last_stats: Arc<Mutex<Option<StatsReport>>>,
    mut handler: Option<Box<UpdateHandler>>,
) {
    while let Ok(Some(msg)) = rx.recv_msg() {
        match &msg {
            Message::StatsReport(r) => {
                counters.stats_reports.fetch_add(1, Ordering::Relaxed);
                *last_stats.lock().expect("stats poisoned") = Some(r.clone());
            }
            Message::UpdateBatch(u) => {
                counters.update_batches.fetch_add(1, Ordering::Relaxed);
                counters
                    .frames
                    .fetch_add(u.updates.len() as u64, Ordering::Relaxed);
                let targets: usize = u.updates.iter().map(|r| r.targets.len()).sum();
                counters
                    .targets
                    .fetch_add(targets as u64, Ordering::Relaxed);
            }
            Message::Reject(_) => {
                counters.rejects.fetch_add(1, Ordering::Relaxed);
            }
            Message::WorldUpdate(_) => {
                counters.world_updates.fetch_add(1, Ordering::Relaxed);
            }
            Message::Event(_) => {
                counters.world_events.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        if let Some(h) = handler.as_mut() {
            h(&msg);
        }
    }
}
