//! Sensor-side client: speaks the wire protocol over any [`Transport`].
//!
//! One [`SensorClient`] owns one connection and may multiplex any number
//! of sensors over it. Server→client traffic (update batches, rejects) is
//! drained by a dedicated thread so the sending path can never deadlock
//! against a full return queue; the drain counts everything it sees and
//! optionally hands each message to a caller-supplied handler.

use crate::transport::{Transport, TransportRx, TransportTx};
use crate::wire::{
    Hello, Message, StatsQuery, StatsReport, SubscribeV3, SubscriptionStats, SweepBatch,
    SweepBatchQ, Teardown, Unsubscribe,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use witrack_obs::{AnomalyKind, FlightRecorder};

/// Counters of everything the drain thread saw.
#[derive(Debug, Default)]
struct Counters {
    update_batches: AtomicU64,
    frames: AtomicU64,
    targets: AtomicU64,
    rejects: AtomicU64,
    world_updates: AtomicU64,
    world_events: AtomicU64,
    stats_reports: AtomicU64,
    subscribe_acks: AtomicU64,
    subscription_stats: AtomicU64,
}

/// A point-in-time copy of the client's receive counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Update batches received.
    pub update_batches: u64,
    /// Frame reports received.
    pub frames: u64,
    /// Targets across all received reports.
    pub targets: u64,
    /// Reject notices received.
    pub rejects: u64,
    /// Fused `WorldUpdate` frames received.
    pub world_updates: u64,
    /// Fleet `Event` frames received.
    pub world_events: u64,
    /// `StatsReport` snapshots received.
    pub stats_reports: u64,
    /// `SubscribeAck` replies received (wire v3).
    pub subscribe_acks: u64,
    /// `SubscriptionStats` replies received (wire v3).
    pub subscription_stats: u64,
}

/// Callback receiving every server→client message, in arrival order.
pub type UpdateHandler = dyn FnMut(&Message) + Send;

/// A wire-protocol client for one connection.
pub struct SensorClient<T: Transport> {
    /// `None` only after [`Self::close`] dropped it to signal EOF.
    tx: Option<T::Tx>,
    counters: Arc<Counters>,
    /// The newest `StatsReport` the drain saw, if any.
    last_stats: Arc<Mutex<Option<StatsReport>>>,
    /// The newest `SubscriptionStats` the drain saw, if any.
    last_sub_stats: Arc<Mutex<Option<SubscriptionStats>>>,
    drain: Option<JoinHandle<()>>,
}

impl<T: Transport> SensorClient<T> {
    /// Connects over `transport`, counting server messages silently.
    pub fn connect(transport: T) -> io::Result<SensorClient<T>> {
        Self::connect_with(transport, None)
    }

    /// Connects over `transport`; `handler`, when given, sees every
    /// server→client message from the drain thread.
    pub fn connect_with(
        transport: T,
        handler: Option<Box<UpdateHandler>>,
    ) -> io::Result<SensorClient<T>> {
        let (tx, rx) = transport.split()?;
        let counters = Arc::new(Counters::default());
        let last_stats = Arc::new(Mutex::new(None));
        let last_sub_stats = Arc::new(Mutex::new(None));
        let drain = {
            let counters = Arc::clone(&counters);
            let last_stats = Arc::clone(&last_stats);
            let last_sub_stats = Arc::clone(&last_sub_stats);
            std::thread::spawn(move || {
                drain_main(rx, counters, last_stats, last_sub_stats, handler)
            })
        };
        Ok(SensorClient {
            tx: Some(tx),
            counters,
            last_stats,
            last_sub_stats,
            drain: Some(drain),
        })
    }

    /// Opens a sensor session.
    pub fn hello(&mut self, hello: Hello) -> io::Result<()> {
        self.tx().send_msg(&Message::Hello(hello))
    }

    /// Sends one sweep batch.
    pub fn send_batch(&mut self, batch: SweepBatch) -> io::Result<()> {
        self.tx().send_msg(&Message::SweepBatch(batch))
    }

    /// Sends per-sweep, per-antenna slices as one batch.
    pub fn send_sweeps(
        &mut self,
        sensor_id: u32,
        seq: u64,
        sweeps: &[Vec<Vec<f64>>],
    ) -> io::Result<()> {
        self.send_batch(SweepBatch::from_sweeps(sensor_id, seq, sweeps))
    }

    /// Sends one quantized (wire v2, i16) sweep batch — 4× fewer sample
    /// bytes than [`Self::send_batch`]. Announce intent by setting
    /// [`Hello::quantized`] on the session's hello.
    pub fn send_batch_q(&mut self, batch: SweepBatchQ) -> io::Result<()> {
        self.tx().send_msg(&Message::SweepBatchQ(batch))
    }

    /// Quantizes and sends per-sweep, per-antenna slices as one v2 batch.
    pub fn send_sweeps_quantized(
        &mut self,
        sensor_id: u32,
        seq: u64,
        sweeps: &[Vec<Vec<f64>>],
    ) -> io::Result<()> {
        self.send_batch_q(SweepBatchQ::from_sweeps(sensor_id, seq, sweeps))
    }

    /// Closes a sensor session.
    pub fn teardown(&mut self, sensor_id: u32) -> io::Result<()> {
        self.tx()
            .send_msg(&Message::Teardown(Teardown { sensor_id }))
    }

    /// Subscribes with a wire-v3 programmable subscription — typically
    /// built by [`SubscriptionBuilder`](crate::program::SubscriptionBuilder).
    /// The server answers with a `SubscribeAck` (watch
    /// [`ClientStats::subscribe_acks`]); a malformed filter program comes
    /// back as a `Reject` with
    /// [`RejectCode::BadProgram`](crate::wire::RejectCode), an unknown
    /// room as `UnknownSubscription`.
    pub fn subscribe_with(&mut self, sub: SubscribeV3) -> io::Result<()> {
        self.tx().send_msg(&Message::SubscribeV3(sub))
    }

    /// Cancels a subscription opened by [`Self::subscribe_with`]. The
    /// server stops evaluating the filter, replies with a final
    /// `SubscriptionStats` (see [`Self::last_subscription_stats`]), and
    /// rejects an unknown `(connection, sub_id)` pair with
    /// `UnknownSubscription`.
    pub fn unsubscribe(&mut self, room_id: u32, sub_id: u64) -> io::Result<()> {
        self.tx()
            .send_msg(&Message::Unsubscribe(Unsubscribe { room_id, sub_id }))
    }

    /// The newest [`SubscriptionStats`] received so far, if any —
    /// the final per-subscription counters sent in reply to
    /// [`Self::unsubscribe`].
    pub fn last_subscription_stats(&self) -> Option<SubscriptionStats> {
        *self.last_sub_stats.lock().expect("sub stats poisoned")
    }

    /// Asks the server for a metrics snapshot (`StatsQuery`, wire v2).
    /// The answering `StatsReport` arrives asynchronously on the drain
    /// thread: poll [`Self::last_stats`] (or watch
    /// [`ClientStats::stats_reports`], or use a handler) for it.
    pub fn query_stats(&mut self) -> io::Result<()> {
        self.tx()
            .send_msg(&Message::StatsQuery(StatsQuery::default()))
    }

    /// The newest [`StatsReport`] received so far, if any.
    pub fn last_stats(&self) -> Option<StatsReport> {
        self.last_stats.lock().expect("stats poisoned").clone()
    }

    /// Direct access to the send half (e.g. for pre-encoded frames).
    ///
    /// # Panics
    /// Panics after [`Self::close`].
    pub fn tx(&mut self) -> &mut T::Tx {
        self.tx.as_mut().expect("client closed")
    }

    /// Receive counters so far.
    pub fn stats(&self) -> ClientStats {
        ClientStats {
            update_batches: self.counters.update_batches.load(Ordering::Relaxed),
            frames: self.counters.frames.load(Ordering::Relaxed),
            targets: self.counters.targets.load(Ordering::Relaxed),
            rejects: self.counters.rejects.load(Ordering::Relaxed),
            world_updates: self.counters.world_updates.load(Ordering::Relaxed),
            world_events: self.counters.world_events.load(Ordering::Relaxed),
            stats_reports: self.counters.stats_reports.load(Ordering::Relaxed),
            subscribe_acks: self.counters.subscribe_acks.load(Ordering::Relaxed),
            subscription_stats: self.counters.subscription_stats.load(Ordering::Relaxed),
        }
    }

    /// Hangs up (closing every sensor the server attributed to this
    /// connection), waits for the server to finish responding, and
    /// returns the final counters.
    pub fn close(mut self) -> ClientStats {
        // Signal EOF (explicitly for sockets, implicitly by dropping for
        // in-process queues); the drain keeps running until the server
        // hangs up its side, so late updates still count.
        if let Some(tx) = self.tx.as_mut() {
            let _ = tx.finish();
        }
        self.tx = None;
        if let Some(d) = self.drain.take() {
            d.join().expect("client drain panicked");
        }
        self.stats()
    }
}

/// Capped exponential backoff with jitter, for [`ReconnectingClient`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffConfig {
    /// First retry delay (ms).
    pub initial_ms: u64,
    /// Ceiling on any single delay (ms).
    pub max_ms: u64,
    /// Growth factor between consecutive delays.
    pub multiplier: f64,
    /// Symmetric jitter fraction in `0.0..=1.0`: each delay is scaled by
    /// a uniform factor in `[1-jitter, 1+jitter]` so a fleet knocked
    /// offline together does not redial in lockstep.
    pub jitter: f64,
    /// Give up (surfacing the last error) after this many consecutive
    /// failed dials.
    pub max_attempts: u32,
    /// Seed for the jitter RNG (reproducible chaos runs).
    pub seed: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            initial_ms: 10,
            max_ms: 2_000,
            multiplier: 2.0,
            jitter: 0.2,
            max_attempts: 8,
            seed: 1,
        }
    }
}

/// A sensor client that survives its transport dying.
///
/// Owns a dial factory instead of one connection: when a send fails, it
/// tears the dead [`SensorClient`] down, redials under the
/// [`BackoffConfig`] (capped exponential, jittered), replays its `Hello`
/// — the server's scoped teardown for the dead connection frees the
/// sensor id, and the existing handoff machinery preserves track
/// identity — and retries the send. Sequence numbers stay monotone
/// across reconnects, so the server sees an honest forward gap
/// (surfaced as a `SeqGap` anomaly) rather than a replayed stream.
pub struct ReconnectingClient<T: Transport> {
    factory: Box<dyn FnMut() -> io::Result<T> + Send>,
    client: Option<SensorClient<T>>,
    hello: Hello,
    backoff: BackoffConfig,
    rng: StdRng,
    next_seq: u64,
    reconnects: u64,
    recorder: Option<Arc<FlightRecorder>>,
}

impl<T: Transport> ReconnectingClient<T> {
    /// Dials via `factory` (retrying under `backoff`) and opens the
    /// `hello` session. The factory is kept for every later redial.
    pub fn connect(
        factory: impl FnMut() -> io::Result<T> + Send + 'static,
        hello: Hello,
        backoff: BackoffConfig,
    ) -> io::Result<ReconnectingClient<T>> {
        let mut me = ReconnectingClient {
            factory: Box::new(factory),
            client: None,
            hello,
            backoff,
            rng: StdRng::seed_from_u64(backoff.seed),
            next_seq: 0,
            reconnects: 0,
            recorder: None,
        };
        me.redial()?;
        // The first dial is a connect, not a recovery.
        me.reconnects = 0;
        Ok(me)
    }

    /// Records an [`AnomalyKind::Reconnect`] (value = backoff ns spent)
    /// on `recorder` for every successful redial.
    pub fn with_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// How many times the transport died and was re-established.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// The sequence number the next batch will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Receive counters of the *current* connection (reset by redials).
    pub fn stats(&self) -> ClientStats {
        self.client
            .as_ref()
            .map(SensorClient::stats)
            .unwrap_or_default()
    }

    /// Sends one sweep batch, stamping and advancing the monotone
    /// sequence number; on transport failure, reconnects and retries
    /// (once per fresh connection, up to the backoff's attempt budget).
    /// Returns the sequence number the batch went out under.
    pub fn send_sweeps(&mut self, sweeps: &[Vec<Vec<f64>>]) -> io::Result<u64> {
        let seq = self.next_seq;
        let batch = SweepBatch::from_sweeps(self.hello.sensor_id, seq, sweeps);
        self.send_with_retry(|c| c.send_batch(batch.clone()))?;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Quantized (wire v2) sibling of [`Self::send_sweeps`].
    pub fn send_sweeps_quantized(&mut self, sweeps: &[Vec<Vec<f64>>]) -> io::Result<u64> {
        let seq = self.next_seq;
        let batch = SweepBatchQ::from_sweeps(self.hello.sensor_id, seq, sweeps);
        self.send_with_retry(|c| c.send_batch_q(batch.clone()))?;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Closes the session and returns the final connection's counters.
    pub fn close(mut self) -> ClientStats {
        match self.client.take() {
            Some(mut c) => {
                let _ = c.teardown(self.hello.sensor_id);
                c.close()
            }
            None => ClientStats::default(),
        }
    }

    fn send_with_retry(
        &mut self,
        mut send: impl FnMut(&mut SensorClient<T>) -> io::Result<()>,
    ) -> io::Result<()> {
        if let Some(c) = self.client.as_mut() {
            if send(c).is_ok() {
                return Ok(());
            }
        }
        // The connection is dead (or never existed): dial a fresh one
        // and retry the send on it. A send that fails on a *fresh*
        // connection means the far side is refusing us, so each redial
        // gets exactly one retry before dialing again.
        let budget = self.backoff.max_attempts.max(1);
        let mut last = io::Error::new(io::ErrorKind::ConnectionReset, "transport lost");
        for _ in 0..budget {
            self.redial()?;
            let c = self.client.as_mut().expect("redial populated client");
            match send(c) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    last = e;
                    self.client = None;
                }
            }
        }
        Err(last)
    }

    /// Dials until a connection accepts our `Hello`, sleeping the capped
    /// jittered backoff between failures.
    fn redial(&mut self) -> io::Result<()> {
        if let Some(c) = self.client.take() {
            let _ = c.close();
        }
        let mut delay_ms = self.backoff.initial_ms.max(1) as f64;
        let mut waited = Duration::ZERO;
        let mut last: Option<io::Error> = None;
        for attempt in 0..self.backoff.max_attempts.max(1) {
            if attempt > 0 {
                let jitter = self.backoff.jitter.clamp(0.0, 1.0);
                let scale = 1.0 + jitter * (self.rng.random::<f64>() * 2.0 - 1.0);
                let pause = Duration::from_millis((delay_ms * scale) as u64);
                std::thread::sleep(pause);
                waited += pause;
                delay_ms = (delay_ms * self.backoff.multiplier.max(1.0))
                    .min(self.backoff.max_ms.max(1) as f64);
            }
            let transport = match (self.factory)() {
                Ok(t) => t,
                Err(e) => {
                    last = Some(e);
                    continue;
                }
            };
            let mut client = match SensorClient::connect(transport) {
                Ok(c) => c,
                Err(e) => {
                    last = Some(e);
                    continue;
                }
            };
            match client.hello(self.hello) {
                Ok(()) => {
                    // A re-register racing the server's cleanup of our
                    // dead predecessor may draw a transient
                    // `DuplicateSensor` reject; it arrives async on the
                    // drain and the next send's failure re-enters the
                    // retry loop, so no special case is needed here.
                    self.reconnects += 1;
                    if let Some(r) = &self.recorder {
                        r.record(
                            AnomalyKind::Reconnect,
                            self.hello.sensor_id as u64,
                            self.reconnects,
                            waited.as_nanos() as u64,
                        );
                    }
                    self.client = Some(client);
                    return Ok(());
                }
                Err(e) => {
                    last = Some(e);
                    let _ = client.close();
                }
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::TimedOut, "reconnect attempts exhausted")
        }))
    }
}

fn drain_main<Rx: TransportRx>(
    mut rx: Rx,
    counters: Arc<Counters>,
    last_stats: Arc<Mutex<Option<StatsReport>>>,
    last_sub_stats: Arc<Mutex<Option<SubscriptionStats>>>,
    mut handler: Option<Box<UpdateHandler>>,
) {
    while let Ok(Some(msg)) = rx.recv_msg() {
        match &msg {
            Message::StatsReport(r) => {
                counters.stats_reports.fetch_add(1, Ordering::Relaxed);
                *last_stats.lock().expect("stats poisoned") = Some(r.clone());
            }
            Message::SubscribeAck(_) => {
                counters.subscribe_acks.fetch_add(1, Ordering::Relaxed);
            }
            Message::SubscriptionStats(s) => {
                counters.subscription_stats.fetch_add(1, Ordering::Relaxed);
                *last_sub_stats.lock().expect("sub stats poisoned") = Some(*s);
            }
            Message::UpdateBatch(u) => {
                counters.update_batches.fetch_add(1, Ordering::Relaxed);
                counters
                    .frames
                    .fetch_add(u.updates.len() as u64, Ordering::Relaxed);
                let targets: usize = u.updates.iter().map(|r| r.targets.len()).sum();
                counters
                    .targets
                    .fetch_add(targets as u64, Ordering::Relaxed);
            }
            Message::Reject(_) => {
                counters.rejects.fetch_add(1, Ordering::Relaxed);
            }
            Message::WorldUpdate(_) => {
                counters.world_updates.fetch_add(1, Ordering::Relaxed);
            }
            Message::Event(_) => {
                counters.world_events.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        if let Some(h) = handler.as_mut() {
            h(&msg);
        }
    }
}
