//! The world hub: per-room cross-sensor fusion behind the wire protocol.
//!
//! Shards forward every sensor's [`FrameReport`]s here; the hub routes
//! them to the owning room's [`FusionEngine`]
//! (sensor→room comes from the [`WorldConfig`]'s registrations), and
//! broadcasts each fused [`WorldFrame`] — as `WorldUpdate` wire frames —
//! plus its fleet events — as `Event` wire frames — to every connection
//! subscribed to that room. Clients therefore subscribe to *rooms*, not
//! raw sensors: occupancy, handoffs, and falls arrive pre-fused.
//!
//! Delivery mirrors the per-sensor update path: frames are encoded into
//! pooled buffers and `try_send`-shed to lagging subscribers (counted in
//! [`MetricsSnapshot::updates_dropped`]); a vanished subscriber is pruned
//! on its first failed send. The hub's inbox is unbounded — fusion is a
//! few Kalman updates per track per epoch, orders of magnitude cheaper
//! than the sweep pipelines feeding it — so shards never block on it.
//!
//! Subscriptions are *programmable* (wire v3): each carries a compiled
//! [`FilterProgram`](crate::program::FilterProgram) the hub evaluates
//! per event **before** any encoding. Per fused frame the hub (1) runs
//! every event-subscriber's program over the frame's events — behind two
//! kind-mask pre-screens: a per-room coarse index (the OR of every
//! subscriber program's possible kinds) skips whole events nobody could
//! match, and each program's own mask skips its evaluation — then (2)
//! encodes the world update and *only the events somebody matched*, each
//! exactly once into the reused scratch, and (3) copies the matched
//! windows into per-subscriber pooled buffers. Non-matching subscribers
//! therefore cost a few predicate ops, not an encode + send.
//!
//! [`MetricsSnapshot::updates_dropped`]: crate::metrics::MetricsSnapshot::updates_dropped

use crate::engine::ConnSink;
use crate::metrics::EngineMetrics;
use crate::pool::BufPool;
use crate::program::{CompiledProgram, EventCtx, ProgramState};
use crate::wire::{self, Message, RejectCode, SubscribeAck, SubscribeV3, SubscriptionStats};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use witrack_core::FrameReport;
use witrack_fuse::{
    FuseConfig, FusionEngine, Registration, SensorLiveness, WorldEvent, WorldFrame,
};
use witrack_obs::{AnomalyKind, Counter, FlightRecorder, Gauge, Histo, Label};

/// How often the hub sweeps its rooms for silent sensors. Also the floor
/// on liveness-timeout resolution — `FuseConfig::suspect_timeout_s`
/// below this still takes one tick to notice.
const LIVENESS_TICK: Duration = Duration::from_millis(50);

/// One fused room: its sensor registration and fusion tuning.
pub struct RoomSpec {
    /// Room identity (what clients subscribe to).
    pub room_id: u32,
    /// Fusion tuning (gates, lifecycle, zones, fall rule).
    pub fuse: FuseConfig,
    /// Which sensors feed this room, and each one's world-from-sensor
    /// extrinsic. Sensor ids are global: a sensor may belong to at most
    /// one room.
    pub registration: Registration,
}

/// The world hub's configuration: the fleet's room layout.
#[derive(Default)]
pub struct WorldConfig {
    /// All fused rooms.
    pub rooms: Vec<RoomSpec>,
}

impl WorldConfig {
    /// A single-room world.
    pub fn single_room(room_id: u32, fuse: FuseConfig, registration: Registration) -> WorldConfig {
        WorldConfig {
            rooms: vec![RoomSpec {
                room_id,
                fuse,
                registration,
            }],
        }
    }
}

pub(crate) enum HubMsg {
    /// One sensor's frame reports (already shard-processed).
    Reports(u32, Vec<FrameReport>),
    /// A connection wants a room's world stream. The bool says whether
    /// to answer with a `SubscribeAck` — v3 subscribers expect one, the
    /// deprecated v2 shim's clients don't know the type exists.
    Subscribe(SubscribeV3, ConnSink, bool),
    /// A connection releases one subscription; the hub answers with its
    /// final `SubscriptionStats`.
    Unsubscribe(wire::Unsubscribe, ConnSink),
    /// A sensor's session closed; stop waiting for it at fusion
    /// watermarks.
    SensorClosed(u32),
    /// A connection hung up: drop its subscriptions *now*. Holding them
    /// until a failed send would also hold the connection's outbox
    /// sender — and the connection writer only exits when every sender
    /// is gone, so a stale subscription would wedge connection teardown.
    ConnClosed(u64),
}

/// Cloneable ingress to the hub thread.
#[derive(Clone)]
pub(crate) struct HubHandle {
    tx: Sender<HubMsg>,
    /// Sensors belonging to some fused room (static for the hub's
    /// lifetime). Shards consult this before cloning report batches:
    /// a sensor outside every room would have its clone dropped at the
    /// hub's routing lookup, so the clone is never made.
    fused_sensors: Arc<HashSet<u32>>,
}

impl HubHandle {
    /// `false` when the hub thread is gone (engine shutting down).
    pub(crate) fn send(&self, msg: HubMsg) -> bool {
        self.tx.send(msg).is_ok()
    }

    /// Whether the hub fuses this sensor (worth forwarding its reports).
    pub(crate) fn wants(&self, sensor_id: u32) -> bool {
        self.fused_sensors.contains(&sensor_id)
    }
}

/// The running hub thread (owned by the engine).
pub(crate) struct WorldHub {
    thread: JoinHandle<()>,
}

struct Room {
    room_id: u32,
    engine: FusionEngine,
    subscribers: Vec<Subscriber>,
    out_seq: u64,
    /// Live world tracks after the room's newest fused epoch.
    tracks: Gauge,
    /// Fusion epoch lag: newest sensor epoch minus the fusion watermark
    /// (how far the slowest active sensor trails the fastest).
    epoch_lag: Gauge,
    /// Fleet events emitted for this room.
    events: Counter,
    /// Anchor handoffs among this room's events.
    handoffs: Counter,
    /// Ghost (multipath) track initiations suppressed in this room.
    ghosts_quarantined: Counter,
    /// `FusionStats::ghosts_suppressed` at the last delta count.
    last_ghosts: u64,
    /// Per-sensor liveness (0 = live, 1 = suspect, 2 = dead), registered
    /// eagerly at startup so the series exists before any fault does.
    liveness: HashMap<u32, Gauge>,
    /// Per-sensor recoveries: how many times a dead sensor came back.
    reconnects: HashMap<u32, Counter>,
    /// Coarse event index: the OR of every event-subscriber program's
    /// possible kinds. An event whose kind bit is absent is skipped
    /// outright — no program runs, no encode happens. Rebuilt whenever
    /// the subscriber set changes.
    event_kind_mask: u16,
    /// Per-event filter-evaluation latency (ns, averaged over one
    /// frame's events).
    event_eval_ns: Arc<Histo>,
}

impl Room {
    /// Recomputes the coarse kind index from the live subscriber set.
    fn rebuild_event_mask(&mut self) {
        self.event_kind_mask = self
            .subscribers
            .iter()
            .filter(|s| s.events)
            .fold(0, |m, s| m | s.program.kind_mask());
    }
}

struct Subscriber {
    sink: ConnSink,
    /// Client-chosen id (0 for v2-shim subscriptions).
    sub_id: u64,
    world_updates: bool,
    events: bool,
    program: CompiledProgram,
    state: ProgramState,
    /// Seconds between delivered world updates (0 = every fused frame),
    /// from the subscription's `max_update_hz`. Gated on frame event
    /// time, so it is deterministic under replay.
    min_update_interval_s: f64,
    last_update_s: Option<f64>,
    /// Scratch: indices (into the current frame's events) this
    /// subscription matched. Cleared per frame, capacity reused.
    hits: Vec<u32>,
    /// Whether the current frame's world update goes to this subscriber
    /// (decided in the evaluation pre-pass).
    send_world: bool,
    /// Per-subscription filter counters, reported via
    /// `SubscriptionStats` at unsubscribe time.
    evaluated: u64,
    matched: u64,
    shed: u64,
    rate_limited: u64,
}

impl Subscriber {
    fn stats(&self, room_id: u32) -> SubscriptionStats {
        SubscriptionStats {
            room_id,
            sub_id: self.sub_id,
            evaluated: self.evaluated,
            matched: self.matched,
            shed: self.shed,
            rate_limited: self.rate_limited,
        }
    }
}

struct HubWorker {
    rx: Receiver<HubMsg>,
    rooms: Vec<Room>,
    /// sensor id → index into `rooms`.
    sensor_rooms: HashMap<u32, usize>,
    frame_pool: BufPool<u8>,
    metrics: Arc<EngineMetrics>,
    recorder: Arc<FlightRecorder>,
    stop: Arc<AtomicBool>,
    /// Reused encode buffer: each fused frame (and its events) is
    /// serialized once here, then memcpy'd into per-subscriber pooled
    /// buffers.
    update_scratch: Vec<u8>,
    /// Reused per-frame event contexts (events surviving the room's
    /// coarse kind index, paired with their frame-event index).
    ctx_scratch: Vec<(u32, EventCtx)>,
    /// Reused per-frame encoded byte ranges: `event index → (start, end)`
    /// window into `update_scratch`, `(0, 0)` for events nobody matched
    /// (and therefore never encoded).
    range_scratch: Vec<(u32, u32)>,
    /// Hub start; liveness silence is measured on this clock.
    epoch: Instant,
    /// Last liveness sweep (sweeps run at most every [`LIVENESS_TICK`]).
    last_tick: Instant,
}

impl WorldHub {
    pub(crate) fn start(
        cfg: WorldConfig,
        frame_pool: BufPool<u8>,
        metrics: Arc<EngineMetrics>,
        recorder: Arc<FlightRecorder>,
        stop: Arc<AtomicBool>,
    ) -> (WorldHub, HubHandle) {
        let (tx, rx) = channel();
        let registry = Arc::clone(metrics.registry());
        let mut sensor_rooms = HashMap::new();
        let rooms: Vec<Room> = cfg
            .rooms
            .into_iter()
            .enumerate()
            .map(|(idx, spec)| {
                for sensor in spec.registration.sensor_ids() {
                    let prev = sensor_rooms.insert(sensor, idx);
                    assert!(prev.is_none(), "sensor {sensor} registered to two rooms");
                }
                let label = Label::Room(spec.room_id);
                let mut liveness = HashMap::new();
                let mut reconnects = HashMap::new();
                for sensor in spec.registration.sensor_ids() {
                    let g = registry.gauge("sensor", "liveness", Label::Sensor(sensor));
                    g.set(SensorLiveness::Live.as_gauge());
                    liveness.insert(sensor, g);
                    reconnects.insert(
                        sensor,
                        registry.counter("sensor", "reconnects", Label::Sensor(sensor)),
                    );
                }
                let mut engine = FusionEngine::new(spec.fuse, spec.registration);
                // Anchor-switch wait times (epochs the room sat on a
                // worse anchor, in ns of epoch time) land in the room's
                // handoff-latency histogram.
                engine.attach_handoff_histo(registry.histo("room", "handoff_latency_ns", label));
                Room {
                    room_id: spec.room_id,
                    engine,
                    subscribers: Vec::new(),
                    out_seq: 0,
                    tracks: registry.gauge("room", "tracks", label),
                    epoch_lag: registry.gauge("room", "epoch_lag", label),
                    events: registry.counter("room", "events", label),
                    handoffs: registry.counter("room", "handoffs", label),
                    ghosts_quarantined: registry.counter("room", "ghosts_quarantined", label),
                    last_ghosts: 0,
                    liveness,
                    reconnects,
                    event_kind_mask: 0,
                    event_eval_ns: registry.histo("room", "event_eval_ns", label),
                }
            })
            .collect();
        let fused_sensors = Arc::new(sensor_rooms.keys().copied().collect());
        let now = Instant::now();
        let worker = HubWorker {
            rx,
            rooms,
            sensor_rooms,
            frame_pool,
            metrics,
            recorder,
            stop,
            update_scratch: Vec::new(),
            ctx_scratch: Vec::new(),
            range_scratch: Vec::new(),
            epoch: now,
            last_tick: now,
        };
        let thread = std::thread::spawn(move || worker.run());
        (WorldHub { thread }, HubHandle { tx, fused_sensors })
    }

    /// Joins the hub thread (engine shutdown, after the shards).
    pub(crate) fn join(self) {
        self.thread.join().expect("world hub panicked");
    }
}

impl HubWorker {
    fn run(mut self) {
        loop {
            match self.rx.recv_timeout(LIVENESS_TICK) {
                Ok(msg) => {
                    self.handle(msg);
                    // Busy rooms rarely idle long enough to hit the
                    // Timeout arm, so the sweep must also ride the
                    // message path (cadence-gated below).
                    self.maybe_tick();
                }
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    // Inbox empty: the only time shutdown may interrupt.
                    if self.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    self.maybe_tick();
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// Sweeps every room for silent sensors (at most once per
    /// [`LIVENESS_TICK`]): advances each [`FusionEngine`]'s liveness
    /// state machine, surfaces the transitions as anomalies and
    /// per-sensor series, and delivers any epochs the sweep unblocked.
    fn maybe_tick(&mut self) {
        if self.last_tick.elapsed() < LIVENESS_TICK {
            return;
        }
        self.last_tick = Instant::now();
        let now_s = self.epoch.elapsed().as_secs_f64();
        for idx in 0..self.rooms.len() {
            let room = &mut self.rooms[idx];
            let frames = room.engine.tick(now_s);
            let transitions = room.engine.take_liveness_transitions();
            for t in &transitions {
                if let Some(g) = room.liveness.get(&t.sensor_id) {
                    g.set(t.to.as_gauge());
                }
                let silence_ns = (t.silence_s.max(0.0) * 1e9) as u64;
                match t.to {
                    SensorLiveness::Suspect => {
                        // A stalled-but-not-yet-dead feed.
                        self.recorder.record(
                            AnomalyKind::Stall,
                            t.sensor_id as u64,
                            room.room_id as u64,
                            silence_ns,
                        );
                    }
                    SensorLiveness::Dead => {
                        self.recorder.record(
                            AnomalyKind::SensorDead,
                            t.sensor_id as u64,
                            room.room_id as u64,
                            silence_ns,
                        );
                    }
                    SensorLiveness::Live => {
                        if let Some(c) = room.reconnects.get(&t.sensor_id) {
                            c.inc();
                        }
                        self.recorder.record(
                            AnomalyKind::SensorRecovered,
                            t.sensor_id as u64,
                            room.room_id as u64,
                            silence_ns,
                        );
                    }
                }
            }
            if !frames.is_empty() {
                self.deliver(idx, frames);
            }
        }
    }

    fn handle(&mut self, msg: HubMsg) {
        match msg {
            HubMsg::Reports(sensor_id, reports) => {
                let Some(&idx) = self.sensor_rooms.get(&sensor_id) else {
                    // Sensors outside every room still stream their
                    // per-sensor updates; they just don't fuse.
                    return;
                };
                for report in &reports {
                    let frames = self.rooms[idx].engine.push_report(sensor_id, report);
                    self.deliver(idx, frames);
                }
            }
            HubMsg::SensorClosed(sensor_id) => {
                if let Some(&idx) = self.sensor_rooms.get(&sensor_id) {
                    let frames = self.rooms[idx].engine.remove_sensor(sensor_id);
                    self.deliver(idx, frames);
                }
            }
            HubMsg::Subscribe(sub, sink, ack) => self.subscribe(sub, sink, ack),
            HubMsg::Unsubscribe(unsub, sink) => self.unsubscribe(unsub, sink),
            HubMsg::ConnClosed(conn_id) => {
                for room in &mut self.rooms {
                    let before = room.subscribers.len();
                    room.subscribers.retain(|s| s.sink.conn_id != conn_id);
                    let closed = before - room.subscribers.len();
                    if closed > 0 {
                        self.metrics.subscriptions_closed.add(closed as u64);
                        room.rebuild_event_mask();
                    }
                }
            }
        }
    }

    /// Sends a reply frame (ack, stats, reject) back to a subscriber's
    /// connection, shedding on a full outbox.
    fn reply(&self, sink: &ConnSink, msg: &Message) {
        let mut buf = self.frame_pool.get(64);
        wire::encode_into(msg, &mut buf);
        if sink.tx.try_send(buf).is_err() {
            self.metrics.updates_dropped.inc();
        }
    }

    fn subscribe(&mut self, sub: SubscribeV3, sink: ConnSink, ack: bool) {
        let Some(room) = self.rooms.iter_mut().find(|r| r.room_id == sub.room_id) else {
            self.metrics.batches_rejected.inc();
            let mut buf = self.frame_pool.get(32);
            wire::encode_reject_into(sub.room_id, RejectCode::UnknownSubscription, &mut buf);
            if sink.tx.try_send(buf).is_err() {
                self.metrics.updates_dropped.inc();
            }
            return;
        };
        // Validate the program once at install time: a stack-invalid or
        // oversized program is the client's bug, reported as BadProgram;
        // the connection (and its other subscriptions) survive.
        let program = match sub.program.compile() {
            Ok(p) => p,
            Err(_) => {
                self.metrics.batches_rejected.inc();
                let room_id = sub.room_id;
                self.reply(
                    &sink,
                    &Message::Reject(wire::Reject {
                        sensor_id: room_id,
                        code: RejectCode::BadProgram,
                    }),
                );
                return;
            }
        };
        self.metrics.subscriptions_opened.inc();
        let state = program.new_state();
        room.subscribers.push(Subscriber {
            sink: sink.clone(),
            sub_id: sub.sub_id,
            world_updates: sub.world_updates,
            events: sub.events,
            program,
            state,
            min_update_interval_s: if sub.max_update_hz > 0.0 {
                1.0 / sub.max_update_hz
            } else {
                0.0
            },
            last_update_s: None,
            hits: Vec::new(),
            send_world: false,
            evaluated: 0,
            matched: 0,
            shed: 0,
            rate_limited: 0,
        });
        room.rebuild_event_mask();
        if ack {
            let reply = Message::SubscribeAck(SubscribeAck {
                room_id: sub.room_id,
                sub_id: sub.sub_id,
                status: 0,
            });
            self.reply(&sink, &reply);
        }
    }

    /// Removes one `(connection, sub_id)` subscription and answers with
    /// its final counters. Unknown subscriptions get
    /// `UnknownSubscription` — same as subscribing to an unknown room.
    fn unsubscribe(&mut self, unsub: wire::Unsubscribe, sink: ConnSink) {
        let found = self
            .rooms
            .iter_mut()
            .find(|r| r.room_id == unsub.room_id)
            .and_then(|room| {
                let at = room
                    .subscribers
                    .iter()
                    .position(|s| s.sink.conn_id == sink.conn_id && s.sub_id == unsub.sub_id)?;
                let sub = room.subscribers.swap_remove(at);
                room.rebuild_event_mask();
                Some(sub.stats(room.room_id))
            });
        match found {
            Some(stats) => {
                self.metrics.subscriptions_closed.inc();
                self.reply(&sink, &Message::SubscriptionStats(stats));
            }
            None => {
                self.metrics.batches_rejected.inc();
                self.reply(
                    &sink,
                    &Message::Reject(wire::Reject {
                        sensor_id: unsub.room_id,
                        code: RejectCode::UnknownSubscription,
                    }),
                );
            }
        }
    }

    /// Broadcasts fused frames (and their events) to a room's
    /// subscribers, shedding to lagging connections and pruning dead
    /// ones. Each frame and event is serialized exactly once (into the
    /// reused scratch) and copied byte-for-byte into per-subscriber
    /// pooled buffers.
    fn deliver(&mut self, room_idx: usize, frames: Vec<WorldFrame>) {
        let room = &mut self.rooms[room_idx];
        // Ghost suppressions happen inside fusion; surface the delta as
        // a room counter and quarantine records.
        let ghosts = room.engine.stats().ghosts_suppressed;
        if ghosts > room.last_ghosts {
            let new = ghosts - room.last_ghosts;
            room.ghosts_quarantined.add(new);
            self.recorder.record(
                AnomalyKind::GhostQuarantine,
                room.room_id as u64,
                new,
                ghosts,
            );
            room.last_ghosts = ghosts;
        }
        for frame in frames {
            self.metrics.world_frames.inc();
            self.metrics.world_events.add(frame.events.len() as u64);
            room.tracks.set(frame.tracks.len() as i64);
            room.epoch_lag
                .set(room.engine.watermark_lag_epochs() as i64);
            room.events.add(frame.events.len() as u64);
            for event in &frame.events {
                if let WorldEvent::Handoff {
                    from_sensor,
                    to_sensor,
                    ..
                } = event
                {
                    room.handoffs.inc();
                    self.recorder.record(
                        AnomalyKind::Handoff,
                        *from_sensor as u64,
                        *to_sensor as u64,
                        frame.epoch,
                    );
                }
            }
            let seq = room.out_seq;
            room.out_seq += 1;
            if room.subscribers.is_empty() {
                continue; // sequence still advances; nothing to encode
            }

            // --- Phase 1: evaluate, before anything is encoded. -------
            // Extract each event's matchable facts once, skipping whole
            // events outside the room's coarse kind index (no subscriber
            // program could match them).
            let ctxs = &mut self.ctx_scratch;
            ctxs.clear();
            for (ei, event) in frame.events.iter().enumerate() {
                let ctx = EventCtx::from_event(event);
                if room.event_kind_mask & ctx.kind_bit() != 0 {
                    ctxs.push((ei as u32, ctx));
                }
            }
            let metrics = &self.metrics;
            let mut any_world = false;
            let mut any_hit = false;
            let eval_start = Instant::now();
            for sub in &mut room.subscribers {
                // World updates pass through a per-subscription rate
                // gate on the fused frame's event time (deterministic
                // under replay, unlike a wall clock).
                sub.send_world = sub.world_updates
                    && (sub.min_update_interval_s <= 0.0
                        || sub
                            .last_update_s
                            .is_none_or(|last| frame.time_s - last >= sub.min_update_interval_s));
                if sub.send_world {
                    sub.last_update_s = Some(frame.time_s);
                    any_world = true;
                }
                sub.hits.clear();
                if !sub.events {
                    continue;
                }
                for (ei, ctx) in ctxs.iter() {
                    sub.evaluated += 1;
                    // The per-subscription mask is the second pre-screen:
                    // the gap between per-sub `evaluated` and the global
                    // `events_evaluated` counter is evaluations the index
                    // saved.
                    if sub.program.kind_mask() & ctx.kind_bit() == 0 {
                        continue;
                    }
                    metrics.events_evaluated.inc();
                    let verdict = sub.program.eval(&mut sub.state, ctx);
                    if verdict.rate_limited {
                        sub.rate_limited += 1;
                        metrics.events_rate_limited.inc();
                    }
                    if verdict.matched {
                        sub.matched += 1;
                        metrics.events_matched.inc();
                        sub.hits.push(*ei);
                        any_hit = true;
                    }
                }
            }
            if !ctxs.is_empty() {
                let per_event = eval_start.elapsed().as_nanos() as u64 / ctxs.len() as u64;
                room.event_eval_ns.record(per_event);
            }
            if !any_world && !any_hit {
                continue; // nobody wants anything from this frame
            }

            // --- Phase 2: encode once — and only what somebody wants. -
            let scratch = &mut self.update_scratch;
            scratch.clear();
            let world_len = if any_world {
                wire::encode_world_update_into(room.room_id, seq, &frame, scratch);
                scratch.len()
            } else {
                0
            };
            let ranges = &mut self.range_scratch;
            ranges.clear();
            ranges.resize(frame.events.len(), (0, 0));
            for sub in &room.subscribers {
                for &ei in &sub.hits {
                    let slot = &mut ranges[ei as usize];
                    if slot.0 == slot.1 {
                        let start = scratch.len();
                        wire::encode_event_into(room.room_id, &frame.events[ei as usize], scratch);
                        *slot = (start as u32, scratch.len() as u32);
                    }
                }
            }

            // --- Phase 3: deliver, shedding and pruning as before. ----
            let pool = &self.frame_pool;
            let recorder = &self.recorder;
            let mut pruned = 0u64;
            room.subscribers.retain_mut(|sub| {
                let mut alive = true;
                if sub.send_world {
                    let mut buf = pool.get(world_len);
                    buf.extend_from_slice(&scratch[..world_len]);
                    metrics.world_bytes.add(world_len as u64);
                    alive &= push(&sub.sink, buf, metrics, recorder, &mut sub.shed);
                }
                if alive {
                    for &ei in &sub.hits {
                        let (start, end) = ranges[ei as usize];
                        let bytes = &scratch[start as usize..end as usize];
                        let mut buf = pool.get(bytes.len());
                        buf.extend_from_slice(bytes);
                        metrics.world_bytes.add(bytes.len() as u64);
                        alive &= push(&sub.sink, buf, metrics, recorder, &mut sub.shed);
                        if !alive {
                            break;
                        }
                    }
                }
                if !alive {
                    pruned += 1;
                }
                alive
            });
            if pruned > 0 {
                metrics.subscriptions_closed.add(pruned);
                room.rebuild_event_mask();
            }
        }
    }
}

/// `try_send` into a subscriber, shedding on full (counted both in the
/// engine-wide `updates_dropped` and the subscription's own `shed`).
/// Returns `false` when the connection is gone (prune it).
fn push(
    sink: &ConnSink,
    buf: crate::pool::PooledBuf<u8>,
    metrics: &EngineMetrics,
    recorder: &FlightRecorder,
    shed: &mut u64,
) -> bool {
    match sink.tx.try_send(buf) {
        Ok(()) => true,
        Err(TrySendError::Full(_)) => {
            metrics.updates_dropped.inc();
            *shed += 1;
            recorder.record(AnomalyKind::Shed, sink.conn_id, 0, 0);
            true
        }
        Err(TrySendError::Disconnected(_)) => false,
    }
}
