//! The length-prefixed binary wire format sensors speak to the engine.
//!
//! Every message is one *frame*: a fixed 12-byte header followed by a
//! type-specific payload. All integers and floats are **little-endian**.
//!
//! ```text
//! offset  size  field
//! 0       4     magic  the bytes "WTRK" (0x4B525457 as a LE u32)
//! 4       1     version (currently 3; 1 and 2 still decode)
//! 5       1     message type
//! 6       2     flags (reserved, must be 0)
//! 8       4     payload length in bytes
//! 12      ...   payload
//! ```
//!
//! Message types (client → server unless noted):
//!
//! | type | name         | payload |
//! |------|--------------|---------|
//! | 1    | `Hello`      | `sensor_id u32, kind u8, n_rx u8, flags u16 (bit0: sender will use quantized batches), samples_per_sweep u32, sweeps_per_frame u32` |
//! | 2    | `SweepBatch` | `sensor_id u32, seq u64, n_sweeps u16, n_rx u16, samples_per_sweep u32, data [n_sweeps × n_rx × samples_per_sweep] f64` |
//! | 3    | `Teardown`   | `sensor_id u32` |
//! | 4    | `UpdateBatch` (server → client) | `sensor_id u32, seq u64, n_updates u16, reserved u16`, then per update `frame_index u64, time_s f64, n_targets u16, reserved u16`, then per target 64 bytes: `id u64 (u64::MAX = anonymous), x y z f64, vx vy vz f64, flags u8 (bit0 held, bit1 has velocity), pad [7]u8` |
//! | 5    | `Reject` (server → client) | `sensor_id u32, code u16, reserved u16` |
//! | 6    | `SweepBatchQ` (v2) | `sensor_id u32, seq u64, n_sweeps u16, n_rx u16, samples_per_sweep u32, scale f64, data [n_sweeps × n_rx × samples_per_sweep] i16` |
//! | 7    | `Subscribe` (v2) | `room_id u32, flags u16 (bit0 world updates, bit1 events), reserved u16` |
//! | 8    | `WorldUpdate` (v2, server → client) | `room_id u32, seq u64, epoch u64, time_s f64, n_tracks u16, reserved u16`, then per track 88 bytes: `id u64, x y z f64, vx vy vz f64, var_x var_y var_z f64, flags u8 (bit0 coasting), contributors u8, pad u16, primary_sensor u32 (u32::MAX = none)` |
//! | 9    | `Event` (v2, server → client) | `room_id u32, kind u16, reserved u16, track u64 (u64::MAX = none), zone u32, sensor_a u32, sensor_b u32, reserved u32, time_s f64, x y z f64, aux f64, aux2 f64` |
//! | 10   | `StatsQuery` (v2) | `flags u32 (reserved, must be 0)` |
//! | 11   | `StatsReport` (v2, server → client) | `n_samples u32`, then per sample: `subsystem (u8 len + bytes), name (u8 len + bytes), label_kind u8 (0 global, 1 sensor, 2 room, 3 shard), label_id u32, value_kind u8 (1 counter, 2 gauge, 3 histogram)`, then `u64` for counter, `i64` for gauge, or `count u64, sum u64, min u64, max u64, p50 u64, p90 u64, p99 u64` for histogram |
//! | 12   | `SubscribeV3` (v3) | `room_id u32, sub_id u64, flags u16 (bit0 world updates, bit1 events), reserved u16, max_update_hz f64, n_ops u16`, then per filter op 17 bytes: `code u8, a u32, b u32, f f64` |
//! | 13   | `SubscribeAck` (v3, server → client) | `room_id u32, status u16 (0 = ok), reserved u16, sub_id u64` |
//! | 14   | `SubscriptionStats` (v3, server → client) | `room_id u32, reserved u32, sub_id u64, evaluated u64, matched u64, shed u64, rate_limited u64` |
//! | 15   | `Unsubscribe` (v3) | `room_id u32, sub_id u64` |
//!
//! **Version 2** adds [`SweepBatchQ`]: the same batch shape as
//! `SweepBatch`, but carrying the baseband as `i16` quantization steps
//! plus one `f64` scale per batch (`sample = step × scale`). Real FMCW
//! front ends digitize at ≤ 16 bits, so the i16 wire is fidelity-neutral
//! while cutting sample bytes 4× (a 5-sweep × 3-antenna × 2500-sample
//! frame drops from 300,032 to 75,040 bytes at the paper configuration). A sensor announces it will use the quantized wire via
//! the `Hello` flag bit 0 ([`Hello::quantized`]); servers accept both
//! batch forms regardless, so v1 senders keep working unchanged.
//!
//! **Version 3** makes subscriptions programmable: [`SubscribeV3`]
//! (type 12) carries a compiled filter program (see
//! [`crate::program`]) plus per-subscription rate fields, answered with
//! a [`SubscribeAck`]; [`Unsubscribe`] (type 15) releases one
//! subscription and is answered with its final [`SubscriptionStats`].
//! The v2 `Subscribe` (type 7) still decodes and behaves as a match-all
//! program, so old clients keep working unchanged. This decoder accepts
//! frame versions 1 through 3; lower-version frames simply cannot carry
//! the newer types (v1 stops at type 5, v2 at type 11).
//!
//! Types 10/11 are the telemetry pull: a client sends `StatsQuery` and
//! the server answers with one `StatsReport` carrying a point-in-time
//! snapshot of every registered metric series (see `witrack_obs`) —
//! counters, gauges, and histogram summaries with p50/p90/p99.
//!
//! [`decode`] is incremental-read friendly: on a buffer holding only part
//! of one frame it returns [`WireError::Incomplete`] with the total frame
//! length needed, so a streaming reader knows exactly how much more to
//! fetch. All other errors are fatal for the connection. The hot ingest
//! path uses [`decode_into`] instead, which dequantizes straight into a
//! caller-provided (typically pooled) sample buffer and never allocates.

use witrack_core::{FrameReport, TargetReport};
use witrack_fuse::{WorldEvent, WorldFrame, WorldTrackId, WorldTrackSnapshot};
use witrack_geom::Vec3;

/// Frame magic: the bytes `"WTRK"` on the wire (value `0x4B52_5457` as a
/// little-endian u32).
pub const MAGIC: u32 = u32::from_le_bytes(*b"WTRK");
/// Current protocol version (encoded into every frame this side sends).
pub const VERSION: u8 = 3;
/// Oldest protocol version this decoder still accepts.
pub const MIN_VERSION: u8 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 12;
/// Hard cap on payload length (64 MiB): anything larger is a corrupt or
/// hostile frame, not a real sweep batch.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Which pipeline backend a sensor asks for in its [`Hello`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineKind {
    /// The single-target `WiTrack` pipeline.
    SingleTarget,
    /// The multi-target `MultiWiTrack` pipeline.
    MultiTarget,
}

impl PipelineKind {
    fn to_u8(self) -> u8 {
        match self {
            PipelineKind::SingleTarget => 0,
            PipelineKind::MultiTarget => 1,
        }
    }

    fn from_u8(v: u8) -> Result<PipelineKind, WireError> {
        match v {
            0 => Ok(PipelineKind::SingleTarget),
            1 => Ok(PipelineKind::MultiTarget),
            _ => Err(WireError::BadPayload("unknown pipeline kind")),
        }
    }
}

/// Session open: a sensor announces itself and its stream shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Sensor identity; also the shard-routing key.
    pub sensor_id: u32,
    /// Requested pipeline backend.
    pub kind: PipelineKind,
    /// Number of receive antennas (one sweep slice per antenna).
    pub n_rx: u8,
    /// Samples per sweep the sensor will send.
    pub samples_per_sweep: u32,
    /// Sweeps per processing frame.
    pub sweeps_per_frame: u32,
    /// The sensor intends to send [`SweepBatchQ`] (quantized i16) batches
    /// — wire-v2 negotiation, hello-flags bit 0. Advisory: servers accept
    /// both batch forms either way, and v1 encoders wrote 0 here, so old
    /// hellos decode as `false`.
    pub quantized: bool,
}

/// A batch of consecutive sweep intervals from one sensor.
///
/// `data` is flat, sweep-major: sweep `s`, antenna `k` occupies
/// `data[(s * n_rx + k) * samples .. ][..samples]` (see [`Self::sweep_rx`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepBatch {
    /// Which sensor this batch belongs to.
    pub sensor_id: u32,
    /// Batch sequence number, starting at 0 after `Hello`.
    pub seq: u64,
    /// Number of sweep intervals in this batch.
    pub n_sweeps: u16,
    /// Number of receive antennas per sweep interval.
    pub n_rx: u16,
    /// Samples per (antenna) sweep.
    pub samples_per_sweep: u32,
    /// The baseband samples, `n_sweeps × n_rx × samples_per_sweep`.
    pub data: Vec<f64>,
}

impl SweepBatch {
    /// Builds a batch from per-sweep, per-antenna slices.
    ///
    /// # Panics
    /// Panics if the sweeps are ragged (differing antenna counts or sweep
    /// lengths).
    pub fn from_sweeps(sensor_id: u32, seq: u64, sweeps: &[Vec<Vec<f64>>]) -> SweepBatch {
        let n_sweeps = sweeps.len();
        let n_rx = sweeps.first().map(|s| s.len()).unwrap_or(0);
        let samples = sweeps
            .first()
            .and_then(|s| s.first())
            .map(|v| v.len())
            .unwrap_or(0);
        let mut data = Vec::with_capacity(n_sweeps * n_rx * samples);
        for sweep in sweeps {
            assert_eq!(sweep.len(), n_rx, "ragged antenna count");
            for rx in sweep {
                assert_eq!(rx.len(), samples, "ragged sweep length");
                data.extend_from_slice(rx);
            }
        }
        SweepBatch {
            sensor_id,
            seq,
            n_sweeps: n_sweeps as u16,
            n_rx: n_rx as u16,
            samples_per_sweep: samples as u32,
            data,
        }
    }

    /// The samples of sweep `s`, antenna `k`.
    pub fn sweep_rx(&self, s: usize, k: usize) -> &[f64] {
        let samples = self.samples_per_sweep as usize;
        let start = (s * self.n_rx as usize + k) * samples;
        &self.data[start..start + samples]
    }

    /// This batch's shape/identity fields as a [`SweepShape`].
    pub fn shape(&self) -> SweepShape {
        SweepShape {
            sensor_id: self.sensor_id,
            seq: self.seq,
            n_sweeps: self.n_sweeps,
            n_rx: self.n_rx,
            samples_per_sweep: self.samples_per_sweep,
        }
    }
}

/// The identity + shape header shared by both sweep-batch forms — what
/// the engine needs once the samples live in a separate (pooled) buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepShape {
    /// Which sensor the batch belongs to.
    pub sensor_id: u32,
    /// Batch sequence number.
    pub seq: u64,
    /// Sweep intervals in the batch.
    pub n_sweeps: u16,
    /// Receive antennas per sweep interval.
    pub n_rx: u16,
    /// Samples per (antenna) sweep.
    pub samples_per_sweep: u32,
}

impl SweepShape {
    /// Total samples the batch carries.
    pub fn sample_count(&self) -> usize {
        self.n_sweeps as usize * self.n_rx as usize * self.samples_per_sweep as usize
    }

    /// Samples in one sweep interval (all antennas, packed contiguously).
    pub fn samples_per_interval(&self) -> usize {
        self.n_rx as usize * self.samples_per_sweep as usize
    }
}

/// Wire v2: a sweep batch quantized to i16 steps with one shared scale.
///
/// `sample = data[i] as f64 * scale`. Quantization uses the batch's peak
/// magnitude, so the worst-case rounding error is `scale / 2` — about
/// 90 dB below the strongest reflector, far beneath both the simulated
/// noise floor and a real ≤ 16-bit ADC's own quantization.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepBatchQ {
    /// Which sensor this batch belongs to.
    pub sensor_id: u32,
    /// Batch sequence number, starting at 0 after `Hello`.
    pub seq: u64,
    /// Number of sweep intervals in this batch.
    pub n_sweeps: u16,
    /// Number of receive antennas per sweep interval.
    pub n_rx: u16,
    /// Samples per (antenna) sweep.
    pub samples_per_sweep: u32,
    /// Dequantization scale: one step in physical units.
    pub scale: f64,
    /// Quantized samples, same sweep-major layout as [`SweepBatch::data`].
    pub data: Vec<i16>,
}

impl SweepBatchQ {
    /// Quantizes an f64 batch. The scale is chosen so the batch's peak
    /// magnitude maps to ±[`i16::MAX`] (an all-zero batch gets scale 1).
    pub fn quantize(b: &SweepBatch) -> SweepBatchQ {
        let peak = b.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()));
        let scale = if peak > 0.0 {
            peak / i16::MAX as f64
        } else {
            1.0
        };
        let inv = 1.0 / scale;
        let data = b
            .data
            .iter()
            .map(|&x| (x * inv).round().clamp(i16::MIN as f64, i16::MAX as f64) as i16)
            .collect();
        SweepBatchQ {
            sensor_id: b.sensor_id,
            seq: b.seq,
            n_sweeps: b.n_sweeps,
            n_rx: b.n_rx,
            samples_per_sweep: b.samples_per_sweep,
            scale,
            data,
        }
    }

    /// Builds a quantized batch from per-sweep, per-antenna slices.
    ///
    /// # Panics
    /// Panics if the sweeps are ragged (see [`SweepBatch::from_sweeps`]).
    pub fn from_sweeps(sensor_id: u32, seq: u64, sweeps: &[Vec<Vec<f64>>]) -> SweepBatchQ {
        SweepBatchQ::quantize(&SweepBatch::from_sweeps(sensor_id, seq, sweeps))
    }

    /// Dequantizes into `out` (cleared first; reuses its capacity).
    pub fn dequantize_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.data.iter().map(|&q| q as f64 * self.scale));
    }

    /// Dequantizes into a fresh f64 batch.
    pub fn dequantize(&self) -> SweepBatch {
        let mut data = Vec::new();
        self.dequantize_into(&mut data);
        SweepBatch {
            sensor_id: self.sensor_id,
            seq: self.seq,
            n_sweeps: self.n_sweeps,
            n_rx: self.n_rx,
            samples_per_sweep: self.samples_per_sweep,
            data,
        }
    }

    /// This batch's shape/identity fields as a [`SweepShape`].
    pub fn shape(&self) -> SweepShape {
        SweepShape {
            sensor_id: self.sensor_id,
            seq: self.seq,
            n_sweeps: self.n_sweeps,
            n_rx: self.n_rx,
            samples_per_sweep: self.samples_per_sweep,
        }
    }
}

/// Session close for one sensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Teardown {
    /// Which sensor is closing.
    pub sensor_id: u32,
}

/// Server → client: a batch of per-frame reports for one sensor.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateBatch {
    /// Which sensor these updates belong to.
    pub sensor_id: u32,
    /// Output sequence number, starting at 0 per session.
    pub seq: u64,
    /// The per-frame reports, oldest first.
    pub updates: Vec<FrameReport>,
}

/// Why the server refused a message (the session, if any, survives unless
/// the code says otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    /// A `SweepBatch` arrived for a sensor that never said `Hello` (or was
    /// torn down).
    UnknownSensor,
    /// A `Hello` arrived for a sensor id that already has a live session.
    DuplicateSensor,
    /// The `Hello` or `SweepBatch` shape disagrees with the server's
    /// pipeline configuration (antenna count, sweep length).
    BadConfig,
    /// A `SweepBatch` sequence number was already consumed; the batch was
    /// discarded.
    StaleSequence,
    /// A `Subscribe` named a room this server does not fuse (or the
    /// server runs no world hub at all).
    UnknownSubscription,
    /// A frame arrived whose payload failed to decode (mutated bytes,
    /// bad shape). The stream itself stayed framed — the length prefix
    /// was intact — so the connection survives; the frame is discarded.
    /// The `sensor_id` on such a reject is 0: a corrupt frame names no
    /// trustworthy sensor.
    CorruptFrame,
    /// A `SubscribeV3` carried a filter program that decoded but failed
    /// validation (stack-invalid or over the op budget). The connection
    /// survives; the subscription is not installed.
    BadProgram,
}

impl RejectCode {
    pub(crate) fn to_u16(self) -> u16 {
        match self {
            RejectCode::UnknownSensor => 1,
            RejectCode::DuplicateSensor => 2,
            RejectCode::BadConfig => 3,
            RejectCode::StaleSequence => 4,
            RejectCode::UnknownSubscription => 5,
            RejectCode::CorruptFrame => 6,
            RejectCode::BadProgram => 7,
        }
    }

    fn from_u16(v: u16) -> Result<RejectCode, WireError> {
        match v {
            1 => Ok(RejectCode::UnknownSensor),
            2 => Ok(RejectCode::DuplicateSensor),
            3 => Ok(RejectCode::BadConfig),
            4 => Ok(RejectCode::StaleSequence),
            5 => Ok(RejectCode::UnknownSubscription),
            6 => Ok(RejectCode::CorruptFrame),
            7 => Ok(RejectCode::BadProgram),
            _ => Err(WireError::BadPayload("unknown reject code")),
        }
    }
}

/// Client → server: subscribe this connection to a fused room's world
/// stream (wire v2). Replaces per-sensor consumption for clients that
/// want the world model: occupancy, handoffs, falls — not raw tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subscribe {
    /// The room to subscribe to.
    pub room_id: u32,
    /// Deliver fused [`WorldUpdateMsg`] frames.
    pub world_updates: bool,
    /// Deliver [`EventMsg`] frames.
    pub events: bool,
}

impl Subscribe {
    /// A subscription to everything the room publishes.
    pub fn all(room_id: u32) -> Subscribe {
        Subscribe {
            room_id,
            world_updates: true,
            events: true,
        }
    }
}

/// Client → server: a programmable room subscription (wire v3). Carries
/// a [`FilterProgram`](crate::program::FilterProgram) the hub evaluates
/// per event before encode/fan-out, plus per-subscription rate fields.
/// Most clients build one with
/// [`SubscriptionBuilder`](crate::program::SubscriptionBuilder).
#[derive(Debug, Clone, PartialEq)]
pub struct SubscribeV3 {
    /// The room to subscribe to.
    pub room_id: u32,
    /// Client-chosen subscription id: names this subscription in
    /// [`SubscribeAck`]/[`SubscriptionStats`] replies and [`Unsubscribe`].
    pub sub_id: u64,
    /// Deliver fused [`WorldUpdateMsg`] frames.
    pub world_updates: bool,
    /// Deliver [`EventMsg`] frames (those matching `program`).
    pub events: bool,
    /// Cap on delivered world updates per event-second (0 = every fused
    /// frame). Frames beyond the cap are skipped, not queued.
    pub max_update_hz: f64,
    /// The event filter; empty matches everything.
    pub program: crate::program::FilterProgram,
}

impl SubscribeV3 {
    /// Lifts a v2 [`Subscribe`] into its v3 equivalent: sub id 0,
    /// match-all program, no rate cap — exactly the old semantics.
    pub fn from_v2(s: Subscribe) -> SubscribeV3 {
        SubscribeV3 {
            room_id: s.room_id,
            sub_id: 0,
            world_updates: s.world_updates,
            events: s.events,
            max_update_hz: 0.0,
            program: crate::program::FilterProgram::match_all(),
        }
    }
}

/// Server → client: the hub accepted a [`SubscribeV3`] (wire v3). A
/// refused subscription gets a [`Reject`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscribeAck {
    /// The subscribed room.
    pub room_id: u32,
    /// The subscription id echoed back.
    pub sub_id: u64,
    /// Reserved status (0 = ok).
    pub status: u16,
}

/// Server → client: one subscription's filter counters (wire v3) — sent
/// as the final reply to an [`Unsubscribe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubscriptionStats {
    /// The subscribed room.
    pub room_id: u32,
    /// Which subscription these counters belong to.
    pub sub_id: u64,
    /// Events offered to this subscription's filter.
    pub evaluated: u64,
    /// Events the filter matched (delivery attempted).
    pub matched: u64,
    /// Matched messages shed on a full outbox.
    pub shed: u64,
    /// Would-be matches suppressed by debounce/rate-limit ops.
    pub rate_limited: u64,
}

/// Client → server: release one subscription (wire v3). The hub stops
/// evaluating it immediately and replies with its final
/// [`SubscriptionStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unsubscribe {
    /// The subscribed room.
    pub room_id: u32,
    /// The subscription id given at subscribe time.
    pub sub_id: u64,
}

/// Server → client: one fused world epoch for a room (wire v2).
#[derive(Debug, Clone, PartialEq)]
pub struct WorldUpdateMsg {
    /// The room the frame belongs to.
    pub room_id: u32,
    /// The room's output-stream sequence number (shared by all
    /// subscribers, advancing whether or not anyone is subscribed) — so
    /// a late subscriber starts mid-stream at a nonzero value, and gaps
    /// only indicate shed frames *between* values a subscriber received.
    pub seq: u64,
    /// The fused epoch (events are delivered separately as [`EventMsg`]).
    pub frame: WorldFrame,
}

/// Server → client: one fleet event for a room (wire v2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventMsg {
    /// The room the event belongs to.
    pub room_id: u32,
    /// The event.
    pub event: WorldEvent,
}

/// Server → client: a refusal notice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reject {
    /// The sensor the refused message named.
    pub sensor_id: u32,
    /// Why it was refused.
    pub code: RejectCode,
}

/// Client → server: request one [`StatsReport`] snapshot (wire v2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsQuery {
    /// Reserved; must be 0.
    pub flags: u32,
}

/// A histogram's wire summary: totals, extremes, and the three
/// quantiles dashboards actually plot. The full 64-bucket vector stays
/// server-side; 56 bytes per series keeps a fleet-wide report small.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistoWire {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// 50th-percentile estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl HistoWire {
    /// Summarizes a full histogram snapshot for the wire.
    pub fn from_snapshot(h: &witrack_obs::HistoSnapshot) -> HistoWire {
        if h.is_empty() {
            return HistoWire::default();
        }
        HistoWire {
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
            p50: h.p50(),
            p90: h.p90(),
            p99: h.p99(),
        }
    }
}

/// One metric's value inside a [`StatsReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsValue {
    /// Monotone counter.
    Counter(u64),
    /// Instantaneous gauge.
    Gauge(i64),
    /// Histogram summary.
    Histo(HistoWire),
}

/// One metric series inside a [`StatsReport`]. The owned-string twin of
/// `witrack_obs::MetricSample` (registry keys are `&'static str`, which
/// a decoder cannot produce).
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSample {
    /// Owning subsystem (`"engine"`, `"shard"`, `"pipeline"`, ...).
    pub subsystem: String,
    /// Series name within the subsystem.
    pub name: String,
    /// Label dimension.
    pub label: witrack_obs::Label,
    /// Point-in-time value.
    pub value: StatsValue,
}

/// Server → client: a point-in-time metrics snapshot (wire v2),
/// answering a [`StatsQuery`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsReport {
    /// Every registered series, in registry (sorted-key) order.
    pub samples: Vec<StatsSample>,
}

impl StatsReport {
    /// Builds an owned report from registry snapshot samples.
    pub fn from_samples(samples: &[witrack_obs::MetricSample]) -> StatsReport {
        StatsReport {
            samples: samples
                .iter()
                .map(|s| StatsSample {
                    subsystem: s.key.subsystem.to_string(),
                    name: s.key.name.to_string(),
                    label: s.key.label,
                    value: match &s.value {
                        witrack_obs::MetricValue::Counter(v) => StatsValue::Counter(*v),
                        witrack_obs::MetricValue::Gauge(v) => StatsValue::Gauge(*v),
                        witrack_obs::MetricValue::Histo(h) => {
                            StatsValue::Histo(HistoWire::from_snapshot(h))
                        }
                    },
                })
                .collect(),
        }
    }

    /// The first sample matching `(subsystem, name, label)`, if any —
    /// the lookup clients use after a pull.
    pub fn find(
        &self,
        subsystem: &str,
        name: &str,
        label: witrack_obs::Label,
    ) -> Option<&StatsSample> {
        self.samples
            .iter()
            .find(|s| s.subsystem == subsystem && s.name == name && s.label == label)
    }

    /// Prometheus-style text exposition of the pulled report, in the
    /// same shape as [`witrack_obs::registry::render_samples`]: one line
    /// per counter/gauge, `_count`/`_sum` plus `quantile`-labeled
    /// p50/p90/p99/max lines per histogram.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for s in &self.samples {
            let base = format!("witrack_{}_{}", s.subsystem, s.name);
            let label = match s.label.dimension() {
                None => String::new(),
                Some((dim, id)) => format!("{dim}=\"{id}\""),
            };
            let series = |extra: &str| -> String {
                let joined = match (label.is_empty(), extra.is_empty()) {
                    (true, true) => return String::new(),
                    (false, true) => label.clone(),
                    (true, false) => extra.to_string(),
                    (false, false) => format!("{label},{extra}"),
                };
                format!("{{{joined}}}")
            };
            match &s.value {
                StatsValue::Counter(v) => {
                    let _ = writeln!(out, "{base}{} {v}", series(""));
                }
                StatsValue::Gauge(v) => {
                    let _ = writeln!(out, "{base}{} {v}", series(""));
                }
                StatsValue::Histo(h) => {
                    let _ = writeln!(out, "{base}_count{} {}", series(""), h.count);
                    let _ = writeln!(out, "{base}_sum{} {}", series(""), h.sum);
                    for (q, v) in [
                        ("0.5", h.p50),
                        ("0.9", h.p90),
                        ("0.99", h.p99),
                        ("1.0", h.max),
                    ] {
                        let _ = writeln!(out, "{base}{} {v}", series(&format!("quantile=\"{q}\"")));
                    }
                }
            }
        }
        out
    }
}

/// Any wire message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Session open.
    Hello(Hello),
    /// Sweep data (f64 wire).
    SweepBatch(SweepBatch),
    /// Session close.
    Teardown(Teardown),
    /// Server → client frame reports.
    UpdateBatch(UpdateBatch),
    /// Server → client refusal.
    Reject(Reject),
    /// Sweep data (quantized i16 wire, v2).
    SweepBatchQ(SweepBatchQ),
    /// Room subscription (v2).
    Subscribe(Subscribe),
    /// Server → client fused world frame (v2). The frame's `events` list
    /// is **not** carried — events travel as separate [`EventMsg`]
    /// frames — so it decodes empty.
    WorldUpdate(WorldUpdateMsg),
    /// Server → client fleet event (v2).
    Event(EventMsg),
    /// Metrics-snapshot request (v2).
    StatsQuery(StatsQuery),
    /// Server → client metrics snapshot (v2).
    StatsReport(StatsReport),
    /// Programmable room subscription (v3).
    SubscribeV3(SubscribeV3),
    /// Server → client subscription accept (v3).
    SubscribeAck(SubscribeAck),
    /// Server → client per-subscription filter counters (v3).
    SubscriptionStats(SubscriptionStats),
    /// Release one subscription (v3).
    Unsubscribe(Unsubscribe),
}

impl Message {
    fn msg_type(&self) -> u8 {
        match self {
            Message::Hello(_) => 1,
            Message::SweepBatch(_) => 2,
            Message::Teardown(_) => 3,
            Message::UpdateBatch(_) => 4,
            Message::Reject(_) => 5,
            Message::SweepBatchQ(_) => 6,
            Message::Subscribe(_) => 7,
            Message::WorldUpdate(_) => 8,
            Message::Event(_) => 9,
            Message::StatsQuery(_) => 10,
            Message::StatsReport(_) => 11,
            Message::SubscribeV3(_) => 12,
            Message::SubscribeAck(_) => 13,
            Message::SubscriptionStats(_) => 14,
            Message::Unsubscribe(_) => 15,
        }
    }
}

/// Decode errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer holds only part of one frame; `needed` is the total
    /// frame length (header + payload). Read more and retry.
    Incomplete {
        /// Total bytes the complete frame occupies.
        needed: usize,
    },
    /// The first four bytes are not the protocol magic.
    BadMagic(u32),
    /// The version byte is not one this decoder speaks.
    UnsupportedVersion(u8),
    /// The message-type byte is unknown.
    UnknownType(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    PayloadTooLarge(u32),
    /// The payload is self-inconsistent (inner counts disagree with the
    /// payload length, or an enum byte is out of range).
    BadPayload(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Incomplete { needed } => {
                write!(f, "incomplete frame: need {needed} bytes total")
            }
            WireError::BadMagic(m) => write!(f, "bad magic {m:#010x}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownType(t) => write!(f, "unknown message type {t}"),
            WireError::PayloadTooLarge(n) => write!(f, "payload of {n} bytes exceeds cap"),
            WireError::BadPayload(why) => write!(f, "bad payload: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Little-endian primitives.

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a frame header with a zeroed length field; returns the offset
/// to hand [`end_frame`].
fn begin_frame(out: &mut Vec<u8>, msg_type: u8) -> usize {
    let header_at = out.len();
    put_u32(out, MAGIC);
    out.push(VERSION);
    out.push(msg_type);
    put_u16(out, 0); // flags
    put_u32(out, 0); // payload length, patched by end_frame
    header_at
}

/// Patches the payload length of the frame started at `header_at`.
fn end_frame(out: &mut [u8], header_at: usize) {
    let payload_len = (out.len() - header_at - HEADER_LEN) as u32;
    out[header_at + 8..header_at + 12].copy_from_slice(&payload_len.to_le_bytes());
}

/// Cursor over a payload; every read checks bounds so truncated inner
/// structure surfaces as `BadPayload`, never a panic.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::BadPayload(
                "payload shorter than its contents claim",
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("sized")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("sized")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("sized")))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("sized")))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::BadPayload(
                "trailing bytes after payload contents",
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// Encode.

/// Encodes `msg` as one wire frame appended to `out`.
pub fn encode_into(msg: &Message, out: &mut Vec<u8>) {
    match msg {
        Message::UpdateBatch(u) => {
            return encode_update_batch_into(u.sensor_id, u.seq, &u.updates, out)
        }
        Message::Reject(r) => return encode_reject_into(r.sensor_id, r.code, out),
        Message::WorldUpdate(w) => {
            return encode_world_update_into(w.room_id, w.seq, &w.frame, out)
        }
        Message::Event(e) => return encode_event_into(e.room_id, &e.event, out),
        _ => {}
    }
    let header_at = begin_frame(out, msg.msg_type());
    match msg {
        Message::Hello(h) => {
            put_u32(out, h.sensor_id);
            out.push(h.kind.to_u8());
            out.push(h.n_rx);
            put_u16(out, h.quantized as u16); // flags, bit 0
            put_u32(out, h.samples_per_sweep);
            put_u32(out, h.sweeps_per_frame);
        }
        Message::SweepBatch(b) => {
            put_u32(out, b.sensor_id);
            put_u64(out, b.seq);
            put_u16(out, b.n_sweeps);
            put_u16(out, b.n_rx);
            put_u32(out, b.samples_per_sweep);
            out.reserve(b.data.len() * 8);
            for &v in &b.data {
                put_f64(out, v);
            }
        }
        Message::SweepBatchQ(b) => {
            put_u32(out, b.sensor_id);
            put_u64(out, b.seq);
            put_u16(out, b.n_sweeps);
            put_u16(out, b.n_rx);
            put_u32(out, b.samples_per_sweep);
            put_f64(out, b.scale);
            out.reserve(b.data.len() * 2);
            for &q in &b.data {
                out.extend_from_slice(&q.to_le_bytes());
            }
        }
        Message::Teardown(t) => put_u32(out, t.sensor_id),
        Message::Subscribe(s) => {
            put_u32(out, s.room_id);
            put_u16(out, (s.world_updates as u16) | ((s.events as u16) << 1));
            put_u16(out, 0);
        }
        Message::StatsQuery(q) => put_u32(out, q.flags),
        Message::SubscribeV3(s) => {
            put_u32(out, s.room_id);
            put_u64(out, s.sub_id);
            put_u16(out, (s.world_updates as u16) | ((s.events as u16) << 1));
            put_u16(out, 0);
            put_f64(out, s.max_update_hz);
            put_u16(out, s.program.ops.len() as u16);
            for op in &s.program.ops {
                let (code, a, b, f) = op.to_wire();
                out.push(code);
                put_u32(out, a);
                put_u32(out, b);
                put_f64(out, f);
            }
        }
        Message::SubscribeAck(a) => {
            put_u32(out, a.room_id);
            put_u16(out, a.status);
            put_u16(out, 0);
            put_u64(out, a.sub_id);
        }
        Message::SubscriptionStats(s) => {
            put_u32(out, s.room_id);
            put_u32(out, 0);
            put_u64(out, s.sub_id);
            put_u64(out, s.evaluated);
            put_u64(out, s.matched);
            put_u64(out, s.shed);
            put_u64(out, s.rate_limited);
        }
        Message::Unsubscribe(u) => {
            put_u32(out, u.room_id);
            put_u64(out, u.sub_id);
        }
        Message::StatsReport(r) => {
            put_u32(out, r.samples.len() as u32);
            for s in &r.samples {
                put_stats_sample(out, &s.subsystem, &s.name, s.label, &s.value);
            }
        }
        Message::UpdateBatch(_)
        | Message::Reject(_)
        | Message::WorldUpdate(_)
        | Message::Event(_) => unreachable!("handled above"),
    }
    end_frame(out, header_at);
}

/// `Label` → `(kind byte, id)` for the wire.
fn label_to_wire(label: witrack_obs::Label) -> (u8, u32) {
    match label {
        witrack_obs::Label::Global => (0, 0),
        witrack_obs::Label::Sensor(id) => (1, id),
        witrack_obs::Label::Room(id) => (2, id),
        witrack_obs::Label::Shard(id) => (3, id),
    }
}

/// Writes one length-prefixed metric name part (≤ 255 bytes — registry
/// names are short static identifiers).
fn put_stats_str(out: &mut Vec<u8>, s: &str) {
    let len = u8::try_from(s.len()).expect("metric name part exceeds 255 bytes");
    out.push(len);
    out.extend_from_slice(s.as_bytes());
}

/// Writes one [`StatsSample`]-shaped record.
fn put_stats_sample(
    out: &mut Vec<u8>,
    subsystem: &str,
    name: &str,
    label: witrack_obs::Label,
    value: &StatsValue,
) {
    put_stats_str(out, subsystem);
    put_stats_str(out, name);
    let (kind, id) = label_to_wire(label);
    out.push(kind);
    put_u32(out, id);
    match value {
        StatsValue::Counter(v) => {
            out.push(1);
            put_u64(out, *v);
        }
        StatsValue::Gauge(v) => {
            out.push(2);
            put_u64(out, *v as u64);
        }
        StatsValue::Histo(h) => {
            out.push(3);
            for v in [h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99] {
                put_u64(out, v);
            }
        }
    }
}

/// Encodes a `StatsReport` frame straight from registry snapshot
/// samples, appended to `out` — the server path, which summarizes
/// histograms on the fly instead of building an owned [`StatsReport`].
pub fn encode_stats_report_into(samples: &[witrack_obs::MetricSample], out: &mut Vec<u8>) {
    let header_at = begin_frame(out, 11);
    put_u32(out, samples.len() as u32);
    for s in samples {
        let value = match &s.value {
            witrack_obs::MetricValue::Counter(v) => StatsValue::Counter(*v),
            witrack_obs::MetricValue::Gauge(v) => StatsValue::Gauge(*v),
            witrack_obs::MetricValue::Histo(h) => StatsValue::Histo(HistoWire::from_snapshot(h)),
        };
        put_stats_sample(out, s.key.subsystem, s.key.name, s.key.label, &value);
    }
    end_frame(out, header_at);
}

/// Encodes a `WorldUpdate` frame straight from a fused [`WorldFrame`],
/// appended to `out` — the world hub's hot path (the frame's `events`
/// travel separately; see [`encode_event_into`]).
pub fn encode_world_update_into(room_id: u32, seq: u64, frame: &WorldFrame, out: &mut Vec<u8>) {
    let header_at = begin_frame(out, 8);
    put_u32(out, room_id);
    put_u64(out, seq);
    put_u64(out, frame.epoch);
    put_f64(out, frame.time_s);
    put_u16(out, frame.tracks.len() as u16);
    put_u16(out, 0);
    for t in &frame.tracks {
        put_u64(out, t.id.0);
        for v in [t.position, t.velocity, t.pos_var] {
            put_f64(out, v.x);
            put_f64(out, v.y);
            put_f64(out, v.z);
        }
        out.push(t.coasting as u8);
        out.push(t.contributors);
        put_u16(out, 0);
        put_u32(out, t.primary_sensor.unwrap_or(u32::MAX));
    }
    end_frame(out, header_at);
}

/// Encodes an `Event` frame appended to `out`. Every variant maps onto
/// one fixed generic record (unused fields zeroed), so new event kinds
/// never change the frame shape.
pub fn encode_event_into(room_id: u32, event: &WorldEvent, out: &mut Vec<u8>) {
    let header_at = begin_frame(out, 9);
    let (kind, track, zone, sensor_a, sensor_b, time_s, vec, aux, aux2) = match *event {
        WorldEvent::TrackBorn {
            track,
            time_s,
            position,
        } => (1u16, Some(track), 0, 0, 0, time_s, position, 0.0, 0.0),
        WorldEvent::TrackLost {
            track,
            time_s,
            position,
        } => (2, Some(track), 0, 0, 0, time_s, position, 0.0, 0.0),
        WorldEvent::Fall {
            track,
            time_s,
            from_z,
            to_z,
        } => (3, Some(track), 0, 0, 0, time_s, Vec3::ZERO, from_z, to_z),
        WorldEvent::ZoneEntered {
            track,
            zone,
            time_s,
        } => (4, Some(track), zone, 0, 0, time_s, Vec3::ZERO, 0.0, 0.0),
        WorldEvent::ZoneExited {
            track,
            zone,
            time_s,
        } => (5, Some(track), zone, 0, 0, time_s, Vec3::ZERO, 0.0, 0.0),
        WorldEvent::OccupancyChanged {
            zone,
            count,
            time_s,
        } => (6, None, zone, 0, 0, time_s, Vec3::ZERO, count as f64, 0.0),
        WorldEvent::Handoff {
            track,
            from_sensor,
            to_sensor,
            time_s,
        } => (
            7,
            Some(track),
            0,
            from_sensor,
            to_sensor,
            time_s,
            Vec3::ZERO,
            0.0,
            0.0,
        ),
        WorldEvent::Pointing {
            track,
            sensor,
            time_s,
            direction,
        } => (8, track, 0, sensor, 0, time_s, direction, 0.0, 0.0),
    };
    put_u32(out, room_id);
    put_u16(out, kind);
    put_u16(out, 0);
    put_u64(out, track.map(|t| t.0).unwrap_or(u64::MAX));
    put_u32(out, zone);
    put_u32(out, sensor_a);
    put_u32(out, sensor_b);
    put_u32(out, 0);
    put_f64(out, time_s);
    put_f64(out, vec.x);
    put_f64(out, vec.y);
    put_f64(out, vec.z);
    put_f64(out, aux);
    put_f64(out, aux2);
    end_frame(out, header_at);
}

/// Encodes an `UpdateBatch` frame straight from a report slice, appended
/// to `out` — the outbox hot path, which reuses both the shard's report
/// scratch and a pooled byte buffer instead of building an owned
/// [`UpdateBatch`] per event.
pub fn encode_update_batch_into(
    sensor_id: u32,
    seq: u64,
    updates: &[FrameReport],
    out: &mut Vec<u8>,
) {
    let header_at = begin_frame(out, 4);
    put_u32(out, sensor_id);
    put_u64(out, seq);
    put_u16(out, updates.len() as u16);
    put_u16(out, 0);
    for r in updates {
        put_u64(out, r.frame_index);
        put_f64(out, r.time_s);
        put_u16(out, r.targets.len() as u16);
        put_u16(out, 0);
        for t in &r.targets {
            put_u64(out, t.id.unwrap_or(u64::MAX));
            put_f64(out, t.position.x);
            put_f64(out, t.position.y);
            put_f64(out, t.position.z);
            let v = t.velocity.unwrap_or(Vec3::ZERO);
            put_f64(out, v.x);
            put_f64(out, v.y);
            put_f64(out, v.z);
            let flags = (t.held as u8) | ((t.velocity.is_some() as u8) << 1);
            out.push(flags);
            out.extend_from_slice(&[0u8; 7]);
        }
    }
    end_frame(out, header_at);
}

/// Encodes a `Reject` frame appended to `out`.
pub fn encode_reject_into(sensor_id: u32, code: RejectCode, out: &mut Vec<u8>) {
    let header_at = begin_frame(out, 5);
    put_u32(out, sensor_id);
    put_u16(out, code.to_u16());
    put_u16(out, 0);
    end_frame(out, header_at);
}

/// Encodes `msg` as one freshly-allocated wire frame.
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(msg, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Decode.

/// Parses the header at the start of `buf`, returning `(msg_type, total
/// frame length)`.
pub fn decode_header(buf: &[u8]) -> Result<(u8, usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Incomplete { needed: HEADER_LEN });
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().expect("sized"));
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = buf[4];
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(WireError::UnsupportedVersion(version));
    }
    let msg_type = buf[5];
    let max_type = if version >= 3 {
        15
    } else if version == 2 {
        11
    } else {
        5
    };
    if !(1..=max_type).contains(&msg_type) {
        return Err(WireError::UnknownType(msg_type));
    }
    let payload_len = u32::from_le_bytes(buf[8..12].try_into().expect("sized"));
    if payload_len as usize > MAX_PAYLOAD {
        return Err(WireError::PayloadTooLarge(payload_len));
    }
    Ok((msg_type, HEADER_LEN + payload_len as usize))
}

/// Reads one length-prefixed metric name part.
fn read_stats_str(r: &mut Reader<'_>) -> Result<String, WireError> {
    let len = r.u8()? as usize;
    let bytes = r.take(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadPayload("metric name not UTF-8"))
}

/// Reads the shape/identity header both sweep-batch forms share.
fn read_shape(r: &mut Reader<'_>) -> Result<SweepShape, WireError> {
    Ok(SweepShape {
        sensor_id: r.u32()?,
        seq: r.u64()?,
        n_sweeps: r.u16()?,
        n_rx: r.u16()?,
        samples_per_sweep: r.u32()?,
    })
}

/// Appends a `SweepBatch`'s f64 samples to `out` without intermediate
/// allocation (beyond `out`'s own growth, a no-op for pooled buffers at
/// steady state).
fn read_f64_samples(
    r: &mut Reader<'_>,
    shape: &SweepShape,
    out: &mut Vec<f64>,
) -> Result<(), WireError> {
    let bytes = r.take(
        shape
            .sample_count()
            .checked_mul(8)
            .ok_or(WireError::BadPayload("overflow"))?,
    )?;
    out.reserve(shape.sample_count());
    let start = out.len();
    out.extend(
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("sized"))),
    );
    // A NaN/Inf sample would poison every filter downstream; a frame
    // carrying one is corrupt no matter how well it framed.
    if !out[start..].iter().all(|v| v.is_finite()) {
        out.truncate(start);
        return Err(WireError::BadPayload("non-finite sample"));
    }
    Ok(())
}

/// Appends a `SweepBatchQ`'s samples to `out`, dequantized to f64.
fn read_i16_samples(
    r: &mut Reader<'_>,
    shape: &SweepShape,
    scale: f64,
    out: &mut Vec<f64>,
) -> Result<(), WireError> {
    // i16 steps are always finite, so only the scale can smuggle in a
    // NaN/Inf (and with it, poison the whole frame).
    if !scale.is_finite() {
        return Err(WireError::BadPayload("non-finite sample"));
    }
    let bytes = r.take(
        shape
            .sample_count()
            .checked_mul(2)
            .ok_or(WireError::BadPayload("overflow"))?,
    )?;
    out.reserve(shape.sample_count());
    out.extend(
        bytes
            .chunks_exact(2)
            .map(|c| i16::from_le_bytes(c.try_into().expect("sized")) as f64 * scale),
    );
    Ok(())
}

/// Appends a `SweepBatchQ`'s samples to `out` **still quantized** — the
/// i16 pass-through ingest path (the scale is returned to the caller via
/// [`DecodedMsgQ::SweepsQ`]).
fn read_i16_samples_raw(
    r: &mut Reader<'_>,
    shape: &SweepShape,
    out: &mut Vec<i16>,
) -> Result<(), WireError> {
    let bytes = r.take(
        shape
            .sample_count()
            .checked_mul(2)
            .ok_or(WireError::BadPayload("overflow"))?,
    )?;
    out.reserve(shape.sample_count());
    out.extend(
        bytes
            .chunks_exact(2)
            .map(|c| i16::from_le_bytes(c.try_into().expect("sized"))),
    );
    Ok(())
}

/// What [`decode_into`] yielded.
#[derive(Debug, PartialEq)]
pub enum DecodedMsg {
    /// The frame was a sweep batch (either form); its samples — already
    /// dequantized to f64 — were appended to the caller's buffer.
    Sweeps(SweepShape),
    /// Any other message, decoded owned.
    Other(Message),
}

/// What [`decode_into_q`] yielded.
#[derive(Debug, PartialEq)]
pub enum DecodedMsgQ {
    /// An f64 sweep batch; samples appended to the caller's f64 buffer.
    Sweeps(SweepShape),
    /// A quantized sweep batch kept **in i16** (samples appended to the
    /// caller's i16 buffer) with its dequantization scale.
    SweepsQ(SweepShape, f64),
    /// Any other message, decoded owned.
    Other(Message),
}

/// [`decode_into`], except quantized batches stay in i16: their samples
/// are appended to `samples_q` verbatim and the scale rides along in
/// [`DecodedMsgQ::SweepsQ`]. This is the ingest hot path for i16 wire
/// sensors — the samples cross the shard queue at a quarter of the f64
/// memory traffic and feed the pipeline's fixed-point front half without
/// ever being dequantized in bulk. Both buffers are cleared first; only
/// the one matching the frame's representation is filled.
pub fn decode_into_q(
    buf: &[u8],
    samples: &mut Vec<f64>,
    samples_q: &mut Vec<i16>,
) -> Result<(DecodedMsgQ, usize), WireError> {
    samples.clear();
    samples_q.clear();
    let (msg_type, frame_len) = decode_header(buf)?;
    if buf.len() < frame_len {
        return Err(WireError::Incomplete { needed: frame_len });
    }
    match msg_type {
        2 => {
            let mut r = Reader::new(&buf[HEADER_LEN..frame_len]);
            let shape = read_shape(&mut r)?;
            read_f64_samples(&mut r, &shape, samples)?;
            r.done()?;
            Ok((DecodedMsgQ::Sweeps(shape), frame_len))
        }
        6 => {
            let mut r = Reader::new(&buf[HEADER_LEN..frame_len]);
            let shape = read_shape(&mut r)?;
            let scale = r.f64()?;
            // Same rejection as the dequantizing path: a non-finite scale
            // poisons every downstream sample.
            if !scale.is_finite() {
                return Err(WireError::BadPayload("non-finite sample"));
            }
            read_i16_samples_raw(&mut r, &shape, samples_q)?;
            r.done()?;
            Ok((DecodedMsgQ::SweepsQ(shape, scale), frame_len))
        }
        _ => decode(buf).map(|(msg, used)| (DecodedMsgQ::Other(msg), used)),
    }
}

/// [`decode`], except sweep-batch samples are written into `samples`
/// (cleared first, capacity reused) instead of a fresh allocation —
/// quantized batches dequantize on the way in. This is the ingest hot
/// path: with a recycled `samples` buffer, decoding a sweep frame touches
/// the heap zero times at steady state. Non-sweep messages decode owned,
/// exactly as [`decode`] would, leaving `samples` empty.
pub fn decode_into(buf: &[u8], samples: &mut Vec<f64>) -> Result<(DecodedMsg, usize), WireError> {
    samples.clear();
    let (msg_type, frame_len) = decode_header(buf)?;
    if buf.len() < frame_len {
        return Err(WireError::Incomplete { needed: frame_len });
    }
    match msg_type {
        2 => {
            let mut r = Reader::new(&buf[HEADER_LEN..frame_len]);
            let shape = read_shape(&mut r)?;
            read_f64_samples(&mut r, &shape, samples)?;
            r.done()?;
            Ok((DecodedMsg::Sweeps(shape), frame_len))
        }
        6 => {
            let mut r = Reader::new(&buf[HEADER_LEN..frame_len]);
            let shape = read_shape(&mut r)?;
            let scale = r.f64()?;
            read_i16_samples(&mut r, &shape, scale, samples)?;
            r.done()?;
            Ok((DecodedMsg::Sweeps(shape), frame_len))
        }
        _ => decode(buf).map(|(msg, used)| (DecodedMsg::Other(msg), used)),
    }
}

/// Decodes one message from the start of `buf`, returning it and the number
/// of bytes consumed. [`WireError::Incomplete`] means read more bytes.
pub fn decode(buf: &[u8]) -> Result<(Message, usize), WireError> {
    let (msg_type, frame_len) = decode_header(buf)?;
    if buf.len() < frame_len {
        return Err(WireError::Incomplete { needed: frame_len });
    }
    let mut r = Reader::new(&buf[HEADER_LEN..frame_len]);
    let msg = match msg_type {
        1 => {
            let sensor_id = r.u32()?;
            let kind = PipelineKind::from_u8(r.u8()?)?;
            let n_rx = r.u8()?;
            let flags = r.u16()?;
            let samples_per_sweep = r.u32()?;
            let sweeps_per_frame = r.u32()?;
            Message::Hello(Hello {
                sensor_id,
                kind,
                n_rx,
                samples_per_sweep,
                sweeps_per_frame,
                quantized: flags & 0b1 != 0,
            })
        }
        2 => {
            let (shape, mut data) = (read_shape(&mut r)?, Vec::new());
            read_f64_samples(&mut r, &shape, &mut data)?;
            Message::SweepBatch(SweepBatch {
                sensor_id: shape.sensor_id,
                seq: shape.seq,
                n_sweeps: shape.n_sweeps,
                n_rx: shape.n_rx,
                samples_per_sweep: shape.samples_per_sweep,
                data,
            })
        }
        6 => {
            let shape = read_shape(&mut r)?;
            let scale = r.f64()?;
            // Decoded batches stay quantized, but a non-finite scale
            // poisons every sample at dequantization — same rejection
            // as the eager path in `read_i16_samples`.
            if !scale.is_finite() {
                return Err(WireError::BadPayload("non-finite sample"));
            }
            let count = shape.sample_count();
            let bytes = r.take(
                count
                    .checked_mul(2)
                    .ok_or(WireError::BadPayload("overflow"))?,
            )?;
            let data = bytes
                .chunks_exact(2)
                .map(|c| i16::from_le_bytes(c.try_into().expect("sized")))
                .collect();
            Message::SweepBatchQ(SweepBatchQ {
                sensor_id: shape.sensor_id,
                seq: shape.seq,
                n_sweeps: shape.n_sweeps,
                n_rx: shape.n_rx,
                samples_per_sweep: shape.samples_per_sweep,
                scale,
                data,
            })
        }
        3 => Message::Teardown(Teardown {
            sensor_id: r.u32()?,
        }),
        4 => {
            let sensor_id = r.u32()?;
            let seq = r.u64()?;
            let n_updates = r.u16()?;
            let _reserved = r.u16()?;
            let mut updates = Vec::with_capacity(n_updates as usize);
            for _ in 0..n_updates {
                let frame_index = r.u64()?;
                let time_s = r.f64()?;
                let n_targets = r.u16()?;
                let _reserved = r.u16()?;
                let mut targets = Vec::with_capacity(n_targets as usize);
                for _ in 0..n_targets {
                    let id = r.u64()?;
                    let position = Vec3::new(r.f64()?, r.f64()?, r.f64()?);
                    let velocity = Vec3::new(r.f64()?, r.f64()?, r.f64()?);
                    let flags = r.u8()?;
                    r.take(7)?; // pad
                    targets.push(TargetReport {
                        id: (id != u64::MAX).then_some(id),
                        position,
                        velocity: (flags & 0b10 != 0).then_some(velocity),
                        held: flags & 0b1 != 0,
                        // The v1 per-sensor update record does not carry
                        // uncertainty; world-level tracks do (WorldUpdate).
                        pos_var: None,
                        innovation: None,
                    });
                }
                updates.push(FrameReport {
                    frame_index,
                    time_s,
                    targets,
                });
            }
            Message::UpdateBatch(UpdateBatch {
                sensor_id,
                seq,
                updates,
            })
        }
        5 => {
            let sensor_id = r.u32()?;
            let code = RejectCode::from_u16(r.u16()?)?;
            let _reserved = r.u16()?;
            Message::Reject(Reject { sensor_id, code })
        }
        7 => {
            let room_id = r.u32()?;
            let flags = r.u16()?;
            let _reserved = r.u16()?;
            Message::Subscribe(Subscribe {
                room_id,
                world_updates: flags & 0b1 != 0,
                events: flags & 0b10 != 0,
            })
        }
        8 => {
            let room_id = r.u32()?;
            let seq = r.u64()?;
            let epoch = r.u64()?;
            let time_s = r.f64()?;
            let n_tracks = r.u16()?;
            let _reserved = r.u16()?;
            let mut tracks = Vec::with_capacity(n_tracks as usize);
            for _ in 0..n_tracks {
                let id = WorldTrackId(r.u64()?);
                let mut vecs = [Vec3::ZERO; 3];
                for v in &mut vecs {
                    *v = Vec3::new(r.f64()?, r.f64()?, r.f64()?);
                }
                let coasting = r.u8()? & 0b1 != 0;
                let contributors = r.u8()?;
                let _pad = r.u16()?;
                let primary = r.u32()?;
                tracks.push(WorldTrackSnapshot {
                    id,
                    position: vecs[0],
                    velocity: vecs[1],
                    pos_var: vecs[2],
                    coasting,
                    contributors,
                    primary_sensor: (primary != u32::MAX).then_some(primary),
                });
            }
            Message::WorldUpdate(WorldUpdateMsg {
                room_id,
                seq,
                frame: WorldFrame {
                    epoch,
                    time_s,
                    tracks,
                    events: Vec::new(),
                },
            })
        }
        9 => {
            let room_id = r.u32()?;
            let kind = r.u16()?;
            let _reserved = r.u16()?;
            let track_raw = r.u64()?;
            let track = (track_raw != u64::MAX).then_some(WorldTrackId(track_raw));
            let zone = r.u32()?;
            let sensor_a = r.u32()?;
            let sensor_b = r.u32()?;
            let _reserved2 = r.u32()?;
            let time_s = r.f64()?;
            let vec = Vec3::new(r.f64()?, r.f64()?, r.f64()?);
            let aux = r.f64()?;
            let aux2 = r.f64()?;
            let need_track = || track.ok_or(WireError::BadPayload("event requires a track id"));
            let event = match kind {
                1 => WorldEvent::TrackBorn {
                    track: need_track()?,
                    time_s,
                    position: vec,
                },
                2 => WorldEvent::TrackLost {
                    track: need_track()?,
                    time_s,
                    position: vec,
                },
                3 => WorldEvent::Fall {
                    track: need_track()?,
                    time_s,
                    from_z: aux,
                    to_z: aux2,
                },
                4 => WorldEvent::ZoneEntered {
                    track: need_track()?,
                    zone,
                    time_s,
                },
                5 => WorldEvent::ZoneExited {
                    track: need_track()?,
                    zone,
                    time_s,
                },
                6 => WorldEvent::OccupancyChanged {
                    zone,
                    count: aux as u32,
                    time_s,
                },
                7 => WorldEvent::Handoff {
                    track: need_track()?,
                    from_sensor: sensor_a,
                    to_sensor: sensor_b,
                    time_s,
                },
                8 => WorldEvent::Pointing {
                    track,
                    sensor: sensor_a,
                    time_s,
                    direction: vec,
                },
                _ => return Err(WireError::BadPayload("unknown event kind")),
            };
            Message::Event(EventMsg { room_id, event })
        }
        10 => Message::StatsQuery(StatsQuery { flags: r.u32()? }),
        11 => {
            let n_samples = r.u32()?;
            let mut samples = Vec::with_capacity((n_samples as usize).min(1024));
            for _ in 0..n_samples {
                let subsystem = read_stats_str(&mut r)?;
                let name = read_stats_str(&mut r)?;
                let label_kind = r.u8()?;
                let label_id = r.u32()?;
                let label = match label_kind {
                    0 => witrack_obs::Label::Global,
                    1 => witrack_obs::Label::Sensor(label_id),
                    2 => witrack_obs::Label::Room(label_id),
                    3 => witrack_obs::Label::Shard(label_id),
                    _ => return Err(WireError::BadPayload("unknown label kind")),
                };
                let value = match r.u8()? {
                    1 => StatsValue::Counter(r.u64()?),
                    2 => StatsValue::Gauge(r.u64()? as i64),
                    3 => StatsValue::Histo(HistoWire {
                        count: r.u64()?,
                        sum: r.u64()?,
                        min: r.u64()?,
                        max: r.u64()?,
                        p50: r.u64()?,
                        p90: r.u64()?,
                        p99: r.u64()?,
                    }),
                    _ => return Err(WireError::BadPayload("unknown stats value kind")),
                };
                samples.push(StatsSample {
                    subsystem,
                    name,
                    label,
                    value,
                });
            }
            Message::StatsReport(StatsReport { samples })
        }
        12 => {
            let room_id = r.u32()?;
            let sub_id = r.u64()?;
            let flags = r.u16()?;
            let _reserved = r.u16()?;
            let max_update_hz = r.f64()?;
            if !(max_update_hz.is_finite() && max_update_hz >= 0.0) {
                return Err(WireError::BadPayload("non-finite update rate cap"));
            }
            let n_ops = r.u16()? as usize;
            // The compile-time budget also bounds decode-time allocation:
            // a frame claiming more ops could never validate anyway.
            if n_ops > crate::program::MAX_PROGRAM_OPS {
                return Err(WireError::BadPayload("filter program exceeds op budget"));
            }
            let mut ops = Vec::with_capacity(n_ops);
            for _ in 0..n_ops {
                let code = r.u8()?;
                let a = r.u32()?;
                let b = r.u32()?;
                let f = r.f64()?;
                ops.push(
                    crate::program::Op::from_wire(code, a, b, f).map_err(WireError::BadPayload)?,
                );
            }
            Message::SubscribeV3(SubscribeV3 {
                room_id,
                sub_id,
                world_updates: flags & 0b1 != 0,
                events: flags & 0b10 != 0,
                max_update_hz,
                program: crate::program::FilterProgram { ops },
            })
        }
        13 => {
            let room_id = r.u32()?;
            let status = r.u16()?;
            let _reserved = r.u16()?;
            let sub_id = r.u64()?;
            Message::SubscribeAck(SubscribeAck {
                room_id,
                sub_id,
                status,
            })
        }
        14 => {
            let room_id = r.u32()?;
            let _reserved = r.u32()?;
            Message::SubscriptionStats(SubscriptionStats {
                room_id,
                sub_id: r.u64()?,
                evaluated: r.u64()?,
                matched: r.u64()?,
                shed: r.u64()?,
                rate_limited: r.u64()?,
            })
        }
        15 => Message::Unsubscribe(Unsubscribe {
            room_id: r.u32()?,
            sub_id: r.u64()?,
        }),
        t => return Err(WireError::UnknownType(t)),
    };
    r.done()?;
    Ok((msg, frame_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let frame = encode(&Message::Teardown(Teardown { sensor_id: 9 }));
        let (msg_type, len) = decode_header(&frame).unwrap();
        assert_eq!(msg_type, 3);
        assert_eq!(len, frame.len());
    }

    #[test]
    fn sweep_batch_layout_is_sweep_major() {
        let sweeps = vec![
            vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            vec![vec![5.0, 6.0], vec![7.0, 8.0]],
        ];
        let b = SweepBatch::from_sweeps(1, 0, &sweeps);
        assert_eq!(b.sweep_rx(0, 1), &[3.0, 4.0]);
        assert_eq!(b.sweep_rx(1, 0), &[5.0, 6.0]);
    }

    #[test]
    fn quantized_batch_round_trips_within_one_step() {
        let sweeps = vec![vec![vec![0.5, -1.25, 0.0], vec![3.0, -4.0, 2.25]]];
        let b = SweepBatch::from_sweeps(1, 9, &sweeps);
        let q = SweepBatchQ::quantize(&b);
        assert_eq!(q.shape(), b.shape());
        let back = q.dequantize();
        let half_step = q.scale * 0.5 + 1e-12;
        for (x, y) in b.data.iter().zip(&back.data) {
            assert!((x - y).abs() <= half_step, "{x} vs {y}");
        }
        // Peak maps to full scale, so the wire uses the whole i16 range.
        assert_eq!(q.data.iter().map(|q| q.abs()).max(), Some(i16::MAX));
    }

    #[test]
    fn all_zero_batch_quantizes_safely() {
        let b = SweepBatch::from_sweeps(1, 0, &[vec![vec![0.0; 4]; 2]]);
        let q = SweepBatchQ::quantize(&b);
        assert!(q.data.iter().all(|&v| v == 0));
        assert_eq!(q.dequantize().data, b.data);
    }

    #[test]
    fn decode_into_reuses_the_sample_buffer() {
        let b = SweepBatch::from_sweeps(3, 1, &[vec![vec![1.0, -2.0], vec![0.5, 4.0]]]);
        let frame_f = encode(&Message::SweepBatch(b.clone()));
        let frame_q = encode(&Message::SweepBatchQ(SweepBatchQ::quantize(&b)));
        let mut samples = Vec::with_capacity(64);
        let ptr = samples.as_ptr();
        let (d, used) = decode_into(&frame_f, &mut samples).unwrap();
        assert_eq!(used, frame_f.len());
        assert_eq!(d, DecodedMsg::Sweeps(b.shape()));
        assert_eq!(samples, b.data);
        assert_eq!(samples.as_ptr(), ptr, "no reallocation");
        let (d, _) = decode_into(&frame_q, &mut samples).unwrap();
        assert_eq!(d, DecodedMsg::Sweeps(b.shape()));
        assert_eq!(samples.as_ptr(), ptr, "no reallocation on the i16 path");
        let half_step = SweepBatchQ::quantize(&b).scale * 0.5 + 1e-12;
        for (x, y) in b.data.iter().zip(&samples) {
            assert!((x - y).abs() <= half_step);
        }
        // Non-sweep frames pass through owned and leave the buffer empty.
        let (d, _) = decode_into(
            &encode(&Message::Teardown(Teardown { sensor_id: 5 })),
            &mut samples,
        )
        .unwrap();
        assert_eq!(
            d,
            DecodedMsg::Other(Message::Teardown(Teardown { sensor_id: 5 }))
        );
        assert!(samples.is_empty());
    }

    #[test]
    fn non_finite_samples_are_rejected_at_decode() {
        // A NaN that framed perfectly is still a corrupt frame: it must
        // come back BadPayload, not ride into the DSP.
        let b = SweepBatch::from_sweeps(1, 0, &[vec![vec![1.0, f64::NAN], vec![0.5, 4.0]]]);
        let frame = encode(&Message::SweepBatch(b));
        assert!(matches!(
            decode(&frame),
            Err(WireError::BadPayload("non-finite sample"))
        ));
        let mut samples = vec![7.0];
        assert!(decode_into(&frame, &mut samples).is_err());
        assert!(samples.is_empty(), "partial decode must not leak samples");

        // Same for an i16 batch whose scale smuggles in the non-finite.
        let finite = SweepBatch::from_sweeps(1, 0, &[vec![vec![1.0, -2.0], vec![0.5, 4.0]]]);
        let mut q = SweepBatchQ::quantize(&finite);
        q.scale = f64::INFINITY;
        let frame_q = encode(&Message::SweepBatchQ(q));
        assert!(matches!(
            decode(&frame_q),
            Err(WireError::BadPayload("non-finite sample"))
        ));
    }

    #[test]
    fn subscribe_v3_round_trips_with_its_program() {
        use crate::program::{EventKind, SubscriptionBuilder};
        let sub = SubscriptionBuilder::room(9)
            .id(41)
            .events(EventKind::Fall | EventKind::Handoff)
            .zone(3)
            .debounce(0.5)
            .rate_limit(2.0, 4)
            .max_update_hz(15.0)
            .build();
        let frame = encode(&Message::SubscribeV3(sub.clone()));
        let (back, used) = decode(&frame).unwrap();
        assert_eq!(used, frame.len());
        assert_eq!(back, Message::SubscribeV3(sub));
        // Match-all (empty program) survives too.
        let empty = SubscribeV3::from_v2(Subscribe::all(2));
        let frame = encode(&Message::SubscribeV3(empty.clone()));
        assert_eq!(decode(&frame).unwrap().0, Message::SubscribeV3(empty));
        // A frame claiming more ops than the budget is refused outright.
        let mut hostile = encode(&Message::SubscribeV3(SubscribeV3::from_v2(Subscribe::all(
            2,
        ))));
        let n_ops_at = HEADER_LEN + 4 + 8 + 2 + 2 + 8;
        hostile[n_ops_at..n_ops_at + 2].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(decode(&hostile), Err(WireError::BadPayload(_))));
    }

    #[test]
    fn subscription_replies_round_trip() {
        let ack = Message::SubscribeAck(SubscribeAck {
            room_id: 1,
            sub_id: 77,
            status: 0,
        });
        assert_eq!(decode(&encode(&ack)).unwrap().0, ack);
        let stats = Message::SubscriptionStats(SubscriptionStats {
            room_id: 1,
            sub_id: 77,
            evaluated: 1000,
            matched: 12,
            shed: 3,
            rate_limited: 40,
        });
        assert_eq!(decode(&encode(&stats)).unwrap().0, stats);
        let unsub = Message::Unsubscribe(Unsubscribe {
            room_id: 1,
            sub_id: 77,
        });
        assert_eq!(decode(&encode(&unsub)).unwrap().0, unsub);
    }

    #[test]
    fn v2_frames_still_decode_but_cannot_carry_type_12() {
        let mut frame = encode(&Message::Subscribe(Subscribe::all(4)));
        frame[4] = 2; // rewrite as a v2 frame
        assert!(decode(&frame).is_ok());
        let mut v3 = encode(&Message::Unsubscribe(Unsubscribe {
            room_id: 4,
            sub_id: 1,
        }));
        v3[4] = 2;
        assert_eq!(decode(&v3), Err(WireError::UnknownType(15)));
    }

    #[test]
    fn v1_frames_still_decode_but_cannot_carry_type_6() {
        let mut frame = encode(&Message::Teardown(Teardown { sensor_id: 2 }));
        frame[4] = 1; // rewrite as a v1 frame
        assert!(decode(&frame).is_ok());
        let mut q = encode(&Message::SweepBatchQ(SweepBatchQ::from_sweeps(
            1,
            0,
            &[vec![vec![1.0, 2.0]]],
        )));
        q[4] = 1;
        assert_eq!(decode(&q), Err(WireError::UnknownType(6)));
    }
}
