//! Transport-facing server: connections in, per-session updates back out.
//!
//! A [`Server`] owns one [`ShardedEngine`]. Any [`Transport`] attaches —
//! in-process pairs for tests and benches, TCP streams via [`TcpServer`]
//! for the loopback deployment — and one connection may multiplex any
//! number of sensors.
//!
//! Per connection: a reader thread decodes client messages and submits
//! them to the engine (inheriting the engine's backpressure), and a
//! writer thread drains the connection's bounded outbox. Routing is tied
//! to sessions at `Hello` time: the reader hands the engine the outbox as
//! the session's [`ConnSink`], and the owning shard sends that session's
//! updates and rejects straight into it — there is no global registry to
//! race against. A slow client whose outbox fills has messages shed (and
//! counted in [`MetricsSnapshot::updates_dropped`]) rather than stalling
//! a shard; a refused `Hello` gets its reject and leaves no state behind.

use crate::engine::{ConnSink, EngineConfig, EngineHandle, PipelineFactory, ShardedEngine};
use crate::hub::WorldConfig;
use crate::metrics::MetricsSnapshot;
use crate::pool::PooledBuf;
use crate::transport::{recv_error_is_frame_scoped, RxMsg, Transport, TransportRx, TransportTx};
use crate::wire::{Message, RejectCode};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;
use witrack_obs::AnomalyKind;

/// How many server→client messages one connection may have pending before
/// its shard starts shedding them.
const OUTBOX_CAPACITY: usize = 64;

/// Source of unique connection ids (scopes cleanup teardowns).
static NEXT_CONN_ID: AtomicU64 = AtomicU64::new(1);

/// A running multi-sensor server.
pub struct Server {
    handle: EngineHandle,
    engine: ShardedEngine,
    drainer: JoinHandle<()>,
}

impl Server {
    /// Starts the engine. Sessions opened through [`Server::attach`]ed
    /// connections route their traffic straight to their connection, so
    /// the engine-wide event stream only carries bookkeeping — a small
    /// drainer thread keeps it from accumulating.
    pub fn start(cfg: EngineConfig, factory: Arc<PipelineFactory>) -> Server {
        Self::start_inner(cfg, factory, None)
    }

    /// A fluent constructor: `Server::builder(factory).config(cfg)
    /// .world(world_cfg).start()` — or `.bind(addr)` for the TCP front
    /// door. One shape that grows options without new entry points.
    pub fn builder(factory: Arc<PipelineFactory>) -> ServerBuilder {
        ServerBuilder {
            cfg: EngineConfig::default(),
            factory,
            world: None,
        }
    }

    /// Shared startup behind every public constructor: a world hub (when
    /// configured) lets attached connections `Subscribe` to fused
    /// `WorldUpdate`/`Event` streams.
    fn start_inner(
        cfg: EngineConfig,
        factory: Arc<PipelineFactory>,
        world: Option<WorldConfig>,
    ) -> Server {
        let mut builder = ShardedEngine::builder(factory).config(cfg);
        if let Some(world) = world {
            builder = builder.world(world);
        }
        let (engine, events) = builder.start();
        let drainer = std::thread::spawn(move || for _ in events {});
        Server {
            handle: engine.handle(),
            engine,
            drainer,
        }
    }

    /// Attaches one client connection; its reader/writer threads live
    /// until the client closes its sending side. Returns the reader's
    /// join handle.
    pub fn attach<T: Transport + 'static>(&self, transport: T) -> io::Result<JoinHandle<()>> {
        let (tx, rx) = transport.split()?;
        let handle = self.handle.clone();
        Ok(std::thread::spawn(move || connection_main(tx, rx, handle)))
    }

    /// A cloneable ingress handle to the engine (bypasses transports; used
    /// by in-process callers that don't need the wire).
    pub fn engine_handle(&self) -> EngineHandle {
        self.engine.handle()
    }

    /// Engine counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.engine.metrics()
    }

    /// The engine's metric registry.
    pub fn registry(&self) -> &Arc<witrack_obs::Registry> {
        self.engine.registry()
    }

    /// The engine's anomaly flight recorder.
    pub fn recorder(&self) -> &Arc<witrack_obs::FlightRecorder> {
        self.engine.recorder()
    }

    /// Shuts the engine down (draining shard queues). Attached
    /// connections must already be closed.
    pub fn shutdown(self) -> MetricsSnapshot {
        let m = self.engine.shutdown();
        // The shards are gone, so the event stream has closed and the
        // drainer exits on its own.
        self.drainer.join().expect("event drainer panicked");
        m
    }
}

/// Fluent construction for [`Server`] (and its TCP front door) — see
/// [`Server::builder`].
pub struct ServerBuilder {
    cfg: EngineConfig,
    factory: Arc<PipelineFactory>,
    world: Option<WorldConfig>,
}

impl ServerBuilder {
    /// Engine shape: shard count, queue depth, overload policy.
    pub fn config(mut self, cfg: EngineConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Attach a world hub fusing the configured rooms, enabling room
    /// subscriptions on attached connections.
    pub fn world(mut self, world: WorldConfig) -> Self {
        self.world = Some(world);
        self
    }

    /// Starts the engine, serving connections via [`Server::attach`].
    pub fn start(self) -> Server {
        Server::start_inner(self.cfg, self.factory, self.world)
    }

    /// Starts the engine behind a loopback TCP listener on `addr`
    /// (e.g. `"127.0.0.1:0"`).
    pub fn bind(self, addr: &str) -> io::Result<TcpServer> {
        TcpServer::bind_inner(addr, self.cfg, self.factory, self.world)
    }
}

fn connection_main<Tx, Rx>(tx: Tx, mut rx: Rx, handle: EngineHandle)
where
    Tx: TransportTx + 'static,
    Rx: TransportRx + 'static,
{
    let conn_id = NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed);
    let (outbox_tx, outbox_rx) = sync_channel::<PooledBuf<u8>>(OUTBOX_CAPACITY);
    let writer = std::thread::spawn(move || writer_main(tx, outbox_rx));
    // Sweep samples decode straight into the engine's recycled buffers
    // (f64 or i16, per wire form): at steady state the reader allocates
    // nothing per message.
    let ingest_pools = handle.ingest_pools().clone();
    // Sensors this connection said Hello for. The engine itself decides
    // ownership (a duplicate Hello is refused and its sink dropped), so
    // the EOF cleanup below is scoped to `conn_id` — it can never tear
    // down a session some other connection owns.
    let mut greeted: Vec<u32> = Vec::new();
    loop {
        match rx.recv_msg_pooled(&ingest_pools) {
            Ok(Some(msg)) => {
                if let RxMsg::Control(Message::Hello(h)) = &msg {
                    if !greeted.contains(&h.sensor_id) {
                        greeted.push(h.sensor_id);
                    }
                }
                // Every message carries this connection's sink, so even
                // refusals with no session behind them (unknown sensor,
                // refused hello) come back over the wire.
                let sink = ConnSink {
                    conn_id,
                    tx: outbox_tx.clone(),
                };
                let submitted = match msg {
                    RxMsg::Batch(b) => handle.submit_batch_pooled(b, Some(sink)),
                    RxMsg::Control(m) => handle.submit_with_sink(m, Some(sink)),
                };
                match submitted {
                    Ok(_) => {}
                    Err(_) => break, // engine down or protocol abuse: hang up
                }
            }
            Ok(None) => break, // clean close
            Err(e) if recv_error_is_frame_scoped(&e) => {
                // A frame arrived intact length-wise but its payload
                // failed to decode: the byte stream is still positioned
                // at the next frame boundary, so record it, tell the
                // client, and keep reading — a burst of corruption must
                // not amputate an otherwise healthy sensor.
                handle
                    .recorder()
                    .record(AnomalyKind::Corrupt, conn_id, 0, 0);
                let mut buf = handle.frame_pool().get(32);
                crate::wire::encode_reject_into(0, RejectCode::CorruptFrame, &mut buf);
                let _ = outbox_tx.try_send(buf);
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                // The peer vanished mid-frame — a crash or cut cable,
                // not a clean shutdown. Distinct from `Ok(None)` so the
                // flight recorder can tell the two apart.
                handle
                    .recorder()
                    .record(AnomalyKind::TruncatedStream, conn_id, 0, 0);
                break;
            }
            Err(_) => break, // desynced stream or dead socket
        }
    }
    // The connection is gone: close the sessions it owns so their
    // pipelines (and their clones of our outbox) free up. The shard
    // processes this after everything already queued, emits the final
    // updates, and drops the session sink — which is what lets the writer
    // below drain out and exit.
    for sensor_id in greeted {
        let _ = handle.submit_teardown_scoped(sensor_id, conn_id);
    }
    // Release this connection's room subscriptions: the hub holds outbox
    // sender clones for them, and the writer below only drains out once
    // every sender is gone.
    handle.notify_conn_closed(conn_id);
    drop(outbox_tx);
    writer.join().expect("connection writer panicked");
}

fn writer_main<Tx: TransportTx>(mut tx: Tx, outbox: Receiver<PooledBuf<u8>>) {
    for frame in outbox {
        // Frames arrive pre-encoded from the shard; the transport
        // recycles the buffer once the bytes are on their way.
        if tx.send_pooled(frame).is_err() {
            // Peer gone; drain silently so shard try_sends keep failing
            // fast instead of filling a dead queue.
            break;
        }
    }
}

/// A loopback TCP front door for a [`Server`].
pub struct TcpServer {
    server: Arc<Server>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting
    /// connections, each served by [`Server::attach`].
    pub fn bind(
        addr: &str,
        cfg: EngineConfig,
        factory: Arc<PipelineFactory>,
    ) -> io::Result<TcpServer> {
        Self::bind_inner(addr, cfg, factory, None)
    }

    fn bind_inner(
        addr: &str,
        cfg: EngineConfig,
        factory: Arc<PipelineFactory>,
        world: Option<WorldConfig>,
    ) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let server = Arc::new(Server::start_inner(cfg, factory, world));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(s) => {
                            let _ = server.attach(crate::transport::TcpTransport::new(s));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(TcpServer {
            server,
            addr: local,
            accept_thread: Some(accept_thread),
            stop,
        })
    }

    /// The bound address (with the OS-assigned port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Engine counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.server.metrics()
    }

    /// The engine's metric registry.
    pub fn registry(&self) -> &Arc<witrack_obs::Registry> {
        self.server.registry()
    }

    /// The engine's anomaly flight recorder.
    pub fn recorder(&self) -> &Arc<witrack_obs::FlightRecorder> {
        self.server.recorder()
    }

    /// Stops accepting, then shuts the engine down. Clients must have
    /// disconnected already (their connection threads hold engine handles).
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            t.join().expect("accept thread panicked");
        }
        let server = Arc::try_unwrap(self.server)
            .unwrap_or_else(|_| panic!("connections still hold the server"));
        server.shutdown()
    }
}
