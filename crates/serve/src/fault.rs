//! Transport fault injection: a seeded chaos layer over any transport.
//!
//! [`FaultyTransport`] wraps a [`Transport`] and perturbs its *send*
//! half according to a [`FaultPlan`]: frames may be dropped, duplicated,
//! reordered within a bounded window, corrupted (payload bytes flipped),
//! stalled for a configured pause, or withheld and released in a burst.
//! Every decision comes from one seeded RNG, so a chaos run is exactly
//! reproducible from its plan — the property the `t_chaos` acceptance
//! matrix and any bisecting postmortem depend on.
//!
//! Faults are injected on the sending side because that is where the
//! network lives: the receive half is the unit under test (hardened
//! decode, liveness, reconnect) and passes through untouched. Wrap the
//! client side of a connection to torture a server, or the server-facing
//! endpoint of an in-process pair to torture a client.
//!
//! Corruption flips bytes strictly *after* the frame header, so a byte
//! stream (TCP) stays framed and exercises the frame-scoped reject path
//! rather than instantly desyncing; header corruption — the unrecoverable
//! case — is a deliberate separate switch ([`FaultPlan::corrupt_header`]).

use crate::pool::PooledBuf;
use crate::transport::{Transport, TransportTx};
use crate::wire::HEADER_LEN;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A seeded schedule of transport faults. Probabilities are per frame in
/// `0.0..=1.0`; a default plan injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// RNG seed: the whole fault sequence is a pure function of this.
    pub seed: u64,
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability a frame is sent twice back to back.
    pub duplicate: f64,
    /// Probability a frame is held back and overtaken by later frames.
    pub reorder: f64,
    /// How many subsequent frames may overtake a held frame before it is
    /// flushed (bounds reordering, like a real queue does).
    pub reorder_window: usize,
    /// Probability a frame has payload bytes flipped before sending.
    pub corrupt: f64,
    /// Corrupt the frame *header* too (magic/length bytes): desyncs a
    /// byte stream irrecoverably. Off by default so corruption exercises
    /// the frame-scoped recovery path.
    pub corrupt_header: bool,
    /// Probability the sender stalls for [`FaultPlan::stall_ms`] before
    /// a frame.
    pub stall: f64,
    /// Stall duration (ms).
    pub stall_ms: u64,
    /// Probability a burst cycle begins: this and the following frames
    /// are withheld until [`FaultPlan::burst_len`] have accumulated, then
    /// released back to back (a pause-then-burst, like a retransmit
    /// queue opening).
    pub burst: f64,
    /// Frames per burst cycle.
    pub burst_len: usize,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 1,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_window: 3,
            corrupt: 0.0,
            corrupt_header: false,
            stall: 0.0,
            stall_ms: 20,
            burst: 0.0,
            burst_len: 8,
        }
    }
}

impl FaultPlan {
    /// A plan injecting nothing (still seeded, for uniform plumbing).
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Fluent construction: `FaultPlan::builder(seed).drop(0.1).build()`.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            plan: FaultPlan::none(seed),
        }
    }

    /// Returns the plan with the drop probability set.
    #[deprecated(since = "0.9.0", note = "use `FaultPlan::builder(seed).drop(p)`")]
    pub fn with_drop(mut self, p: f64) -> FaultPlan {
        self.drop = p;
        self
    }

    /// Returns the plan with the duplicate probability set.
    #[deprecated(since = "0.9.0", note = "use `FaultPlan::builder(seed).duplicate(p)`")]
    pub fn with_duplicate(mut self, p: f64) -> FaultPlan {
        self.duplicate = p;
        self
    }

    /// Returns the plan with the reorder probability and window set.
    #[deprecated(
        since = "0.9.0",
        note = "use `FaultPlan::builder(seed).reorder(p, window)`"
    )]
    pub fn with_reorder(mut self, p: f64, window: usize) -> FaultPlan {
        self.reorder = p;
        self.reorder_window = window.max(1);
        self
    }

    /// Returns the plan with the corrupt probability set.
    #[deprecated(since = "0.9.0", note = "use `FaultPlan::builder(seed).corrupt(p)`")]
    pub fn with_corrupt(mut self, p: f64) -> FaultPlan {
        self.corrupt = p;
        self
    }

    /// Returns the plan with the stall probability and duration set.
    #[deprecated(
        since = "0.9.0",
        note = "use `FaultPlan::builder(seed).stall(p, stall_ms)`"
    )]
    pub fn with_stall(mut self, p: f64, stall_ms: u64) -> FaultPlan {
        self.stall = p;
        self.stall_ms = stall_ms;
        self
    }

    /// Returns the plan with the burst probability and length set.
    #[deprecated(
        since = "0.9.0",
        note = "use `FaultPlan::builder(seed).burst(p, burst_len)`"
    )]
    pub fn with_burst(mut self, p: f64, burst_len: usize) -> FaultPlan {
        self.burst = p;
        self.burst_len = burst_len.max(2);
        self
    }
}

/// Fluent construction for [`FaultPlan`] — see [`FaultPlan::builder`].
///
/// Starts from [`FaultPlan::none`] (everything off) and layers faults on;
/// [`Self::build`] yields the finished plan.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlanBuilder {
    plan: FaultPlan,
}

impl FaultPlanBuilder {
    /// Probability a frame is silently dropped.
    pub fn drop(mut self, p: f64) -> Self {
        self.plan.drop = p;
        self
    }

    /// Probability a frame is sent twice back to back.
    pub fn duplicate(mut self, p: f64) -> Self {
        self.plan.duplicate = p;
        self
    }

    /// Probability a frame is held back, with the overtake window (≥ 1)
    /// bounding how far it can slip.
    pub fn reorder(mut self, p: f64, window: usize) -> Self {
        self.plan.reorder = p;
        self.plan.reorder_window = window.max(1);
        self
    }

    /// Probability a frame has payload bytes flipped before sending.
    pub fn corrupt(mut self, p: f64) -> Self {
        self.plan.corrupt = p;
        self
    }

    /// Whether corruption may hit the frame *header* too (desyncing a
    /// byte stream irrecoverably).
    pub fn corrupt_header(mut self, yes: bool) -> Self {
        self.plan.corrupt_header = yes;
        self
    }

    /// Probability the sender stalls, and for how long (ms).
    pub fn stall(mut self, p: f64, stall_ms: u64) -> Self {
        self.plan.stall = p;
        self.plan.stall_ms = stall_ms;
        self
    }

    /// Probability a pause-then-burst cycle begins, and its length (≥ 2).
    pub fn burst(mut self, p: f64, burst_len: usize) -> Self {
        self.plan.burst = p;
        self.plan.burst_len = burst_len.max(2);
        self
    }

    /// The finished plan.
    pub fn build(self) -> FaultPlan {
        self.plan
    }
}

/// A live, swappable handle on a fault layer's plan.
///
/// Cloneable; [`FaultPlanHandle::set`] takes effect on the very next
/// frame, so a harness can phase a run — clean warmup, fault window,
/// clean recovery — over one connection. Swapping the plan does *not*
/// reseed the fault RNG: the whole run stays a pure function of the
/// construction-time seed plus the (deterministic) switch points.
#[derive(Clone)]
pub struct FaultPlanHandle(Arc<Mutex<FaultPlan>>);

impl FaultPlanHandle {
    fn new(plan: FaultPlan) -> FaultPlanHandle {
        FaultPlanHandle(Arc::new(Mutex::new(plan)))
    }

    /// Replaces the active plan, starting with the next frame sent.
    pub fn set(&self, plan: FaultPlan) {
        *self.0.lock().expect("fault plan poisoned") = plan;
    }

    /// The currently active plan.
    pub fn get(&self) -> FaultPlan {
        *self.0.lock().expect("fault plan poisoned")
    }
}

/// Counters of every fault actually injected (shared across the split).
#[derive(Debug, Default)]
pub struct FaultCounters {
    dropped: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
    corrupted: AtomicU64,
    stalls: AtomicU64,
    bursts: AtomicU64,
}

/// A point-in-time copy of a fault layer's injection counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames silently dropped.
    pub dropped: u64,
    /// Frames sent twice.
    pub duplicated: u64,
    /// Frames held back and overtaken.
    pub reordered: u64,
    /// Frames with flipped payload bytes.
    pub corrupted: u64,
    /// Stalls injected.
    pub stalls: u64,
    /// Burst cycles begun.
    pub bursts: u64,
}

impl FaultCounters {
    /// A point-in-time copy of the injection counters.
    pub fn snapshot(&self) -> FaultStats {
        FaultStats {
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            corrupted: self.corrupted.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            bursts: self.bursts.load(Ordering::Relaxed),
        }
    }
}

/// A transport whose send half injects the faults of a [`FaultPlan`].
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: FaultPlanHandle,
    counters: Arc<FaultCounters>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner`; frames sent through the split-off tx half suffer
    /// the plan's faults.
    pub fn new(inner: T, plan: FaultPlan) -> FaultyTransport<T> {
        FaultyTransport {
            inner,
            plan: FaultPlanHandle::new(plan),
            counters: Arc::new(FaultCounters::default()),
        }
    }

    /// A live handle onto the injection counters (survives the split).
    pub fn counters(&self) -> Arc<FaultCounters> {
        Arc::clone(&self.counters)
    }

    /// A live handle onto the plan (survives the split): swap it to
    /// phase faults on and off mid-run.
    pub fn plan_handle(&self) -> FaultPlanHandle {
        self.plan.clone()
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    type Tx = FaultyTx<T::Tx>;
    type Rx = T::Rx;

    fn split(self) -> io::Result<(FaultyTx<T::Tx>, T::Rx)> {
        let (tx, rx) = self.inner.split()?;
        Ok((FaultyTx::with_shared(tx, self.plan, self.counters), rx))
    }
}

/// The fault-injecting send half (wrap any [`TransportTx`] directly via
/// [`FaultyTx::new`]).
pub struct FaultyTx<Tx: TransportTx> {
    inner: Tx,
    plan: FaultPlanHandle,
    rng: StdRng,
    /// Frames held back by reorder/burst, with the number of later sends
    /// each has already been overtaken by.
    held: VecDeque<(Vec<u8>, usize)>,
    /// Frames still owed to the current burst cycle (0 = no burst open).
    burst_remaining: usize,
    counters: Arc<FaultCounters>,
}

impl<Tx: TransportTx> FaultyTx<Tx> {
    /// Wraps a bare send half with its own counter set.
    pub fn new(inner: Tx, plan: FaultPlan) -> FaultyTx<Tx> {
        Self::with_shared(
            inner,
            FaultPlanHandle::new(plan),
            Arc::new(FaultCounters::default()),
        )
    }

    fn with_shared(inner: Tx, plan: FaultPlanHandle, counters: Arc<FaultCounters>) -> FaultyTx<Tx> {
        FaultyTx {
            inner,
            rng: StdRng::seed_from_u64(plan.get().seed),
            plan,
            held: VecDeque::new(),
            burst_remaining: 0,
            counters,
        }
    }

    /// Injection counters so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.counters.snapshot()
    }

    /// A live handle onto the plan: swap it mid-run.
    pub fn plan_handle(&self) -> FaultPlanHandle {
        self.plan.clone()
    }

    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.random::<f64>() < p
    }

    /// Flips 1–4 payload bytes (or any bytes under `corrupt_header`).
    fn corrupt(&mut self, plan: &FaultPlan, frame: &mut [u8]) {
        let lo = if plan.corrupt_header || frame.len() <= HEADER_LEN {
            0
        } else {
            HEADER_LEN
        };
        if frame.len() <= lo {
            return;
        }
        let span = (frame.len() - lo) as u64;
        let flips = 1 + (self.rng.next_u64() % 4) as usize;
        for _ in 0..flips {
            let at = lo + (self.rng.next_u64() % span) as usize;
            let bit = 1u8 << (self.rng.next_u64() % 8);
            frame[at] ^= bit;
        }
    }

    /// Releases every held frame overtaken `window`+ times (or all).
    fn flush_held(&mut self, all: bool, window: usize) -> io::Result<()> {
        while let Some((_, overtaken)) = self.held.front() {
            if !all && *overtaken < window {
                break;
            }
            let (frame, _) = self.held.pop_front().expect("front checked");
            self.inner.send_frame(frame)?;
        }
        Ok(())
    }
}

impl<Tx: TransportTx> TransportTx for FaultyTx<Tx> {
    fn send_frame(&mut self, mut frame: Vec<u8>) -> io::Result<()> {
        let plan = self.plan.get();
        if self.chance(plan.stall) {
            self.counters.stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(plan.stall_ms));
        }
        if self.chance(plan.drop) {
            self.counters.dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        if self.chance(plan.corrupt) {
            self.counters.corrupted.fetch_add(1, Ordering::Relaxed);
            self.corrupt(&plan, &mut frame);
        }
        let duplicate = self.chance(plan.duplicate);
        if duplicate {
            self.counters.duplicated.fetch_add(1, Ordering::Relaxed);
        }
        // Burst: open a cycle, withhold until it fills, release together.
        if self.burst_remaining == 0 && self.chance(plan.burst) {
            self.counters.bursts.fetch_add(1, Ordering::Relaxed);
            self.burst_remaining = plan.burst_len;
        }
        if self.burst_remaining > 0 {
            self.burst_remaining -= 1;
            self.held.push_back((frame, plan.reorder_window));
            if duplicate {
                if let Some((f, w)) = self.held.back().map(|(f, w)| (f.clone(), *w)) {
                    self.held.push_back((f, w));
                }
            }
            if self.burst_remaining == 0 {
                self.flush_held(true, plan.reorder_window)?;
            }
            return Ok(());
        }
        // Reorder: hold this frame (both copies, if duplicated); later
        // sends overtake it until its window expires.
        if self.chance(plan.reorder) {
            self.counters.reordered.fetch_add(1, Ordering::Relaxed);
            if duplicate {
                self.held.push_back((frame.clone(), 0));
            }
            self.held.push_back((frame, 0));
            return Ok(());
        }
        for (_, overtaken) in self.held.iter_mut() {
            *overtaken += 1;
        }
        self.inner.send_frame(frame.clone())?;
        if duplicate {
            self.inner.send_frame(frame)?;
        }
        self.flush_held(false, plan.reorder_window)
    }

    fn send_pooled(&mut self, frame: PooledBuf<u8>) -> io::Result<()> {
        // Fault decisions need an owned mutable frame; detach.
        self.send_frame(frame.into_vec())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.flush_held(true, 0)?;
        self.inner.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{in_proc_pair, recv_error_is_frame_scoped, TransportRx};
    use crate::wire::{Message, Teardown};

    fn teardown(id: u32) -> Message {
        Message::Teardown(Teardown { sensor_id: id })
    }

    fn recv_ids<Rx: TransportRx>(rx: &mut Rx) -> Vec<u32> {
        let mut out = Vec::new();
        loop {
            match rx.recv_msg() {
                Ok(Some(Message::Teardown(t))) => out.push(t.sensor_id),
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    assert!(
                        recv_error_is_frame_scoped(&e),
                        "chaos must never desync an in-proc stream: {e}"
                    );
                }
            }
        }
        out
    }

    #[test]
    fn a_none_plan_is_transparent() {
        let (a, b) = in_proc_pair(64);
        let faulty = FaultyTransport::new(a, FaultPlan::none(7));
        let counters = faulty.counters();
        let (mut tx, _arx) = faulty.split().unwrap();
        let (_btx, mut rx) = b.split().unwrap();
        for i in 0..20 {
            tx.send_msg(&teardown(i)).unwrap();
        }
        drop(tx);
        drop(_btx);
        assert_eq!(recv_ids(&mut rx), (0..20).collect::<Vec<_>>());
        assert_eq!(counters.snapshot(), FaultStats::default());
    }

    #[test]
    fn drops_are_seeded_and_reproducible() {
        let run = |seed: u64| -> (Vec<u32>, FaultStats) {
            let (a, b) = in_proc_pair(256);
            let faulty = FaultyTransport::new(a, FaultPlan::builder(seed).drop(0.3).build());
            let counters = faulty.counters();
            let (mut tx, _arx) = faulty.split().unwrap();
            let (_btx, mut rx) = b.split().unwrap();
            for i in 0..100 {
                tx.send_msg(&teardown(i)).unwrap();
            }
            drop(tx);
            drop(_btx);
            (recv_ids(&mut rx), counters.snapshot())
        };
        let (ids_a, stats_a) = run(42);
        let (ids_b, stats_b) = run(42);
        assert_eq!(ids_a, ids_b, "same seed, same fault sequence");
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.dropped > 10 && stats_a.dropped < 60, "{stats_a:?}");
        assert_eq!(ids_a.len() as u64 + stats_a.dropped, 100);
        let (ids_c, _) = run(43);
        assert_ne!(ids_a, ids_c, "different seed, different faults");
    }

    #[test]
    fn duplicates_and_reorders_stay_within_window() {
        let (a, b) = in_proc_pair(512);
        let plan = FaultPlan::builder(5).duplicate(0.2).reorder(0.3, 4).build();
        let faulty = FaultyTransport::new(a, plan);
        let counters = faulty.counters();
        let (mut tx, _arx) = faulty.split().unwrap();
        let (_btx, mut rx) = b.split().unwrap();
        let n = 200u32;
        for i in 0..n {
            tx.send_msg(&teardown(i)).unwrap();
        }
        tx.finish().unwrap();
        drop(tx);
        drop(_btx);
        let ids = recv_ids(&mut rx);
        let stats = counters.snapshot();
        assert!(stats.duplicated > 0 && stats.reordered > 0, "{stats:?}");
        // Nothing lost: every id arrives at least once.
        let mut seen = vec![0u32; n as usize];
        for &id in &ids {
            seen[id as usize] += 1;
        }
        assert!(seen.iter().all(|&c| c >= 1), "reorder/dup must not lose");
        assert_eq!(
            seen.iter().filter(|&&c| c > 1).count() as u64,
            stats.duplicated
        );
        // Bounded displacement: a frame may be overtaken by at most
        // window + in-flight duplicates.
        for (pos, &id) in ids.iter().enumerate() {
            assert!(
                (pos as i64 - id as i64).abs() <= 4 + stats.duplicated as i64,
                "id {id} displaced to {pos}"
            );
        }
    }

    #[test]
    fn corruption_is_frame_scoped_on_in_proc() {
        let (a, b) = in_proc_pair(256);
        // A Teardown payload is an arbitrary u32, so payload flips always
        // re-decode; flip header bytes too to actually break decodes.
        // In-proc frames are discrete, so even a mangled header is
        // frame-scoped there (TCP header corruption — a true desync — is
        // exercised in the integration tests).
        let plan = FaultPlan::builder(11)
            .corrupt(0.5)
            .corrupt_header(true)
            .build();
        let faulty = FaultyTransport::new(a, plan);
        let counters = faulty.counters();
        let (mut tx, _arx) = faulty.split().unwrap();
        let (_btx, mut rx) = b.split().unwrap();
        for i in 0..50 {
            tx.send_msg(&teardown(i)).unwrap();
        }
        drop(tx);
        drop(_btx);
        let mut ok = 0;
        let mut corrupt = 0;
        loop {
            match rx.recv_msg() {
                Ok(Some(_)) => ok += 1,
                Ok(None) => break,
                Err(e) => {
                    assert!(recv_error_is_frame_scoped(&e), "{e}");
                    corrupt += 1;
                }
            }
        }
        let stats = counters.snapshot();
        assert!(stats.corrupted > 5, "{stats:?}");
        // Some flips may land on don't-care bytes and still decode;
        // every *failed* decode must be frame-scoped (asserted above),
        // and nothing may vanish.
        assert_eq!(ok + corrupt, 50);
        assert!(corrupt > 0, "half the frames corrupted, none failed");
    }

    #[test]
    fn swapping_the_plan_phases_faults_on_and_off() {
        let (a, b) = in_proc_pair(256);
        let faulty = FaultyTransport::new(a, FaultPlan::none(9));
        let counters = faulty.counters();
        let plan = faulty.plan_handle();
        let (mut tx, _arx) = faulty.split().unwrap();
        let (_btx, mut rx) = b.split().unwrap();
        for i in 0..20 {
            tx.send_msg(&teardown(i)).unwrap();
        }
        plan.set(FaultPlan::builder(9).drop(1.0).build()); // fault window opens
        for i in 20..40 {
            tx.send_msg(&teardown(i)).unwrap();
        }
        plan.set(FaultPlan::none(9)); // recovery
        for i in 40..60 {
            tx.send_msg(&teardown(i)).unwrap();
        }
        drop(tx);
        drop(_btx);
        let ids = recv_ids(&mut rx);
        let expected: Vec<u32> = (0..20).chain(40..60).collect();
        assert_eq!(ids, expected, "only the fault window's frames vanish");
        assert_eq!(counters.snapshot().dropped, 20);
    }

    #[test]
    fn bursts_release_everything_they_held() {
        let (a, b) = in_proc_pair(512);
        let faulty = FaultyTransport::new(a, FaultPlan::builder(3).burst(0.1, 8).build());
        let counters = faulty.counters();
        let (mut tx, _arx) = faulty.split().unwrap();
        let (_btx, mut rx) = b.split().unwrap();
        for i in 0..100 {
            tx.send_msg(&teardown(i)).unwrap();
        }
        tx.finish().unwrap();
        drop(tx);
        drop(_btx);
        let ids = recv_ids(&mut rx);
        assert!(counters.snapshot().bursts > 0);
        assert_eq!(ids.len(), 100, "a burst delays, never loses");
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_with_helpers_match_the_builder() {
        let old = FaultPlan::none(17)
            .with_drop(0.1)
            .with_duplicate(0.2)
            .with_reorder(0.3, 5)
            .with_corrupt(0.4)
            .with_stall(0.5, 25)
            .with_burst(0.6, 9);
        let new = FaultPlan::builder(17)
            .drop(0.1)
            .duplicate(0.2)
            .reorder(0.3, 5)
            .corrupt(0.4)
            .stall(0.5, 25)
            .burst(0.6, 9)
            .build();
        assert_eq!(old, new);
    }
}
