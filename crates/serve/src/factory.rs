//! Standard pipeline factories.
//!
//! The engine builds a sensor's pipeline from its `Hello` through a
//! [`PipelineFactory`]; this module
//! provides the stock one: a factory closed over a base [`WiTrackConfig`]
//! that serves either backend, refusing sensors whose announced stream
//! shape disagrees with that configuration.

use crate::engine::PipelineFactory;
use crate::wire::{Hello, PipelineKind};
use std::sync::Arc;
use witrack_core::{FramePipeline, WiTrack, WiTrackConfig};
use witrack_mtt::{MttConfig, MultiWiTrack};

/// A factory serving both pipeline kinds from one base configuration.
///
/// The `Hello` must announce exactly the base config's sweep shape
/// (samples per sweep, sweeps per frame) and the T-array's three receive
/// antennas; anything else is a configuration mismatch and the session is
/// rejected.
pub fn witrack_factory(base: WiTrackConfig) -> Arc<PipelineFactory> {
    Arc::new(move |hello: &Hello| {
        if hello.samples_per_sweep as usize != base.sweep.samples_per_sweep() {
            return Err(format!(
                "samples per sweep {} != configured {}",
                hello.samples_per_sweep,
                base.sweep.samples_per_sweep()
            ));
        }
        if hello.sweeps_per_frame as usize != base.sweep.sweeps_per_frame {
            return Err(format!(
                "sweeps per frame {} != configured {}",
                hello.sweeps_per_frame, base.sweep.sweeps_per_frame
            ));
        }
        if hello.n_rx != 3 {
            return Err(format!(
                "T-array serves 3 receive antennas, hello says {}",
                hello.n_rx
            ));
        }
        match hello.kind {
            PipelineKind::SingleTarget => WiTrack::new(base)
                .map(|p| Box::new(p) as Box<dyn FramePipeline>)
                .map_err(|e| e.to_string()),
            PipelineKind::MultiTarget => MultiWiTrack::new(MttConfig::with_base(base))
                .map(|p| Box::new(p) as Box<dyn FramePipeline>)
                .map_err(|e| e.to_string()),
        }
    })
}

/// The [`Hello`] matching `witrack_factory(base)` for `sensor_id`.
pub fn hello_for(base: &WiTrackConfig, sensor_id: u32, kind: PipelineKind) -> Hello {
    Hello {
        sensor_id,
        kind,
        n_rx: 3,
        samples_per_sweep: base.sweep.samples_per_sweep() as u32,
        sweeps_per_frame: base.sweep.sweeps_per_frame as u32,
        quantized: false,
    }
}

/// [`hello_for`], announcing the quantized (wire v2, i16) sweep wire.
pub fn hello_quantized_for(base: &WiTrackConfig, sensor_id: u32, kind: PipelineKind) -> Hello {
    Hello {
        quantized: true,
        ..hello_for(base, sensor_id, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_both_kinds_and_rejects_mismatch() {
        let base = WiTrackConfig::witrack_default();
        let f = witrack_factory(base);
        for kind in [PipelineKind::SingleTarget, PipelineKind::MultiTarget] {
            let p = f(&hello_for(&base, 1, kind)).expect("matching hello builds");
            assert_eq!(p.num_rx(), 3);
        }
        let mut bad = hello_for(&base, 1, PipelineKind::SingleTarget);
        bad.samples_per_sweep += 1;
        assert!(f(&bad).is_err());
        let mut bad = hello_for(&base, 1, PipelineKind::SingleTarget);
        bad.n_rx = 4;
        assert!(f(&bad).is_err());
    }
}
