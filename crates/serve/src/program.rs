//! Programmable subscription filters: a compiled predicate DSL the world
//! hub evaluates *before* encode/fan-out.
//!
//! A [`FilterProgram`] is a flat, postfix op array — event-kind, zone,
//! track matchers plus `and`/`or`/`not` combinators and three stateful
//! post-filters (debounce, token-bucket rate limit, sustained-occupancy
//! threshold). Programs travel inside wire-v3 `Subscribe` frames, are
//! validated once at subscription time ([`FilterProgram::compile`]), and
//! thereafter cost a handful of stack-machine ops per offered event.
//! Matching subscribers share one pooled encode; non-matchers never see
//! the encoder at all.
//!
//! Every stateful op keys its timing off the **event clock**
//! ([`EventCtx::time_s`], the fused epoch time), not the wall clock —
//! filters are deterministic functions of the event stream, replayable
//! in tests with a fake clock.
//!
//! Compilation also derives a conservative event-kind bitmask
//! ([`CompiledProgram::kind_mask`]) by abstract interpretation over the
//! op array: the hub ORs these into a per-room coarse index and skips
//! whole events (and, per subscription, whole program runs) whose kind
//! no subscriber could possibly match — the Bloom-filter-style pre-screen
//! that keeps the common case at O(candidate subscriptions), not
//! O(all subscriptions).

use std::ops::BitOr;
use std::sync::atomic::{AtomicU64, Ordering};
use witrack_fuse::WorldEvent;

/// Hard cap on ops per program: anything larger is hostile or broken,
/// not a real filter.
pub const MAX_PROGRAM_OPS: usize = 64;

/// Bitmask covering every wire event kind (1..=8).
pub const ALL_KINDS_MASK: u16 = 0xFF;

/// Kinds that carry a zone id (`ZoneEq` can only be true for these).
const ZONE_KINDS_MASK: u16 = EventKind::ZoneEntered.mask()
    | EventKind::ZoneExited.mask()
    | EventKind::OccupancyChanged.mask();

/// Kinds that can carry a track id (`TrackEq` can only be true for these).
const TRACK_KINDS_MASK: u16 = ALL_KINDS_MASK & !EventKind::OccupancyChanged.mask();

/// One fleet-event kind, mirroring the wire `Event` kind codes (1..=8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A world track reached confirmed status.
    TrackBorn,
    /// A confirmed world track was dropped.
    TrackLost,
    /// A fused track satisfied the fall rule.
    Fall,
    /// A track entered a configured zone.
    ZoneEntered,
    /// A track left a configured zone.
    ZoneExited,
    /// A zone's occupant count changed.
    OccupancyChanged,
    /// A track's anchoring sensor changed.
    Handoff,
    /// A pointing gesture.
    Pointing,
}

impl EventKind {
    /// The wire kind code (1..=8), as carried in `Event` frames.
    pub const fn wire_kind(self) -> u16 {
        match self {
            EventKind::TrackBorn => 1,
            EventKind::TrackLost => 2,
            EventKind::Fall => 3,
            EventKind::ZoneEntered => 4,
            EventKind::ZoneExited => 5,
            EventKind::OccupancyChanged => 6,
            EventKind::Handoff => 7,
            EventKind::Pointing => 8,
        }
    }

    /// This kind's bit in an [`EventKinds`] mask.
    pub const fn mask(self) -> u16 {
        1 << (self.wire_kind() - 1)
    }
}

/// A set of [`EventKind`]s as a bitmask — build one with `|`:
/// `EventKind::Fall | EventKind::Handoff`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventKinds(pub u16);

impl EventKinds {
    /// Every kind.
    pub const fn all() -> EventKinds {
        EventKinds(ALL_KINDS_MASK)
    }

    /// Whether `kind` is in the set.
    pub fn contains(self, kind: EventKind) -> bool {
        self.0 & kind.mask() != 0
    }
}

impl From<EventKind> for EventKinds {
    fn from(k: EventKind) -> EventKinds {
        EventKinds(k.mask())
    }
}

impl BitOr for EventKind {
    type Output = EventKinds;
    fn bitor(self, rhs: EventKind) -> EventKinds {
        EventKinds(self.mask() | rhs.mask())
    }
}

impl BitOr<EventKind> for EventKinds {
    type Output = EventKinds;
    fn bitor(self, rhs: EventKind) -> EventKinds {
        EventKinds(self.0 | rhs.mask())
    }
}

impl BitOr for EventKinds {
    type Output = EventKinds;
    fn bitor(self, rhs: EventKinds) -> EventKinds {
        EventKinds(self.0 | rhs.0)
    }
}

/// One filter-program op. Programs are **postfix**: matchers push a
/// boolean, combinators pop and push, and a valid program leaves exactly
/// one boolean on the stack (the match verdict). An empty program
/// matches everything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push `true` when the event's kind bit intersects the mask.
    KindMask(u16),
    /// Push `true` when the event names this zone.
    ZoneEq(u32),
    /// Push `true` when the event names this world track.
    TrackEq(u64),
    /// Pop two, push their conjunction.
    And,
    /// Pop two, push their disjunction.
    Or,
    /// Pop one, push its negation.
    Not,
    /// Pop one; a `true` within `min_interval_s` of the last `true` this
    /// op let through is suppressed (pushed back as `false`). Event-clock
    /// driven.
    Debounce {
        /// Minimum event-time spacing (s) between delivered `true`s.
        min_interval_s: f64,
    },
    /// Pop one; `true`s spend a token from a bucket refilled at `per_s`
    /// tokens per event-second up to `burst`. An empty bucket suppresses
    /// (pushes `false` and flags the evaluation rate-limited).
    RateLimit {
        /// Sustained deliveries per event-second.
        per_s: f64,
        /// Bucket capacity: deliveries allowed back to back.
        burst: u32,
    },
    /// Push `true` when the event is an `OccupancyChanged` whose zone has
    /// held a count strictly above `count` for at least `hold_s` of event
    /// time — "alert only if occupancy > N for T seconds". State is
    /// per zone; a count at or below `count` resets that zone's clock.
    OccupancyAbove {
        /// Occupancy threshold (strictly above).
        count: u32,
        /// Sustain window (s) before the first match.
        hold_s: f64,
    },
}

/// Wire op codes (`Op` ↔ the 17-byte wire record).
const OP_KIND_MASK: u8 = 1;
const OP_ZONE_EQ: u8 = 2;
const OP_TRACK_EQ: u8 = 3;
const OP_AND: u8 = 4;
const OP_OR: u8 = 5;
const OP_NOT: u8 = 6;
const OP_DEBOUNCE: u8 = 7;
const OP_RATE_LIMIT: u8 = 8;
const OP_OCCUPANCY_ABOVE: u8 = 9;

impl Op {
    /// This op as its wire record `(code, a, b, f)`.
    pub(crate) fn to_wire(self) -> (u8, u32, u32, f64) {
        match self {
            Op::KindMask(m) => (OP_KIND_MASK, m as u32, 0, 0.0),
            Op::ZoneEq(z) => (OP_ZONE_EQ, z, 0, 0.0),
            Op::TrackEq(t) => (OP_TRACK_EQ, t as u32, (t >> 32) as u32, 0.0),
            Op::And => (OP_AND, 0, 0, 0.0),
            Op::Or => (OP_OR, 0, 0, 0.0),
            Op::Not => (OP_NOT, 0, 0, 0.0),
            Op::Debounce { min_interval_s } => (OP_DEBOUNCE, 0, 0, min_interval_s),
            Op::RateLimit { per_s, burst } => (OP_RATE_LIMIT, burst, 0, per_s),
            Op::OccupancyAbove { count, hold_s } => (OP_OCCUPANCY_ABOVE, count, 0, hold_s),
        }
    }

    /// Decodes one wire record. Structural validation only (codes and
    /// finiteness); stack discipline is checked at
    /// [`FilterProgram::compile`].
    pub(crate) fn from_wire(code: u8, a: u32, b: u32, f: f64) -> Result<Op, &'static str> {
        let finite_nonneg = |v: f64| -> Result<f64, &'static str> {
            if v.is_finite() && v >= 0.0 {
                Ok(v)
            } else {
                Err("non-finite or negative filter parameter")
            }
        };
        Ok(match code {
            OP_KIND_MASK => {
                if a > ALL_KINDS_MASK as u32 {
                    return Err("kind mask names unknown event kinds");
                }
                Op::KindMask(a as u16)
            }
            OP_ZONE_EQ => Op::ZoneEq(a),
            OP_TRACK_EQ => Op::TrackEq((a as u64) | ((b as u64) << 32)),
            OP_AND => Op::And,
            OP_OR => Op::Or,
            OP_NOT => Op::Not,
            OP_DEBOUNCE => Op::Debounce {
                min_interval_s: finite_nonneg(f)?,
            },
            OP_RATE_LIMIT => Op::RateLimit {
                per_s: finite_nonneg(f)?,
                burst: a,
            },
            OP_OCCUPANCY_ABOVE => Op::OccupancyAbove {
                count: a,
                hold_s: finite_nonneg(f)?,
            },
            _ => return Err("unknown filter op"),
        })
    }
}

/// A filter program as it travels the wire: a flat postfix op array.
/// Decoded programs are *structurally* sound (known ops, finite
/// parameters) but not yet validated — the hub compiles them
/// ([`FilterProgram::compile`]) and rejects stack-invalid programs with
/// `RejectCode::BadProgram`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FilterProgram {
    /// Postfix ops, at most [`MAX_PROGRAM_OPS`]. Empty = match all.
    pub ops: Vec<Op>,
}

impl FilterProgram {
    /// The empty program: matches every event.
    pub fn match_all() -> FilterProgram {
        FilterProgram::default()
    }
}

/// Why a structurally-decodable program failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramError {
    /// More than [`MAX_PROGRAM_OPS`] ops.
    TooManyOps,
    /// A combinator popped from an empty stack.
    StackUnderflow,
    /// Evaluation would not leave exactly one value on the stack.
    UnbalancedStack,
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::TooManyOps => write!(f, "program exceeds {MAX_PROGRAM_OPS} ops"),
            ProgramError::StackUnderflow => write!(f, "combinator pops an empty stack"),
            ProgramError::UnbalancedStack => {
                write!(f, "program does not leave exactly one verdict")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl FilterProgram {
    /// Validates the program (op budget, stack discipline) and derives
    /// its conservative kind mask. The returned [`CompiledProgram`] is
    /// what the hub evaluates per event.
    pub fn compile(&self) -> Result<CompiledProgram, ProgramError> {
        if self.ops.len() > MAX_PROGRAM_OPS {
            return Err(ProgramError::TooManyOps);
        }
        if self.ops.is_empty() {
            return Ok(CompiledProgram {
                ops: Vec::new(),
                kind_mask: ALL_KINDS_MASK,
                max_stack: 0,
            });
        }
        // Abstract interpretation: run the stack machine over kind masks
        // instead of booleans. A matcher's mask is the set of kinds it
        // could possibly be true for; And intersects, Or unions, Not is
        // conservatively "any kind" (¬x is true wherever x is false,
        // which can be every kind). Stateful post-filters only ever turn
        // true into false, so they pass their input mask through.
        let mut stack: Vec<u16> = Vec::with_capacity(self.ops.len());
        let mut max_stack = 0usize;
        for op in &self.ops {
            match op {
                Op::KindMask(m) => stack.push(*m),
                Op::ZoneEq(_) => stack.push(ZONE_KINDS_MASK),
                Op::TrackEq(_) => stack.push(TRACK_KINDS_MASK),
                Op::OccupancyAbove { .. } => stack.push(EventKind::OccupancyChanged.mask()),
                Op::And => {
                    let b = stack.pop().ok_or(ProgramError::StackUnderflow)?;
                    let a = stack.pop().ok_or(ProgramError::StackUnderflow)?;
                    stack.push(a & b);
                }
                Op::Or => {
                    let b = stack.pop().ok_or(ProgramError::StackUnderflow)?;
                    let a = stack.pop().ok_or(ProgramError::StackUnderflow)?;
                    stack.push(a | b);
                }
                Op::Not => {
                    stack.pop().ok_or(ProgramError::StackUnderflow)?;
                    stack.push(ALL_KINDS_MASK);
                }
                Op::Debounce { .. } | Op::RateLimit { .. } => {
                    let m = stack.pop().ok_or(ProgramError::StackUnderflow)?;
                    stack.push(m);
                }
            }
            max_stack = max_stack.max(stack.len());
        }
        if stack.len() != 1 {
            return Err(ProgramError::UnbalancedStack);
        }
        Ok(CompiledProgram {
            ops: self.ops.clone(),
            kind_mask: stack[0],
            max_stack,
        })
    }
}

/// A validated program plus its derived coarse index, ready for per-event
/// evaluation. Obtain via [`FilterProgram::compile`].
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    ops: Vec<Op>,
    kind_mask: u16,
    max_stack: usize,
}

/// Per-op mutable state for one subscription (debounce clocks, token
/// buckets, occupancy sustain windows). One slot per op, index-aligned
/// with the compiled op array.
#[derive(Debug, Clone, Default)]
pub struct ProgramState {
    slots: Vec<OpState>,
    /// Reused boolean evaluation stack.
    stack: Vec<bool>,
}

#[derive(Debug, Clone)]
enum OpState {
    None,
    Debounce {
        last_fire_s: Option<f64>,
    },
    RateLimit {
        tokens: f64,
        last_s: Option<f64>,
    },
    /// `(zone, above-since event time)` pairs; zones per room are few.
    Occupancy {
        above_since: Vec<(u32, f64)>,
    },
}

/// What one program evaluation concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalResult {
    /// The event passed the filter: deliver it.
    pub matched: bool,
    /// A debounce/rate-limit op suppressed a would-be match this
    /// evaluation (counted separately from plain non-matches).
    pub rate_limited: bool,
}

/// The per-event facts programs match on, extracted once per event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventCtx {
    /// Wire kind code (1..=8).
    pub kind: u16,
    /// The zone the event names, if any.
    pub zone: Option<u32>,
    /// The world track the event names, if any.
    pub track: Option<u64>,
    /// `OccupancyChanged` count (0 otherwise).
    pub count: u32,
    /// Event (epoch) time — the clock every stateful op runs on.
    pub time_s: f64,
}

impl EventCtx {
    /// Extracts the matchable facts from a fleet event.
    pub fn from_event(event: &WorldEvent) -> EventCtx {
        let (kind, zone, track, count) = match *event {
            WorldEvent::TrackBorn { track, .. } => (1, None, Some(track.0), 0),
            WorldEvent::TrackLost { track, .. } => (2, None, Some(track.0), 0),
            WorldEvent::Fall { track, .. } => (3, None, Some(track.0), 0),
            WorldEvent::ZoneEntered { track, zone, .. } => (4, Some(zone), Some(track.0), 0),
            WorldEvent::ZoneExited { track, zone, .. } => (5, Some(zone), Some(track.0), 0),
            WorldEvent::OccupancyChanged { zone, count, .. } => (6, Some(zone), None, count),
            WorldEvent::Handoff { track, .. } => (7, None, Some(track.0), 0),
            WorldEvent::Pointing { track, .. } => (8, None, track.map(|t| t.0), 0),
        };
        EventCtx {
            kind,
            zone,
            track,
            count,
            time_s: event.time_s(),
        }
    }

    /// This event's bit in a kind mask.
    pub fn kind_bit(&self) -> u16 {
        1 << (self.kind - 1)
    }
}

impl CompiledProgram {
    /// The conservative set of event kinds this program can match —
    /// an event outside the mask need not be evaluated at all.
    pub fn kind_mask(&self) -> u16 {
        self.kind_mask
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether this is the match-all (empty) program.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// A fresh state bundle for one subscription running this program.
    pub fn new_state(&self) -> ProgramState {
        ProgramState {
            slots: self
                .ops
                .iter()
                .map(|op| match op {
                    Op::Debounce { .. } => OpState::Debounce { last_fire_s: None },
                    Op::RateLimit { burst, .. } => OpState::RateLimit {
                        tokens: *burst as f64,
                        last_s: None,
                    },
                    Op::OccupancyAbove { .. } => OpState::Occupancy {
                        above_since: Vec::new(),
                    },
                    _ => OpState::None,
                })
                .collect(),
            stack: Vec::with_capacity(self.max_stack),
        }
    }

    /// Evaluates the program against one event, advancing `state`'s
    /// clocks and buckets. `state` must come from [`Self::new_state`] on
    /// this same program.
    pub fn eval(&self, state: &mut ProgramState, ctx: &EventCtx) -> EvalResult {
        if self.ops.is_empty() {
            return EvalResult {
                matched: true,
                rate_limited: false,
            };
        }
        let stack = &mut state.stack;
        stack.clear();
        let mut rate_limited = false;
        for (i, op) in self.ops.iter().enumerate() {
            match op {
                Op::KindMask(m) => stack.push(m & ctx.kind_bit() != 0),
                Op::ZoneEq(z) => stack.push(ctx.zone == Some(*z)),
                Op::TrackEq(t) => stack.push(ctx.track == Some(*t)),
                Op::And => {
                    let b = stack.pop().expect("compile checked arity");
                    let a = stack.pop().expect("compile checked arity");
                    stack.push(a && b);
                }
                Op::Or => {
                    let b = stack.pop().expect("compile checked arity");
                    let a = stack.pop().expect("compile checked arity");
                    stack.push(a || b);
                }
                Op::Not => {
                    let a = stack.pop().expect("compile checked arity");
                    stack.push(!a);
                }
                Op::Debounce { min_interval_s } => {
                    let a = stack.pop().expect("compile checked arity");
                    let OpState::Debounce { last_fire_s } = &mut state.slots[i] else {
                        unreachable!("state slots are op-aligned");
                    };
                    let pass = a
                        && match *last_fire_s {
                            Some(last) => ctx.time_s - last >= *min_interval_s,
                            None => true,
                        };
                    if pass {
                        *last_fire_s = Some(ctx.time_s);
                    } else if a {
                        rate_limited = true;
                    }
                    stack.push(pass);
                }
                Op::RateLimit { per_s, burst } => {
                    let a = stack.pop().expect("compile checked arity");
                    let OpState::RateLimit { tokens, last_s } = &mut state.slots[i] else {
                        unreachable!("state slots are op-aligned");
                    };
                    let mut pass = false;
                    if a {
                        if let Some(last) = *last_s {
                            let dt = (ctx.time_s - last).max(0.0);
                            *tokens = (*tokens + dt * per_s).min(*burst as f64);
                        }
                        *last_s = Some(ctx.time_s);
                        if *tokens >= 1.0 {
                            *tokens -= 1.0;
                            pass = true;
                        } else {
                            rate_limited = true;
                        }
                    }
                    stack.push(pass);
                }
                Op::OccupancyAbove { count, hold_s } => {
                    let OpState::Occupancy { above_since } = &mut state.slots[i] else {
                        unreachable!("state slots are op-aligned");
                    };
                    let mut pass = false;
                    if ctx.kind == EventKind::OccupancyChanged.wire_kind() {
                        let zone = ctx.zone.unwrap_or(0);
                        if ctx.count > *count {
                            let since = match above_since.iter().find(|(z, _)| *z == zone) {
                                Some(&(_, s)) => s,
                                None => {
                                    above_since.push((zone, ctx.time_s));
                                    ctx.time_s
                                }
                            };
                            pass = ctx.time_s - since >= *hold_s;
                        } else {
                            above_since.retain(|(z, _)| *z != zone);
                        }
                    }
                    stack.push(pass);
                }
            }
        }
        EvalResult {
            matched: stack.pop().expect("compile checked balance"),
            rate_limited,
        }
    }
}

/// Process-local source of unique default subscription ids.
static NEXT_SUB_ID: AtomicU64 = AtomicU64::new(1);

/// Fluent builder for a wire-v3 subscription: pick a room, narrow the
/// event stream, bolt on rate control, and [`build`](Self::build) the
/// [`SubscribeV3`](crate::wire::SubscribeV3) to send.
///
/// ```
/// use witrack_serve::program::{EventKind, SubscriptionBuilder};
///
/// let sub = SubscriptionBuilder::room(3)
///     .events(EventKind::Fall | EventKind::Handoff)
///     .rate_limit(2.0, 5)
///     .build();
/// assert_eq!(sub.room_id, 3);
/// assert!(sub.program.compile().is_ok());
/// ```
///
/// Matchers compose as: `kinds AND (zone₁ OR zone₂ …) AND (track₁ OR …)
/// [OR occupancy-threshold]`, with debounce/rate-limit applied last, in
/// call order.
#[derive(Debug, Clone)]
pub struct SubscriptionBuilder {
    room_id: u32,
    sub_id: Option<u64>,
    world_updates: bool,
    events: bool,
    max_update_hz: f64,
    kinds: Option<EventKinds>,
    zones: Vec<u32>,
    tracks: Vec<u64>,
    occupancy: Option<(u32, f64)>,
    post: Vec<Op>,
}

impl SubscriptionBuilder {
    /// Starts a subscription to `room_id`. Defaults match the old
    /// `Subscribe::all`: world updates and (all) events on, no rate cap.
    pub fn room(room_id: u32) -> SubscriptionBuilder {
        SubscriptionBuilder {
            room_id,
            sub_id: None,
            world_updates: true,
            events: true,
            max_update_hz: 0.0,
            kinds: None,
            zones: Vec::new(),
            tracks: Vec::new(),
            occupancy: None,
            post: Vec::new(),
        }
    }

    /// Restricts delivered events to these kinds (implies events on).
    pub fn events(mut self, kinds: impl Into<EventKinds>) -> Self {
        self.kinds = Some(kinds.into());
        self.events = true;
        self
    }

    /// Disables the event stream entirely (world updates only).
    pub fn no_events(mut self) -> Self {
        self.events = false;
        self
    }

    /// Also require the event to name this zone (multiple calls OR).
    pub fn zone(mut self, zone_id: u32) -> Self {
        self.zones.push(zone_id);
        self
    }

    /// Also require the event to name this world track (multiple calls
    /// OR).
    pub fn track(mut self, track_id: u64) -> Self {
        self.tracks.push(track_id);
        self
    }

    /// Additionally match sustained occupancy: `OccupancyChanged` events
    /// whose zone has held strictly more than `count` occupants for at
    /// least `hold_s` seconds of event time.
    pub fn occupancy_above(mut self, count: u32, hold_s: f64) -> Self {
        self.occupancy = Some((count, hold_s));
        self
    }

    /// Suppress matches within `min_interval_s` of the previous delivery.
    pub fn debounce(mut self, min_interval_s: f64) -> Self {
        self.post.push(Op::Debounce { min_interval_s });
        self
    }

    /// Token-bucket rate limit: `per_s` sustained deliveries per
    /// event-second, `burst` back to back.
    pub fn rate_limit(mut self, per_s: f64, burst: u32) -> Self {
        self.post.push(Op::RateLimit { per_s, burst });
        self
    }

    /// Whether fused `WorldUpdate` frames are delivered (default on).
    pub fn world_updates(mut self, on: bool) -> Self {
        self.world_updates = on;
        self
    }

    /// Caps delivered world updates at `hz` per event-second (0 = every
    /// fused frame). Updates beyond the cap are skipped, not queued.
    pub fn max_update_hz(mut self, hz: f64) -> Self {
        self.max_update_hz = hz.max(0.0);
        self
    }

    /// Pins the subscription id (for [`unsubscribe`] bookkeeping). When
    /// not set, a process-unique id is assigned at build.
    ///
    /// [`unsubscribe`]: crate::client::SensorClient::unsubscribe
    pub fn id(mut self, sub_id: u64) -> Self {
        self.sub_id = Some(sub_id);
        self
    }

    /// The postfix program this builder compiles to (also used by
    /// [`Self::build`]).
    pub fn program(&self) -> FilterProgram {
        let mut ops = Vec::new();
        let mut have_matcher = false;
        let push_and = |ops: &mut Vec<Op>, have: &mut bool| {
            if *have {
                ops.push(Op::And);
            }
            *have = true;
        };
        if let Some(kinds) = self.kinds {
            ops.push(Op::KindMask(kinds.0));
            push_and(&mut ops, &mut have_matcher);
        }
        if !self.zones.is_empty() {
            for (i, z) in self.zones.iter().enumerate() {
                ops.push(Op::ZoneEq(*z));
                if i > 0 {
                    ops.push(Op::Or);
                }
            }
            push_and(&mut ops, &mut have_matcher);
        }
        if !self.tracks.is_empty() {
            for (i, t) in self.tracks.iter().enumerate() {
                ops.push(Op::TrackEq(*t));
                if i > 0 {
                    ops.push(Op::Or);
                }
            }
            push_and(&mut ops, &mut have_matcher);
        }
        if let Some((count, hold_s)) = self.occupancy {
            ops.push(Op::OccupancyAbove { count, hold_s });
            // Occupancy alerts are an *additional* reason to deliver:
            // OR'd so `.events(Fall).occupancy_above(..)` means falls or
            // sustained crowding, matching how alerts read.
            if have_matcher {
                ops.push(Op::Or);
            }
            have_matcher = true;
        }
        let _ = have_matcher;
        ops.extend(self.post.iter().copied());
        FilterProgram { ops }
    }

    /// Builds the wire-v3 subscription message.
    pub fn build(&self) -> crate::wire::SubscribeV3 {
        crate::wire::SubscribeV3 {
            room_id: self.room_id,
            sub_id: self
                .sub_id
                .unwrap_or_else(|| NEXT_SUB_ID.fetch_add(1, Ordering::Relaxed)),
            world_updates: self.world_updates,
            events: self.events,
            max_update_hz: self.max_update_hz,
            program: self.program(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(kind: EventKind, time_s: f64) -> EventCtx {
        EventCtx {
            kind: kind.wire_kind(),
            zone: None,
            track: Some(1),
            count: 0,
            time_s,
        }
    }

    fn occ(zone: u32, count: u32, time_s: f64) -> EventCtx {
        EventCtx {
            kind: EventKind::OccupancyChanged.wire_kind(),
            zone: Some(zone),
            track: None,
            count,
            time_s,
        }
    }

    #[test]
    fn empty_program_matches_everything() {
        let p = FilterProgram::match_all().compile().unwrap();
        assert_eq!(p.kind_mask(), ALL_KINDS_MASK);
        let mut s = p.new_state();
        assert!(p.eval(&mut s, &ctx(EventKind::Fall, 0.0)).matched);
    }

    #[test]
    fn stack_discipline_is_enforced() {
        let underflow = FilterProgram { ops: vec![Op::And] };
        assert_eq!(
            underflow.compile().unwrap_err(),
            ProgramError::StackUnderflow
        );
        let unbalanced = FilterProgram {
            ops: vec![Op::ZoneEq(1), Op::ZoneEq(2)],
        };
        assert_eq!(
            unbalanced.compile().unwrap_err(),
            ProgramError::UnbalancedStack
        );
        let too_many = FilterProgram {
            ops: vec![Op::Not; MAX_PROGRAM_OPS + 1],
        };
        assert_eq!(too_many.compile().unwrap_err(), ProgramError::TooManyOps);
    }

    #[test]
    fn kind_mask_narrows_through_and_and_widens_through_not() {
        let falls = FilterProgram {
            ops: vec![Op::KindMask(EventKind::Fall.mask())],
        }
        .compile()
        .unwrap();
        assert_eq!(falls.kind_mask(), EventKind::Fall.mask());
        // zone AND fall is impossible (falls carry no zone): empty mask.
        let contradiction = FilterProgram {
            ops: vec![Op::KindMask(EventKind::Fall.mask()), Op::ZoneEq(1), Op::And],
        }
        .compile()
        .unwrap();
        assert_eq!(contradiction.kind_mask(), 0);
        let negated = FilterProgram {
            ops: vec![Op::KindMask(EventKind::Fall.mask()), Op::Not],
        }
        .compile()
        .unwrap();
        assert_eq!(negated.kind_mask(), ALL_KINDS_MASK);
    }

    #[test]
    fn debounce_runs_on_the_event_clock() {
        let p = FilterProgram {
            ops: vec![
                Op::KindMask(EventKind::Fall.mask()),
                Op::Debounce {
                    min_interval_s: 1.0,
                },
            ],
        }
        .compile()
        .unwrap();
        let mut s = p.new_state();
        assert!(p.eval(&mut s, &ctx(EventKind::Fall, 10.0)).matched);
        let again = p.eval(&mut s, &ctx(EventKind::Fall, 10.5));
        assert!(!again.matched && again.rate_limited, "{again:?}");
        // A non-matching event is not a rate-limit suppression.
        let other = p.eval(&mut s, &ctx(EventKind::Handoff, 10.6));
        assert!(!other.matched && !other.rate_limited);
        assert!(p.eval(&mut s, &ctx(EventKind::Fall, 11.5)).matched);
    }

    #[test]
    fn rate_limit_is_a_token_bucket() {
        let p = FilterProgram {
            ops: vec![
                Op::KindMask(ALL_KINDS_MASK),
                Op::RateLimit {
                    per_s: 1.0,
                    burst: 2,
                },
            ],
        }
        .compile()
        .unwrap();
        let mut s = p.new_state();
        // Burst of 2 passes back to back; the third is shed.
        assert!(p.eval(&mut s, &ctx(EventKind::Fall, 0.0)).matched);
        assert!(p.eval(&mut s, &ctx(EventKind::Fall, 0.0)).matched);
        let shed = p.eval(&mut s, &ctx(EventKind::Fall, 0.0));
        assert!(!shed.matched && shed.rate_limited);
        // One event-second refills one token.
        assert!(p.eval(&mut s, &ctx(EventKind::Fall, 1.0)).matched);
        assert!(!p.eval(&mut s, &ctx(EventKind::Fall, 1.1)).matched);
    }

    #[test]
    fn occupancy_threshold_requires_sustain_and_resets_on_drop() {
        let p = FilterProgram {
            ops: vec![Op::OccupancyAbove {
                count: 2,
                hold_s: 5.0,
            }],
        }
        .compile()
        .unwrap();
        assert_eq!(p.kind_mask(), EventKind::OccupancyChanged.mask());
        let mut s = p.new_state();
        assert!(
            !p.eval(&mut s, &occ(7, 3, 0.0)).matched,
            "not sustained yet"
        );
        assert!(!p.eval(&mut s, &occ(7, 4, 3.0)).matched);
        assert!(p.eval(&mut s, &occ(7, 3, 5.0)).matched, "held 5 s above 2");
        // A dip resets the clock.
        assert!(!p.eval(&mut s, &occ(7, 2, 6.0)).matched);
        assert!(!p.eval(&mut s, &occ(7, 3, 7.0)).matched);
        assert!(
            !p.eval(&mut s, &occ(7, 3, 11.0)).matched,
            "only 4 s since dip"
        );
        assert!(p.eval(&mut s, &occ(7, 3, 12.0)).matched);
        // Other zones keep independent clocks.
        assert!(!p.eval(&mut s, &occ(8, 9, 12.0)).matched);
    }

    #[test]
    fn builder_composes_matchers_and_post_filters() {
        let sub = SubscriptionBuilder::room(4)
            .events(EventKind::ZoneEntered | EventKind::ZoneExited)
            .zone(11)
            .zone(12)
            .debounce(0.5)
            .world_updates(false)
            .build();
        assert_eq!(sub.room_id, 4);
        assert!(!sub.world_updates && sub.events);
        let p = sub.program.compile().unwrap();
        assert_eq!(
            p.kind_mask(),
            EventKind::ZoneEntered.mask() | EventKind::ZoneExited.mask()
        );
        let mut s = p.new_state();
        let enter = EventCtx {
            kind: EventKind::ZoneEntered.wire_kind(),
            zone: Some(12),
            track: Some(5),
            count: 0,
            time_s: 1.0,
        };
        assert!(p.eval(&mut s, &enter).matched);
        let wrong_zone = EventCtx {
            zone: Some(13),
            time_s: 2.0,
            ..enter
        };
        assert!(!p.eval(&mut s, &wrong_zone).matched);
    }

    #[test]
    fn builder_ids_are_unique_unless_pinned() {
        let a = SubscriptionBuilder::room(0).build();
        let b = SubscriptionBuilder::room(0).build();
        assert_ne!(a.sub_id, b.sub_id);
        assert_eq!(SubscriptionBuilder::room(0).id(77).build().sub_id, 77);
    }

    #[test]
    fn wire_records_round_trip() {
        let ops = vec![
            Op::KindMask(0b101),
            Op::ZoneEq(9),
            Op::TrackEq(u64::MAX - 3),
            Op::And,
            Op::Or,
            Op::Not,
            Op::Debounce {
                min_interval_s: 0.25,
            },
            Op::RateLimit {
                per_s: 2.0,
                burst: 7,
            },
            Op::OccupancyAbove {
                count: 3,
                hold_s: 10.0,
            },
        ];
        for op in ops {
            let (c, a, b, f) = op.to_wire();
            assert_eq!(Op::from_wire(c, a, b, f).unwrap(), op);
        }
        assert!(Op::from_wire(0, 0, 0, 0.0).is_err());
        assert!(Op::from_wire(200, 0, 0, 0.0).is_err());
        assert!(Op::from_wire(OP_DEBOUNCE, 0, 0, f64::NAN).is_err());
        assert!(Op::from_wire(OP_RATE_LIMIT, 1, 0, -1.0).is_err());
        assert!(Op::from_wire(OP_KIND_MASK, 0x1FF, 0, 0.0).is_err());
    }
}
