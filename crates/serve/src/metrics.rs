//! Engine health counters: drops, lag, sequence anomalies.
//!
//! The counters are [`witrack_obs`] registry handles — every series
//! lives in the engine's [`Registry`] under the `engine` subsystem, so
//! one snapshot (or a wire `StatsReport`, or text exposition) sees them
//! alongside the per-shard, per-sensor, and per-room series registered
//! elsewhere. Handles are relaxed atomics behind `Arc`s: updating one is
//! exactly the `fetch_add` the old bare-`AtomicU64` fields cost, and the
//! registry is only locked once per series at engine construction.
//! [`EngineMetrics::snapshot`] still reads everything into a plain
//! struct for printing and for the bench JSON artifacts.

use std::sync::Arc;
use witrack_obs::{Counter, Gauge, Label, Registry};

/// Shared engine counters (one instance per engine, behind an `Arc`),
/// all registered in the engine's metric [`Registry`].
///
/// `batches_in` and `inflight` are gauges rather than counters because
/// ingress must count *before* the queue send (or a shard's dequeue
/// could observe an un-counted message) and roll back when the send
/// fails — a decrement monotone counters don't allow.
#[derive(Debug)]
pub struct EngineMetrics {
    /// Messages accepted into a shard queue: sweep batches plus
    /// hello/teardown control messages.
    pub batches_in: Gauge,
    /// Sweep batches discarded at ingress because the target shard's queue
    /// was full (DropNewest policy only).
    pub batches_dropped: Counter,
    /// Sweep batches refused inside a shard (unknown sensor, shape
    /// mismatch, stale sequence).
    pub batches_rejected: Counter,
    /// Individual sweep intervals processed by pipelines.
    pub sweeps_processed: Counter,
    /// Frame reports emitted by pipelines.
    pub frames_emitted: Counter,
    /// Missing batches implied by forward sequence jumps.
    pub seq_gaps: Counter,
    /// Batches that arrived with an already-consumed sequence number.
    pub seq_out_of_order: Counter,
    /// Batches naming a sensor with no live session.
    pub unknown_sensor: Counter,
    /// Sessions opened.
    pub sessions_opened: Counter,
    /// Sessions closed: by teardown, by connection-scoped cleanup, or by
    /// the owning shard at engine shutdown — every opened session is
    /// eventually counted here.
    pub sessions_closed: Counter,
    /// Batches currently queued across all shards (ingress minus dequeues).
    pub inflight: Gauge,
    /// High-water mark of `inflight`: the worst queue backlog observed,
    /// the engine's lag signal.
    pub max_inflight: Gauge,
    /// Server→client messages shed because a session's connection outbox
    /// was full (the client is lagging) or gone.
    pub updates_dropped: Counter,
    /// Fused world frames emitted by the world hub.
    pub world_frames: Counter,
    /// Fleet events emitted by the world hub.
    pub world_events: Counter,
    /// Room subscriptions accepted by the world hub.
    pub subscriptions_opened: Counter,
    /// Room subscriptions released: by explicit `Unsubscribe`, by the
    /// owning connection closing, or by delivery hitting a dead outbox.
    pub subscriptions_closed: Counter,
    /// Filter programs actually executed by the hub (after the per-room
    /// and per-subscription kind-mask pre-screens — the gap between this
    /// and offered events is the coarse index's savings).
    pub events_evaluated: Counter,
    /// Filter evaluations that matched (delivery attempted).
    pub events_matched: Counter,
    /// Would-be matches suppressed by debounce/rate-limit filter ops.
    pub events_rate_limited: Counter,
    /// Bytes of encoded world traffic offered to subscriber outboxes
    /// (pre-shed): the fan-out cost server-side filtering is cutting.
    pub world_bytes: Counter,
    registry: Arc<Registry>,
}

impl EngineMetrics {
    /// Registers every engine-wide series in `registry` and returns the
    /// handle bundle.
    pub fn new(registry: Arc<Registry>) -> EngineMetrics {
        let c = |name| registry.counter("engine", name, Label::Global);
        let g = |name| registry.gauge("engine", name, Label::Global);
        EngineMetrics {
            batches_in: g("batches_in"),
            batches_dropped: c("batches_dropped"),
            batches_rejected: c("batches_rejected"),
            sweeps_processed: c("sweeps_processed"),
            frames_emitted: c("frames_emitted"),
            seq_gaps: c("seq_gaps"),
            seq_out_of_order: c("seq_out_of_order"),
            unknown_sensor: c("unknown_sensor"),
            sessions_opened: c("sessions_opened"),
            sessions_closed: c("sessions_closed"),
            inflight: g("inflight"),
            max_inflight: g("max_inflight"),
            updates_dropped: c("updates_dropped"),
            world_frames: c("world_frames"),
            world_events: c("world_events"),
            subscriptions_opened: c("subscriptions_opened"),
            subscriptions_closed: c("subscriptions_closed"),
            events_evaluated: c("events_evaluated"),
            events_matched: c("events_matched"),
            events_rate_limited: c("events_rate_limited"),
            world_bytes: c("world_bytes"),
            registry,
        }
    }

    /// The registry every series lives in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Records one batch entering a shard queue. MUST be called *before*
    /// the actual send: the shard's matching [`Self::dequeued`] must never
    /// be able to run first, or `inflight` underflows.
    pub(crate) fn enqueued(&self) {
        self.batches_in.add(1);
        self.inflight.add(1);
        self.max_inflight.raise_to(self.inflight.get());
    }

    /// Rolls back an [`Self::enqueued`] whose send then failed (queue
    /// full under DropNewest, or engine down).
    pub(crate) fn enqueue_failed(&self) {
        self.batches_in.add(-1);
        self.inflight.add(-1);
    }

    /// Records one batch leaving a shard queue.
    pub(crate) fn dequeued(&self) {
        self.inflight.add(-1);
    }

    /// Reads every counter at once.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            batches_in: self.batches_in.get().max(0) as u64,
            batches_dropped: self.batches_dropped.get(),
            batches_rejected: self.batches_rejected.get(),
            sweeps_processed: self.sweeps_processed.get(),
            frames_emitted: self.frames_emitted.get(),
            seq_gaps: self.seq_gaps.get(),
            seq_out_of_order: self.seq_out_of_order.get(),
            unknown_sensor: self.unknown_sensor.get(),
            sessions_opened: self.sessions_opened.get(),
            sessions_closed: self.sessions_closed.get(),
            inflight: self.inflight.get().max(0) as u64,
            max_inflight: self.max_inflight.get().max(0) as u64,
            updates_dropped: self.updates_dropped.get(),
            world_frames: self.world_frames.get(),
            world_events: self.world_events.get(),
            subscriptions_opened: self.subscriptions_opened.get(),
            subscriptions_closed: self.subscriptions_closed.get(),
            events_evaluated: self.events_evaluated.get(),
            events_matched: self.events_matched.get(),
            events_rate_limited: self.events_rate_limited.get(),
            world_bytes: self.world_bytes.get(),
        }
    }
}

impl Default for EngineMetrics {
    fn default() -> EngineMetrics {
        EngineMetrics::new(Arc::new(Registry::new()))
    }
}

/// A point-in-time copy of [`EngineMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Messages accepted into a shard queue (sweep batches plus
    /// hello/teardown control messages).
    pub batches_in: u64,
    /// Batches discarded at ingress (full queue, DropNewest policy).
    pub batches_dropped: u64,
    /// Batches refused inside a shard.
    pub batches_rejected: u64,
    /// Sweep intervals processed.
    pub sweeps_processed: u64,
    /// Frame reports emitted.
    pub frames_emitted: u64,
    /// Missing batches implied by forward sequence jumps.
    pub seq_gaps: u64,
    /// Batches with an already-consumed sequence number.
    pub seq_out_of_order: u64,
    /// Batches naming an unknown sensor.
    pub unknown_sensor: u64,
    /// Sessions opened.
    pub sessions_opened: u64,
    /// Sessions closed (teardown, connection cleanup, or shutdown).
    pub sessions_closed: u64,
    /// Batches queued right now.
    pub inflight: u64,
    /// Worst queue backlog observed.
    pub max_inflight: u64,
    /// Server→client messages shed to lagging (or vanished) client
    /// connections.
    pub updates_dropped: u64,
    /// Fused world frames emitted by the world hub.
    pub world_frames: u64,
    /// Fleet events emitted by the world hub.
    pub world_events: u64,
    /// Room subscriptions accepted by the world hub.
    pub subscriptions_opened: u64,
    /// Room subscriptions released (unsubscribe, connection close, or
    /// dead-outbox pruning).
    pub subscriptions_closed: u64,
    /// Filter programs executed by the hub (post pre-screen).
    pub events_evaluated: u64,
    /// Filter evaluations that matched.
    pub events_matched: u64,
    /// Would-be matches suppressed by debounce/rate-limit ops.
    pub events_rate_limited: u64,
    /// Encoded world-traffic bytes offered to subscriber outboxes.
    pub world_bytes: u64,
}
