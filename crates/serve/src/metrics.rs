//! Engine health counters: drops, lag, sequence anomalies.
//!
//! All counters are relaxed atomics — they are monitoring data, ordered
//! against nothing. [`EngineMetrics::snapshot`] reads them into a plain
//! struct for printing and for the bench JSON artifacts.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared engine counters (one instance per engine, behind an `Arc`).
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Messages accepted into a shard queue: sweep batches plus
    /// hello/teardown control messages.
    pub batches_in: AtomicU64,
    /// Sweep batches discarded at ingress because the target shard's queue
    /// was full (DropNewest policy only).
    pub batches_dropped: AtomicU64,
    /// Sweep batches refused inside a shard (unknown sensor, shape
    /// mismatch, stale sequence).
    pub batches_rejected: AtomicU64,
    /// Individual sweep intervals processed by pipelines.
    pub sweeps_processed: AtomicU64,
    /// Frame reports emitted by pipelines.
    pub frames_emitted: AtomicU64,
    /// Missing batches implied by forward sequence jumps.
    pub seq_gaps: AtomicU64,
    /// Batches that arrived with an already-consumed sequence number.
    pub seq_out_of_order: AtomicU64,
    /// Batches naming a sensor with no live session.
    pub unknown_sensor: AtomicU64,
    /// Sessions opened.
    pub sessions_opened: AtomicU64,
    /// Sessions closed by teardown.
    pub sessions_closed: AtomicU64,
    /// Batches currently queued across all shards (ingress minus dequeues).
    pub inflight: AtomicU64,
    /// High-water mark of `inflight`: the worst queue backlog observed,
    /// the engine's lag signal.
    pub max_inflight: AtomicU64,
    /// Server→client messages shed because a session's connection outbox
    /// was full (the client is lagging) or gone.
    pub updates_dropped: AtomicU64,
    /// Fused world frames emitted by the world hub.
    pub world_frames: AtomicU64,
    /// Fleet events emitted by the world hub.
    pub world_events: AtomicU64,
    /// Room subscriptions accepted by the world hub.
    pub subscriptions_opened: AtomicU64,
}

impl EngineMetrics {
    /// Bumps a counter by 1.
    pub(crate) fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Bumps a counter by `n`.
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one batch entering a shard queue. MUST be called *before*
    /// the actual send: the shard's matching [`Self::dequeued`] must never
    /// be able to run first, or `inflight` underflows.
    pub(crate) fn enqueued(&self) {
        Self::inc(&self.batches_in);
        let now = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_inflight.fetch_max(now, Ordering::Relaxed);
    }

    /// Rolls back an [`Self::enqueued`] whose send then failed (queue
    /// full under DropNewest, or engine down).
    pub(crate) fn enqueue_failed(&self) {
        self.batches_in.fetch_sub(1, Ordering::Relaxed);
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records one batch leaving a shard queue.
    pub(crate) fn dequeued(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Reads every counter at once.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            batches_in: self.batches_in.load(Ordering::Relaxed),
            batches_dropped: self.batches_dropped.load(Ordering::Relaxed),
            batches_rejected: self.batches_rejected.load(Ordering::Relaxed),
            sweeps_processed: self.sweeps_processed.load(Ordering::Relaxed),
            frames_emitted: self.frames_emitted.load(Ordering::Relaxed),
            seq_gaps: self.seq_gaps.load(Ordering::Relaxed),
            seq_out_of_order: self.seq_out_of_order.load(Ordering::Relaxed),
            unknown_sensor: self.unknown_sensor.load(Ordering::Relaxed),
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
            max_inflight: self.max_inflight.load(Ordering::Relaxed),
            updates_dropped: self.updates_dropped.load(Ordering::Relaxed),
            world_frames: self.world_frames.load(Ordering::Relaxed),
            world_events: self.world_events.load(Ordering::Relaxed),
            subscriptions_opened: self.subscriptions_opened.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`EngineMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Messages accepted into a shard queue (sweep batches plus
    /// hello/teardown control messages).
    pub batches_in: u64,
    /// Batches discarded at ingress (full queue, DropNewest policy).
    pub batches_dropped: u64,
    /// Batches refused inside a shard.
    pub batches_rejected: u64,
    /// Sweep intervals processed.
    pub sweeps_processed: u64,
    /// Frame reports emitted.
    pub frames_emitted: u64,
    /// Missing batches implied by forward sequence jumps.
    pub seq_gaps: u64,
    /// Batches with an already-consumed sequence number.
    pub seq_out_of_order: u64,
    /// Batches naming an unknown sensor.
    pub unknown_sensor: u64,
    /// Sessions opened.
    pub sessions_opened: u64,
    /// Sessions closed by teardown.
    pub sessions_closed: u64,
    /// Batches queued right now.
    pub inflight: u64,
    /// Worst queue backlog observed.
    pub max_inflight: u64,
    /// Server→client messages shed to lagging (or vanished) client
    /// connections.
    pub updates_dropped: u64,
    /// Fused world frames emitted by the world hub.
    pub world_frames: u64,
    /// Fleet events emitted by the world hub.
    pub world_events: u64,
    /// Room subscriptions accepted by the world hub.
    pub subscriptions_opened: u64,
}
