//! The sharded engine: N sensor streams multiplexed over worker shards.
//!
//! Each sensor id is pinned to one shard (`sensor_id mod num_shards`), and
//! each shard worker owns the [`FramePipeline`] instances of the sensors
//! pinned to it — so a sensor's sweeps are always processed in order, by
//! one thread, with no locking around pipeline state. Shard input queues
//! are **bounded**: a producer outrunning the engine either blocks
//! ([`OverloadPolicy::Block`], socket-like backpressure) or has its newest
//! batch dropped and counted ([`OverloadPolicy::DropNewest`], for sensors
//! where stale sweeps are worse than missing ones).
//!
//! Lifecycle per sensor: [`Hello`] (builds the pipeline via the
//! [`PipelineFactory`]) → any number of [`SweepBatch`]es (sequence-checked;
//! gaps and reordering are counted and reported) → [`Teardown`]. Every
//! frame report is emitted as an `UpdateBatch` carrying a per-sensor
//! output sequence number.
//!
//! Server→client routing is **per session**: a `Hello` submitted with an
//! [`UpdateSink`] ties the session to that sink, and the owning shard
//! sends the session's updates and rejects straight into it (shedding,
//! never blocking, when the sink is full — one lagging client must not
//! stall a shard). Sessions without a sink (direct engine users: tests,
//! benches) get their traffic on the engine-wide [`EngineEvent`] stream
//! instead.

use crate::hub::{HubHandle, HubMsg, WorldConfig, WorldHub};
use crate::metrics::{EngineMetrics, MetricsSnapshot};
use crate::pool::{BatchSamples, BufPool, PooledBatch, PooledBuf, SamplePools};
use crate::wire::{self, Hello, Message, Reject, RejectCode, SweepBatch, Teardown, UpdateBatch};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use witrack_core::{FramePipeline, FrameReport};
use witrack_obs::{
    AnomalyKind, Counter, FlightRecorder, Gauge, Histo, Label, Registry, StageStats,
};

/// What ingress does when a shard's bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Block the producer until the shard drains (backpressure).
    Block,
    /// Discard the newly-arrived batch and count it in
    /// [`MetricsSnapshot::batches_dropped`].
    DropNewest,
}

/// Engine construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Number of worker shards. Defaults to the host's available
    /// parallelism.
    pub num_shards: usize,
    /// Bounded depth of each shard's input queue, in sweep batches.
    pub queue_capacity: usize,
    /// Full-queue behavior for sweep batches (control messages always
    /// block — dropping a `Hello` or `Teardown` would wedge a session).
    pub overload: OverloadPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_shards: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            queue_capacity: 8,
            overload: OverloadPolicy::Block,
        }
    }
}

/// Builds a sensor's pipeline from its `Hello`. Returning `Err` rejects
/// the session with [`RejectCode::BadConfig`].
pub type PipelineFactory = dyn Fn(&Hello) -> Result<Box<dyn FramePipeline>, String> + Send + Sync;

/// Where one session's server→client traffic goes: a bounded queue of
/// **already-encoded wire frames** (update batches, rejects) owned by the
/// session's connection. Shards encode into pool-backed buffers and
/// `try_send` them, shedding on full
/// ([`MetricsSnapshot::updates_dropped`]); the connection's writer pushes
/// the bytes to the transport and the buffer recycles.
pub type UpdateSink = SyncSender<PooledBuf<u8>>;

/// A session's sink plus the connection it belongs to (connection ids
/// scope best-effort cleanup teardowns; see
/// [`EngineHandle::submit_teardown_scoped`]).
#[derive(Clone)]
pub struct ConnSink {
    /// Opaque id of the owning connection.
    pub conn_id: u64,
    /// The connection's outbox.
    pub tx: UpdateSink,
}

/// What the engine emits on its event stream. Sessions tied to an
/// [`UpdateSink`] deliver `Updates`/`Rejected` to their sink instead;
/// `SessionClosed` is always emitted here.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineEvent {
    /// Frame reports for one sinkless sensor (`seq` is the per-sensor
    /// output sequence number, starting at 0 after `Hello`).
    Updates(UpdateBatch),
    /// A message was refused; the offending sensor id and why.
    Rejected(Reject),
    /// A session ended (teardown), with its lifetime frame count.
    SessionClosed {
        /// The sensor whose session ended.
        sensor_id: u32,
        /// Frame reports emitted over the session's lifetime.
        frames_emitted: u64,
    },
}

/// Whether a submitted batch entered a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submitted {
    /// The message is in its shard's queue.
    Queued,
    /// The queue was full and policy is `DropNewest`; the batch was
    /// discarded (and counted).
    Dropped,
}

/// Submission errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The engine has shut down.
    EngineDown,
    /// `UpdateBatch`/`Reject`/`WorldUpdate`/`Event` are server→client
    /// messages; clients cannot submit them.
    ServerOnlyMessage,
    /// A `Subscribe` was submitted without a connection sink — the world
    /// stream has nowhere to go.
    SubscribeNeedsConnection,
    /// A `StatsQuery` was submitted without a connection sink — the
    /// report has nowhere to go (direct engine users should call
    /// [`EngineHandle::stats_samples`] instead).
    StatsNeedsConnection,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::EngineDown => write!(f, "engine has shut down"),
            SubmitError::ServerOnlyMessage => write!(f, "server-only message type"),
            SubmitError::SubscribeNeedsConnection => {
                write!(f, "subscribe requires a connection to deliver into")
            }
            SubmitError::StatsNeedsConnection => {
                write!(f, "stats query requires a connection to deliver into")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

enum ShardMsg {
    Hello(Hello, Option<ConnSink>),
    /// A sweep batch (header + pooled samples), the sink of the
    /// connection that carried it — so refusals that have no session to
    /// consult (unknown sensor) can still reach the sender over the wire
    /// — and its enqueue instant (queue-wait telemetry).
    Batch(PooledBatch, Option<ConnSink>, Instant),
    /// Teardown, optionally scoped to sessions owned by one connection
    /// (best-effort cleanup at connection close must not kill a session
    /// some other connection owns), plus the carrying connection's sink
    /// for refusals.
    Teardown(Teardown, Option<u64>, Option<ConnSink>),
    /// Shutdown nudge: wakes the shard so it notices the stop flag.
    Wake,
}

/// Cloneable ingress side of the engine: routes client messages to shards.
#[derive(Clone)]
pub struct EngineHandle {
    shards: Vec<SyncSender<ShardMsg>>,
    overload: OverloadPolicy,
    metrics: Arc<EngineMetrics>,
    /// Recycles ingest sample buffers, one pool per wire representation
    /// (socket → decode → shard → pipeline).
    ingest: SamplePools,
    /// Recycles outbox encode buffers (shard → outbox → transport).
    frame_pool: BufPool<u8>,
    /// The world hub, when this engine fuses rooms.
    hub: Option<HubHandle>,
    /// The engine's metric registry (all `engine`/`shard`/`sensor`/
    /// `pipeline`/`room` series).
    registry: Arc<Registry>,
    /// The engine's anomaly flight recorder.
    recorder: Arc<FlightRecorder>,
    /// Per-shard `shard/queue_depth` gauges, indexed like `shards`
    /// (incremented at enqueue, decremented by the owning worker).
    queue_depths: Arc<Vec<Gauge>>,
}

impl EngineHandle {
    fn shard_idx(&self, sensor_id: u32) -> usize {
        sensor_id as usize % self.shards.len()
    }

    /// The pools connection readers should decode sweep samples into
    /// (see [`crate::transport::TransportRx::recv_msg_pooled`]): f64
    /// batches fill `f64s`, quantized batches stay i16 in `i16s`.
    pub fn ingest_pools(&self) -> &SamplePools {
        &self.ingest
    }

    /// The f64 half of [`Self::ingest_pools`] (compatibility accessor
    /// for callers decoding only f64 batches).
    pub fn sample_pool(&self) -> &BufPool<f64> {
        &self.ingest.f64s
    }

    /// The pool shards encode outbound frames into — exposed for tests
    /// and capacity monitoring.
    pub fn frame_pool(&self) -> &BufPool<u8> {
        &self.frame_pool
    }

    /// Routes one client message to its sensor's shard. `Hello` and
    /// `Teardown` always block on a full queue; `SweepBatch` follows the
    /// configured [`OverloadPolicy`]. Sessions opened this way have no
    /// sink: their updates arrive on the engine event stream.
    pub fn submit(&self, msg: Message) -> Result<Submitted, SubmitError> {
        self.submit_with_sink(msg, None)
    }

    /// [`Self::submit`], with the carrying connection's sink attached so
    /// every refusal — including ones no session exists for, like an
    /// unknown sensor id — reaches the sender over the wire.
    pub fn submit_with_sink(
        &self,
        msg: Message,
        sink: Option<ConnSink>,
    ) -> Result<Submitted, SubmitError> {
        match msg {
            Message::Hello(h) => self.submit_hello(h, sink),
            Message::Teardown(t) => {
                self.send_control(t.sensor_id, ShardMsg::Teardown(t, None, sink))
            }
            Message::SweepBatch(b) => self.submit_batch_pooled(PooledBatch::from_owned(b), sink),
            // Quantized batches stay i16 all the way to the shard — the
            // pipeline's fixed-point front half dequantizes late.
            Message::SweepBatchQ(q) => self.submit_batch_pooled(PooledBatch::from_owned_q(q), sink),
            // The v2 subscribe keeps working as a match-all v3 program —
            // no ack, because v2 clients don't know the type exists.
            Message::Subscribe(s) => {
                self.route_subscribe(wire::SubscribeV3::from_v2(s), sink, false)
            }
            Message::SubscribeV3(s) => self.submit_subscribe_v3(s, sink),
            Message::Unsubscribe(u) => self.submit_unsubscribe(u, sink),
            Message::StatsQuery(q) => self.submit_stats_query(q, sink),
            Message::UpdateBatch(_)
            | Message::Reject(_)
            | Message::WorldUpdate(_)
            | Message::Event(_)
            | Message::StatsReport(_)
            | Message::SubscribeAck(_)
            | Message::SubscriptionStats(_) => Err(SubmitError::ServerOnlyMessage),
        }
    }

    /// Answers a [`wire::StatsQuery`] immediately: snapshots every
    /// registered metric series and encodes one `StatsReport` frame into
    /// the connection's outbox. No shard round-trip — snapshots are
    /// reads of relaxed atomics, safe from any thread.
    pub fn submit_stats_query(
        &self,
        _query: wire::StatsQuery,
        sink: Option<ConnSink>,
    ) -> Result<Submitted, SubmitError> {
        let sink = sink.ok_or(SubmitError::StatsNeedsConnection)?;
        let samples = self.stats_samples();
        let mut buf = self.frame_pool.get(64 * samples.len().max(1));
        wire::encode_stats_report_into(&samples, &mut buf);
        if sink.tx.try_send(buf).is_err() {
            self.metrics.updates_dropped.inc();
        }
        Ok(Submitted::Queued)
    }

    /// A point-in-time snapshot of every metric series visible from this
    /// engine: its own registry (engine, shard, sensor, pipeline, room
    /// series) merged with the process-wide [`witrack_obs::global`]
    /// registry (e.g. `dsp` plan-cache counters), sorted by key.
    pub fn stats_samples(&self) -> Vec<witrack_obs::MetricSample> {
        let mut samples = self.registry.snapshot();
        samples.extend(witrack_obs::global().snapshot());
        samples.sort_by_key(|s| s.key);
        samples
    }

    /// The engine's metric registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The engine's anomaly flight recorder.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Routes a v2 room subscription to the world hub as a match-all v3
    /// program (no ack — v2 clients don't expect one). Without a hub
    /// (the engine was started without a [`WorldConfig`]) the
    /// subscription is refused over the connection with
    /// [`RejectCode::UnknownSubscription`].
    pub fn submit_subscribe(
        &self,
        sub: wire::Subscribe,
        sink: Option<ConnSink>,
    ) -> Result<Submitted, SubmitError> {
        self.route_subscribe(wire::SubscribeV3::from_v2(sub), sink, false)
    }

    /// Routes a programmable (wire v3) room subscription to the world
    /// hub, which answers with a `SubscribeAck` (or a `Reject` carrying
    /// [`RejectCode::BadProgram`]/[`RejectCode::UnknownSubscription`]).
    pub fn submit_subscribe_v3(
        &self,
        sub: wire::SubscribeV3,
        sink: Option<ConnSink>,
    ) -> Result<Submitted, SubmitError> {
        self.route_subscribe(sub, sink, true)
    }

    fn route_subscribe(
        &self,
        sub: wire::SubscribeV3,
        sink: Option<ConnSink>,
        ack: bool,
    ) -> Result<Submitted, SubmitError> {
        let sink = sink.ok_or(SubmitError::SubscribeNeedsConnection)?;
        match &self.hub {
            Some(hub) => {
                if hub.send(HubMsg::Subscribe(sub, sink, ack)) {
                    Ok(Submitted::Queued)
                } else {
                    Err(SubmitError::EngineDown)
                }
            }
            None => {
                self.metrics.batches_rejected.inc();
                let mut buf = self.frame_pool.get(32);
                wire::encode_reject_into(sub.room_id, RejectCode::UnknownSubscription, &mut buf);
                if sink.tx.try_send(buf).is_err() {
                    self.metrics.updates_dropped.inc();
                }
                Ok(Submitted::Queued)
            }
        }
    }

    /// Releases one room subscription; the hub answers with its final
    /// `SubscriptionStats` (or `UnknownSubscription` when no such
    /// subscription exists on this connection).
    pub fn submit_unsubscribe(
        &self,
        unsub: wire::Unsubscribe,
        sink: Option<ConnSink>,
    ) -> Result<Submitted, SubmitError> {
        let sink = sink.ok_or(SubmitError::SubscribeNeedsConnection)?;
        match &self.hub {
            Some(hub) => {
                if hub.send(HubMsg::Unsubscribe(unsub, sink)) {
                    Ok(Submitted::Queued)
                } else {
                    Err(SubmitError::EngineDown)
                }
            }
            None => {
                self.metrics.batches_rejected.inc();
                let mut buf = self.frame_pool.get(32);
                wire::encode_reject_into(unsub.room_id, RejectCode::UnknownSubscription, &mut buf);
                if sink.tx.try_send(buf).is_err() {
                    self.metrics.updates_dropped.inc();
                }
                Ok(Submitted::Queued)
            }
        }
    }

    /// Opens a session, optionally tying it to a connection's update
    /// sink. A refused `Hello` sends the `Reject` into the sink (when
    /// given) and drops the sink again — no session state survives it.
    pub fn submit_hello(
        &self,
        hello: Hello,
        sink: Option<ConnSink>,
    ) -> Result<Submitted, SubmitError> {
        self.send_control(hello.sensor_id, ShardMsg::Hello(hello, sink))
    }

    /// Best-effort teardown scoped to `conn_id`: closes the session only
    /// if it is tied to that connection's sink. Used at connection close,
    /// where tearing down a sensor now owned by another connection would
    /// be worse than leaking nothing.
    pub fn submit_teardown_scoped(
        &self,
        sensor_id: u32,
        conn_id: u64,
    ) -> Result<Submitted, SubmitError> {
        self.send_control(
            sensor_id,
            ShardMsg::Teardown(Teardown { sensor_id }, Some(conn_id), None),
        )
    }

    fn send_control(&self, sensor_id: u32, msg: ShardMsg) -> Result<Submitted, SubmitError> {
        // Count before sending: the shard's dequeue must never observe an
        // un-counted message (inflight would underflow).
        let idx = self.shard_idx(sensor_id);
        self.metrics.enqueued();
        self.queue_depths[idx].add(1);
        match self.shards[idx].send(msg) {
            Ok(()) => Ok(Submitted::Queued),
            Err(_) => {
                self.metrics.enqueue_failed();
                self.queue_depths[idx].add(-1);
                Err(SubmitError::EngineDown)
            }
        }
    }

    /// Submits one owned sweep batch (compatibility entry point; the
    /// zero-copy hot path is [`Self::submit_batch_pooled`]).
    pub fn submit_batch(&self, batch: SweepBatch) -> Result<Submitted, SubmitError> {
        self.submit_batch_pooled(PooledBatch::from_owned(batch), None)
    }

    /// Submits one decoded sweep batch whose samples live in a pooled
    /// buffer — the ingest hot path. The buffer travels to the owning
    /// shard and returns to its pool right after the pipeline consumes
    /// it (or immediately, if the batch is dropped or refused). `sink`,
    /// when given, carries the connection for refusals that have no
    /// session to consult.
    pub fn submit_batch_pooled(
        &self,
        batch: PooledBatch,
        sink: Option<ConnSink>,
    ) -> Result<Submitted, SubmitError> {
        let (sensor_id, seq) = (batch.shape.sensor_id, batch.shape.seq);
        let idx = self.shard_idx(sensor_id);
        let shard = &self.shards[idx];
        self.metrics.enqueued();
        self.queue_depths[idx].add(1);
        let msg = ShardMsg::Batch(batch, sink, Instant::now());
        let rollback = || {
            self.metrics.enqueue_failed();
            self.queue_depths[idx].add(-1);
        };
        match self.overload {
            OverloadPolicy::Block => match shard.send(msg) {
                Ok(()) => Ok(Submitted::Queued),
                Err(_) => {
                    rollback();
                    Err(SubmitError::EngineDown)
                }
            },
            OverloadPolicy::DropNewest => match shard.try_send(msg) {
                Ok(()) => Ok(Submitted::Queued),
                Err(TrySendError::Full(_)) => {
                    rollback();
                    self.metrics.batches_dropped.inc();
                    self.recorder
                        .record(AnomalyKind::Drop, sensor_id as u64, idx as u64, seq);
                    Ok(Submitted::Dropped)
                }
                Err(TrySendError::Disconnected(_)) => {
                    rollback();
                    Err(SubmitError::EngineDown)
                }
            },
        }
    }

    /// Tells the world hub a connection ended, releasing its room
    /// subscriptions (and with them the hub's clone of the connection's
    /// outbox sender, which the connection writer's exit waits on).
    /// No-op without a hub.
    pub fn notify_conn_closed(&self, conn_id: u64) {
        if let Some(hub) = &self.hub {
            let _ = hub.send(HubMsg::ConnClosed(conn_id));
        }
    }

    /// The engine's shared counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

/// The running engine: shard workers plus their queues (and the world
/// hub, when rooms are fused).
pub struct ShardedEngine {
    handle: EngineHandle,
    workers: Vec<JoinHandle<()>>,
    hub: Option<WorldHub>,
    stop: Arc<AtomicBool>,
    metrics: Arc<EngineMetrics>,
    registry: Arc<Registry>,
    recorder: Arc<FlightRecorder>,
}

impl ShardedEngine {
    /// Starts the shard workers. Returns the engine and the event stream
    /// (sinkless updates/rejects, session closes) the shards feed. The
    /// receiver should be drained — the channel is unbounded.
    pub fn start(
        cfg: EngineConfig,
        factory: Arc<PipelineFactory>,
    ) -> (ShardedEngine, Receiver<EngineEvent>) {
        Self::start_inner(cfg, factory, None)
    }

    /// A fluent constructor: `ShardedEngine::builder(factory)
    /// .config(cfg).world(world_cfg).start()` — one shape that grows
    /// options without new entry points.
    pub fn builder(factory: Arc<PipelineFactory>) -> EngineBuilder {
        EngineBuilder {
            cfg: EngineConfig::default(),
            factory,
            world: None,
        }
    }

    /// Shared startup: every public constructor lands here — every
    /// session's frame reports are forwarded to its room's
    /// [`witrack_fuse::FusionEngine`] (when a world is configured), and
    /// connections may `Subscribe` to rooms for fused
    /// `WorldUpdate`/`Event` streams.
    fn start_inner(
        cfg: EngineConfig,
        factory: Arc<PipelineFactory>,
        world: Option<WorldConfig>,
    ) -> (ShardedEngine, Receiver<EngineEvent>) {
        let num_shards = cfg.num_shards.max(1);
        let registry = Arc::new(Registry::new());
        let metrics = Arc::new(EngineMetrics::new(Arc::clone(&registry)));
        let recorder = Arc::new(FlightRecorder::new(1024));
        let stop = Arc::new(AtomicBool::new(false));
        let (events_tx, events_rx) = channel();
        // Sample buffers live from decode until the owning shard finishes
        // a batch, so the steady-state population is bounded by the total
        // queue depth plus one in-decode and one in-pipeline per thread;
        // cap the free list a little above that. Outbox encode buffers
        // are small and bounded by outbox depth.
        let ingest = SamplePools::new(num_shards * cfg.queue_capacity.max(1) + 2 * num_shards + 8);
        let frame_pool = BufPool::new(256);
        let (hub, hub_handle) = match world {
            Some(world_cfg) => {
                let (hub, handle) = WorldHub::start(
                    world_cfg,
                    frame_pool.clone(),
                    Arc::clone(&metrics),
                    Arc::clone(&recorder),
                    Arc::clone(&stop),
                );
                (Some(hub), Some(handle))
            }
            None => (None, None),
        };
        let queue_depths: Arc<Vec<Gauge>> = Arc::new(
            (0..num_shards)
                .map(|i| registry.gauge("shard", "queue_depth", Label::Shard(i as u32)))
                .collect(),
        );
        let mut shards = Vec::with_capacity(num_shards);
        let mut workers = Vec::with_capacity(num_shards);
        for i in 0..num_shards {
            let (tx, rx) = sync_channel(cfg.queue_capacity.max(1));
            shards.push(tx);
            let shard_label = Label::Shard(i as u32);
            let worker = ShardWorker {
                rx,
                events: events_tx.clone(),
                factory: Arc::clone(&factory),
                metrics: Arc::clone(&metrics),
                stop: Arc::clone(&stop),
                sessions: HashMap::new(),
                frame_pool: frame_pool.clone(),
                updates_scratch: Vec::new(),
                hub: hub_handle.clone(),
                registry: Arc::clone(&registry),
                recorder: Arc::clone(&recorder),
                queue_depth: queue_depths[i].clone(),
                queue_wait: registry.histo("shard", "queue_wait_ns", shard_label),
                dequeue_to_report: registry.histo("shard", "dequeue_to_report_ns", shard_label),
                batched_frames: registry.counter("dsp", "batched_frames", shard_label),
            };
            workers.push(std::thread::spawn(move || worker.run()));
        }
        let handle = EngineHandle {
            shards,
            overload: cfg.overload,
            metrics: Arc::clone(&metrics),
            ingest,
            frame_pool,
            hub: hub_handle,
            registry: Arc::clone(&registry),
            recorder: Arc::clone(&recorder),
            queue_depths,
        };
        (
            ShardedEngine {
                handle,
                workers,
                hub,
                stop,
                metrics,
                registry,
                recorder,
            },
            events_rx,
        )
    }

    /// A cloneable ingress handle.
    pub fn handle(&self) -> EngineHandle {
        self.handle.clone()
    }
}

/// Fluent construction for [`ShardedEngine`] — see
/// [`ShardedEngine::builder`].
pub struct EngineBuilder {
    cfg: EngineConfig,
    factory: Arc<PipelineFactory>,
    world: Option<WorldConfig>,
}

impl EngineBuilder {
    /// Engine shape: shard count, queue depth, overload policy.
    pub fn config(mut self, cfg: EngineConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Attach a world hub fusing the configured rooms, enabling room
    /// subscriptions.
    pub fn world(mut self, world: WorldConfig) -> Self {
        self.world = Some(world);
        self
    }

    /// Starts the shard workers (and hub, when a world is configured).
    /// Returns the engine and its event stream; the receiver should be
    /// drained — the channel is unbounded.
    pub fn start(self) -> (ShardedEngine, Receiver<EngineEvent>) {
        ShardedEngine::start_inner(self.cfg, self.factory, self.world)
    }
}

impl ShardedEngine {
    /// Current counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The engine's metric registry: every `engine`/`shard`/`sensor`/
    /// `pipeline`/`room` series this engine registers.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The engine's anomaly flight recorder (drops, rejects, sequence
    /// gaps, shed updates, ghost quarantines, handoffs).
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Stops the shards after they drain their queues and joins them.
    /// Outstanding [`EngineHandle`] clones see [`SubmitError::EngineDown`]
    /// afterwards.
    pub fn shutdown(self) -> MetricsSnapshot {
        self.stop.store(true, Ordering::SeqCst);
        for shard in &self.handle.shards {
            // Best-effort nudge; a full queue will notice the flag on its
            // own at the drain timeout.
            let _ = shard.try_send(ShardMsg::Wake);
        }
        for w in self.workers {
            w.join().expect("shard worker panicked");
        }
        // The shards are gone, so everything they forwarded is already in
        // the hub's inbox; it drains that, sees the stop flag, and exits.
        if let Some(hub) = self.hub {
            hub.join();
        }
        self.metrics.snapshot()
    }
}

struct Session {
    pipeline: Box<dyn FramePipeline>,
    /// The stream shape this session's `Hello` promised; batches that
    /// disagree are refused before they can reach the pipeline's
    /// stricter (panicking) asserts.
    samples_per_sweep: u32,
    sink: Option<ConnSink>,
    next_in_seq: u64,
    out_seq: u64,
    frames_emitted: u64,
    /// This sensor's `sensor/frames` registry counter.
    frames: Counter,
}

struct ShardWorker {
    rx: Receiver<ShardMsg>,
    events: Sender<EngineEvent>,
    factory: Arc<PipelineFactory>,
    metrics: Arc<EngineMetrics>,
    stop: Arc<AtomicBool>,
    sessions: HashMap<u32, Session>,
    /// Pool the shard encodes outbound (sinkful) frames into.
    frame_pool: BufPool<u8>,
    /// Per-batch report scratch, reused across batches (taken/returned
    /// around each batch so the session borrow stays clean).
    updates_scratch: Vec<FrameReport>,
    /// The world hub, when this engine fuses rooms: every emitted report
    /// batch is forwarded there for cross-sensor fusion.
    hub: Option<HubHandle>,
    /// The engine registry (per-sensor series register at session open).
    registry: Arc<Registry>,
    /// The engine's anomaly flight recorder.
    recorder: Arc<FlightRecorder>,
    /// This shard's `shard/queue_depth` gauge (decremented at dequeue).
    queue_depth: Gauge,
    /// Batch enqueue → dequeue wall time.
    queue_wait: Arc<Histo>,
    /// Batch dequeue → reports-delivered wall time.
    dequeue_to_report: Arc<Histo>,
    /// Sweep batches processed in cache-blocked dispatch groups (this
    /// shard's `dsp/batched_frames` counter; incremented by group size).
    batched_frames: Counter,
}

impl ShardWorker {
    fn run(mut self) {
        loop {
            match self.rx.recv_timeout(Duration::from_millis(50)) {
                Ok(msg) => self.dispatch(msg),
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    // Queue empty: the only time shutdown may interrupt —
                    // accepted work is never abandoned mid-queue.
                    if self.stop.load(Ordering::SeqCst) {
                        break;
                    }
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        // Sessions still open at shutdown close here — the only exit
        // their pipelines have — so `sessions_closed` balances
        // `sessions_opened` even for clients that never sent `Teardown`.
        for (sensor_id, s) in self.sessions.drain() {
            self.metrics.sessions_closed.inc();
            if let Some(hub) = &self.hub {
                hub.send(HubMsg::SensorClosed(sensor_id));
            }
            let _ = self.events.send(EngineEvent::SessionClosed {
                sensor_id,
                frames_emitted: s.frames_emitted,
            });
        }
    }

    fn emit(&self, event: EngineEvent) {
        // The receiver outlives the shards in every orderly shutdown; a
        // dropped receiver just means nobody is listening anymore.
        let _ = self.events.send(event);
    }

    /// Pushes an encoded frame into a session sink, shedding (and
    /// counting) when the connection lags. Blocking would stall every
    /// sensor on the shard, so shed — updates are superseded by the next
    /// frame, rejects are advisory. The pooled buffer recycles either
    /// way (the writer drops it after sending; a failed try_send drops
    /// it here).
    fn push_to_sink(&self, sink: &ConnSink, frame: PooledBuf<u8>) {
        if sink.tx.try_send(frame).is_err() {
            self.metrics.updates_dropped.inc();
            self.recorder.record(AnomalyKind::Shed, sink.conn_id, 0, 0);
        }
    }

    /// Delivers one batch of frame reports: sinkful sessions get the
    /// frame encoded straight from the report slice into a pooled buffer
    /// (no owned `UpdateBatch`, no per-event allocation); sinkless
    /// sessions (direct engine users: tests, benches) get an owned event.
    fn deliver_updates(
        &self,
        sink: Option<&ConnSink>,
        sensor_id: u32,
        seq: u64,
        updates: &[FrameReport],
    ) {
        match sink {
            Some(s) => {
                let mut frame = self.frame_pool.get(64);
                wire::encode_update_batch_into(sensor_id, seq, updates, &mut frame);
                self.push_to_sink(s, frame);
            }
            None => self.emit(EngineEvent::Updates(UpdateBatch {
                sensor_id,
                seq,
                updates: updates.to_vec(),
            })),
        }
    }

    fn reject(&self, sink: Option<&ConnSink>, sensor_id: u32, code: RejectCode) {
        self.metrics.batches_rejected.inc();
        if code == RejectCode::UnknownSensor {
            self.metrics.unknown_sensor.inc();
        }
        self.recorder.record(
            AnomalyKind::Reject,
            sensor_id as u64,
            code.to_u16() as u64,
            0,
        );
        match sink {
            Some(s) => {
                let mut frame = self.frame_pool.get(32);
                wire::encode_reject_into(sensor_id, code, &mut frame);
                self.push_to_sink(s, frame);
            }
            None => self.emit(EngineEvent::Rejected(Reject { sensor_id, code })),
        }
    }

    /// Handles one dequeued message, then greedily drains everything
    /// already queued before blocking again. Sweep batches processed in
    /// one drain run back-to-back while the shard's CZT plans, window
    /// tables, and pipeline state are cache-hot — at 100+ co-sharded
    /// sensors the per-dispatch warm-up otherwise dominates — and the
    /// group size feeds the `dsp/batched_frames` counter.
    fn dispatch(&mut self, first: ShardMsg) {
        let mut grouped = 0u64;
        let mut msg = first;
        loop {
            if matches!(msg, ShardMsg::Batch(..)) {
                grouped += 1;
            }
            self.handle(msg);
            match self.rx.try_recv() {
                Ok(next) => msg = next,
                Err(_) => break,
            }
        }
        if grouped > 0 {
            self.batched_frames.add(grouped);
        }
    }

    fn handle(&mut self, msg: ShardMsg) {
        match msg {
            ShardMsg::Wake => {}
            ShardMsg::Hello(h, sink) => {
                self.metrics.dequeued();
                self.queue_depth.add(-1);
                self.open_session(h, sink);
            }
            ShardMsg::Teardown(t, only_if_conn, sink) => {
                self.metrics.dequeued();
                self.queue_depth.add(-1);
                self.close_session(t, only_if_conn, sink);
            }
            ShardMsg::Batch(b, sink, enqueued_at) => {
                self.metrics.dequeued();
                self.queue_depth.add(-1);
                let dequeued_at = Instant::now();
                self.queue_wait
                    .record(dequeued_at.duration_since(enqueued_at).as_nanos() as u64);
                self.process_batch(b, sink);
                // Dequeue → reports delivered (pipeline + encode + sink
                // push): the shard's end-to-end service time per batch.
                self.dequeue_to_report.record_since(dequeued_at);
            }
        }
    }

    fn open_session(&mut self, h: Hello, sink: Option<ConnSink>) {
        if self.sessions.contains_key(&h.sensor_id) {
            // The *existing* session's sink must not learn about this —
            // the refusal goes to whoever sent the duplicate.
            self.reject(sink.as_ref(), h.sensor_id, RejectCode::DuplicateSensor);
            return;
        }
        let mut pipeline = match (self.factory)(&h) {
            Ok(p) => p,
            Err(_) => {
                self.reject(sink.as_ref(), h.sensor_id, RejectCode::BadConfig);
                return;
            }
        };
        if pipeline.num_rx() != h.n_rx as usize {
            self.reject(sink.as_ref(), h.sensor_id, RejectCode::BadConfig);
            return;
        }
        self.metrics.sessions_opened.inc();
        // Per-sensor series register here, off the hot path: the session
        // keeps cheap handles, and the backend records its per-stage
        // (profile/detect/associate) wall times straight into registry
        // histograms on every frame-completing push.
        let label = Label::Sensor(h.sensor_id);
        pipeline.attach_stage_stats(StageStats::registered(&self.registry, label));
        self.sessions.insert(
            h.sensor_id,
            Session {
                pipeline,
                samples_per_sweep: h.samples_per_sweep,
                sink,
                next_in_seq: 0,
                out_seq: 0,
                frames_emitted: 0,
                frames: self.registry.counter("sensor", "frames", label),
            },
        );
    }

    fn close_session(&mut self, t: Teardown, only_if_conn: Option<u64>, carried: Option<ConnSink>) {
        if let Some(conn_id) = only_if_conn {
            // Scoped cleanup: silently skip sessions this connection does
            // not own (including already-closed ones).
            let owned = self
                .sessions
                .get(&t.sensor_id)
                .is_some_and(|s| s.sink.as_ref().is_some_and(|k| k.conn_id == conn_id));
            if !owned {
                return;
            }
        }
        match self.sessions.remove(&t.sensor_id) {
            Some(s) => {
                self.metrics.sessions_closed.inc();
                if let Some(hub) = &self.hub {
                    // The fusion watermark must stop waiting for this
                    // sensor (its world tracks coast until reacquired).
                    hub.send(HubMsg::SensorClosed(t.sensor_id));
                }
                self.emit(EngineEvent::SessionClosed {
                    sensor_id: t.sensor_id,
                    frames_emitted: s.frames_emitted,
                });
            }
            None => self.reject(carried.as_ref(), t.sensor_id, RejectCode::UnknownSensor),
        }
    }

    fn process_batch(&mut self, b: PooledBatch, carried: Option<ConnSink>) {
        let shape = b.shape;
        let Some(session) = self.sessions.get_mut(&shape.sensor_id) else {
            // No session to consult for a sink, but the connection that
            // carried the batch can still be told. (Dropping `b` here
            // returns its buffer to the pool.)
            self.reject(carried.as_ref(), shape.sensor_id, RejectCode::UnknownSensor);
            return;
        };
        let n_rx = session.pipeline.num_rx();
        let shape_ok = shape.n_rx as usize == n_rx
            && shape.samples_per_sweep == session.samples_per_sweep
            && b.samples.len() == shape.sample_count();
        if !shape_ok {
            let sink = session.sink.clone();
            self.reject(sink.as_ref(), shape.sensor_id, RejectCode::BadConfig);
            return;
        }
        // Sequence accounting: replays/reordering are dropped (processing
        // an old batch would corrupt the pipeline's stream state), forward
        // gaps are counted but processed — the stream must go on.
        if shape.seq < session.next_in_seq {
            self.metrics.seq_out_of_order.inc();
            let sink = session.sink.clone();
            self.reject(sink.as_ref(), shape.sensor_id, RejectCode::StaleSequence);
            return;
        }
        if shape.seq > session.next_in_seq {
            let gap = shape.seq - session.next_in_seq;
            self.metrics.seq_gaps.add(gap);
            self.recorder
                .record(AnomalyKind::SeqGap, shape.sensor_id as u64, gap, shape.seq);
        }
        session.next_in_seq = shape.seq + 1;

        // The hot loop: feed each sweep interval to the pipeline straight
        // off the pooled flat buffer (antennas are contiguous within an
        // interval, so no per-sweep slice table), collecting reports into
        // the shard's reused scratch. Quantized batches stay i16 —
        // `process_sweeps_flat_q` keeps the profile front half in fixed
        // point and dequantizes late.
        let samples = shape.samples_per_sweep as usize;
        let interval = shape.samples_per_interval();
        let mut updates = std::mem::take(&mut self.updates_scratch);
        updates.clear();
        for s in 0..shape.n_sweeps as usize {
            let range = s * interval..(s + 1) * interval;
            let report = match &b.samples {
                BatchSamples::F64(buf) => {
                    session.pipeline.process_sweeps_flat(&buf[range], samples)
                }
                BatchSamples::I16(buf, scale) => {
                    session
                        .pipeline
                        .process_sweeps_flat_q(&buf[range], samples, *scale)
                }
            };
            if let Some(report) = report {
                updates.push(report);
            }
        }
        drop(b); // samples are consumed: recycle the buffer now
        self.metrics.sweeps_processed.add(shape.n_sweeps as u64);
        if !updates.is_empty() {
            self.metrics.frames_emitted.add(updates.len() as u64);
            session.frames.add(updates.len() as u64);
            session.frames_emitted += updates.len() as u64;
            let seq = session.out_seq;
            session.out_seq += 1;
            // One sink clone per batch (not per event): the clone is just
            // a channel-handle refcount bump, and it ends the session
            // borrow so delivery can run against &self.
            let sink = session.sink.clone();
            self.deliver_updates(sink.as_ref(), shape.sensor_id, seq, &updates);
            if let Some(hub) = &self.hub {
                // Forward a copy for cross-sensor fusion — only for
                // sensors some room actually fuses; cloning reports the
                // hub would immediately drop wastes the hot path.
                if hub.wants(shape.sensor_id) {
                    hub.send(HubMsg::Reports(shape.sensor_id, updates.clone()));
                }
            }
        }
        updates.clear();
        self.updates_scratch = updates;
    }
}
