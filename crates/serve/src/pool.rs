//! Recycled buffers for the ingest and outbox hot paths.
//!
//! Every wire sweep batch used to become a freshly allocated `Vec<f64>`
//! (60 KB at the paper configuration) that died one shard later; every
//! update batch allocated its encode buffer the same way. A [`BufPool`]
//! breaks that churn: [`BufPool::get`] hands out a [`PooledBuf`] guard
//! wrapping a recycled `Vec<T>`, and dropping the guard — anywhere,
//! including mid-panic unwind — returns the vector (capacity intact) to
//! the pool. After a warmup of one buffer per queue slot, the steady
//! state allocates nothing: socket → decode → shard queue → pipeline →
//! encode → outbox runs entirely on recycled memory.
//!
//! The pool is `Clone` (a shared handle), thread-safe, and **bounded**:
//! at most `max_pooled` free vectors are retained, so a burst never turns
//! into permanently hoarded memory. [`BufPool::stats`] exposes the
//! get/miss/return counters the pool-invariant tests (and capacity
//! monitoring) read.

use crate::wire::SweepShape;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A decoded sweep batch's samples, in whichever representation the wire
/// delivered: dequantized `f64`, or the raw `i16` quantized form with its
/// dequantization scale. Quantized batches ride the whole socket → queue
/// → pipeline path in `i16` — one quarter of the f64 memory traffic —
/// and feed the fixed-point profile front half
/// (`FramePipeline::process_sweeps_flat_q`) without a dequantization pass.
#[derive(Debug)]
pub enum BatchSamples {
    /// Dequantized samples, sweep-major (see [`crate::wire::SweepBatch`]).
    F64(PooledBuf<f64>),
    /// Wire-quantized samples (`sample = q · scale`), same layout.
    I16(PooledBuf<i16>, f64),
}

impl BatchSamples {
    /// Number of samples carried, independent of representation.
    pub fn len(&self) -> usize {
        match self {
            BatchSamples::F64(b) => b.len(),
            BatchSamples::I16(b, _) => b.len(),
        }
    }

    /// `true` when no samples are carried.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A decoded sweep batch on its way to a shard: the wire header plus the
/// samples in a pooled buffer. Dropping it anywhere along the socket →
/// queue → pipeline path returns the buffer to its pool.
#[derive(Debug)]
pub struct PooledBatch {
    /// Identity and shape from the wire header.
    pub shape: SweepShape,
    /// The samples, in the representation they arrived in.
    pub samples: BatchSamples,
}

impl PooledBatch {
    /// Wraps an owned [`crate::wire::SweepBatch`] in the pooled shape
    /// (detached buffer: it frees instead of recycling). Compatibility
    /// path for direct-engine callers holding owned batches.
    pub fn from_owned(batch: crate::wire::SweepBatch) -> PooledBatch {
        PooledBatch {
            shape: batch.shape(),
            samples: BatchSamples::F64(PooledBuf::detached(batch.data)),
        }
    }

    /// Wraps an owned [`crate::wire::SweepBatchQ`], keeping the samples
    /// quantized (detached buffer; see [`Self::from_owned`]).
    pub fn from_owned_q(batch: crate::wire::SweepBatchQ) -> PooledBatch {
        PooledBatch {
            shape: batch.shape(),
            samples: BatchSamples::I16(PooledBuf::detached(batch.data), batch.scale),
        }
    }
}

/// The ingest-side buffer pools, one per wire sample representation.
/// Readers decode f64 batches into `f64s` and quantized batches into
/// `i16s`; both recycle through the same socket → queue → pipeline
/// lifecycle.
#[derive(Clone, Debug)]
pub struct SamplePools {
    /// Recycles dequantized (f64) sample buffers.
    pub f64s: BufPool<f64>,
    /// Recycles quantized (i16) sample buffers.
    pub i16s: BufPool<i16>,
}

impl SamplePools {
    /// Creates both pools, each retaining at most `max_pooled` free
    /// buffers.
    pub fn new(max_pooled: usize) -> SamplePools {
        SamplePools {
            f64s: BufPool::new(max_pooled),
            i16s: BufPool::new(max_pooled),
        }
    }
}

struct PoolShared<T> {
    free: Mutex<Vec<Vec<T>>>,
    max_pooled: usize,
    gets: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    overflow_discards: AtomicU64,
}

/// A shared, bounded pool of reusable `Vec<T>` buffers.
pub struct BufPool<T> {
    shared: Arc<PoolShared<T>>,
}

impl<T> Clone for BufPool<T> {
    fn clone(&self) -> Self {
        BufPool {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> std::fmt::Debug for BufPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufPool")
            .field("stats", &self.stats())
            .finish()
    }
}

/// A point-in-time copy of a pool's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out.
    pub gets: u64,
    /// Gets that found the free list empty and allocated a fresh vector —
    /// the pool's *population*: at steady state this stops growing.
    pub misses: u64,
    /// Guards dropped back into the pool.
    pub returns: u64,
    /// Returns discarded because the free list was already at
    /// `max_pooled` (burst memory released instead of hoarded).
    pub overflow_discards: u64,
    /// Free vectors currently pooled.
    pub free_now: usize,
}

impl<T> BufPool<T> {
    /// Creates a pool retaining at most `max_pooled` free buffers.
    pub fn new(max_pooled: usize) -> BufPool<T> {
        BufPool {
            shared: Arc::new(PoolShared {
                free: Mutex::new(Vec::new()),
                max_pooled: max_pooled.max(1),
                gets: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                returns: AtomicU64::new(0),
                overflow_discards: AtomicU64::new(0),
            }),
        }
    }

    /// Hands out an empty buffer with at least `capacity` reserved,
    /// recycled when the free list has one, freshly allocated otherwise.
    pub fn get(&self, capacity: usize) -> PooledBuf<T> {
        self.shared.gets.fetch_add(1, Ordering::Relaxed);
        let recycled = self.shared.free.lock().expect("buffer pool poisoned").pop();
        let mut vec = match recycled {
            Some(v) => v,
            None => {
                self.shared.misses.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        };
        // `reserve` is a no-op once the recycled capacity covers the ask,
        // so per-message steady state never reallocates.
        vec.reserve(capacity);
        PooledBuf {
            vec,
            pool: Some(Arc::clone(&self.shared)),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            gets: self.shared.gets.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            returns: self.shared.returns.load(Ordering::Relaxed),
            overflow_discards: self.shared.overflow_discards.load(Ordering::Relaxed),
            free_now: self.shared.free.lock().expect("buffer pool poisoned").len(),
        }
    }
}

impl<T> PoolShared<T> {
    fn put_back(&self, mut vec: Vec<T>) {
        self.returns.fetch_add(1, Ordering::Relaxed);
        vec.clear();
        let mut free = self.free.lock().expect("buffer pool poisoned");
        if free.len() < self.max_pooled {
            free.push(vec);
        } else {
            self.overflow_discards.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// An owned `Vec<T>` that returns to its [`BufPool`] on drop (including
/// drops during panic unwinding). Detached guards — made with
/// [`PooledBuf::detached`] or left behind by [`PooledBuf::into_vec`] —
/// behave like plain vectors.
pub struct PooledBuf<T> {
    vec: Vec<T>,
    pool: Option<Arc<PoolShared<T>>>,
}

impl<T> PooledBuf<T> {
    /// Wraps an already-owned vector with no pool behind it: dropping it
    /// just frees. This lets owned-`Vec` compatibility paths flow through
    /// the same pooled plumbing as recycled buffers.
    pub fn detached(vec: Vec<T>) -> PooledBuf<T> {
        PooledBuf { vec, pool: None }
    }

    /// Takes the vector out, detaching it from the pool (the pool sees
    /// neither a return nor a discard; the buffer is simply gone).
    pub fn into_vec(mut self) -> Vec<T> {
        self.pool = None;
        std::mem::take(&mut self.vec)
    }
}

impl<T> Deref for PooledBuf<T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        &self.vec
    }
}

impl<T> DerefMut for PooledBuf<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.vec
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for PooledBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.vec.len())
            .field("pooled", &self.pool.is_some())
            .finish()
    }
}

impl<T> Drop for PooledBuf<T> {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.put_back(std::mem::take(&mut self.vec));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_recycle_and_misses_stay_bounded() {
        let pool: BufPool<f64> = BufPool::new(8);
        // 10k sequential messages through a pool: after the first, every
        // get must hit the free list — the population never exceeds the
        // concurrency (here 1).
        for i in 0..10_000u64 {
            let mut buf = pool.get(512);
            buf.extend(std::iter::repeat_n(i as f64, 512));
            assert_eq!(buf.len(), 512);
        }
        let s = pool.stats();
        assert_eq!(s.gets, 10_000);
        assert_eq!(s.misses, 1, "exactly one allocation, then recycling");
        assert_eq!(s.returns, 10_000);
        assert_eq!(s.free_now, 1);
    }

    #[test]
    fn capacity_survives_the_round_trip() {
        let pool: BufPool<u8> = BufPool::new(4);
        let first = pool.get(4096);
        let ptr = first.as_ptr();
        let cap = first.capacity();
        assert!(cap >= 4096);
        drop(first);
        let again = pool.get(4096);
        assert_eq!(again.as_ptr(), ptr, "same backing allocation came back");
        assert_eq!(again.capacity(), cap);
        assert!(again.is_empty(), "recycled buffers come back cleared");
    }

    #[test]
    fn bounded_free_list_sheds_bursts() {
        let pool: BufPool<u8> = BufPool::new(2);
        let burst: Vec<_> = (0..5).map(|_| pool.get(16)).collect();
        drop(burst);
        let s = pool.stats();
        assert_eq!(s.free_now, 2, "free list capped at max_pooled");
        assert_eq!(s.overflow_discards, 3);
    }

    #[test]
    fn drop_during_panic_returns_the_buffer() {
        let pool: BufPool<f64> = BufPool::new(4);
        let pool2 = pool.clone();
        let result = std::thread::spawn(move || {
            let _held = pool2.get(64);
            panic!("worker died mid-message");
        })
        .join();
        assert!(result.is_err(), "the worker must actually have panicked");
        let s = pool.stats();
        assert_eq!(s.returns, 1, "unwind returned the in-flight buffer");
        assert_eq!(s.free_now, 1);
    }

    #[test]
    fn detached_and_into_vec_skip_the_pool() {
        let pool: BufPool<u8> = BufPool::new(4);
        drop(PooledBuf::detached(vec![1, 2, 3]));
        let taken = pool.get(8).into_vec();
        assert!(taken.is_empty());
        let s = pool.stats();
        assert_eq!(s.returns, 0);
        assert_eq!(s.free_now, 0);
    }

    #[test]
    fn pool_is_shared_across_threads() {
        let pool: BufPool<u8> = BufPool::new(64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = pool.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        let mut b = pool.get(128);
                        b.push(1);
                    }
                });
            }
        });
        let s = pool.stats();
        assert_eq!(s.gets, 4000);
        assert_eq!(s.returns, 4000);
        assert!(s.misses <= 4, "at most one live buffer per thread: {s:?}");
    }
}
