//! Engine + server integration: full wire path over in-process transports
//! (no sockets), session lifecycle, a real walker tracked end-to-end over
//! TCP loopback, and overload behavior.

use std::sync::Arc;
use witrack_core::{FramePipeline, FrameReport, WiTrackConfig};
use witrack_fmcw::SweepConfig;
use witrack_geom::Vec3;
use witrack_serve::engine::{EngineConfig, EngineEvent, OverloadPolicy, ShardedEngine, Submitted};
use witrack_serve::factory::{hello_for, witrack_factory};
use witrack_serve::server::{Server, TcpServer};
use witrack_serve::transport::{in_proc_pair, TcpTransport};
use witrack_serve::wire::{Message, PipelineKind, SweepBatch};
use witrack_serve::SensorClient;

fn reduced_base() -> WiTrackConfig {
    WiTrackConfig {
        sweep: SweepConfig {
            start_freq_hz: 5.56e8,
            bandwidth_hz: 1.69e8,
            sweep_duration_s: 1e-3,
            sample_rate_hz: 100e3,
            sweeps_per_frame: 5,
            transmit_power_w: 1e-3,
        },
        max_round_trip_m: 40.0,
        ..WiTrackConfig::witrack_default()
    }
}

fn silent_frame(base: &WiTrackConfig) -> Vec<Vec<Vec<f64>>> {
    let n = base.sweep.samples_per_sweep();
    vec![vec![vec![0.0; n]; 3]; base.sweep.sweeps_per_frame]
}

/// Dechirped sweeps for a reflector at `p`, one frame's worth.
fn frame_for(
    base: &WiTrackConfig,
    array: &witrack_geom::AntennaArray,
    p: Vec3,
) -> Vec<Vec<Vec<f64>>> {
    use std::f64::consts::PI;
    let sw = &base.sweep;
    let n = sw.samples_per_sweep();
    let one_sweep: Vec<Vec<f64>> = (0..array.num_rx())
        .map(|k| {
            let rt = array.round_trip(p, k);
            let tau = rt / 299_792_458.0;
            let beat = sw.beat_for_tof(tau);
            let phase = 2.0 * PI * sw.start_freq_hz * tau;
            (0..n)
                .map(|i| {
                    let t = i as f64 / sw.sample_rate_hz;
                    (2.0 * PI * beat * t + phase).cos()
                })
                .collect()
        })
        .collect();
    vec![one_sweep; sw.sweeps_per_frame]
}

#[test]
fn two_sensors_multiplex_one_in_process_connection() {
    let base = reduced_base();
    let server = Server::start(EngineConfig::default(), witrack_factory(base));
    let (client_end, server_end) = in_proc_pair(64);
    server.attach(server_end).unwrap();
    let mut client = SensorClient::connect(client_end).unwrap();

    client
        .hello(hello_for(&base, 1, PipelineKind::SingleTarget))
        .unwrap();
    client
        .hello(hello_for(&base, 2, PipelineKind::MultiTarget))
        .unwrap();
    let frame = silent_frame(&base);
    for seq in 0..6u64 {
        client.send_sweeps(1, seq, &frame).unwrap();
        client.send_sweeps(2, seq, &frame).unwrap();
    }
    client.teardown(1).unwrap();
    client.teardown(2).unwrap();
    let stats = client.close();
    // 6 frames per sensor, batched one frame per update batch.
    assert_eq!(stats.frames, 12, "stats: {stats:?}");
    assert_eq!(stats.rejects, 0);
    assert_eq!(stats.targets, 0, "silence tracks nobody");

    let m = server.shutdown();
    assert_eq!(m.sessions_opened, 2);
    assert_eq!(m.sessions_closed, 2);
    assert_eq!(m.frames_emitted, 12);
    assert_eq!(m.batches_dropped, 0);
}

#[test]
fn a_walker_is_tracked_over_tcp_loopback() {
    let base = reduced_base();
    let server = TcpServer::bind(
        "127.0.0.1:0",
        EngineConfig::default(),
        witrack_factory(base),
    )
    .unwrap();
    let array =
        witrack_geom::TArray::symmetric(base.array_origin, base.antenna_separation).antenna_array();

    let positions = Arc::new(std::sync::Mutex::new(Vec::<Vec3>::new()));
    let sink = Arc::clone(&positions);
    let transport = TcpTransport::connect(server.local_addr()).unwrap();
    let mut client = SensorClient::connect_with(
        transport,
        Some(Box::new(move |msg: &Message| {
            if let Message::UpdateBatch(u) = msg {
                let mut p = sink.lock().unwrap();
                p.extend(
                    u.updates
                        .iter()
                        .flat_map(|r| r.targets.iter().map(|t| t.position)),
                );
            }
        })),
    )
    .unwrap();

    client
        .hello(hello_for(&base, 11, PipelineKind::SingleTarget))
        .unwrap();
    let mut truth = Vec::new();
    for f in 0..60 {
        let s = f as f64 / 60.0;
        let p = Vec3::new(-1.0 + 2.0 * s, 4.0 + 2.0 * s, 1.2);
        truth.push(p);
        client
            .send_sweeps(11, f, &frame_for(&base, &array, p))
            .unwrap();
    }
    client.teardown(11).unwrap();
    let stats = client.close();
    assert_eq!(stats.frames, 60);
    assert!(
        stats.targets > 30,
        "walker mostly tracked, got {}",
        stats.targets
    );

    // The positions that came back over the socket are near the truth.
    let positions = positions.lock().unwrap();
    let worst = positions
        .iter()
        .map(|est| {
            truth
                .iter()
                .map(|t| est.distance(*t))
                .fold(f64::INFINITY, f64::min)
        })
        .fold(0.0_f64, f64::max);
    assert!(worst < 1.5, "worst distance to trajectory {worst}");

    let m = server.shutdown();
    assert_eq!(m.frames_emitted, 60);
    assert_eq!(m.unknown_sensor, 0);
}

/// A pipeline that burns time: forces queue buildup deterministically.
struct SlowPipeline {
    frame: u64,
}

impl FramePipeline for SlowPipeline {
    fn num_rx(&self) -> usize {
        3
    }

    fn process_sweeps(&mut self, _per_rx: &[&[f64]]) -> Option<FrameReport> {
        std::thread::sleep(std::time::Duration::from_millis(20));
        let r = FrameReport {
            frame_index: self.frame,
            time_s: 0.0,
            targets: Vec::new(),
        };
        self.frame += 1;
        Some(r)
    }

    fn reset(&mut self) {
        self.frame = 0;
    }
}

#[test]
fn drop_newest_sheds_load_and_counts_it() {
    let cfg = EngineConfig {
        num_shards: 1,
        queue_capacity: 2,
        overload: OverloadPolicy::DropNewest,
    };
    let (engine, events) = ShardedEngine::start(
        cfg,
        Arc::new(|_h: &_| Ok(Box::new(SlowPipeline { frame: 0 }) as _)),
    );
    let handle = engine.handle();
    // The hello's stream shape must match the tiny 4-sample batches the
    // flood sends (batches that disagree with the hello are refused).
    handle
        .submit(Message::Hello(witrack_serve::Hello {
            sensor_id: 0,
            kind: PipelineKind::SingleTarget,
            n_rx: 3,
            samples_per_sweep: 4,
            sweeps_per_frame: 1,
            quantized: false,
        }))
        .unwrap();
    // Flood: a 20 ms/sweep pipeline with a depth-2 queue cannot keep up
    // with 50 instantaneous one-sweep batches, so some must drop.
    let mut queued = 0;
    let mut dropped = 0;
    for seq in 0..50u64 {
        let batch = SweepBatch::from_sweeps(0, seq, &[vec![vec![0.0; 4]; 3]]);
        match handle.submit_batch(batch).unwrap() {
            Submitted::Queued => queued += 1,
            Submitted::Dropped => dropped += 1,
        }
    }
    assert!(dropped > 0, "flood never overflowed the bounded queue");
    assert_eq!(queued + dropped, 50);
    let m = engine.shutdown();
    assert_eq!(m.batches_dropped, dropped);
    assert_eq!(
        m.batches_in as i64,
        queued as i64 + 1,
        "hello + queued batches"
    );
    // The engine still emitted one report per batch it accepted.
    let emitted = events
        .try_iter()
        .filter(|e| matches!(e, EngineEvent::Updates(_)))
        .count();
    assert_eq!(emitted as u64, queued);
    assert!(
        m.max_inflight >= 2,
        "queue reached its bound, lag was observed"
    );
}

#[test]
fn wrong_sweep_length_batch_is_refused_not_a_panic() {
    let base = reduced_base();
    let (engine, events) = ShardedEngine::start(EngineConfig::default(), witrack_factory(base));
    let handle = engine.handle();
    handle
        .submit(Message::Hello(hello_for(
            &base,
            5,
            PipelineKind::SingleTarget,
        )))
        .unwrap();
    // Self-consistent wire batch whose sweeps are 10 samples instead of
    // the configured length: must bounce as BadConfig, not reach the
    // pipeline's panicking length assert and kill the shard.
    let bad = SweepBatch::from_sweeps(5, 0, &[vec![vec![0.0; 10]; 3]]);
    handle.submit_batch(bad).unwrap();
    match events.recv().unwrap() {
        EngineEvent::Rejected(r) => {
            assert_eq!(r.sensor_id, 5);
            assert_eq!(r.code, witrack_serve::RejectCode::BadConfig);
        }
        other => panic!("expected reject, got {other:?}"),
    }
    // The shard survived: a well-shaped frame still processes.
    handle
        .submit_batch(SweepBatch::from_sweeps(5, 1, &silent_frame(&base)))
        .unwrap();
    match events.recv().unwrap() {
        EngineEvent::Updates(u) => assert_eq!(u.updates.len(), 1),
        other => panic!("expected updates, got {other:?}"),
    }
    let m = engine.shutdown();
    assert_eq!(m.batches_rejected, 1);
    assert_eq!(m.frames_emitted, 1);
}

#[test]
fn refused_hello_reaches_the_client_and_leaves_no_state() {
    let base = reduced_base();
    let server = Server::start(EngineConfig::default(), witrack_factory(base));
    let (client_end, server_end) = in_proc_pair(64);
    server.attach(server_end).unwrap();
    let mut client = SensorClient::connect(client_end).unwrap();
    // A hello the factory refuses (wrong sweep shape)...
    let mut bad = hello_for(&base, 3, PipelineKind::SingleTarget);
    bad.samples_per_sweep += 1;
    client.hello(bad).unwrap();
    // ...then a corrected one for the same sensor, which must open
    // normally (the refused hello left nothing behind).
    client
        .hello(hello_for(&base, 3, PipelineKind::SingleTarget))
        .unwrap();
    client.send_sweeps(3, 0, &silent_frame(&base)).unwrap();
    // close() must not hang, the reject must have been delivered, and the
    // real session's updates must still arrive.
    let stats = client.close();
    assert_eq!(stats.rejects, 1, "the refused hello was reported");
    assert_eq!(stats.frames, 1, "the corrected session worked");
    let m = server.shutdown();
    assert_eq!(m.sessions_opened, 1);
    assert_eq!(m.sessions_closed, 1, "EOF cleanup closed the real session");
}

#[test]
fn unknown_sensor_batches_are_rejected_over_the_wire() {
    let base = reduced_base();
    let server = Server::start(EngineConfig::default(), witrack_factory(base));
    let (client_end, server_end) = in_proc_pair(64);
    server.attach(server_end).unwrap();
    let mut client = SensorClient::connect(client_end).unwrap();
    // No hello at all: every batch must bounce back as a wire-visible
    // Reject, not vanish into silent data loss.
    for seq in 0..3 {
        client.send_sweeps(9, seq, &silent_frame(&base)).unwrap();
    }
    let stats = client.close();
    assert_eq!(stats.rejects, 3, "every orphan batch was reported");
    assert_eq!(stats.frames, 0);
    let m = server.shutdown();
    assert_eq!(m.unknown_sensor, 3);
    assert_eq!(m.sessions_opened, 0);
}
