//! The quantized wire must be fidelity-neutral: i16 quantization stays
//! within its half-step bound on arbitrary signals, and a tracker fed
//! quantized batches reports the same positions (within 1 mm) as one fed
//! the f64 wire, on a real FleetSimulator scenario.

use proptest::prelude::*;
use witrack_core::{TargetReport, WiTrackConfig};
use witrack_fmcw::SweepConfig;
use witrack_serve::engine::{EngineConfig, EngineEvent, OverloadPolicy, ShardedEngine};
use witrack_serve::factory::{hello_quantized_for, witrack_factory};
use witrack_serve::wire::{Message, PipelineKind, SweepBatch, SweepBatchQ};
use witrack_sim::{FleetConfig, FleetSimulator, SimConfig};

/// Mid-resolution sweep (0.44 m bins): fine enough that the solver's
/// sub-bin refinement is not operating at the edge of its leverage — the
/// regime the 1 mm equivalence claim is about — while staying cheap
/// enough for debug-mode tests.
fn reduced_base() -> WiTrackConfig {
    WiTrackConfig {
        sweep: SweepConfig::witrack_mid(),
        max_round_trip_m: 40.0,
        ..WiTrackConfig::witrack_default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantize → dequantize stays within half a quantization step of the
    /// f64 wire, everywhere — i.e. within `peak / (2 · 32767)`, ~90 dB
    /// below the strongest sample.
    #[test]
    fn quantization_round_trip_error_is_bounded(
        samples in proptest::collection::vec(-1e4f64..1e4, 1..600),
        gain in 1e-6f64..1e6,
    ) {
        let data: Vec<f64> = samples.iter().map(|&x| x * gain).collect();
        let n = data.len();
        let b = SweepBatch {
            sensor_id: 1,
            seq: 0,
            n_sweeps: 1,
            n_rx: 1,
            samples_per_sweep: n as u32,
            data,
        };
        let q = SweepBatchQ::quantize(&b);
        let back = q.dequantize();
        let peak = b.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()));
        let bound = peak / (2.0 * i16::MAX as f64) * (1.0 + 1e-12) + f64::MIN_POSITIVE;
        for (i, (x, y)) in b.data.iter().zip(&back.data).enumerate() {
            prop_assert!(
                (x - y).abs() <= bound,
                "sample {i}: {x} vs {y} (bound {bound})"
            );
        }
        // And the wire frame itself round-trips exactly.
        let frame = witrack_serve::wire::encode(&Message::SweepBatchQ(q.clone()));
        let (decoded, used) = witrack_serve::wire::decode(&frame).unwrap();
        prop_assert_eq!(used, frame.len());
        prop_assert_eq!(decoded, Message::SweepBatchQ(q));
    }
}

/// Runs one recorded room through a fresh single-shard engine, returning
/// every emitted frame's `(index, time, targets)`. `quantize` selects the
/// wire form.
fn track_room(
    base: &WiTrackConfig,
    room: &[Vec<Vec<f64>>],
    quantize: bool,
) -> Vec<(u64, f64, Vec<TargetReport>)> {
    let (engine, events) = ShardedEngine::start(
        EngineConfig {
            num_shards: 1,
            queue_capacity: 8,
            overload: OverloadPolicy::Block,
        },
        witrack_factory(*base),
    );
    let handle = engine.handle();
    handle
        .submit(Message::Hello(hello_quantized_for(
            base,
            0,
            PipelineKind::SingleTarget,
        )))
        .unwrap();
    for (seq, frame) in room.chunks_exact(base.sweep.sweeps_per_frame).enumerate() {
        let batch = SweepBatch::from_sweeps(0, seq as u64, frame);
        let msg = if quantize {
            Message::SweepBatchQ(SweepBatchQ::quantize(&batch))
        } else {
            Message::SweepBatch(batch)
        };
        handle.submit(msg).unwrap();
    }
    engine.shutdown();
    let mut out = Vec::new();
    for event in events {
        if let EngineEvent::Updates(u) = event {
            for r in u.updates {
                out.push((r.frame_index, r.time_s, r.targets));
            }
        }
    }
    out
}

fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// End-to-end equivalence on a FleetSimulator walker: a tracker fed the
/// quantized wire must be exactly as *accurate* (3D error against ground
/// truth) as one fed the f64 wire — medians within 1 mm — and the two
/// trajectories must agree frame by frame to well within a range bin.
///
/// The per-frame positions themselves cannot be bit-identical: the
/// quantization step is set by the batch's peak sample, which the strong
/// static wall flash dominates, so on the ~40 dB weaker body echo the
/// i16 wire is equivalent to a clean ≤16-bit ADC, not to f64 — exactly
/// the fidelity real front ends have. What must survive quantization is
/// the tracking *quality*, and that is what this asserts.
#[test]
fn quantized_wire_is_as_accurate_as_f64_within_one_millimeter() {
    let base = reduced_base();
    let fleet_cfg = FleetConfig {
        rooms: 1,
        max_walkers_per_room: 1,
        duration_s: 0.8,
        sim: SimConfig {
            sweep: base.sweep,
            noise_std: 0.05,
            seed: 23,
        },
    };
    // Two identical fleets (construction is deterministic): one consumed
    // by recording, one kept for ground-truth queries.
    let rooms = FleetSimulator::new(fleet_cfg).record_all();
    let truth_fleet = FleetSimulator::new(fleet_cfg);
    let f64_out = track_room(&base, &rooms[0], false);
    let q_out = track_room(&base, &rooms[0], true);
    assert_eq!(f64_out.len(), q_out.len(), "same frame cadence");

    let mut errs_f64 = Vec::new();
    let mut errs_q = Vec::new();
    let mut worst_divergence = 0.0_f64;
    for ((fi_a, t_a, ta), (fi_b, _, tb)) in f64_out.iter().zip(&q_out) {
        assert_eq!(fi_a, fi_b);
        assert_eq!(
            ta.len(),
            tb.len(),
            "frame {fi_a}: target counts diverged ({ta:?} vs {tb:?})"
        );
        let truth = truth_fleet.room(0).surface_truth(0, *t_a);
        for (a, b) in ta.iter().zip(tb) {
            errs_f64.push(a.position.distance(truth));
            errs_q.push(b.position.distance(truth));
            worst_divergence = worst_divergence.max(a.position.distance(b.position));
        }
    }
    assert!(
        errs_f64.len() > 20,
        "the walker must actually be tracked (got {} targets)",
        errs_f64.len()
    );
    let (med_f64, med_q) = (median(&errs_f64), median(&errs_q));
    let accuracy_gap = (med_f64 - med_q).abs();
    assert!(
        accuracy_gap < 1e-3,
        "quantization changed tracker accuracy by {accuracy_gap} m \
         (f64 median error {med_f64} m, i16 median error {med_q} m)"
    );
    // And the two trajectories agree pointwise far inside a range bin
    // (0.44 m here): the wires are the same tracker, not two trackers of
    // coincidentally similar quality.
    assert!(
        worst_divergence < 0.05,
        "trajectories diverged by {worst_divergence} m"
    );
}
