//! Telemetry over the wire: `StatsQuery`/`StatsReport` round-trips,
//! version gating, the end-to-end TCP stats pull, the sessions
//! opened/closed balance, and flight-recorder anomaly capture.

use std::sync::Arc;
use witrack_core::WiTrackConfig;
use witrack_fmcw::SweepConfig;
use witrack_obs::{AnomalyKind, Label};
use witrack_serve::engine::{EngineConfig, OverloadPolicy, ShardedEngine, Submitted};
use witrack_serve::factory::{hello_for, witrack_factory};
use witrack_serve::server::TcpServer;
use witrack_serve::transport::TcpTransport;
use witrack_serve::wire::{
    self, HistoWire, Message, PipelineKind, StatsQuery, StatsReport, StatsSample, StatsValue,
    WireError,
};
use witrack_serve::SensorClient;

fn reduced_base() -> WiTrackConfig {
    WiTrackConfig {
        sweep: SweepConfig {
            start_freq_hz: 5.56e8,
            bandwidth_hz: 1.69e8,
            sweep_duration_s: 1e-3,
            sample_rate_hz: 100e3,
            sweeps_per_frame: 5,
            transmit_power_w: 1e-3,
        },
        max_round_trip_m: 40.0,
        ..WiTrackConfig::witrack_default()
    }
}

fn silent_frame(base: &WiTrackConfig) -> Vec<Vec<Vec<f64>>> {
    let n = base.sweep.samples_per_sweep();
    vec![vec![vec![0.0; n]; 3]; base.sweep.sweeps_per_frame]
}

fn sample_report() -> StatsReport {
    StatsReport {
        samples: vec![
            StatsSample {
                subsystem: "engine".into(),
                name: "batches_in".into(),
                label: Label::Global,
                value: StatsValue::Counter(42),
            },
            StatsSample {
                subsystem: "shard".into(),
                name: "queue_depth".into(),
                label: Label::Shard(3),
                value: StatsValue::Gauge(-2),
            },
            StatsSample {
                subsystem: "pipeline".into(),
                name: "profile_ns".into(),
                label: Label::Sensor(7),
                value: StatsValue::Histo(HistoWire {
                    count: 10,
                    sum: 1000,
                    min: 50,
                    max: 300,
                    p50: 90,
                    p90: 250,
                    p99: 300,
                }),
            },
        ],
    }
}

#[test]
fn stats_messages_round_trip() {
    for msg in [
        Message::StatsQuery(StatsQuery { flags: 0 }),
        Message::StatsReport(sample_report()),
        Message::StatsReport(StatsReport::default()),
    ] {
        let bytes = wire::encode(&msg);
        let (back, used) = wire::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, msg);
    }
}

#[test]
fn truncated_stats_report_is_rejected() {
    let bytes = wire::encode(&Message::StatsReport(sample_report()));
    // A partial buffer is Incomplete (read more); corrupting the header's
    // payload length to claim a shorter frame must yield BadPayload,
    // never a panic or a bogus decode.
    match wire::decode(&bytes[..bytes.len() - 4]) {
        Err(WireError::Incomplete { needed }) => assert_eq!(needed, bytes.len()),
        other => panic!("expected Incomplete, got {other:?}"),
    }
    let mut clipped = bytes.clone();
    let short = (bytes.len() - 12 - 4) as u32;
    clipped[8..12].copy_from_slice(&short.to_le_bytes());
    clipped.truncate(12 + short as usize);
    match wire::decode(&clipped) {
        Err(WireError::BadPayload(_)) => {}
        other => panic!("expected BadPayload, got {other:?}"),
    }
}

#[test]
fn v1_frames_cannot_carry_stats() {
    let mut query = wire::encode(&Message::StatsQuery(StatsQuery { flags: 0 }));
    assert_eq!(query[4], wire::VERSION, "stats messages encode as current");
    query[4] = 1; // forge a v1 frame claiming type 10
    match wire::decode(&query) {
        Err(WireError::UnknownType(10)) => {}
        other => panic!("expected UnknownType(10), got {other:?}"),
    }
}

/// The acceptance-path test: a `SensorClient` pushes real traffic over
/// TCP, pulls a `StatsReport`, and the snapshot shows nonzero per-shard
/// queue-depth accounting, per-sensor frame counts, and per-stage
/// latency quantiles.
#[test]
fn tcp_stats_pull_reflects_pushed_frames() {
    let base = reduced_base();
    let server = TcpServer::bind(
        "127.0.0.1:0",
        EngineConfig {
            num_shards: 2,
            ..EngineConfig::default()
        },
        witrack_factory(base),
    )
    .unwrap();
    let addr = server.local_addr();
    let mut client = SensorClient::connect(TcpTransport::new(
        std::net::TcpStream::connect(addr).unwrap(),
    ))
    .unwrap();

    client
        .hello(hello_for(&base, 7, PipelineKind::SingleTarget))
        .unwrap();
    let frame = silent_frame(&base);
    for seq in 0..8u64 {
        client.send_sweeps(7, seq, &frame).unwrap();
    }
    client.query_stats().unwrap();
    // The engine answers from whatever has been processed when the query
    // lands; poll until the per-sensor frame counter covers all traffic.
    let report = loop {
        if let Some(r) = client.last_stats() {
            if let Some(s) = r.find("sensor", "frames", Label::Sensor(7)) {
                if s.value == StatsValue::Counter(8) {
                    break r;
                }
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        client.query_stats().unwrap();
    };

    // Per-shard queue accounting exists for every shard, and sensor 7's
    // shard (7 % 2 == 1) saw its messages: depth returned to zero and
    // the wait/service histograms are populated.
    let depth = report
        .find("shard", "queue_depth", Label::Shard(1))
        .expect("per-shard queue depth");
    assert_eq!(depth.value, StatsValue::Gauge(0));
    for name in ["queue_wait_ns", "dequeue_to_report_ns"] {
        let s = report
            .find("shard", name, Label::Shard(1))
            .unwrap_or_else(|| panic!("missing shard series {name}"));
        let StatsValue::Histo(h) = s.value else {
            panic!("{name} is not a histogram");
        };
        assert!(h.count >= 8, "{name} saw all 8 batches: {h:?}");
        assert!(h.p50 > 0 && h.p50 <= h.p99, "{name} quantiles: {h:?}");
    }

    // Per-stage pipeline latency: profile/detect record once per antenna
    // on each of the 8 frame-completing sweeps (3 rx antennas), the
    // associate solve once per frame; p50/p99 populated and ordered.
    for (stage, expect) in [("profile_ns", 24), ("detect_ns", 24), ("associate_ns", 8)] {
        let s = report
            .find("pipeline", stage, Label::Sensor(7))
            .unwrap_or_else(|| panic!("missing pipeline stage {stage}"));
        let StatsValue::Histo(h) = s.value else {
            panic!("{stage} is not a histogram");
        };
        assert_eq!(h.count, expect, "{stage} timed every frame");
        assert!(
            h.p50 > 0 && h.p50 <= h.p99 && h.p99 <= h.max,
            "{stage}: {h:?}"
        );
    }

    // Engine-wide counters travel in the same report.
    let frames = report
        .find("engine", "frames_emitted", Label::Global)
        .expect("engine frames_emitted");
    assert_eq!(frames.value, StatsValue::Counter(8));

    client.teardown(7).unwrap();
    client.close();
    server.shutdown();
}

/// Satellite: sessions closed by a dropped connection (no `Teardown`)
/// and sessions still open at engine shutdown must still count, so
/// `sessions_opened == sessions_closed` once the engine is down.
#[test]
fn sessions_balance_without_teardown() {
    let base = reduced_base();
    let server = TcpServer::bind(
        "127.0.0.1:0",
        EngineConfig::default(),
        witrack_factory(base),
    )
    .unwrap();
    let addr = server.local_addr();

    // Connection 1: hello + drop the connection without teardown
    // (connection-scoped cleanup closes it).
    let mut c1 = SensorClient::connect(TcpTransport::new(
        std::net::TcpStream::connect(addr).unwrap(),
    ))
    .unwrap();
    c1.hello(hello_for(&base, 1, PipelineKind::SingleTarget))
        .unwrap();
    let frame = silent_frame(&base);
    c1.send_sweeps(1, 0, &frame).unwrap();
    c1.close(); // EOF, no Teardown

    // Wait for the scoped cleanup to land.
    while server.metrics().sessions_closed < 1 {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let m = server.shutdown();
    assert_eq!(m.sessions_opened, 1);
    assert_eq!(
        m.sessions_closed, m.sessions_opened,
        "every opened session counts as closed: {m:?}"
    );
}

/// Sessions abandoned with their connection still up (no EOF cleanup
/// possible) close — and count — at engine shutdown.
#[test]
fn shutdown_closes_abandoned_sessions() {
    let base = reduced_base();
    let (engine, _events) = ShardedEngine::start(
        EngineConfig {
            num_shards: 2,
            ..EngineConfig::default()
        },
        witrack_factory(base),
    );
    let handle = engine.handle();
    for sensor in [1u32, 2, 3] {
        handle
            .submit(Message::Hello(hello_for(
                &base,
                sensor,
                PipelineKind::SingleTarget,
            )))
            .unwrap();
    }
    let m = engine.shutdown();
    assert_eq!(m.sessions_opened, 3);
    assert_eq!(m.sessions_closed, 3, "shutdown closes abandoned sessions");
}

/// Induced anomalies land in the flight recorder with their labels:
/// a sequence gap, a reject (stale sequence), and an ingress drop.
#[test]
fn flight_recorder_captures_induced_anomalies() {
    let base = reduced_base();
    let (engine, events) = ShardedEngine::start(
        EngineConfig {
            num_shards: 1,
            queue_capacity: 1,
            overload: OverloadPolicy::DropNewest,
        },
        witrack_factory(base),
    );
    let handle = engine.handle();
    handle
        .submit(Message::Hello(hello_for(
            &base,
            5,
            PipelineKind::SingleTarget,
        )))
        .unwrap();
    let frame = silent_frame(&base);

    // A depth-1 DropNewest queue sheds whenever the worker is behind, so
    // the batches that *induce* the gap and the reject retry until queued.
    let submit_queued = |seq: u64| loop {
        let s = handle
            .submit_batch(wire::SweepBatch::from_sweeps(5, seq, &frame))
            .unwrap();
        if s == Submitted::Queued {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    };
    // Seq 0, then jump to 3: a gap of 2.
    submit_queued(0);
    submit_queued(3);
    // Replay seq 0: a stale-sequence reject.
    submit_queued(0);
    // Flood a depth-1 queue until a drop is recorded.
    let mut dropped = false;
    for seq in 4..200u64 {
        if handle
            .submit_batch(wire::SweepBatch::from_sweeps(5, seq, &frame))
            .unwrap()
            == Submitted::Dropped
        {
            dropped = true;
            break;
        }
    }
    assert!(dropped, "a depth-1 queue under flood must drop");
    drop(events);
    let recorder = Arc::clone(engine.recorder());
    engine.shutdown();

    let dump = recorder.dump();
    let gap = dump
        .iter()
        .find(|a| a.kind == AnomalyKind::SeqGap)
        .expect("seq gap recorded");
    assert_eq!(gap.a, 5, "gap labeled with its sensor");
    assert_eq!(gap.b, 2, "gap size recorded");
    let reject = dump
        .iter()
        .find(|a| a.kind == AnomalyKind::Reject)
        .expect("reject recorded");
    assert_eq!(reject.a, 5, "reject labeled with its sensor");
    let drop_rec = dump
        .iter()
        .find(|a| a.kind == AnomalyKind::Drop)
        .expect("ingress drop recorded");
    assert_eq!(drop_rec.a, 5, "drop labeled with its sensor");
    assert_eq!(drop_rec.b, 0, "drop labeled with its shard");
    // The text dump names every kind it holds.
    let text = recorder.render_text();
    for needle in ["seq_gap", "reject", "drop"] {
        assert!(text.contains(needle), "dump text missing {needle}: {text}");
    }
}
