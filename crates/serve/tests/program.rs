//! Programmable subscriptions (wire v3), end to end: decoder fuzzing
//! (malformed filter programs must reject, never panic), install-time
//! `BadProgram` rejects over the wire, `SubscribeAck` plumbing, the
//! unsubscribe path actually stopping hub work, and the deprecated v2
//! `Subscribe` shim staying wire-compatible.
//!
//! The end-to-end tests drive the hub through a stub [`FramePipeline`]
//! whose "walker" oscillates across a zone boundary — real RF simulation
//! is exercised elsewhere (`tests/world.rs`); here the subject is the
//! subscription machinery, so frames must be cheap and deterministic.

use proptest::prelude::*;
use std::sync::{Arc, Mutex};
use witrack_core::{FramePipeline, FrameReport, TargetReport};
use witrack_fuse::{FuseConfig, Registration, Zone};
use witrack_geom::{RigidTransform, Vec3};
use witrack_serve::engine::PipelineFactory;
use witrack_serve::hub::WorldConfig;
use witrack_serve::program::MAX_PROGRAM_OPS;
use witrack_serve::transport::{in_proc_pair, TransportTx};
use witrack_serve::wire::{
    self, Hello, Message, PipelineKind, RejectCode, Subscribe, SubscribeAck, SubscribeV3,
};
use witrack_serve::{
    EventKind, FilterProgram, MetricsSnapshot, Op, SensorClient, Server, SubscriptionBuilder,
};

const ROOM: u32 = 3;
const FRAME_S: f64 = 0.1;

// ---------------------------------------------------------------------------
// Decoder fuzzing: hostile bytes must fail cleanly.

/// Builds a type-12 (`SubscribeV3`) frame around an arbitrary payload.
fn v3_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(wire::HEADER_LEN + payload.len());
    frame.extend_from_slice(&wire::MAGIC.to_le_bytes());
    frame.push(wire::VERSION);
    frame.push(12); // SubscribeV3
    frame.extend_from_slice(&0u16.to_le_bytes()); // flags
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes in a `SubscribeV3` payload: the decoder returns
    /// `Ok` or a structured error, never panics — and anything it does
    /// accept must then compile or reject without panicking either.
    #[test]
    fn arbitrary_subscribe_payloads_never_panic(
        payload in collection::vec((0u32..256).prop_map(|b| b as u8), 0..160),
    ) {
        if let Ok((Message::SubscribeV3(sub), used)) = wire::decode(&v3_frame(&payload)) {
            prop_assert_eq!(used, wire::HEADER_LEN + payload.len());
            let _ = sub.program.compile();
        }
    }

    /// Structured-but-random op records: every record the decoder lets
    /// through must survive compilation (either verdict) and, when valid,
    /// evaluation — the server installs exactly this path.
    #[test]
    fn random_op_records_decode_compile_and_eval_without_panicking(
        records in collection::vec((0u8..12, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX), 0..12),
    ) {
        let mut payload = Vec::new();
        payload.extend_from_slice(&ROOM.to_le_bytes());
        payload.extend_from_slice(&7u64.to_le_bytes()); // sub_id
        payload.extend_from_slice(&0b11u16.to_le_bytes()); // world + events
        payload.extend_from_slice(&0u16.to_le_bytes());
        payload.extend_from_slice(&0f64.to_le_bytes()); // no rate cap
        payload.extend_from_slice(&(records.len() as u16).to_le_bytes());
        for &(code, a, b, f_bits) in &records {
            payload.push(code);
            payload.extend_from_slice(&(a as u32).to_le_bytes());
            payload.extend_from_slice(&(b as u32).to_le_bytes());
            // Raw bit patterns cover NaN, infinities, and negatives.
            payload.extend_from_slice(&f_bits.to_le_bytes());
        }
        if let Ok((Message::SubscribeV3(sub), _)) = wire::decode(&v3_frame(&payload)) {
            if let Ok(compiled) = sub.program.compile() {
                let mut state = compiled.new_state();
                for (i, kind) in [EventKind::Fall, EventKind::ZoneEntered, EventKind::OccupancyChanged]
                    .into_iter()
                    .enumerate()
                {
                    let ctx = witrack_serve::EventCtx {
                        kind: kind.wire_kind(),
                        zone: Some(i as u32),
                        track: Some(i as u64),
                        count: i as u32,
                        time_s: i as f64,
                    };
                    let verdict = compiled.eval(&mut state, &ctx);
                    // A rate-limited evaluation is by definition a
                    // suppressed would-be match, never also a match.
                    prop_assert!(!(verdict.matched && verdict.rate_limited));
                }
            }
        }
    }

    /// Programs built from the valid op vocabulary round-trip the wire
    /// bit-exactly (stack-valid or not — transport is agnostic).
    #[test]
    fn structurally_valid_programs_round_trip(
        raw_ops in collection::vec((1u8..10, 0u32..256, 0u32..256, 0u64..1_000_001), 0..10),
        sub_id in 0u64..u64::MAX,
        hz in 0f64..500.0,
    ) {
        let ops: Vec<Op> = raw_ops
            .iter()
            .map(|&(code, a, b, f)| {
                let f = f as f64 / 1e3;
                match code {
                    1 => Op::KindMask((a & 0xFF) as u16),
                    2 => Op::ZoneEq(a),
                    3 => Op::TrackEq((a as u64) | ((b as u64) << 32)),
                    4 => Op::And,
                    5 => Op::Or,
                    6 => Op::Not,
                    7 => Op::Debounce { min_interval_s: f },
                    8 => Op::RateLimit { per_s: f, burst: a },
                    _ => Op::OccupancyAbove { count: a, hold_s: f },
                }
            })
            .collect();
        let sub = SubscribeV3 {
            room_id: ROOM,
            sub_id,
            world_updates: true,
            events: true,
            max_update_hz: hz,
            program: FilterProgram { ops },
        };
        let frame = wire::encode(&Message::SubscribeV3(sub.clone()));
        let (back, used) = wire::decode(&frame).expect("round trip");
        prop_assert_eq!(used, frame.len());
        prop_assert_eq!(back, Message::SubscribeV3(sub));
    }
}

#[test]
fn oversized_programs_are_refused_at_decode() {
    let mut payload = Vec::new();
    payload.extend_from_slice(&ROOM.to_le_bytes());
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&0b11u16.to_le_bytes());
    payload.extend_from_slice(&0u16.to_le_bytes());
    payload.extend_from_slice(&0f64.to_le_bytes());
    payload.extend_from_slice(&((MAX_PROGRAM_OPS + 1) as u16).to_le_bytes());
    // No op records at all: the count alone must trip the budget check
    // before any allocation is sized from it.
    match wire::decode(&v3_frame(&payload)) {
        Err(wire::WireError::BadPayload(_)) => {}
        other => panic!("expected BadPayload, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// A cheap deterministic world: stub pipeline → fusion hub → subscriber.

/// A fake tracker: its lone target shuttles across `y = BOUNDARY_M`, so
/// every run emits `TrackBorn`, `ZoneEntered`/`ZoneExited`, and
/// `OccupancyChanged` events at a known cadence — no RF involved.
struct WalkerStub {
    frame: u64,
}

const BOUNDARY_M: f64 = 0.75;

impl FramePipeline for WalkerStub {
    fn num_rx(&self) -> usize {
        1
    }

    fn process_sweeps(&mut self, _per_rx: &[&[f64]]) -> Option<FrameReport> {
        let i = self.frame;
        self.frame += 1;
        // Triangle wave, period 20 frames, 0..1.5 m at 1.5 m/s — slow
        // enough to survive the fusion engine's speed gate.
        let phase = (i % 20) as i64;
        let y = (phase - 10).abs() as f64 * 0.15;
        Some(FrameReport {
            frame_index: i,
            time_s: i as f64 * FRAME_S,
            targets: vec![TargetReport {
                id: Some(1),
                position: Vec3::new(0.0, y, 1.0),
                velocity: None,
                held: false,
                pos_var: Some(Vec3::new(0.01, 0.01, 0.01)),
                innovation: None,
            }],
        })
    }

    fn reset(&mut self) {
        self.frame = 0;
    }
}

fn stub_factory() -> Arc<PipelineFactory> {
    Arc::new(|_hello: &Hello| Ok(Box::new(WalkerStub { frame: 0 }) as Box<dyn FramePipeline>))
}

fn stub_hello(sensor_id: u32) -> Hello {
    Hello {
        sensor_id,
        kind: PipelineKind::SingleTarget,
        n_rx: 1,
        samples_per_sweep: 1,
        sweeps_per_frame: 1,
        quantized: false,
    }
}

fn stub_world() -> WorldConfig {
    let fuse = FuseConfig::builder()
        .frame_period_s(FRAME_S)
        .zone(Zone {
            id: 5,
            name: "near end".into(),
            x: (-1.0, 1.0),
            y: (0.0, BOUNDARY_M),
        })
        // Wall-clock liveness has no business in a test that pauses
        // between streaming phases.
        .suspect_timeout_s(0.0)
        .build();
    WorldConfig::single_room(
        ROOM,
        fuse,
        Registration::new().with_sensor(0, RigidTransform::IDENTITY),
    )
}

/// One tiny batch per frame: 1 sweep × 1 rx × 1 sample.
fn stream_frames(client: &mut SensorClient<impl witrack_serve::Transport>, seq0: u64, n: u64) {
    for seq in seq0..seq0 + n {
        client
            .send_sweeps(0, seq, &[vec![vec![0.0]]])
            .expect("send stub frame");
    }
}

fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !done() {
        assert!(std::time::Instant::now() < deadline, "timed out: {what}");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

/// Polls the engine's metrics until two consecutive reads agree — the
/// in-flight pipeline work has drained into the hub's counters.
fn settled_metrics(server: &Server) -> MetricsSnapshot {
    let mut prev = server.metrics();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(40));
        let next = server.metrics();
        if next == prev {
            return next;
        }
        prev = next;
    }
}

// ---------------------------------------------------------------------------
// Install-time validation over the wire.

#[test]
fn bad_program_is_rejected_and_the_connection_survives() {
    let server = Server::builder(stub_factory()).world(stub_world()).start();
    let (client_end, server_end) = in_proc_pair(32);
    server.attach(server_end).expect("attach");

    let seen: Arc<Mutex<(Vec<wire::Reject>, Vec<SubscribeAck>)>> =
        Arc::new(Mutex::new((Vec::new(), Vec::new())));
    let sink = Arc::clone(&seen);
    let mut client = SensorClient::connect_with(
        client_end,
        Some(Box::new(move |msg: &Message| {
            let mut s = sink.lock().expect("sink poisoned");
            match msg {
                Message::Reject(r) => s.0.push(*r),
                Message::SubscribeAck(a) => s.1.push(*a),
                _ => {}
            }
        })),
    )
    .expect("connect");

    // Stack-invalid: `And` with an empty stack. It decodes (transport is
    // structural) but must be refused at install time.
    client
        .subscribe_with(SubscribeV3 {
            room_id: ROOM,
            sub_id: 1,
            world_updates: true,
            events: true,
            max_update_hz: 0.0,
            program: FilterProgram { ops: vec![Op::And] },
        })
        .expect("send bad program");
    // The same connection then installs a valid subscription: a rejected
    // program must poison neither the connection nor later subscribes.
    client
        .subscribe_with(SubscriptionBuilder::room(ROOM).id(2).build())
        .expect("send good program");

    wait_until("ack for the valid subscription", || {
        client.stats().subscribe_acks == 1
    });
    let stats = client.close();
    server.shutdown();

    assert_eq!(stats.rejects, 1, "exactly the bad program is refused");
    let (rejects, acks) = Arc::try_unwrap(seen)
        .unwrap_or_else(|_| panic!("sink still shared"))
        .into_inner()
        .expect("sink poisoned");
    assert_eq!(rejects.len(), 1);
    assert_eq!(rejects[0].code, RejectCode::BadProgram);
    assert_eq!(rejects[0].sensor_id, ROOM, "reject names the room");
    assert_eq!(acks.len(), 1);
    assert_eq!(acks[0].room_id, ROOM);
    assert_eq!(acks[0].sub_id, 2, "ack echoes the client-chosen id");
    assert_eq!(acks[0].status, 0);
}

// ---------------------------------------------------------------------------
// The redesigned lifecycle: filter, counters, unsubscribe-stops-work.

#[test]
fn unsubscribe_returns_final_counters_and_stops_hub_evaluation() {
    let server = Server::builder(stub_factory()).world(stub_world()).start();
    let (client_end, server_end) = in_proc_pair(64);
    server.attach(server_end).expect("attach");
    let mut client = SensorClient::connect(client_end).expect("connect");

    const SUB: u64 = 42;
    client
        .subscribe_with(
            SubscriptionBuilder::room(ROOM)
                .events(EventKind::ZoneEntered | EventKind::ZoneExited)
                .id(SUB)
                .build(),
        )
        .expect("subscribe");
    wait_until("subscribe ack", || client.stats().subscribe_acks == 1);
    client.hello(stub_hello(0)).expect("hello");

    // Phase 1: the walker shuttles across the zone boundary; the filter
    // runs and zone events reach the subscriber.
    stream_frames(&mut client, 0, 60);
    wait_until("zone events at the subscriber", || {
        client.stats().world_events >= 4
    });
    let mid = settled_metrics(&server);
    assert!(mid.events_evaluated > 0, "the hub never ran the filter");
    assert!(mid.events_matched > 0, "the filter never matched");

    // Unsubscribe: the final per-subscription counters come back.
    client.unsubscribe(ROOM, SUB).expect("unsubscribe");
    wait_until("final subscription stats", || {
        client.last_subscription_stats().is_some()
    });
    let final_stats = client.last_subscription_stats().expect("stats polled");
    assert_eq!(final_stats.room_id, ROOM);
    assert_eq!(final_stats.sub_id, SUB);
    assert!(final_stats.evaluated > 0, "counters reflect hub work");
    assert!(final_stats.matched <= final_stats.evaluated);
    assert!(final_stats.shed <= final_stats.matched);

    // Phase 2: same traffic, no subscription. Events keep happening but
    // no filter runs and no bytes are offered — the closed subscription
    // consumes zero hub work.
    let before = settled_metrics(&server);
    stream_frames(&mut client, 60, 60);
    wait_until("phase-2 events at the hub", || {
        server.metrics().world_events > before.world_events
    });
    let after = settled_metrics(&server);
    assert_eq!(
        after.events_evaluated, before.events_evaluated,
        "a closed subscription still consumed evaluations"
    );
    assert_eq!(
        after.world_bytes, before.world_bytes,
        "a closed subscription was still encoded for"
    );

    let m = server.metrics();
    assert_eq!(m.subscriptions_opened, 1);
    assert_eq!(m.subscriptions_closed, 1);
    client.close();
    server.shutdown();
}

#[test]
fn unknown_unsubscribe_is_rejected() {
    let server = Server::builder(stub_factory()).world(stub_world()).start();
    let (client_end, server_end) = in_proc_pair(8);
    server.attach(server_end).expect("attach");
    let mut client = SensorClient::connect(client_end).expect("connect");
    client.unsubscribe(ROOM, 999).expect("send");
    wait_until("reject for the unknown pair", || {
        client.stats().rejects == 1
    });
    assert!(client.last_subscription_stats().is_none());
    client.close();
    server.shutdown();
}

/// A selective filter does less delivery work than a match-all sibling
/// on the same connection: the zone-entry subscriber takes a strict
/// subset of the firehose subscriber's matches.
#[test]
fn selective_filters_match_a_strict_subset() {
    let server = Server::builder(stub_factory()).world(stub_world()).start();
    let (client_end, server_end) = in_proc_pair(64);
    server.attach(server_end).expect("attach");
    let mut client = SensorClient::connect(client_end).expect("connect");

    client
        .subscribe_with(SubscriptionBuilder::room(ROOM).id(1).build())
        .expect("subscribe firehose");
    client
        .subscribe_with(
            SubscriptionBuilder::room(ROOM)
                .events(EventKind::ZoneEntered)
                .zone(5)
                .id(2)
                .world_updates(false)
                .build(),
        )
        .expect("subscribe selective");
    wait_until("both acks", || client.stats().subscribe_acks == 2);
    client.hello(stub_hello(0)).expect("hello");
    stream_frames(&mut client, 0, 80);
    wait_until("events flowing", || client.stats().world_events >= 6);

    client.unsubscribe(ROOM, 2).expect("unsubscribe selective");
    wait_until("selective stats", || {
        client
            .last_subscription_stats()
            .is_some_and(|s| s.sub_id == 2)
    });
    let selective = client.last_subscription_stats().expect("selective");
    client.unsubscribe(ROOM, 1).expect("unsubscribe firehose");
    wait_until("firehose stats", || {
        client
            .last_subscription_stats()
            .is_some_and(|s| s.sub_id == 1)
    });
    let firehose = client.last_subscription_stats().expect("firehose");
    client.close();
    server.shutdown();

    assert!(firehose.matched > 0, "firehose saw events");
    assert!(selective.matched > 0, "the walker did enter the zone");
    assert!(
        selective.matched < firehose.matched,
        "zone-entries ({}) must be a strict subset of all events ({})",
        selective.matched,
        firehose.matched
    );
}

// ---------------------------------------------------------------------------
// The deprecated v2 shim.

/// An old client speaking wire-v2 `Subscribe` still gets the room
/// stream — no ack (the type predates acks), same updates and events.
/// The frame goes over the raw transport: no current client API emits
/// v2 `Subscribe` anymore, but the server must keep honouring it.
#[test]
fn v2_subscribe_shim_still_serves_the_world_stream() {
    let server = Server::builder(stub_factory()).world(stub_world()).start();
    let (client_end, server_end) = in_proc_pair(64);
    server.attach(server_end).expect("attach");
    let mut client = SensorClient::connect(client_end).expect("connect");

    client
        .tx()
        .send_msg(&Message::Subscribe(Subscribe::all(ROOM)))
        .expect("v2 subscribe");
    client.hello(stub_hello(0)).expect("hello");
    stream_frames(&mut client, 0, 60);
    wait_until("world stream over the v2 shim", || {
        let s = client.stats();
        s.world_updates > 0 && s.world_events > 0
    });
    let stats = client.close();
    let m = server.shutdown();

    assert_eq!(stats.rejects, 0);
    assert_eq!(
        stats.subscribe_acks, 0,
        "v2 clients must not receive v3 ack frames"
    );
    assert_eq!(m.subscriptions_opened, 1, "the shim installs one sub");
}
