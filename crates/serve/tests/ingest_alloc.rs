//! Counting-allocator proof that the steady-state ingest path — wire
//! frame off the transport, pooled decode (quantized batches staying
//! i16 end to end), shard dispatch, pipeline entry, buffer recycle —
//! performs **zero** heap allocations per message after warmup.
//!
//! This file is its own test binary on purpose: a global counting
//! allocator sees every thread in the process, so the measurement must
//! not share a process with concurrently-running tests. The pipeline
//! behind the trait is a no-op stub — the WiTrack pipelines' internal
//! per-frame report assembly is their own concern; this measures the
//! serving layer's data plane.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use witrack_core::{FramePipeline, FrameReport};
use witrack_serve::engine::{EngineConfig, OverloadPolicy, ShardedEngine};
use witrack_serve::transport::{in_proc_pair, RxMsg, Transport, TransportRx, TransportTx};
use witrack_serve::wire::{self, Hello, Message, PipelineKind, SweepBatchQ};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

static MEASURING: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
static SIZES: [AtomicU64; 8] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let n = ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        if MEASURING.load(Ordering::Relaxed) {
            SIZES[(n % 8) as usize].store(layout.size() as u64, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let n = ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        if MEASURING.load(Ordering::Relaxed) {
            SIZES[(n % 8) as usize].store((new_size as u64) | (1 << 63), Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// A pipeline that consumes sweeps without touching the heap.
struct NullPipeline {
    n_rx: usize,
    sweeps: u64,
}

impl FramePipeline for NullPipeline {
    fn num_rx(&self) -> usize {
        self.n_rx
    }

    fn process_sweeps(&mut self, _per_rx: &[&[f64]]) -> Option<FrameReport> {
        self.sweeps += 1;
        None
    }

    fn process_sweeps_flat(&mut self, flat: &[f64], samples: usize) -> Option<FrameReport> {
        assert_eq!(flat.len(), samples * self.n_rx);
        self.sweeps += 1;
        // Stall the first few (warmup) batches so the producer blocks on
        // the 1-deep shard queue: the channel's sender-side waker
        // structures are allocated lazily on first block, and that must
        // happen inside warmup, not mid-measurement.
        if self.sweeps <= 15 {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        None
    }

    // Consume quantized sweeps in place — the trait's *default* would
    // dequantize into a fresh `Vec<f64>`, which is exactly the allocation
    // the i16 pass-through path exists to avoid (real pipelines override
    // this the same way).
    fn process_sweeps_flat_q(
        &mut self,
        flat: &[i16],
        samples: usize,
        _scale: f64,
    ) -> Option<FrameReport> {
        assert_eq!(flat.len(), samples * self.n_rx);
        self.sweeps += 1;
        if self.sweeps <= 15 {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        None
    }

    fn reset(&mut self) {
        self.sweeps = 0;
    }
}

#[test]
fn steady_state_ingest_makes_zero_allocations_per_frame() {
    const SAMPLES: u32 = 2500;
    const N_RX: u16 = 3;
    const SWEEPS: u16 = 5;
    const WARMUP: u64 = 50;
    const MEASURED: u64 = 200;

    // queue_capacity 1 makes the producer block on a busy shard from the
    // first frames, so the channel's lazily-allocated sender-side waker
    // structures come into existence during warmup, not measurement.
    let (engine, _events) = ShardedEngine::start(
        EngineConfig {
            num_shards: 1,
            queue_capacity: 1,
            overload: OverloadPolicy::Block,
        },
        Arc::new(|h: &Hello| {
            Ok(Box::new(NullPipeline {
                n_rx: h.n_rx as usize,
                sweeps: 0,
            }) as Box<dyn FramePipeline>)
        }),
    );
    let handle = engine.handle();
    handle
        .submit(Message::Hello(Hello {
            sensor_id: 0,
            kind: PipelineKind::SingleTarget,
            n_rx: N_RX as u8,
            samples_per_sweep: SAMPLES,
            sweeps_per_frame: SWEEPS as u32,
            quantized: true,
        }))
        .unwrap();

    // Pre-encode every frame (paper-shaped quantized batches) before the
    // measurement so the producer side moves owned buffers instead of
    // allocating. Each frame is distinct data; seq is patched per send.
    let count = SWEEPS as usize * N_RX as usize * SAMPLES as usize;
    let frames: Vec<Vec<u8>> = (0..WARMUP + MEASURED)
        .map(|f| {
            let data: Vec<i16> = (0..count)
                .map(|i| ((i as u64 * (f + 3)) % 251) as i16)
                .collect();
            wire::encode(&Message::SweepBatchQ(SweepBatchQ {
                sensor_id: 0,
                seq: f,
                n_sweeps: SWEEPS,
                n_rx: N_RX,
                samples_per_sweep: SAMPLES,
                scale: 1.0 / 128.0,
                data,
            }))
        })
        .collect();

    // The full wire path, socket-free: client tx → bounded frame queue →
    // pooled decode → shard dispatch. One thread alternates send/recv so
    // the bounded queues never deadlock.
    let (client_end, server_end) = in_proc_pair(4);
    let (mut client_tx, _client_rx) = client_end.split().unwrap();
    let (_server_tx, mut server_rx) = server_end.split().unwrap();
    let pool = handle.ingest_pools().clone();
    // Prime the pool to its worst-case concurrency (one buffer in decode,
    // queue-depth in flight, one in the pipeline, plus slack): warmup
    // traffic alone only populates the *typical* depth, and a mid-run
    // scheduling blip past it would read as a (one-off, cold) miss.
    let prime: Vec<_> = (0..8).map(|_| pool.i16s.get(count)).collect();
    drop(prime);

    let mut measured_start = 0u64;
    for (f, frame) in frames.into_iter().enumerate() {
        if f as u64 == WARMUP {
            measured_start = ALLOCATIONS.load(Ordering::SeqCst);
            MEASURING.store(true, Ordering::SeqCst);
        }
        client_tx.send_frame(frame).unwrap();
        let msg = server_rx.recv_msg_pooled(&pool).unwrap().expect("frame");
        match msg {
            RxMsg::Batch(b) => handle.submit_batch_pooled(b, None).map(|_| ()).unwrap(),
            RxMsg::Control(_) => panic!("only sweep batches were sent"),
        }
    }
    // The shard drains its queue before shutdown returns, so every
    // measured message has fully traversed the path by here — but
    // shutdown itself may free/allocate, so read the counter first,
    // then drain.
    let measured_end = ALLOCATIONS.load(Ordering::SeqCst);
    MEASURING.store(false, Ordering::SeqCst);
    let m = engine.shutdown();

    assert_eq!(
        m.sweeps_processed,
        (WARMUP + MEASURED) * SWEEPS as u64,
        "every sweep must have reached the pipeline"
    );
    let allocs = measured_end - measured_start;
    let sizes: Vec<u64> = SIZES.iter().map(|s| s.load(Ordering::Relaxed)).collect();
    assert_eq!(
        allocs, 0,
        "steady-state ingest made {allocs} allocations over {MEASURED} frames \
         (expected zero: pooled decode + recycled dispatch); sizes {sizes:?}"
    );
    let pool_stats = pool.i16s.stats();
    assert!(
        pool_stats.misses <= WARMUP,
        "sample pool kept allocating after warmup: {pool_stats:?}"
    );
}
