//! Wire-codec coverage: round trips (in memory and over a real loopback
//! socket), malformed headers, truncated frames, and the engine-level
//! refusals (unknown sensor, out-of-order sequence).

use witrack_core::{FrameReport, TargetReport, WiTrackConfig};
use witrack_fmcw::SweepConfig;
use witrack_fuse::{WorldEvent, WorldFrame, WorldTrackId, WorldTrackSnapshot};
use witrack_geom::Vec3;
use witrack_serve::engine::{EngineConfig, EngineEvent, ShardedEngine};
use witrack_serve::factory::{hello_for, witrack_factory};
use witrack_serve::transport::{TcpTransport, Transport, TransportRx, TransportTx};
use witrack_serve::wire::{
    self, EventMsg, Hello, Message, PipelineKind, Reject, RejectCode, Subscribe, SweepBatch,
    Teardown, UpdateBatch, WireError, WorldUpdateMsg, HEADER_LEN, MAGIC,
};

fn reduced_base() -> WiTrackConfig {
    WiTrackConfig {
        sweep: SweepConfig {
            start_freq_hz: 5.56e8,
            bandwidth_hz: 1.69e8,
            sweep_duration_s: 1e-3,
            sample_rate_hz: 100e3,
            sweeps_per_frame: 5,
            transmit_power_w: 1e-3,
        },
        max_round_trip_m: 40.0,
        ..WiTrackConfig::witrack_default()
    }
}

fn sample_messages() -> Vec<Message> {
    vec![
        Message::Hello(Hello {
            sensor_id: 42,
            kind: PipelineKind::MultiTarget,
            n_rx: 3,
            samples_per_sweep: 100,
            sweeps_per_frame: 5,
            quantized: true,
        }),
        Message::SweepBatch(SweepBatch::from_sweeps(
            42,
            7,
            &[
                vec![vec![0.5, -1.25], vec![3.0, 4.0]],
                vec![vec![9.0, 10.0], vec![-11.0, 12.5]],
            ],
        )),
        Message::Teardown(Teardown { sensor_id: 42 }),
        Message::UpdateBatch(UpdateBatch {
            sensor_id: 42,
            seq: 3,
            updates: vec![FrameReport {
                frame_index: 12,
                time_s: 0.15,
                targets: vec![
                    TargetReport {
                        id: Some(5),
                        position: Vec3::new(1.0, 4.5, 1.2),
                        velocity: Some(Vec3::new(-0.5, 0.25, 0.0)),
                        held: false,
                        pos_var: None,
                        innovation: None,
                    },
                    TargetReport {
                        id: None,
                        position: Vec3::new(-2.0, 6.0, 0.9),
                        velocity: None,
                        held: true,
                        pos_var: None,
                        innovation: None,
                    },
                ],
            }],
        }),
        Message::Reject(Reject {
            sensor_id: 42,
            code: RejectCode::UnknownSensor,
        }),
        Message::Subscribe(Subscribe {
            room_id: 3,
            world_updates: true,
            events: false,
        }),
        Message::WorldUpdate(WorldUpdateMsg {
            room_id: 3,
            seq: 11,
            frame: WorldFrame {
                epoch: 480,
                time_s: 6.0,
                tracks: vec![
                    WorldTrackSnapshot {
                        id: WorldTrackId(2),
                        position: Vec3::new(1.0, 4.0, 1.1),
                        velocity: Vec3::new(0.5, -0.25, 0.0),
                        pos_var: Vec3::new(0.01, 0.02, 0.08),
                        coasting: false,
                        contributors: 2,
                        primary_sensor: Some(7),
                    },
                    WorldTrackSnapshot {
                        id: WorldTrackId(5),
                        position: Vec3::new(-2.0, 8.0, 0.9),
                        velocity: Vec3::ZERO,
                        pos_var: Vec3::new(0.5, 0.5, 0.5),
                        coasting: true,
                        contributors: 0,
                        primary_sensor: None,
                    },
                ],
                // Events travel as separate frames; the codec drops them.
                events: Vec::new(),
            },
        }),
        Message::Event(EventMsg {
            room_id: 3,
            event: WorldEvent::Fall {
                track: WorldTrackId(2),
                time_s: 6.0,
                from_z: 1.1,
                to_z: 0.15,
            },
        }),
        Message::Event(EventMsg {
            room_id: 3,
            event: WorldEvent::Handoff {
                track: WorldTrackId(2),
                from_sensor: 7,
                to_sensor: 9,
                time_s: 6.0,
            },
        }),
    ]
}

/// One of every event kind, for exhaustive codec coverage.
fn all_event_kinds() -> Vec<WorldEvent> {
    let track = WorldTrackId(4);
    let p = Vec3::new(0.5, 6.5, 1.0);
    vec![
        WorldEvent::TrackBorn {
            track,
            time_s: 1.0,
            position: p,
        },
        WorldEvent::TrackLost {
            track,
            time_s: 2.0,
            position: p,
        },
        WorldEvent::Fall {
            track,
            time_s: 3.0,
            from_z: 1.0,
            to_z: 0.1,
        },
        WorldEvent::ZoneEntered {
            track,
            zone: 9,
            time_s: 4.0,
        },
        WorldEvent::ZoneExited {
            track,
            zone: 9,
            time_s: 5.0,
        },
        WorldEvent::OccupancyChanged {
            zone: 9,
            count: 3,
            time_s: 6.0,
        },
        WorldEvent::Handoff {
            track,
            from_sensor: 0,
            to_sensor: 1,
            time_s: 7.0,
        },
        WorldEvent::Pointing {
            track: Some(track),
            sensor: 1,
            time_s: 8.0,
            direction: Vec3::new(0.0, -1.0, 0.0),
        },
        WorldEvent::Pointing {
            track: None,
            sensor: 1,
            time_s: 9.0,
            direction: Vec3::new(1.0, 0.0, 0.0),
        },
    ]
}

#[test]
fn every_message_type_round_trips_in_memory() {
    for msg in sample_messages() {
        let frame = wire::encode(&msg);
        let (decoded, used) = wire::decode(&frame).expect("decodes");
        assert_eq!(used, frame.len(), "whole frame consumed");
        assert_eq!(decoded, msg);
    }
}

#[test]
fn concatenated_frames_decode_one_at_a_time() {
    let msgs = sample_messages();
    let mut stream = Vec::new();
    for m in &msgs {
        wire::encode_into(m, &mut stream);
    }
    let mut at = 0;
    for expected in &msgs {
        let (got, used) = wire::decode(&stream[at..]).expect("decodes mid-stream");
        assert_eq!(&got, expected);
        at += used;
    }
    assert_eq!(at, stream.len());
}

#[test]
fn loopback_socket_round_trips_a_sweep_batch() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // Echo peer: receive messages, send them straight back.
    let echo = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let (mut tx, mut rx) = TcpTransport::new(stream).split().unwrap();
        while let Some(msg) = rx.recv_msg().unwrap() {
            tx.send_msg(&msg).unwrap();
        }
    });
    let (mut tx, mut rx) = TcpTransport::connect(addr).unwrap().split().unwrap();
    for msg in sample_messages() {
        tx.send_msg(&msg).unwrap();
        let back = rx.recv_msg().unwrap().expect("echoed");
        assert_eq!(back, msg);
    }
    tx.finish().unwrap();
    assert!(
        rx.recv_msg().unwrap().is_none(),
        "echo closes after our EOF"
    );
    echo.join().unwrap();
}

#[test]
fn malformed_headers_are_rejected() {
    let good = wire::encode(&Message::Teardown(Teardown { sensor_id: 1 }));

    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        wire::decode(&bad_magic),
        Err(WireError::BadMagic(_))
    ));

    let mut bad_version = good.clone();
    bad_version[4] = 99;
    assert_eq!(
        wire::decode(&bad_version),
        Err(WireError::UnsupportedVersion(99))
    );

    let mut bad_type = good.clone();
    bad_type[5] = 200;
    assert_eq!(wire::decode(&bad_type), Err(WireError::UnknownType(200)));

    let mut huge = good.clone();
    huge[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        wire::decode(&huge),
        Err(WireError::PayloadTooLarge(_))
    ));
}

#[test]
fn truncated_frames_ask_for_more_bytes() {
    let frame = wire::encode(&Message::SweepBatch(SweepBatch::from_sweeps(
        3,
        0,
        &[vec![vec![1.0, 2.0, 3.0]; 3]],
    )));
    // Too short for even a header: the decoder asks for the header.
    assert_eq!(
        wire::decode(&frame[..5]),
        Err(WireError::Incomplete { needed: HEADER_LEN })
    );
    // Header present but payload cut off: it names the full frame length.
    assert_eq!(
        wire::decode(&frame[..HEADER_LEN + 3]),
        Err(WireError::Incomplete {
            needed: frame.len()
        })
    );
    // A frame whose *declared* length lies about its contents is corrupt,
    // not incomplete.
    let mut lying = frame.clone();
    let shorter = (frame.len() - HEADER_LEN - 8) as u32;
    lying[8..12].copy_from_slice(&shorter.to_le_bytes());
    lying.truncate(HEADER_LEN + shorter as usize);
    assert!(matches!(
        wire::decode(&lying),
        Err(WireError::BadPayload(_))
    ));
    // Sanity: the untouched frame still decodes.
    assert_eq!(wire::decode(&frame).unwrap().1, frame.len());
    // And the spec's promise holds: the first four bytes on the wire read
    // "WTRK" in ASCII.
    assert_eq!(&MAGIC.to_le_bytes(), b"WTRK");
    assert_eq!(&frame[..4], b"WTRK");
}

#[test]
fn every_event_kind_round_trips() {
    for event in all_event_kinds() {
        let msg = Message::Event(EventMsg { room_id: 12, event });
        let frame = wire::encode(&msg);
        let (decoded, used) = wire::decode(&frame).expect("decodes");
        assert_eq!(used, frame.len());
        assert_eq!(decoded, msg, "event {event:?}");
    }
}

#[test]
fn world_messages_are_v2_only() {
    let sub = Message::Subscribe(Subscribe::all(1));
    let mut frame = wire::encode(&sub);
    frame[4] = 1; // rewrite as a v1 frame
    assert_eq!(wire::decode(&frame), Err(WireError::UnknownType(7)));
}

#[test]
fn truncated_world_update_asks_for_more_bytes() {
    let msg = sample_messages()
        .into_iter()
        .find(|m| matches!(m, Message::WorldUpdate(_)))
        .unwrap();
    let frame = wire::encode(&msg);
    for cut in [1, HEADER_LEN, frame.len() - 1] {
        match wire::decode(&frame[..cut]) {
            Err(WireError::Incomplete { needed }) => {
                assert!(needed <= frame.len());
                assert!(needed > cut);
            }
            other => panic!("cut at {cut}: {other:?}"),
        }
    }
    // A payload length that lies (shorter than the track records claim)
    // is a fatal BadPayload, not incomplete.
    let mut lying = frame.clone();
    let shorter = (frame.len() - HEADER_LEN - 16) as u32;
    lying[8..12].copy_from_slice(&shorter.to_le_bytes());
    lying.truncate(HEADER_LEN + shorter as usize);
    assert!(matches!(
        wire::decode(&lying),
        Err(WireError::BadPayload(_))
    ));
}

#[test]
fn unknown_event_kind_is_a_bad_payload() {
    let msg = Message::Event(EventMsg {
        room_id: 1,
        event: WorldEvent::TrackBorn {
            track: WorldTrackId(0),
            time_s: 0.0,
            position: Vec3::ZERO,
        },
    });
    let mut frame = wire::encode(&msg);
    // The kind field sits right after the 4-byte room id in the payload.
    frame[HEADER_LEN + 4..HEADER_LEN + 6].copy_from_slice(&999u16.to_le_bytes());
    assert_eq!(
        wire::decode(&frame),
        Err(WireError::BadPayload("unknown event kind"))
    );
}

fn silent_frame_batch(base: &WiTrackConfig, sensor_id: u32, seq: u64) -> SweepBatch {
    let n = base.sweep.samples_per_sweep();
    let sweeps = vec![vec![vec![0.0; n]; 3]; base.sweep.sweeps_per_frame];
    SweepBatch::from_sweeps(sensor_id, seq, &sweeps)
}

#[test]
fn unknown_sensor_id_is_rejected_with_a_notice() {
    let base = reduced_base();
    let (engine, events) = ShardedEngine::start(EngineConfig::default(), witrack_factory(base));
    let handle = engine.handle();
    // No Hello for sensor 9: its batch must bounce.
    handle
        .submit_batch(silent_frame_batch(&base, 9, 0))
        .unwrap();
    match events.recv().unwrap() {
        EngineEvent::Rejected(r) => {
            assert_eq!(r.sensor_id, 9);
            assert_eq!(r.code, RejectCode::UnknownSensor);
        }
        other => panic!("expected reject, got {other:?}"),
    }
    let m = engine.shutdown();
    assert_eq!(m.unknown_sensor, 1);
    assert_eq!(m.frames_emitted, 0);
}

#[test]
fn out_of_order_and_gapped_sequences_are_accounted() {
    let base = reduced_base();
    let (engine, events) = ShardedEngine::start(EngineConfig::default(), witrack_factory(base));
    let handle = engine.handle();
    handle
        .submit(Message::Hello(hello_for(
            &base,
            4,
            PipelineKind::SingleTarget,
        )))
        .unwrap();
    // seq 0 processes; a replayed seq 0 is stale; seq 3 implies a gap of 2.
    handle
        .submit_batch(silent_frame_batch(&base, 4, 0))
        .unwrap();
    handle
        .submit_batch(silent_frame_batch(&base, 4, 0))
        .unwrap();
    handle
        .submit_batch(silent_frame_batch(&base, 4, 3))
        .unwrap();
    let mut stale_rejects = 0;
    let mut frames = 0;
    for _ in 0..3 {
        match events.recv().unwrap() {
            EngineEvent::Rejected(r) => {
                assert_eq!(r.code, RejectCode::StaleSequence);
                stale_rejects += 1;
            }
            EngineEvent::Updates(u) => frames += u.updates.len(),
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert_eq!(stale_rejects, 1, "the replayed batch bounced");
    assert_eq!(frames, 2, "both fresh batches processed");
    let m = engine.shutdown();
    assert_eq!(m.seq_out_of_order, 1);
    assert_eq!(m.seq_gaps, 2);
}
