//! Chaos acceptance: the serving layer under transport faults.
//!
//! Covers the degradation contract end to end: fuzzed bytes never panic
//! the wire decoders, a corrupt payload costs one frame (reject +
//! anomaly) rather than the connection, a mid-frame EOF is recorded as a
//! truncated stream distinct from a clean close, a client whose
//! transport dies reconnects with backoff and monotone sequence numbers,
//! and a sensor that falls silent is demoted (Suspect → Dead) while the
//! room keeps fusing on the survivors — then recovers cleanly.

use proptest::prelude::*;
use std::io::{self, Write as _};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use witrack_core::WiTrackConfig;
use witrack_fmcw::SweepConfig;
use witrack_fuse::{FuseConfig, Registration};
use witrack_geom::{RigidTransform, Vec3};
use witrack_obs::AnomalyKind;
use witrack_serve::engine::EngineConfig;
use witrack_serve::factory::{hello_for, witrack_factory};
use witrack_serve::hub::WorldConfig;
use witrack_serve::pool::PooledBuf;
use witrack_serve::transport::{
    in_proc_pair, InProcRx, InProcTransport, InProcTx, TcpTransport, Transport, TransportRx,
    TransportTx,
};
use witrack_serve::wire::{
    self, Hello, Message, PipelineKind, RejectCode, Subscribe, SweepBatch, SweepBatchQ, Teardown,
    HEADER_LEN,
};
use witrack_serve::{
    BackoffConfig, ReconnectingClient, SensorClient, Server, SubscriptionBuilder, TcpServer,
};

fn reduced_base() -> WiTrackConfig {
    WiTrackConfig {
        sweep: SweepConfig {
            start_freq_hz: 5.56e8,
            bandwidth_hz: 1.69e8,
            sweep_duration_s: 1e-3,
            sample_rate_hz: 100e3,
            sweeps_per_frame: 5,
            transmit_power_w: 1e-3,
        },
        max_round_trip_m: 40.0,
        ..WiTrackConfig::witrack_default()
    }
}

fn silent_sweeps(base: &WiTrackConfig) -> Vec<Vec<Vec<f64>>> {
    let n = base.sweep.samples_per_sweep();
    vec![vec![vec![0.0; n]; 3]; base.sweep.sweeps_per_frame]
}

// ---------------------------------------------------------------------------
// Decoder fuzz: random byte mutations of valid frames (and raw soup) must
// never panic, hang, or return nonsense offsets — only decode, reject, or
// ask for more bytes.

/// Representative frames of every shape the decoders special-case.
fn fuzz_corpus() -> Vec<Vec<u8>> {
    let sweeps = vec![
        vec![vec![0.5, -1.25, 3.0], vec![9.0, 10.0, -11.0]],
        vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
    ];
    let msgs = [
        Message::Hello(Hello {
            sensor_id: 42,
            kind: PipelineKind::MultiTarget,
            n_rx: 3,
            samples_per_sweep: 100,
            sweeps_per_frame: 5,
            quantized: false,
        }),
        Message::SweepBatch(SweepBatch::from_sweeps(42, 7, &sweeps)),
        Message::SweepBatchQ(SweepBatchQ::from_sweeps(42, 8, &sweeps)),
        Message::Teardown(Teardown { sensor_id: 42 }),
        Message::Subscribe(Subscribe::all(3)),
    ];
    msgs.iter().map(wire::encode).collect()
}

/// Exercises every decode entry point on `buf`; asserts the contract that
/// holds for *arbitrary* bytes (no panic is implicit — a panic fails the
/// test), and that any success reports a sane consumed length.
fn decode_all_ways(buf: &[u8]) {
    if let Ok((_, frame_len)) = wire::decode_header(buf) {
        assert!(frame_len >= HEADER_LEN);
    }
    if let Ok((_, used)) = wire::decode(buf) {
        assert!(used >= HEADER_LEN && used <= buf.len());
    }
    let mut samples = Vec::new();
    if let Ok((_, used)) = wire::decode_into(buf, &mut samples) {
        assert!(used >= HEADER_LEN && used <= buf.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn mutated_frames_never_panic_the_decoders(
        which in 0usize..5,
        flips in collection::vec((0usize..4096, 0u8..255), 1..12),
        cut in 0usize..4096,
    ) {
        let corpus = fuzz_corpus();
        let mut frame = corpus[which % corpus.len()].clone();
        for (at, val) in flips {
            let n = frame.len();
            frame[at % n] ^= val;
        }
        decode_all_ways(&frame);
        // Truncations of the mutant must also hold the contract.
        frame.truncate(cut % (frame.len() + 1));
        decode_all_ways(&frame);
    }

    #[test]
    fn random_byte_soup_never_panics_the_decoders(
        soup in collection::vec(0u8..255, 0..256),
    ) {
        decode_all_ways(&soup);
    }

    #[test]
    fn valid_prefixes_always_ask_for_more_not_less(
        which in 0usize..5,
        cut in 0usize..4096,
    ) {
        let corpus = fuzz_corpus();
        let frame = &corpus[which % corpus.len()];
        let cut = cut % frame.len();
        // An untouched prefix of a valid frame is *incomplete*, never
        // corrupt: a streaming reader must keep the bytes and wait.
        match wire::decode(&frame[..cut]) {
            Err(wire::WireError::Incomplete { needed }) => {
                prop_assert!(needed > cut, "asked for bytes it already has");
                prop_assert!(needed <= frame.len());
            }
            other => prop_assert!(false, "prefix of {cut} bytes: {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Server-side hardening over a real socket.

/// A frame with a valid header (type 2 = SweepBatch, correct length) whose
/// payload cannot decode: 4 bytes where the shape preamble needs 20+.
fn corrupt_sweep_frame() -> Vec<u8> {
    let mut f = wire::encode(&Message::Teardown(Teardown { sensor_id: 0 }));
    f[5] = 2;
    f
}

fn wait_for_anomaly(server_dump: impl Fn() -> Vec<witrack_obs::Anomaly>, kind: AnomalyKind) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if server_dump().iter().any(|a| a.kind == kind) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "no {} anomaly recorded within 5 s",
            kind.name()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn corrupt_payload_draws_a_reject_and_the_session_survives() {
    let base = reduced_base();
    let server = TcpServer::bind(
        "127.0.0.1:0",
        EngineConfig::default(),
        witrack_factory(base),
    )
    .expect("bind");
    let (mut tx, mut rx) = TcpTransport::connect(server.local_addr())
        .expect("connect")
        .split()
        .expect("split");
    tx.send_msg(&Message::Hello(hello_for(
        &base,
        1,
        PipelineKind::SingleTarget,
    )))
    .expect("hello");
    // A corrupt frame between two valid batches: the stream must survive
    // it and the batches on either side must still process.
    tx.send_msg(&Message::SweepBatch(SweepBatch::from_sweeps(
        1,
        0,
        &silent_sweeps(&base),
    )))
    .expect("batch 0");
    tx.send_frame(corrupt_sweep_frame()).expect("corrupt frame");
    tx.send_msg(&Message::SweepBatch(SweepBatch::from_sweeps(
        1,
        1,
        &silent_sweeps(&base),
    )))
    .expect("batch 1");
    tx.finish().expect("finish");
    let mut rejects = Vec::new();
    let mut frames = 0u64;
    while let Some(msg) = rx.recv_msg().expect("server hung up hard") {
        match msg {
            Message::Reject(r) => rejects.push(r),
            Message::UpdateBatch(u) => frames += u.updates.len() as u64,
            _ => {}
        }
    }
    assert_eq!(rejects.len(), 1, "exactly the corrupt frame was refused");
    assert_eq!(rejects[0].code, RejectCode::CorruptFrame);
    assert_eq!(rejects[0].sensor_id, 0, "a corrupt frame names no sensor");
    assert_eq!(frames, 2, "both valid batches survived the corruption");
    assert!(
        server
            .recorder()
            .dump()
            .iter()
            .any(|a| a.kind == AnomalyKind::Corrupt),
        "no Corrupt anomaly in the flight recorder"
    );
    let m = server.shutdown();
    assert_eq!(m.frames_emitted, 2);
}

#[test]
fn mid_frame_eof_is_recorded_as_truncated_stream() {
    let base = reduced_base();
    let server = TcpServer::bind(
        "127.0.0.1:0",
        EngineConfig::default(),
        witrack_factory(base),
    )
    .expect("bind");
    let recorder = Arc::clone(server.recorder());
    {
        let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
        // A valid frame, cut off mid-payload — then the peer "crashes".
        let frame = wire::encode(&Message::SweepBatch(SweepBatch::from_sweeps(
            1,
            0,
            &vec![vec![vec![1.0; 32]; 3]; 2],
        )));
        stream
            .write_all(&frame[..HEADER_LEN + 10])
            .expect("partial frame");
    } // drop = RST/FIN mid-frame
    wait_for_anomaly(|| recorder.dump(), AnomalyKind::TruncatedStream);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Client reconnect: a transport that dies mid-stream.

/// An in-proc transport whose send half starts failing (`BrokenPipe`)
/// after a budgeted number of frames — the receive half stays honest, so
/// the server sees a clean EOF once the client gives up on the tx.
struct FlakyTransport {
    inner: InProcTransport,
    sends_before_failure: u64,
}

struct FlakyTx {
    inner: InProcTx,
    remaining: u64,
}

impl Transport for FlakyTransport {
    type Tx = FlakyTx;
    type Rx = InProcRx;
    fn split(self) -> io::Result<(FlakyTx, InProcRx)> {
        let (tx, rx) = self.inner.split()?;
        Ok((
            FlakyTx {
                inner: tx,
                remaining: self.sends_before_failure,
            },
            rx,
        ))
    }
}

impl TransportTx for FlakyTx {
    fn send_frame(&mut self, frame: Vec<u8>) -> io::Result<()> {
        if self.remaining == 0 {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "flaky transport"));
        }
        self.remaining -= 1;
        self.inner.send_frame(frame)
    }
    fn send_pooled(&mut self, frame: PooledBuf<u8>) -> io::Result<()> {
        self.send_frame(frame.into_vec())
    }
    fn finish(&mut self) -> io::Result<()> {
        self.inner.finish()
    }
}

#[test]
fn reconnecting_client_survives_a_dying_transport() {
    let base = reduced_base();
    let server = Arc::new(Server::start(
        EngineConfig::default(),
        witrack_factory(base),
    ));
    let recorder = Arc::clone(server.recorder());

    // First connection dies after 3 frames (hello + 2 batches); every
    // redial gets a healthy one.
    let dial_count = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let factory = {
        let server = Arc::clone(&server);
        let dial_count = Arc::clone(&dial_count);
        move || {
            let (client_end, server_end) = in_proc_pair(64);
            server.attach(server_end).expect("attach");
            let n = dial_count.fetch_add(1, Ordering::Relaxed);
            Ok(FlakyTransport {
                inner: client_end,
                sends_before_failure: if n == 0 { 3 } else { u64::MAX },
            })
        }
    };
    let mut client = ReconnectingClient::connect(
        factory,
        hello_for(&base, 7, PipelineKind::SingleTarget),
        BackoffConfig {
            initial_ms: 5,
            seed: 3,
            ..BackoffConfig::default()
        },
    )
    .expect("connect")
    .with_recorder(Arc::clone(&recorder));

    let sweeps = silent_sweeps(&base);
    for want_seq in 0..5 {
        let seq = client.send_sweeps(&sweeps).expect("send survives faults");
        assert_eq!(seq, want_seq, "sequence numbers stay monotone");
    }
    assert_eq!(client.reconnects(), 1, "exactly one redial");
    let _ = client.close();
    assert!(
        recorder
            .dump()
            .iter()
            .any(|a| a.kind == AnomalyKind::Reconnect && a.a == 7),
        "reconnect not recorded"
    );
    // Wait for both connection threads to drain into the engine, then
    // confirm nothing was lost: 5 batches → 5 frames, and the redial's
    // session resumed at seq 2 (an honest forward gap, not a replay).
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.metrics().frames_emitted < 5 {
        assert!(Instant::now() < deadline, "frames never arrived");
        std::thread::sleep(Duration::from_millis(5));
    }
    let server = Arc::try_unwrap(server).unwrap_or_else(|_| panic!("server still shared"));
    let m = server.shutdown();
    assert_eq!(m.frames_emitted, 5, "every batch processed exactly once");
    assert_eq!(m.seq_gaps, 2, "the resumed session declared its gap");
}

// ---------------------------------------------------------------------------
// Sensor failure model: silence → Suspect → Dead, fusion sheds the dead
// sensor, and a returning sensor re-registers cleanly.

#[test]
fn silent_sensor_degrades_gracefully_and_recovers() {
    let base = reduced_base();
    let fuse = FuseConfig::builder()
        .frame_period_s(base.sweep.frame_duration_s())
        // Aggressive timeouts so the test runs in well under a second of
        // wall clock (the hub sweeps every 50 ms).
        .suspect_timeout_s(0.06)
        .dead_timeout_s(0.15)
        .build();
    let registration = Registration::new()
        .with_sensor(1, RigidTransform::IDENTITY)
        .with_sensor(2, RigidTransform::from_yaw(0.0, Vec3::new(0.0, 8.0, 0.0)));
    let server = Server::builder(witrack_factory(base))
        .world(WorldConfig::single_room(1, fuse, registration))
        .start();
    let recorder = Arc::clone(server.recorder());
    let (client_end, server_end) = in_proc_pair(256);
    server.attach(server_end).expect("attach");
    let mut client = SensorClient::connect(client_end).expect("connect");
    client
        .subscribe_with(SubscriptionBuilder::room(1).build())
        .expect("subscribe");
    client
        .hello(hello_for(&base, 1, PipelineKind::SingleTarget))
        .expect("hello 1");
    client
        .hello(hello_for(&base, 2, PipelineKind::SingleTarget))
        .expect("hello 2");

    let sweeps = silent_sweeps(&base);
    // Phase 1: both sensors report; the room fuses normally.
    for seq in 0..20u64 {
        client.send_sweeps(1, seq, &sweeps).expect("send 1");
        client.send_sweeps(2, seq, &sweeps).expect("send 2");
        std::thread::sleep(Duration::from_millis(2));
    }
    // Phase 2: sensor 2 falls silent; sensor 1 keeps the room alive. The
    // hub's liveness sweep must demote 2 (Stall anomaly at Suspect, then
    // SensorDead) without stalling epoch closure.
    let mut seq1 = 20u64;
    let deadline = Instant::now() + Duration::from_secs(5);
    while !recorder
        .dump()
        .iter()
        .any(|a| a.kind == AnomalyKind::SensorDead && a.a == 2)
    {
        assert!(
            Instant::now() < deadline,
            "sensor 2 was never declared dead"
        );
        client.send_sweeps(1, seq1, &sweeps).expect("send 1");
        seq1 += 1;
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        recorder
            .dump()
            .iter()
            .any(|a| a.kind == AnomalyKind::Stall && a.a == 2),
        "death must pass through Suspect (Stall anomaly) first"
    );
    // The room kept closing epochs on the survivor: world updates keep
    // arriving after the death verdict.
    let updates_at_death = client.stats().world_updates;
    for _ in 0..10 {
        client.send_sweeps(1, seq1, &sweeps).expect("send 1");
        seq1 += 1;
        std::thread::sleep(Duration::from_millis(2));
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while client.stats().world_updates <= updates_at_death {
        assert!(
            Instant::now() < deadline,
            "fusion stalled after sensor 2 died"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // Phase 3: sensor 2 comes back (same session, resumed seq) and must
    // be greeted as recovered, not rejected.
    let mut seq2 = 20u64;
    let deadline = Instant::now() + Duration::from_secs(5);
    while !recorder
        .dump()
        .iter()
        .any(|a| a.kind == AnomalyKind::SensorRecovered && a.a == 2)
    {
        assert!(Instant::now() < deadline, "sensor 2 never recovered");
        client.send_sweeps(1, seq1, &sweeps).expect("send 1");
        client.send_sweeps(2, seq2, &sweeps).expect("send 2");
        seq1 += 1;
        seq2 += 1;
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = client.close();
    assert_eq!(stats.rejects, 0, "recovery must not be refused");
    // The per-sensor liveness series exist and the recovery was counted.
    let rendered = server.registry().render_text();
    assert!(
        rendered.contains("witrack_sensor_liveness{sensor=\"2\"}"),
        "no liveness series for sensor 2:\n{rendered}"
    );
    let reconnect_line = rendered
        .lines()
        .find(|l| l.starts_with("witrack_sensor_reconnects{sensor=\"2\"}"))
        .expect("no reconnect series for sensor 2");
    let count: u64 = reconnect_line
        .rsplit(' ')
        .next()
        .and_then(|v| v.parse().ok())
        .expect("unparseable reconnect count");
    assert!(count >= 1, "recovery was not counted: {reconnect_line}");
    server.shutdown();
}
