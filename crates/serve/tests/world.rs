//! End-to-end world-model acceptance: real RF simulation → wire → shards
//! → fusion hub → wire subscriber.
//!
//! Two sensors with overlapping coverage watch the same walkers
//! ([`witrack_sim::vantage`]); their baseband streams enter the server
//! over the wire protocol exactly as deployed sensors would, and a
//! subscriber on the same connection receives the fused room stream. The
//! tests assert the world model's contract: exactly one world track per
//! person (no duplicates), identity stable across the coverage handoff,
//! fused accuracy no worse than the best single sensor, and fleet events
//! (falls) delivered over the wire.

use std::f64::consts::PI;
use std::sync::{Arc, Mutex};
use witrack_core::fall::FallConfig;
use witrack_core::WiTrackConfig;
use witrack_fuse::{FuseConfig, Registration, WorldEvent};
use witrack_geom::AntennaArray;
use witrack_geom::{RigidTransform, Vec3};
use witrack_serve::engine::{EngineConfig, OverloadPolicy};
use witrack_serve::factory::{hello_for, witrack_factory};
use witrack_serve::hub::WorldConfig;
use witrack_serve::transport::in_proc_pair;
use witrack_serve::wire::{EventMsg, Message, PipelineKind, WorldUpdateMsg};
use witrack_serve::{SensorClient, Server, SubscriptionBuilder};
use witrack_sim::motion::{Activity, ActivityScript, LinePath};
use witrack_sim::multi::PersonSpec;
use witrack_sim::vantage::{scenario, MultiVantageSimulator};
use witrack_sim::SimConfig;

const HALLWAY_M: f64 = 12.0;
const COVERAGE_M: f64 = 8.0;
const ROOM: u32 = 1;

fn median(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

fn mid_base() -> WiTrackConfig {
    WiTrackConfig {
        sweep: witrack_fmcw::SweepConfig::witrack_mid(),
        max_round_trip_m: 40.0,
        ..WiTrackConfig::witrack_default()
    }
}

fn hallway_registration() -> (Registration, RigidTransform) {
    let world_from_s1 = RigidTransform::from_yaw(PI, Vec3::new(0.0, HALLWAY_M, 0.0));
    (
        Registration::new()
            .with_sensor(0, RigidTransform::IDENTITY)
            .with_sensor(1, world_from_s1)
            // Declared coverage matches the simulator's hard coverage
            // edge, arming the corroboration ghost filter in the overlap.
            .with_coverage(0, COVERAGE_M)
            .with_coverage(1, COVERAGE_M),
        world_from_s1,
    )
}

fn room_fuse_config(base: &WiTrackConfig, fall: FallConfig) -> FuseConfig {
    FuseConfig {
        frame_period_s: base.sweep.frame_duration_s(),
        // Radar z is the coarse axis (stem geometry amplifies range error
        // into elevation) and the per-sensor filters under-report that,
        // so the observation floor is widened for gating robustness.
        obs_std_floor_m: 0.25,
        gate_mahalanobis_sq: 25.0,
        // The sim's coverage edge is hard and SNR at 8 m is healthy, so a
        // real body entering the overlap corroborates within a few
        // frames; half a second of grace is plenty at 333 fps.
        max_uncorroborated_epochs: 150,
        coverage_margin_m: 0.25,
        // Wall-mirror ghosts are world-coherent (both sensors see the
        // same wall reflection), so corroboration cannot kill them — but
        // they are always born within ~2.5 m of the body that casts
        // them. A wide initiation exclusion keeps them from ever seeding
        // world tracks; association keeps existing tracks apart at any
        // range, so only co-located *births* are deferred.
        min_new_track_separation_m: 2.5,
        fall,
        ..FuseConfig::default()
    }
}

struct Collected {
    updates: Vec<WorldUpdateMsg>,
    events: Vec<EventMsg>,
    sensor_reports: Vec<(u32, witrack_core::FrameReport)>,
}

/// Streams a multi-vantage sim through a world-serving engine over the
/// in-process wire; returns everything the subscribing client received.
fn run_world(
    base: WiTrackConfig,
    fuse: FuseConfig,
    mut sim: MultiVantageSimulator,
    kind: PipelineKind,
) -> Collected {
    let (registration, _) = hallway_registration();
    let server = Server::builder(witrack_factory(base))
        .config(EngineConfig {
            queue_capacity: 8,
            overload: OverloadPolicy::Block,
            ..Default::default()
        })
        .world(WorldConfig::single_room(ROOM, fuse, registration))
        .start();
    let (client_end, server_end) = in_proc_pair(64);
    server.attach(server_end).expect("attach");

    let collected = Arc::new(Mutex::new(Collected {
        updates: Vec::new(),
        events: Vec::new(),
        sensor_reports: Vec::new(),
    }));
    let sink = Arc::clone(&collected);
    let mut client = SensorClient::connect_with(
        client_end,
        Some(Box::new(move |msg: &Message| {
            let mut c = sink.lock().expect("collector poisoned");
            match msg {
                Message::WorldUpdate(w) => c.updates.push(w.clone()),
                Message::Event(e) => c.events.push(*e),
                Message::UpdateBatch(u) => {
                    for r in &u.updates {
                        c.sensor_reports.push((u.sensor_id, r.clone()));
                    }
                }
                _ => {}
            }
        })),
    )
    .expect("connect");

    client
        .subscribe_with(SubscriptionBuilder::room(ROOM).build())
        .expect("subscribe");
    for sensor in 0..sim.num_vantages() as u32 {
        client.hello(hello_for(&base, sensor, kind)).expect("hello");
    }

    let sweeps_per_frame = base.sweep.sweeps_per_frame;
    let mut pending: Vec<Vec<Vec<Vec<f64>>>> = vec![Vec::new(); sim.num_vantages()];
    let mut seq = vec![0u64; sim.num_vantages()];
    while let Some(round) = sim.next_round() {
        for rs in round {
            let v = rs.sensor_id as usize;
            pending[v].push(rs.set.per_rx);
            if pending[v].len() == sweeps_per_frame {
                client
                    .send_sweeps(rs.sensor_id, seq[v], &pending[v])
                    .expect("send");
                seq[v] += 1;
                pending[v].clear();
            }
        }
    }
    for sensor in 0..2u32 {
        client.teardown(sensor).expect("teardown");
    }
    let stats = client.close();
    assert_eq!(stats.rejects, 0, "nothing should be refused");
    assert!(stats.world_updates > 0, "no world frames reached the wire");
    server.shutdown();
    Arc::try_unwrap(collected)
        .unwrap_or_else(|_| panic!("collector still shared"))
        .into_inner()
        .expect("collector poisoned")
}

#[test]
fn unknown_subscriptions_are_rejected_over_the_wire() {
    let base = mid_base();
    let (registration, _) = hallway_registration();
    // A server with a world hub: subscribing to a room it does not fuse
    // must come back as a Reject, not silence (and not a hangup).
    let server = Server::builder(witrack_factory(base))
        .world(WorldConfig::single_room(
            ROOM,
            FuseConfig::default(),
            registration,
        ))
        .start();
    let (client_end, server_end) = in_proc_pair(8);
    server.attach(server_end).expect("attach");
    let rejects = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&rejects);
    let mut client = SensorClient::connect_with(
        client_end,
        Some(Box::new(move |msg: &Message| {
            if let Message::Reject(r) = msg {
                sink.lock().expect("sink poisoned").push(*r);
            }
        })),
    )
    .expect("connect");
    client
        .subscribe_with(SubscriptionBuilder::room(999).build())
        .expect("send");
    client
        .subscribe_with(SubscriptionBuilder::room(ROOM).build())
        .expect("send");
    let stats = client.close();
    server.shutdown();
    assert_eq!(stats.rejects, 1, "exactly the bogus room is refused");
    let rejects = rejects.lock().expect("sink poisoned");
    assert_eq!(rejects.len(), 1);
    assert_eq!(rejects[0].sensor_id, 999, "reject names the bad room id");
    assert_eq!(
        rejects[0].code,
        witrack_serve::wire::RejectCode::UnknownSubscription
    );

    // A server with no world hub at all refuses every subscription.
    let server = Server::start(EngineConfig::default(), witrack_factory(base));
    let (client_end, server_end) = in_proc_pair(8);
    server.attach(server_end).expect("attach");
    let mut client = SensorClient::connect(client_end).expect("connect");
    client
        .subscribe_with(SubscriptionBuilder::room(ROOM).build())
        .expect("send");
    let stats = client.close();
    server.shutdown();
    assert_eq!(stats.rejects, 1, "no hub: every subscription refused");
}

#[test]
fn two_sensors_two_walkers_two_world_tracks_across_handoff() {
    // Walker A crosses the whole hallway (sensor 0's exclusive region →
    // overlap → sensor 1's exclusive region: the handoff); walker B
    // crosses the other way. Offset in x so the crossing is never
    // ambiguous.
    let duration = 7.0;
    let a_path = (Vec3::new(-1.2, 2.2, 1.05), Vec3::new(-1.2, 9.8, 1.05));
    let b_path = (Vec3::new(1.2, 9.8, 0.95), Vec3::new(1.2, 2.2, 0.95));
    let people = vec![
        PersonSpec::adult(LinePath::new(
            a_path.0,
            a_path.1,
            a_path.0.distance(a_path.1) / duration,
        )),
        PersonSpec::adult(LinePath::new(
            b_path.0,
            b_path.1,
            b_path.0.distance(b_path.1) / duration,
        )),
    ];
    let base = mid_base();
    let sim = MultiVantageSimulator::new(
        SimConfig {
            sweep: base.sweep,
            noise_std: 0.05,
            seed: 9,
        },
        AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0),
        scenario::facing_pair(HALLWAY_M, COVERAGE_M),
        people,
    );
    let fuse = room_fuse_config(&base, FallConfig::default());
    let period = fuse.frame_period_s;
    let got = run_world(base, fuse, sim, PipelineKind::MultiTarget);

    let truth_a = |t: f64| a_path.0.lerp(a_path.1, (t / duration).clamp(0.0, 1.0));
    let truth_b = |t: f64| b_path.0.lerp(b_path.1, (t / duration).clamp(0.0, 1.0));
    let (world_from_s1, s0_pose) = {
        let (_, p1) = hallway_registration();
        (p1, RigidTransform::IDENTITY)
    };

    // --- Exactly two world tracks, never more (no cross-sensor
    // duplicates), with stable identity per walker (no swaps).
    let warmup_s = 2.0;
    let settled: Vec<&WorldUpdateMsg> = got
        .updates
        .iter()
        .filter(|u| u.frame.time_s > warmup_s && u.frame.time_s < duration - 0.5)
        .collect();
    assert!(settled.len() > 500, "only {} settled epochs", settled.len());
    let mut owner: [Option<witrack_fuse::WorldTrackId>; 2] = [None, None];
    let mut two_track_epochs = 0usize;
    let mut fused_errs: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for u in &settled {
        assert!(
            u.frame.tracks.len() <= 2,
            "duplicate world tracks at t={:.2}: {:?}",
            u.frame.time_s,
            u.frame.tracks
        );
        if u.frame.tracks.len() == 2 {
            two_track_epochs += 1;
        }
        for (wi, truth) in [truth_a(u.frame.time_s), truth_b(u.frame.time_s)]
            .into_iter()
            .enumerate()
        {
            let Some(nearest) = u
                .frame
                .tracks
                .iter()
                .min_by(|x, y| {
                    x.position
                        .distance(truth)
                        .partial_cmp(&y.position.distance(truth))
                        .expect("finite")
                })
                .filter(|t| t.position.distance(truth) < 1.0)
            else {
                continue;
            };
            fused_errs[wi].push(nearest.position.distance(truth));
            match owner[wi] {
                None => owner[wi] = Some(nearest.id),
                Some(id) => assert_eq!(
                    id, nearest.id,
                    "walker {wi} changed identity at t={:.2} (handoff swap)",
                    u.frame.time_s
                ),
            }
        }
    }
    assert!(
        two_track_epochs as f64 > settled.len() as f64 * 0.8,
        "both walkers tracked in only {two_track_epochs}/{} settled epochs",
        settled.len()
    );
    let (a_id, b_id) = (
        owner[0].expect("walker A never covered"),
        owner[1].expect("walker B never covered"),
    );
    assert_ne!(a_id, b_id, "both walkers share one world track");

    // --- Fused accuracy: median 3D error per walker must not exceed the
    // best single sensor's (fusion averages out the per-viewpoint
    // surface bias and the per-sensor noise).
    let mut per_sensor_errs: [[Vec<f64>; 2]; 2] = Default::default();
    for (sensor, report) in &got.sensor_reports {
        if report.time_s <= warmup_s || report.time_s >= duration - 0.5 {
            continue;
        }
        let pose = if *sensor == 0 {
            &s0_pose
        } else {
            &world_from_s1
        };
        for target in &report.targets {
            let world_pos = pose.apply(target.position);
            for (wi, truth) in [truth_a(report.time_s), truth_b(report.time_s)]
                .into_iter()
                .enumerate()
            {
                if world_pos.distance(truth) < 1.0 {
                    per_sensor_errs[*sensor as usize][wi].push(world_pos.distance(truth));
                }
            }
        }
    }
    for wi in 0..2 {
        assert!(!fused_errs[wi].is_empty());
        let fused = median(&mut fused_errs[wi]);
        let mut best_single = f64::INFINITY;
        for sensor_errs in &mut per_sensor_errs {
            if !sensor_errs[wi].is_empty() {
                best_single = best_single.min(median(&mut sensor_errs[wi]));
            }
        }
        assert!(
            fused <= best_single,
            "walker {wi}: fused median {fused:.3} m worse than best single sensor {best_single:.3} m"
        );
        assert!(fused < 0.45, "walker {wi}: fused median {fused:.3} m");
    }

    // --- The handoff actually happened: walker A's track was anchored by
    // sensor 0 early and sensor 1 late.
    let anchor_of = |t_lo: f64, t_hi: f64| {
        settled
            .iter()
            .filter(|u| u.frame.time_s >= t_lo && u.frame.time_s < t_hi)
            .flat_map(|u| &u.frame.tracks)
            .filter(|t| t.id == a_id)
            .filter_map(|t| t.primary_sensor)
            .next_back()
    };
    assert_eq!(
        anchor_of(warmup_s, 3.0),
        Some(0),
        "A should start on sensor 0"
    );
    for u in &settled {
        if u.frame.time_s > 5.0 && (u.frame.time_s * 10.0).fract() < 0.02 {
            for t in &u.frame.tracks {
                if t.id == a_id {
                    eprintln!(
                        "DIAG t={:.2} A prim={:?} contrib={} coast={} var={:.4} p={}",
                        u.frame.time_s,
                        t.primary_sensor,
                        t.contributors,
                        t.coasting,
                        t.pos_var.x + t.pos_var.y + t.pos_var.z,
                        t.position
                    );
                }
            }
        }
    }
    assert_eq!(
        anchor_of(duration - 1.5, duration),
        Some(1),
        "A should end on sensor 1"
    );
    assert!(
        got.events.iter().any(|e| matches!(
            e.event,
            WorldEvent::Handoff { from_sensor: 0, to_sensor: 1, track, .. } if track == a_id
        )),
        "no handoff event for walker A; events: {:?}",
        got.events
            .iter()
            .map(|e| e.event.kind())
            .collect::<Vec<_>>()
    );
    let _ = period;
}

#[test]
fn fall_in_the_overlap_reaches_a_wire_subscriber() {
    // One person paces in the overlap region (both sensors watching),
    // then falls. The fused world elevation must trip the §6.2 rule and
    // the resulting Fall event must arrive at the room subscriber over
    // the wire. Thresholds are opened up for the mid sweep's coarse z
    // resolution (0.44 m bins, amplified into z by the stem geometry).
    // The default §6.2 thresholds work on the *fused* elevation: the
    // merged track drops from ~1.0 m to below ground_z well within the
    // transition budget (raising ground_z would break the detector's
    // "was recently up at 2× ground" precondition against a ~1 m-tall
    // walking height). Only the transition window is widened a little
    // for the Kalman smoothing lag.
    // Tracked z jitters while the person paces, so the measured 10–90 %
    // transition is diluted by pre-fall bobbing; widen the budget
    // accordingly. The ground/drop thresholds stay at the paper defaults.
    let base = mid_base();
    let fall_cfg = FallConfig {
        max_transition_s: 2.5,
        ..FallConfig::default()
    };
    let people = vec![PersonSpec::adult(ActivityScript::generate(
        Activity::Fall,
        Vec3::new(0.0, HALLWAY_M / 2.0, 1.0),
        12.0,
        5,
    ))];
    let sim = MultiVantageSimulator::new(
        SimConfig {
            sweep: base.sweep,
            noise_std: 0.05,
            seed: 21,
        },
        AntennaArray::t_shape(Vec3::new(0.0, 0.0, 1.0), 1.0),
        scenario::facing_pair(HALLWAY_M, COVERAGE_M),
        people,
    );
    let fuse = room_fuse_config(&base, fall_cfg);
    let got = run_world(base, fuse, sim, PipelineKind::SingleTarget);

    // Both sensors contributed to the fused track at some point.
    assert!(
        got.updates
            .iter()
            .any(|u| u.frame.tracks.iter().any(|t| t.contributors == 2)),
        "the overlap never fused both sensors"
    );
    let falls: Vec<&EventMsg> = got
        .events
        .iter()
        .filter(|e| matches!(e.event, WorldEvent::Fall { .. }))
        .collect();
    // Diagnostics on failure: the fused elevation sampled every 0.5 s,
    // plus the offline §6.2 verdict over the full fused track.
    let z_track: Vec<(f64, f64)> = got
        .updates
        .iter()
        .filter_map(|u| {
            u.frame
                .tracks
                .first()
                .map(|t| (u.frame.time_s, t.position.z))
        })
        .collect();
    let z_profile: Vec<String> = z_track
        .iter()
        .filter(|(t, _)| (t * 2.0).fract() < 0.01)
        .map(|(t, z)| format!("{t:.1}s:{z:.2}"))
        .collect();
    let offline = witrack_core::fall::classify_elevation_track(&z_track, &fall_cfg);
    let mut replay = witrack_core::fall::FallDetector::new(fall_cfg);
    let replay_fired: Vec<String> = z_track
        .iter()
        .filter_map(|&(t, z)| replay.push(t, z).map(|e| format!("{:.2}s {e:?}", t)))
        .collect();
    assert!(
        !falls.is_empty(),
        "no Fall event reached the subscriber; events seen: {:?}; offline verdict: {:?}; \
         online replay fired: [{}]; fused z: {}",
        got.events
            .iter()
            .map(|e| e.event.kind())
            .collect::<Vec<_>>(),
        offline,
        replay_fired.join(", "),
        z_profile.join(" ")
    );
    assert_eq!(falls[0].room_id, ROOM);
    if let WorldEvent::Fall {
        from_z,
        to_z,
        time_s,
        ..
    } = falls[0].event
    {
        // The scripted fall starts at 40% of the 12 s trial.
        assert!(time_s > 4.0, "fall fired at {time_s:.2} s, before the drop");
        assert!(from_z > to_z, "fall rose? {from_z} → {to_z}");
    }
}
