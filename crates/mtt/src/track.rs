//! Track state: per-target 3D Kalman smoothing and lifecycle management.
//!
//! Each target is one [`MttTrack`]: three independent constant-velocity
//! [`Kalman1D`] filters (one per axis — exactly the filter the §4.4
//! single-target denoiser uses on round trips, reused here in the 3D output
//! domain) plus an M-hits confirmation / coast / drop lifecycle:
//!
//! ```text
//! Tentative ──confirm_hits──► Confirmed ◄──hit── Coasting
//!     │                           │                 │
//!     └─ tentative_max_misses     └── miss ─────────┘──max_coast_frames──► Dead
//! ```

use crate::config::MttConfig;
use witrack_dsp::kalman::Kalman1D;
use witrack_geom::Vec3;

/// Stable identifier of a track, unique within one `MultiWiTrack` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrackId(pub u64);

impl std::fmt::Display for TrackId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Lifecycle phase of a track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrackPhase {
    /// Newly initiated; not yet reported with confidence.
    Tentative,
    /// Enough consistent hits; reported as a real target.
    Confirmed,
    /// Confirmed but currently missing detections; position is predicted.
    Coasting,
    /// Dropped; removed from the tracker at the end of the frame.
    Dead,
}

/// One tracked target.
#[derive(Debug, Clone)]
pub struct MttTrack {
    /// Stable id.
    pub id: TrackId,
    /// Current lifecycle phase.
    pub phase: TrackPhase,
    kx: Kalman1D,
    ky: Kalman1D,
    kz: Kalman1D,
    /// Total accepted measurements.
    pub hits: usize,
    /// Consecutive frames without a measurement.
    pub consecutive_misses: usize,
    /// Frames since initiation.
    pub age_frames: usize,
}

impl MttTrack {
    /// Starts a tentative track at `position`.
    pub fn new(id: TrackId, position: Vec3, cfg: &MttConfig) -> MttTrack {
        let mut t = MttTrack {
            id,
            phase: TrackPhase::Tentative,
            kx: Kalman1D::new(cfg.kalman),
            ky: Kalman1D::new(cfg.kalman),
            kz: Kalman1D::new(cfg.kalman),
            hits: 0,
            consecutive_misses: 0,
            age_frames: 0,
        };
        // Seed the filters (first update pins the state to the measurement).
        t.kx.update(position.x, 0.0);
        t.ky.update(position.y, 0.0);
        t.kz.update(position.z, 0.0);
        t.hits = 1;
        t
    }

    /// Current (smoothed or predicted) position.
    pub fn position(&self) -> Vec3 {
        Vec3::new(
            self.kx.position().expect("seeded at construction"),
            self.ky.position().expect("seeded at construction"),
            self.kz.position().expect("seeded at construction"),
        )
    }

    /// Current velocity estimate.
    pub fn velocity(&self) -> Vec3 {
        Vec3::new(
            self.kx.velocity().expect("seeded at construction"),
            self.ky.velocity().expect("seeded at construction"),
            self.kz.velocity().expect("seeded at construction"),
        )
    }

    /// Position the track predicts for a point `dt` seconds ahead, without
    /// mutating the filters (used to build association costs).
    pub fn predicted_position(&self, dt: f64) -> Vec3 {
        self.position() + self.velocity() * dt
    }

    /// Per-axis position variance (m²) of the smoothed estimate — the
    /// diagonal of the track's state covariance, which cross-sensor fusion
    /// uses for Mahalanobis gating and covariance-weighted merging. Grows
    /// while the track coasts, shrinks while measurements arrive.
    pub fn position_variance(&self) -> Vec3 {
        Vec3::new(
            self.kx.position_variance(),
            self.ky.position_variance(),
            self.kz.position_variance(),
        )
    }

    /// The last accepted measurement's per-axis innovation (measurement
    /// minus prediction, m) — `None` until the track's second update.
    pub fn innovation(&self) -> Option<Vec3> {
        Some(Vec3::new(
            self.kx.innovation()?,
            self.ky.innovation()?,
            self.kz.innovation()?,
        ))
    }

    /// Accepts a measured position for this frame (`dt` since last frame)
    /// and advances the lifecycle with a hit.
    pub fn update(&mut self, measured: Vec3, dt: f64, cfg: &MttConfig) {
        self.kx.update(measured.x, dt);
        self.ky.update(measured.y, dt);
        self.kz.update(measured.z, dt);
        self.hits += 1;
        self.consecutive_misses = 0;
        self.age_frames += 1;
        match self.phase {
            TrackPhase::Tentative if self.hits >= cfg.confirm_hits => {
                self.phase = TrackPhase::Confirmed;
            }
            TrackPhase::Coasting => self.phase = TrackPhase::Confirmed,
            _ => {}
        }
        self.prune_implausible(cfg);
    }

    /// Kills the track when its kinematics stop being human: smoothed
    /// speed beyond `max_speed_mps` (ghosts' apparent motion is a geometric
    /// amplification of a real body's), or a position outside the
    /// deployment envelope (updates outside it are rejected anyway, so the
    /// track could never recover).
    fn prune_implausible(&mut self, cfg: &MttConfig) {
        if self.velocity().norm() > cfg.max_speed_mps
            || !cfg.position_gate.contains(self.position())
        {
            self.phase = TrackPhase::Dead;
        }
    }

    /// Records a frame with no accepted measurement: time-advances the
    /// filters and advances the lifecycle with a miss.
    pub fn miss(&mut self, dt: f64, cfg: &MttConfig) {
        self.kx.predict(dt);
        self.ky.predict(dt);
        self.kz.predict(dt);
        self.consecutive_misses += 1;
        self.age_frames += 1;
        match self.phase {
            TrackPhase::Tentative => {
                if self.consecutive_misses > cfg.tentative_max_misses {
                    self.phase = TrackPhase::Dead;
                }
            }
            TrackPhase::Confirmed | TrackPhase::Coasting => {
                self.phase = if self.consecutive_misses > cfg.max_coast_frames {
                    TrackPhase::Dead
                } else {
                    TrackPhase::Coasting
                };
            }
            TrackPhase::Dead => {}
        }
        self.prune_implausible(cfg);
    }

    /// Whether the track should be removed.
    pub fn is_dead(&self) -> bool {
        self.phase == TrackPhase::Dead
    }

    /// Whether the track is confirmed or coasting (i.e. reportable).
    pub fn is_established(&self) -> bool {
        matches!(self.phase, TrackPhase::Confirmed | TrackPhase::Coasting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MttConfig {
        MttConfig::default()
    }

    #[test]
    fn confirmation_after_m_hits() {
        let c = cfg();
        let mut t = MttTrack::new(TrackId(1), Vec3::new(0.0, 5.0, 1.0), &c);
        assert_eq!(t.phase, TrackPhase::Tentative);
        for i in 1..c.confirm_hits {
            assert_eq!(t.phase, TrackPhase::Tentative, "hit {i}");
            t.update(Vec3::new(0.0, 5.0 + 0.01 * i as f64, 1.0), 0.0125, &c);
        }
        assert_eq!(t.phase, TrackPhase::Confirmed);
    }

    #[test]
    fn tentative_dies_fast_confirmed_coasts() {
        let c = cfg();
        let mut t = MttTrack::new(TrackId(1), Vec3::new(0.0, 5.0, 1.0), &c);
        for _ in 0..=c.tentative_max_misses {
            t.miss(0.0125, &c);
        }
        assert!(t.is_dead());

        let mut t = MttTrack::new(TrackId(2), Vec3::new(0.0, 5.0, 1.0), &c);
        for _ in 0..c.confirm_hits {
            t.update(Vec3::new(0.0, 5.0, 1.0), 0.0125, &c);
        }
        t.miss(0.0125, &c);
        assert_eq!(t.phase, TrackPhase::Coasting);
        t.update(Vec3::new(0.0, 5.0, 1.0), 0.0125, &c);
        assert_eq!(t.phase, TrackPhase::Confirmed);
        for _ in 0..=c.max_coast_frames {
            t.miss(0.0125, &c);
        }
        assert!(t.is_dead());
    }

    #[test]
    fn kalman_learns_velocity_and_coasts_along_it() {
        let c = cfg();
        let mut t = MttTrack::new(TrackId(1), Vec3::new(0.0, 4.0, 1.0), &c);
        let dt = 0.0125;
        // Walk +x at 1 m/s for 2 s.
        for i in 1..=160 {
            t.update(Vec3::new(1.0 * dt * i as f64, 4.0, 1.0), dt, &c);
        }
        let v = t.velocity();
        assert!((v.x - 1.0).abs() < 0.1, "vx {}", v.x);
        // Coast 0.5 s: position should continue along +x.
        let before = t.position();
        for _ in 0..40 {
            t.miss(dt, &c);
        }
        let after = t.position();
        assert!(
            (after.x - before.x - 0.5).abs() < 0.1,
            "coasted {}",
            after.x - before.x
        );
    }

    #[test]
    fn predicted_position_extrapolates_without_mutation() {
        let c = cfg();
        let mut t = MttTrack::new(TrackId(1), Vec3::new(0.0, 4.0, 1.0), &c);
        for i in 1..=80 {
            t.update(Vec3::new(0.0, 4.0 + 0.0125 * i as f64, 1.0), 0.0125, &c);
        }
        let p0 = t.position();
        let pred = t.predicted_position(1.0);
        assert!(
            (pred.y - p0.y - 1.0).abs() < 0.15,
            "pred {} p0 {}",
            pred.y,
            p0.y
        );
        assert_eq!(t.position(), p0, "prediction must not mutate");
    }
}
