//! Detection-to-track data association: min-cost bipartite assignment.
//!
//! Each frame the tracker must decide which contour detection belongs to
//! which live track. That is a rectangular assignment problem: rows are
//! tracks, columns are detections, and each cell holds a gating-aware cost
//! (distance between the track's prediction and the detection). This module
//! solves it exactly with the Hungarian algorithm (Jonker–Volgenant style
//! shortest augmenting paths, O(n³)) and provides a greedy O(n² log n)
//! fallback used automatically for very large problems.
//!
//! ## Objective
//!
//! The solver returns the matching that, among all matchings of **maximum
//! feasible cardinality**, has **minimum total cost** — the standard MTT
//! association objective. A pair is *feasible* when its cost was set (via
//! [`CostMatrix::set`]) and is below the gate; cells never set are
//! forbidden and are never matched. The guarantee is exact provided every
//! finite cost is below [`CostMatrix::MAX_COST`], which the tracker's
//! meter-scale gates satisfy by orders of magnitude.

/// A rectangular cost matrix (rows = tracks, columns = detections).
#[derive(Debug, Clone)]
pub struct CostMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl CostMatrix {
    /// Upper bound on a feasible cost. `set` rejects anything at or above
    /// this; it is what makes "max cardinality first" exact.
    pub const MAX_COST: f64 = 1e4;

    /// Creates a matrix with every pair forbidden.
    pub fn new(rows: usize, cols: usize) -> CostMatrix {
        CostMatrix {
            rows,
            cols,
            data: vec![f64::INFINITY; rows * cols],
        }
    }

    /// Reshapes the matrix in place to `rows × cols` with every pair
    /// forbidden again, reusing the existing allocation — the per-frame
    /// entry point for trackers that keep one matrix across frames.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, f64::INFINITY);
    }

    /// Number of rows (tracks).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (detections).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Marks `(row, col)` feasible with the given cost.
    ///
    /// # Panics
    /// Panics when out of bounds, or when `cost` is not in
    /// `[0, MAX_COST)` — gate before setting, don't encode gates as huge
    /// costs.
    pub fn set(&mut self, row: usize, col: usize, cost: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "cost index out of bounds"
        );
        assert!(
            (0.0..Self::MAX_COST).contains(&cost),
            "cost {cost} outside [0, {})",
            Self::MAX_COST
        );
        self.data[row * self.cols + col] = cost;
    }

    /// The cost at `(row, col)` (`f64::INFINITY` when forbidden).
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.cols + col]
    }

    /// Whether `(row, col)` is feasible.
    pub fn is_feasible(&self, row: usize, col: usize) -> bool {
        self.get(row, col).is_finite()
    }
}

/// The result of an association solve.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Assignment {
    /// For each row, the matched column (None = unassigned).
    pub row_to_col: Vec<Option<usize>>,
    /// For each column, the matched row (None = unassigned).
    pub col_to_row: Vec<Option<usize>>,
    /// Sum of the matched pairs' costs.
    pub total_cost: f64,
}

impl Assignment {
    /// Number of matched pairs.
    pub fn matches(&self) -> usize {
        self.row_to_col.iter().flatten().count()
    }
}

/// Problem sizes above which [`solve_assignment`] switches from the exact
/// Hungarian algorithm to the greedy fallback. Far beyond any per-frame
/// association this tracker produces (tracks × detections ≤ tens).
pub const HUNGARIAN_SIZE_LIMIT: usize = 256;

/// Cost of leaving a row or column unmatched in the padded square problem.
/// Must dwarf `n · MAX_COST` so cardinality dominates cost.
const UNMATCHED: f64 = 1e8;
/// Padded stand-in for a forbidden pair: worse than unmatching both sides.
const FORBIDDEN: f64 = 3e8;

/// A reusable association solver: all Hungarian/greedy working arrays and
/// the result itself live in the solver and are recycled across calls, so a
/// tracker solving one association per antenna per frame performs no
/// steady-state allocation here.
#[derive(Debug, Clone, Default)]
pub struct AssignmentSolver {
    // Hungarian state (1-indexed; p[j] = row matched to column j).
    u: Vec<f64>,
    v: Vec<f64>,
    p: Vec<usize>,
    way: Vec<usize>,
    minv: Vec<f64>,
    used: Vec<bool>,
    // Greedy state.
    cells: Vec<(usize, usize)>,
    col_taken: Vec<bool>,
    /// Reused result; borrow it via the `solve*` return value.
    result: Assignment,
}

impl AssignmentSolver {
    /// Creates an empty solver (buffers grow to the first problem's size).
    pub fn new() -> AssignmentSolver {
        AssignmentSolver::default()
    }

    /// Solves the association exactly (Hungarian) when the padded size is
    /// at most [`HUNGARIAN_SIZE_LIMIT`], greedily otherwise. The returned
    /// reference is valid until the next solve.
    pub fn solve(&mut self, cost: &CostMatrix) -> &Assignment {
        if cost.rows().max(cost.cols()) <= HUNGARIAN_SIZE_LIMIT {
            self.solve_hungarian(cost)
        } else {
            self.solve_greedy(cost)
        }
    }

    /// Exact solve: Hungarian algorithm with potentials on the square
    /// matrix padded with `UNMATCHED`-cost dummy rows/columns.
    pub fn solve_hungarian(&mut self, cost: &CostMatrix) -> &Assignment {
        let (r, c) = (cost.rows(), cost.cols());
        let n = r.max(c);
        self.result.row_to_col.clear();
        self.result.row_to_col.resize(r, None);
        if n == 0 {
            return self.finish(cost);
        }
        let padded = |i: usize, j: usize| -> f64 {
            if i < r && j < c {
                let x = cost.get(i, j);
                if x.is_finite() {
                    x
                } else {
                    FORBIDDEN
                }
            } else {
                UNMATCHED
            }
        };

        self.u.clear();
        self.u.resize(n + 1, 0.0);
        self.v.clear();
        self.v.resize(n + 1, 0.0);
        self.p.clear();
        self.p.resize(n + 1, 0);
        self.way.clear();
        self.way.resize(n + 1, 0);
        self.minv.resize(n + 1, f64::INFINITY);
        self.used.resize(n + 1, false);
        for i in 1..=n {
            self.p[0] = i;
            let mut j0 = 0_usize;
            self.minv.fill(f64::INFINITY);
            self.used.fill(false);
            loop {
                self.used[j0] = true;
                let i0 = self.p[j0];
                let mut delta = f64::INFINITY;
                let mut j1 = 0_usize;
                for j in 1..=n {
                    if !self.used[j] {
                        let cur = padded(i0 - 1, j - 1) - self.u[i0] - self.v[j];
                        if cur < self.minv[j] {
                            self.minv[j] = cur;
                            self.way[j] = j0;
                        }
                        if self.minv[j] < delta {
                            delta = self.minv[j];
                            j1 = j;
                        }
                    }
                }
                for j in 0..=n {
                    if self.used[j] {
                        self.u[self.p[j]] += delta;
                        self.v[j] -= delta;
                    } else {
                        self.minv[j] -= delta;
                    }
                }
                j0 = j1;
                if self.p[j0] == 0 {
                    break;
                }
            }
            loop {
                let j1 = self.way[j0];
                self.p[j0] = self.p[j1];
                j0 = j1;
                if j0 == 0 {
                    break;
                }
            }
        }

        for j in 1..=n {
            let i = self.p[j];
            if i >= 1 && i - 1 < r && j - 1 < c && cost.is_feasible(i - 1, j - 1) {
                self.result.row_to_col[i - 1] = Some(j - 1);
            }
        }
        self.finish(cost)
    }

    /// Greedy fallback: repeatedly match the globally cheapest feasible
    /// pair. Not optimal (a cheap pair can block two slightly dearer ones)
    /// but O(n² log n) and good enough when the exact solver would be too
    /// slow.
    pub fn solve_greedy(&mut self, cost: &CostMatrix) -> &Assignment {
        let (r, c) = (cost.rows(), cost.cols());
        self.cells.clear();
        self.cells.extend(
            (0..r)
                .flat_map(|i| (0..c).map(move |j| (i, j)))
                .filter(|&(i, j)| cost.is_feasible(i, j)),
        );
        // Unstable: allocation-free, and cost ties need no defined order.
        // total_cmp tolerates NaN costs (corrupt measurements upstream):
        // they sort last, so a poisoned cell loses every greedy pick.
        self.cells
            .sort_unstable_by(|&a, &b| cost.get(a.0, a.1).total_cmp(&cost.get(b.0, b.1)));
        self.result.row_to_col.clear();
        self.result.row_to_col.resize(r, None);
        self.col_taken.clear();
        self.col_taken.resize(c, false);
        for &(i, j) in &self.cells {
            if self.result.row_to_col[i].is_none() && !self.col_taken[j] {
                self.result.row_to_col[i] = Some(j);
                self.col_taken[j] = true;
            }
        }
        self.finish(cost)
    }

    /// Rebuilds the column map and total cost from `result.row_to_col`.
    fn finish(&mut self, cost: &CostMatrix) -> &Assignment {
        self.result.col_to_row.clear();
        self.result.col_to_row.resize(cost.cols(), None);
        let mut total = 0.0;
        for (row, col) in self.result.row_to_col.iter().enumerate() {
            if let Some(col) = *col {
                self.result.col_to_row[col] = Some(row);
                total += cost.get(row, col);
            }
        }
        self.result.total_cost = total;
        &self.result
    }
}

/// One-shot form of [`AssignmentSolver::solve`], for callers without a
/// solver to reuse.
pub fn solve_assignment(cost: &CostMatrix) -> Assignment {
    let mut solver = AssignmentSolver::new();
    solver.solve(cost);
    solver.result
}

/// One-shot form of [`AssignmentSolver::solve_hungarian`].
pub fn solve_assignment_hungarian(cost: &CostMatrix) -> Assignment {
    let mut solver = AssignmentSolver::new();
    solver.solve_hungarian(cost);
    solver.result
}

/// One-shot form of [`AssignmentSolver::solve_greedy`].
pub fn solve_assignment_greedy(cost: &CostMatrix) -> Assignment {
    let mut solver = AssignmentSolver::new();
    solver.solve_greedy(cost);
    solver.result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: usize, cols: usize, cells: &[(usize, usize, f64)]) -> CostMatrix {
        let mut m = CostMatrix::new(rows, cols);
        for &(i, j, x) in cells {
            m.set(i, j, x);
        }
        m
    }

    #[test]
    fn empty_problem_solves_trivially() {
        let a = solve_assignment(&CostMatrix::new(0, 0));
        assert_eq!(a.matches(), 0);
        assert_eq!(a.total_cost, 0.0);
        let a = solve_assignment(&CostMatrix::new(3, 0));
        assert_eq!(a.row_to_col, vec![None, None, None]);
    }

    #[test]
    fn identity_is_found() {
        let m = matrix(3, 3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let a = solve_assignment(&m);
        assert_eq!(a.row_to_col, vec![Some(0), Some(1), Some(2)]);
        assert_eq!(a.total_cost, 3.0);
    }

    #[test]
    fn avoids_greedy_trap() {
        // Greedy takes (0,0)=1 and is forced into (1,1)=100 (total 101);
        // optimal is (0,1)=2 + (1,0)=2 (total 4).
        let m = matrix(
            2,
            2,
            &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 100.0)],
        );
        let a = solve_assignment_hungarian(&m);
        assert_eq!(a.row_to_col, vec![Some(1), Some(0)]);
        assert_eq!(a.total_cost, 4.0);
        let g = solve_assignment_greedy(&m);
        assert_eq!(g.total_cost, 101.0);
    }

    #[test]
    fn cardinality_beats_cost() {
        // Matching both rows costs 1000+1000; matching only row 0 costs 1.
        // Max cardinality wins.
        let m = matrix(2, 2, &[(0, 0, 1.0), (0, 1, 1000.0), (1, 0, 1000.0)]);
        let a = solve_assignment_hungarian(&m);
        assert_eq!(a.matches(), 2);
        assert_eq!(a.row_to_col, vec![Some(1), Some(0)]);
    }

    #[test]
    fn forbidden_pairs_are_never_matched() {
        let m = matrix(2, 2, &[(0, 0, 5.0)]);
        let a = solve_assignment_hungarian(&m);
        assert_eq!(a.row_to_col, vec![Some(0), None]);
        assert_eq!(a.col_to_row, vec![Some(0), None]);
        assert_eq!(a.total_cost, 5.0);
    }

    #[test]
    fn rectangular_wide_and_tall() {
        // 2 tracks, 4 detections.
        let m = matrix(2, 4, &[(0, 2, 0.5), (1, 0, 0.25), (1, 2, 0.1)]);
        let a = solve_assignment_hungarian(&m);
        assert_eq!(a.row_to_col, vec![Some(2), Some(0)]);
        // 4 tracks, 2 detections.
        let m = matrix(4, 2, &[(2, 0, 0.5), (0, 1, 0.25), (2, 1, 0.1)]);
        let a = solve_assignment_hungarian(&m);
        assert_eq!(a.row_to_col, vec![Some(1), None, Some(0), None]);
    }

    #[test]
    #[should_panic]
    fn oversized_cost_rejected() {
        let mut m = CostMatrix::new(1, 1);
        m.set(0, 0, CostMatrix::MAX_COST);
    }

    #[test]
    fn reused_solver_matches_one_shot_solves() {
        let problems = [
            matrix(3, 3, &[(0, 1, 0.1), (1, 0, 0.2), (2, 2, 0.3), (0, 0, 5.0)]),
            matrix(2, 4, &[(0, 2, 0.5), (1, 0, 0.25), (1, 2, 0.1)]),
            matrix(4, 2, &[(2, 0, 0.5), (0, 1, 0.25), (2, 1, 0.1)]),
            matrix(
                2,
                2,
                &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 100.0)],
            ),
            CostMatrix::new(0, 0),
        ];
        let mut solver = AssignmentSolver::new();
        for m in &problems {
            assert_eq!(solver.solve(m), &solve_assignment(m));
        }
    }

    #[test]
    fn solver_scratch_is_reused_across_frames() {
        // Same-shaped problems frame after frame (the tracker's steady
        // state): after the first solve, no buffer is ever reallocated.
        let mut solver = AssignmentSolver::new();
        let mut cost = CostMatrix::new(3, 3);
        for i in 0..3 {
            cost.set(i, (i + 1) % 3, 1.0 + i as f64);
        }
        solver.solve(&cost);
        let ptr = solver.result.row_to_col.as_ptr();
        let minv_cap = solver.minv.capacity();
        for frame in 0..5 {
            cost.reset(3, 3);
            for i in 0..3 {
                cost.set(i, (i + frame) % 3, 0.5 + i as f64);
            }
            let a = solver.solve(&cost);
            assert_eq!(a.matches(), 3);
            assert_eq!(
                solver.result.row_to_col.as_ptr(),
                ptr,
                "result buffer reallocated"
            );
            assert_eq!(solver.minv.capacity(), minv_cap, "scratch reallocated");
        }
    }

    #[test]
    fn cost_matrix_reset_reuses_allocation() {
        let mut m = CostMatrix::new(4, 4);
        m.set(0, 0, 1.0);
        let cap = m.data.capacity();
        m.reset(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert!(!m.is_feasible(0, 0), "reset must forbid all pairs");
        assert_eq!(m.data.capacity(), cap, "reset reallocated");
    }

    #[test]
    fn greedy_matches_hungarian_on_easy_problems() {
        // Well-separated costs: greedy is optimal too.
        let m = matrix(3, 3, &[(0, 1, 0.1), (1, 0, 0.2), (2, 2, 0.3), (0, 0, 5.0)]);
        let h = solve_assignment_hungarian(&m);
        let g = solve_assignment_greedy(&m);
        assert_eq!(h.row_to_col, g.row_to_col);
    }
}
