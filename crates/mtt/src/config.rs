//! Multi-target tracker configuration, layered on the single-target
//! [`WiTrackConfig`].

use serde::{Deserialize, Serialize};
use witrack_core::WiTrackConfig;
use witrack_dsp::kalman::KalmanConfig;

/// Axis-aligned bounds a candidate 3D position must satisfy before it can
/// seed a new track. Candidate tuples that solve to positions behind the
/// array or outside the deployment volume are ghosts by construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PositionGate {
    /// Allowed x range (m).
    pub x: (f64, f64),
    /// Allowed y range (m); y > 0 is in front of the array.
    pub y: (f64, f64),
    /// Allowed z range (m).
    pub z: (f64, f64),
}

impl Default for PositionGate {
    fn default() -> Self {
        // Envelope of the paper's deployment: the lab room spans
        // x ∈ [−3, 3.5] m between its side walls and 10 m of depth. The z
        // band is deliberately tight — body centers live between the floor
        // (a fallen person, ~0.1 m) and ~2 m. Dynamic-multipath ghosts
        // solve to systematically wrong positions (the stem antenna maps a
        // bounce's extra path length into z; wall bounces pull x and y
        // toward and past the walls), so this envelope — ending just
        // inside each wall — is the main ghost filter. Widen it for larger
        // deployments.
        PositionGate {
            x: (-2.9, 3.4),
            y: (0.5, 9.8),
            z: (0.0, 2.0),
        }
    }
}

impl PositionGate {
    /// Whether `p` lies inside the gate.
    pub fn contains(&self, p: witrack_geom::Vec3) -> bool {
        p.x >= self.x.0
            && p.x <= self.x.1
            && p.y >= self.y.0
            && p.y <= self.y.1
            && p.z >= self.z.0
            && p.z <= self.z.1
    }
}

/// Full configuration of a [`crate::MultiWiTrack`] pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MttConfig {
    /// The underlying single-target pipeline configuration (sweep, array
    /// geometry, contour thresholds) — reused verbatim.
    pub base: WiTrackConfig,
    /// Maximum simultaneous targets the tracker reports.
    pub max_targets: usize,
    /// Minimum separation between per-antenna contour peaks, in FFT bins.
    /// Peaks closer than this to an already-accepted (nearer) peak are
    /// treated as the same reflector's lobe.
    pub min_peak_separation_bins: f64,
    /// Per-antenna association gate (m of round trip): a detection can only
    /// be assigned to a track whose predicted round trip is within this.
    pub gate_round_trip_m: f64,
    /// 3D gate (m) for suppressing new-track candidates near live tracks.
    pub min_new_track_separation_m: f64,
    /// Hits needed before a tentative track is confirmed.
    pub confirm_hits: usize,
    /// Consecutive misses that kill a *tentative* track.
    pub tentative_max_misses: usize,
    /// Consecutive misses a *confirmed* track may coast through before it
    /// is dropped. Sized to ride out a radial crossing, where one body
    /// occludes the other in round trip for more than a second, while
    /// staying well short of the §4.4 static-person hold (a person who
    /// stops moving should eventually drop, not linger forever).
    pub max_coast_frames: usize,
    /// Tracks whose smoothed speed exceeds this are dropped: indoor human
    /// motion stays under ~3 m/s, while multipath ghosts (whose apparent
    /// motion is a geometric amplification of a real body's) routinely
    /// exceed it.
    pub max_speed_mps: f64,
    /// Per-axis Kalman tuning for track smoothing (reuses
    /// [`witrack_dsp::kalman`] exactly as the single-target §4.4 stage does,
    /// but in the 3D output domain rather than per-antenna round trips).
    pub kalman: KalmanConfig,
    /// Spatial envelope a candidate position must satisfy to seed a track.
    pub position_gate: PositionGate,
}

impl Default for MttConfig {
    fn default() -> Self {
        MttConfig {
            base: WiTrackConfig::witrack_default(),
            max_targets: 3,
            min_peak_separation_bins: 2.0,
            gate_round_trip_m: 1.2,
            min_new_track_separation_m: 1.0,
            confirm_hits: 8,
            tentative_max_misses: 3,
            max_coast_frames: 280,
            max_speed_mps: 6.0,
            kalman: KalmanConfig {
                // Raw per-frame 3D solves are noisier than the §4.4
                // denoised single-target stream (no per-antenna Kalman
                // underneath), so measurement noise is set higher; process
                // noise matches walking dynamics.
                measurement_std: 0.15,
                process_accel_std: 4.0,
                initial_pos_var: 1.0,
                initial_vel_var: 4.0,
            },
            position_gate: PositionGate::default(),
        }
    }
}

impl MttConfig {
    /// Default tracker over an explicit base pipeline config.
    pub fn with_base(base: WiTrackConfig) -> MttConfig {
        MttConfig {
            base,
            ..MttConfig::default()
        }
    }

    /// Returns a copy with a different target capacity.
    pub fn with_max_targets(mut self, k: usize) -> MttConfig {
        self.max_targets = k;
        self
    }

    /// Per-antenna contour peaks to extract each frame. Deliberately larger
    /// than `max_targets`: a near person's dynamic-multipath bounces are
    /// often *stronger and nearer* than a far person's direct echo, so the
    /// far person's contour only surfaces when the top-K budget has room
    /// for the bounces too. The surplus detections are shed downstream by
    /// gating and association.
    pub fn detection_budget(&self) -> usize {
        2 * self.max_targets + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use witrack_geom::Vec3;

    #[test]
    fn default_gate_accepts_room_rejects_behind_array() {
        let g = PositionGate::default();
        assert!(g.contains(Vec3::new(0.0, 5.0, 1.0)));
        assert!(!g.contains(Vec3::new(0.0, -2.0, 1.0)));
        assert!(!g.contains(Vec3::new(0.0, 5.0, 4.0)));
    }

    #[test]
    fn builders_override() {
        let c = MttConfig::default().with_max_targets(5);
        assert_eq!(c.max_targets, 5);
        assert_eq!(c.base.antenna_separation, 1.0);
    }
}
