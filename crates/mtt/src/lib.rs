//! Multi-target tracking for the WiTrack reproduction.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod assignment;
pub mod config;
pub mod pipeline;
pub mod track;

pub use assignment::{
    solve_assignment, solve_assignment_greedy, Assignment, AssignmentSolver, CostMatrix,
};
pub use config::MttConfig;
pub use pipeline::{MttUpdate, MultiWiTrack, TrackSnapshot};
pub use track::{TrackId, TrackPhase};
