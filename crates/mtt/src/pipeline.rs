//! The multi-target pipeline: sweeps in, N concurrent tracks out.
//!
//! [`MultiWiTrack`] mirrors [`witrack_core::WiTrack`]'s streaming interface
//! (one baseband sweep per receive antenna per sweep interval, one output
//! per frame) but lifts the §10 single-person assumption:
//!
//! 1. **Top-K contours** — each antenna's background-subtracted range
//!    profile yields up to `max_targets` contour detections
//!    ([`witrack_fmcw::ContourTracker::detect_top_k`]) instead of one.
//!    On frame-completing sweeps this per-antenna stage fans out across
//!    scoped threads (multi-core hosts only), and its buffers — profile,
//!    CZT scratch, baseline, magnitudes, detections, association cost
//!    matrix and solver scratch — are reused across frames: the
//!    profile→background path performs no steady-state heap allocation
//!    (the noise-floor order statistics inside contour detection and the
//!    track bookkeeping still make small per-frame allocations).
//! 2. **Gated per-antenna association** — live tracks predict their
//!    per-antenna round trips; a Hungarian assignment
//!    ([`crate::assignment`]) matches detections to tracks within
//!    `gate_round_trip_m`.
//! 3. **Per-track 3D solve + Kalman** — a track whose every antenna found a
//!    detection gets a least-squares 3D fix, smoothed by the per-axis
//!    constant-velocity filters in [`crate::track`].
//! 4. **Rank-consistent initiation** — detections no track claimed are
//!    matched across antennas by round-trip rank (the direct echo is the
//!    *shortest* path, so the k-th nearest contour on each antenna belongs
//!    to the k-th nearest person except during radial crossings — exactly
//!    when tracks already exist and initiation is not needed). Candidate
//!    tuples must solve inside the position gate, away from live tracks.
//! 5. **Lifecycle** — tentative → confirmed → coasting → dead, so one-frame
//!    noise peaks never become reported targets and brief occlusions (or a
//!    radial crossing, where two bodies share one contour) don't kill a
//!    track.
//!
//! Remaining §10 limitations this subsystem inherits: a person who stops
//! moving vanishes from the background-subtracted stream (their track
//! coasts, then drops), and targets closer than about a range bin in round
//! trip on every antenna are one detection until they separate.

use crate::assignment::{AssignmentSolver, CostMatrix};
use crate::config::MttConfig;
use crate::track::{MttTrack, TrackId, TrackPhase};
use witrack_core::frame_pipeline::{FramePipeline, FrameReport, TargetReport};
use witrack_core::pipeline::{antenna_parallelism, BuildError};
use witrack_dsp::window::WindowKind;
use witrack_fmcw::contour::Detection;
use witrack_fmcw::{BackgroundSubtractor, ContourTracker, RangeProfiler, Sweep};
use witrack_geom::multilateration::{solve_least_squares, GaussNewtonConfig};
use witrack_geom::{AntennaArray, TArray, Vec3};

/// Snapshot of one track at a frame boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackSnapshot {
    /// Stable track identifier.
    pub id: TrackId,
    /// Lifecycle phase (never `Dead`; dead tracks are dropped, not
    /// reported).
    pub phase: TrackPhase,
    /// Smoothed (confirmed) or predicted (coasting) 3D position.
    pub position: Vec3,
    /// Velocity estimate (m/s).
    pub velocity: Vec3,
    /// Per-axis position variance (m²) from the track's Kalman state
    /// covariance (grows while coasting, shrinks under measurements).
    pub pos_var: Vec3,
    /// Last accepted measurement's per-axis innovation (m); `None` until
    /// the second accepted measurement.
    pub innovation: Option<Vec3>,
    /// Total measurements accepted.
    pub hits: usize,
    /// Consecutive frames without a measurement.
    pub consecutive_misses: usize,
}

impl TrackSnapshot {
    /// Whether this track is reportable (confirmed or coasting).
    pub fn is_established(&self) -> bool {
        matches!(self.phase, TrackPhase::Confirmed | TrackPhase::Coasting)
    }

    /// The tracked elevation (z).
    pub fn elevation(&self) -> f64 {
        self.position.z
    }
}

/// One frame's multi-target output.
#[derive(Debug, Clone)]
pub struct MttUpdate {
    /// Frame counter since the stream began.
    pub frame_index: u64,
    /// Time (s) at the end of the frame.
    pub time_s: f64,
    /// Number of contour detections per receive antenna this frame.
    pub detections_per_antenna: Vec<usize>,
    /// All live tracks (tentative included — filter with
    /// [`TrackSnapshot::is_established`] for reportable targets).
    pub tracks: Vec<TrackSnapshot>,
}

impl MttUpdate {
    /// Established (confirmed or coasting) tracks only.
    pub fn established(&self) -> impl Iterator<Item = &TrackSnapshot> {
        self.tracks.iter().filter(|t| t.is_established())
    }
}

/// The multi-target WiTrack system.
pub struct MultiWiTrack {
    cfg: MttConfig,
    array: AntennaArray,
    profilers: Vec<RangeProfiler>,
    backgrounds: Vec<BackgroundSubtractor>,
    /// Per-antenna detection buffers, reused across frames.
    detections: Vec<Vec<Detection>>,
    /// One tracker per antenna: detection owns a per-call noise-floor
    /// scratch (`&mut self`), so each antenna thread needs its own.
    contours: Vec<ContourTracker>,
    /// Fan per-antenna frame work out across threads (multi-core hosts
    /// only; see [`antenna_parallelism`]).
    parallel: bool,
    gn: GaussNewtonConfig,
    /// Association cost matrix, reused across frames.
    cost: CostMatrix,
    /// Association solver scratch, reused across frames.
    solver: AssignmentSolver,
    tracks: Vec<MttTrack>,
    next_id: u64,
    frame_index: u64,
    sweeps_seen: u64,
    /// Per-stage latency histograms, when the owner attached them.
    stats: Option<witrack_obs::StageStats>,
}

impl MultiWiTrack {
    /// Builds the tracker with the paper's T-array geometry from the base
    /// config's origin and separation.
    pub fn new(cfg: MttConfig) -> Result<MultiWiTrack, BuildError> {
        let array =
            TArray::symmetric(cfg.base.array_origin, cfg.base.antenna_separation).antenna_array();
        Self::with_array(cfg, array)
    }

    /// Builds the tracker around an arbitrary array (≥ 3 receivers); always
    /// uses the least-squares solver, which over-constrained arrays need
    /// and which also hardens initiation (nonzero residuals reject
    /// rank-mismatched tuples).
    pub fn with_array(cfg: MttConfig, array: AntennaArray) -> Result<MultiWiTrack, BuildError> {
        cfg.base.sweep.validate().map_err(BuildError::BadSweep)?;
        let n_rx = array.num_rx();
        Ok(MultiWiTrack {
            profilers: (0..n_rx)
                .map(|_| {
                    RangeProfiler::new(&cfg.base.sweep, WindowKind::Hann, cfg.base.max_round_trip_m)
                })
                .collect(),
            backgrounds: (0..n_rx).map(|_| BackgroundSubtractor::new()).collect(),
            detections: (0..n_rx).map(|_| Vec::new()).collect(),
            contours: (0..n_rx)
                .map(|_| ContourTracker::new(cfg.base.sweep, cfg.base.contour))
                .collect(),
            parallel: antenna_parallelism(n_rx),
            gn: GaussNewtonConfig::default(),
            cost: CostMatrix::new(0, 0),
            solver: AssignmentSolver::new(),
            tracks: Vec::new(),
            next_id: 0,
            frame_index: 0,
            sweeps_seen: 0,
            stats: None,
            array,
            cfg,
        })
    }

    /// The antenna array in use.
    pub fn array(&self) -> &AntennaArray {
        &self.array
    }

    /// The configuration in use.
    pub fn config(&self) -> &MttConfig {
        &self.cfg
    }

    /// Number of live (non-dead) tracks, tentative included.
    pub fn live_tracks(&self) -> usize {
        self.tracks.len()
    }

    /// Attaches per-stage latency histograms: on every frame-completing
    /// push, per-antenna range-profiling time is recorded into
    /// `stats.profile`, background + top-K contour time into
    /// `stats.detect`, and association + solve + initiation into
    /// `stats.associate`.
    pub fn attach_stage_stats(&mut self, stats: witrack_obs::StageStats) {
        self.stats = Some(stats);
    }

    /// Pushes one sweep interval's baseband, one slice per receive antenna.
    /// Returns an [`MttUpdate`] on frame boundaries.
    ///
    /// # Panics
    /// Panics if `per_rx.len()` differs from the number of receive antennas
    /// or any sweep has the wrong length.
    pub fn push_sweeps(&mut self, per_rx: &[&[f64]]) -> Option<MttUpdate> {
        assert_eq!(
            per_rx.len(),
            self.profilers.len(),
            "one sweep per receive antenna"
        );
        self.push_sweeps_inner(per_rx.iter().copied().map(Sweep::F64))
    }

    /// [`Self::push_sweeps`] over one flat, antenna-contiguous buffer
    /// (antenna `k` at `flat[k * samples_per_sweep ..][.. samples_per_sweep]`)
    /// — the layout wire batches arrive in, so the serving layer feeds the
    /// tracker without building per-sweep slice tables.
    ///
    /// # Panics
    /// Panics if `flat.len()` is not exactly `samples_per_sweep × num_rx`,
    /// or `samples_per_sweep` is zero.
    pub fn push_sweeps_flat(
        &mut self,
        flat: &[f64],
        samples_per_sweep: usize,
    ) -> Option<MttUpdate> {
        assert!(samples_per_sweep > 0, "sweeps cannot be empty");
        assert_eq!(
            flat.len(),
            samples_per_sweep * self.profilers.len(),
            "one sweep per receive antenna, packed contiguously"
        );
        self.push_sweeps_inner(flat.chunks_exact(samples_per_sweep).map(Sweep::F64))
    }

    /// [`Self::push_sweeps_flat`] over wire-quantized samples
    /// (`sample = q · scale`), keeping the profile front half in fixed
    /// point (see [`witrack_fmcw::RangeProfiler::push_sweep_q`]).
    ///
    /// # Panics
    /// Panics if `flat.len()` is not exactly `samples_per_sweep × num_rx`,
    /// or `samples_per_sweep` is zero.
    pub fn push_sweeps_flat_q(
        &mut self,
        flat: &[i16],
        samples_per_sweep: usize,
        scale: f64,
    ) -> Option<MttUpdate> {
        assert!(samples_per_sweep > 0, "sweeps cannot be empty");
        assert_eq!(
            flat.len(),
            samples_per_sweep * self.profilers.len(),
            "one sweep per receive antenna, packed contiguously"
        );
        self.push_sweeps_inner(
            flat.chunks_exact(samples_per_sweep)
                .map(move |c| Sweep::Q(c, scale)),
        )
    }

    fn push_sweeps_inner<'a, I>(&mut self, per_rx: I) -> Option<MttUpdate>
    where
        I: DoubleEndedIterator<Item = Sweep<'a>> + ExactSizeIterator,
    {
        self.sweeps_seen += 1;
        // All profilers share the sweep clock; accumulate-only sweeps are
        // microseconds of serial work.
        let completes = self
            .profilers
            .first()
            .map(|p| p.next_sweep_completes_frame())
            .unwrap_or(false);
        if !completes {
            for (prof, sweep) in self.profilers.iter_mut().zip(per_rx) {
                let emitted = prof.push(sweep);
                debug_assert!(emitted.is_none(), "profilers desynchronized");
            }
            return None;
        }

        // Frame-completing sweep: the per-antenna profile → background →
        // top-K contour stage, fanned out with scoped threads on
        // multi-core hosts. Each thread gets disjoint &mut state
        // (including its own contour tracker); the tuning is shared
        // read-only.
        let budget = self.cfg.detection_budget();
        let min_sep = self.cfg.min_peak_separation_bins;
        let stats = &self.stats;
        let stage = |prof: &mut RangeProfiler,
                     bg: &mut BackgroundSubtractor,
                     contour: &mut ContourTracker,
                     dets: &mut Vec<Detection>,
                     sweep: Sweep<'a>| {
            let profile_start = stats.as_ref().map(|_| std::time::Instant::now());
            let profile = prof.push(sweep).expect("frame-completing sweep");
            let detect_start = profile_start.map(|start| {
                let now = std::time::Instant::now();
                stats
                    .as_ref()
                    .expect("timed only when attached")
                    .profile
                    .record((now - start).as_nanos().min(u64::MAX as u128) as u64);
                now
            });
            match bg.push(profile) {
                None => dets.clear(),
                Some(mags) => contour.detect_top_k_into(mags, budget, min_sep, dets),
            }
            if let (Some(st), Some(start)) = (stats.as_ref(), detect_start) {
                st.detect.record_since(start);
            }
        };
        let stages = self
            .profilers
            .iter_mut()
            .zip(self.backgrounds.iter_mut())
            .zip(self.contours.iter_mut())
            .zip(self.detections.iter_mut())
            .zip(per_rx);
        if self.parallel {
            let stage = &stage;
            std::thread::scope(|s| {
                // The caller's thread takes the last antenna itself instead
                // of blocking at the scope barrier — one fewer spawn.
                let mut stages = stages;
                let last = stages.next_back();
                for ((((prof, bg), contour), dets), sweep) in stages {
                    s.spawn(move || stage(prof, bg, contour, dets, sweep));
                }
                if let Some(((((prof, bg), contour), dets), sweep)) = last {
                    stage(prof, bg, contour, dets, sweep);
                }
            });
        } else {
            for ((((prof, bg), contour), dets), sweep) in stages {
                stage(prof, bg, contour, dets, sweep);
            }
        }

        let dt = self.cfg.base.sweep.frame_duration_s();
        let time_s = self.sweeps_seen as f64 * self.cfg.base.sweep.sweep_duration_s;

        // Take the detection buffers so &mut self methods can run; the
        // buffers (and their capacity) are returned afterwards.
        let detections = std::mem::take(&mut self.detections);
        let associate_start = self.stats.as_ref().map(|_| std::time::Instant::now());
        let claimed = self.associate_and_update(&detections, dt);
        self.initiate_tracks(&detections, &claimed);
        self.tracks.retain(|t| !t.is_dead());
        if let (Some(st), Some(start)) = (self.stats.as_ref(), associate_start) {
            st.associate.record_since(start);
        }

        let update = MttUpdate {
            frame_index: self.frame_index,
            time_s,
            detections_per_antenna: detections.iter().map(|d| d.len()).collect(),
            tracks: self
                .tracks
                .iter()
                .map(|t| TrackSnapshot {
                    id: t.id,
                    phase: t.phase,
                    position: t.position(),
                    velocity: t.velocity(),
                    pos_var: t.position_variance(),
                    innovation: t.innovation(),
                    hits: t.hits,
                    consecutive_misses: t.consecutive_misses,
                })
                .collect(),
        };
        self.detections = detections;
        self.frame_index += 1;
        Some(update)
    }

    /// Stage 2 + 3: per-antenna gated Hungarian association, then a 3D
    /// solve + Kalman update for every fully-matched track. Returns the
    /// per-antenna claimed-detection masks.
    ///
    /// Runs in two passes — established tracks first, tentative tracks on
    /// the leftovers — so a freshly-spawned ghost can never outbid a
    /// confirmed track for its own detections.
    fn associate_and_update(&mut self, detections: &[Vec<Detection>], dt: f64) -> Vec<Vec<bool>> {
        let mut claimed: Vec<Vec<bool>> = detections.iter().map(|d| vec![false; d.len()]).collect();
        let established: Vec<usize> = (0..self.tracks.len())
            .filter(|&i| self.tracks[i].is_established())
            .collect();
        let tentative: Vec<usize> = (0..self.tracks.len())
            .filter(|&i| !self.tracks[i].is_established())
            .collect();
        for pass in [established, tentative] {
            self.associate_pass(&pass, detections, dt, &mut claimed);
        }
        claimed
    }

    /// Associates the detections not yet claimed to the tracks in `pass`,
    /// then updates each of those tracks (measurement or miss).
    fn associate_pass(
        &mut self,
        pass: &[usize],
        detections: &[Vec<Detection>],
        dt: f64,
        claimed: &mut [Vec<bool>],
    ) {
        if pass.is_empty() {
            return;
        }
        let n_rx = detections.len();
        let predicted: Vec<Vec3> = pass
            .iter()
            .map(|&t| self.tracks[t].predicted_position(dt))
            .collect();

        // assigned[p][k] = round trip matched to pass-track p on antenna k.
        let mut assigned: Vec<Vec<Option<f64>>> = vec![vec![None; n_rx]; pass.len()];
        for k in 0..n_rx {
            let available: Vec<usize> = (0..detections[k].len())
                .filter(|&d| !claimed[k][d])
                .collect();
            self.cost.reset(pass.len(), available.len());
            for (pi, pred) in predicted.iter().enumerate() {
                let pred_rt = self.array.round_trip(*pred, k);
                for (ci, &di) in available.iter().enumerate() {
                    let err = (detections[k][di].round_trip_m - pred_rt).abs();
                    if err < self.cfg.gate_round_trip_m {
                        self.cost.set(pi, ci, err);
                    }
                }
            }
            let assignment = self.solver.solve(&self.cost);
            for (pi, ci) in assignment.row_to_col.iter().enumerate() {
                if let Some(ci) = *ci {
                    let di = available[ci];
                    assigned[pi][k] = Some(detections[k][di].round_trip_m);
                    claimed[k][di] = true;
                }
            }
        }

        for (pi, rts) in assigned.iter().enumerate() {
            let ti = pass[pi];
            let full: Option<Vec<f64>> = rts.iter().copied().collect();
            let measured = full
                .and_then(|rts| {
                    solve_least_squares(&self.array, &rts, &self.gn)
                        .ok()
                        .map(|s| s.position)
                })
                // A "measurement" outside the deployment envelope is a
                // multipath artifact, not a person — coast instead of
                // letting it drag the track out of the room.
                .filter(|p| self.cfg.position_gate.contains(*p));
            match measured {
                Some(p) => self.tracks[ti].update(p, dt, &self.cfg),
                None => self.tracks[ti].miss(dt, &self.cfg),
            }
        }
    }

    /// Stage 4: initiate tentative tracks from cross-antenna tuples of
    /// unclaimed detections. Each unclaimed detection on antenna 0 anchors
    /// a tuple completed by the *nearest-in-round-trip* unclaimed detection
    /// on every other antenna (a single reflector's round trips differ
    /// across antennas by at most the antenna-separation geometry allows,
    /// so nearest-rt matching recovers the per-person tuple even when the
    /// antennas saw different subsets of bounces).
    fn initiate_tracks(&mut self, detections: &[Vec<Detection>], claimed: &[Vec<bool>]) {
        // Unclaimed detections per antenna, already nearest-first.
        let unclaimed: Vec<Vec<&Detection>> = detections
            .iter()
            .zip(claimed)
            .map(|(dets, mask)| {
                dets.iter()
                    .zip(mask)
                    .filter(|(_, &c)| !c)
                    .map(|(d, _)| d)
                    .collect()
            })
            .collect();
        if unclaimed.iter().any(|u| u.is_empty()) {
            return;
        }
        let max_spread = 2.0 * self.cfg.base.antenna_separation + 0.5;
        let mut born: Vec<Vec3> = Vec::new();
        for anchor in &unclaimed[0] {
            let mut rts = vec![anchor.round_trip_m];
            for other in &unclaimed[1..] {
                let nearest = other
                    .iter()
                    .map(|d| d.round_trip_m)
                    .min_by(|a, b| {
                        let da = (a - anchor.round_trip_m).abs();
                        let db = (b - anchor.round_trip_m).abs();
                        da.total_cmp(&db) // NaN sorts last: never picked over a real range
                    })
                    .expect("non-empty checked above");
                rts.push(nearest);
            }
            let spread = rts.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - rts.iter().cloned().fold(f64::INFINITY, f64::min);
            if spread > max_spread {
                continue;
            }
            let Ok(solved) = solve_least_squares(&self.array, &rts, &self.gn) else {
                continue;
            };
            // For over-constrained arrays the residual exposes mismatched
            // tuples; with 3 receivers it is ~0 and the gates do the work.
            if solved.residual_rms > 0.25 {
                continue;
            }
            let p = solved.position;
            if !self.cfg.position_gate.contains(p) {
                continue;
            }
            let too_close = self
                .tracks
                .iter()
                .map(|t| t.position())
                .chain(born.iter().copied())
                .any(|q| q.distance(p) < self.cfg.min_new_track_separation_m);
            if too_close {
                continue;
            }
            let id = TrackId(self.next_id);
            self.next_id += 1;
            self.tracks.push(MttTrack::new(id, p, &self.cfg));
            born.push(p);
        }
    }

    /// Clears all stream and track state.
    pub fn reset(&mut self) {
        for p in &mut self.profilers {
            p.reset();
        }
        for b in &mut self.backgrounds {
            b.reset();
        }
        for d in &mut self.detections {
            d.clear();
        }
        self.tracks.clear();
        self.frame_index = 0;
        self.sweeps_seen = 0;
        // Track ids keep counting up: a reset mid-run must not recycle ids.
    }
}

impl From<MttUpdate> for FrameReport {
    fn from(u: MttUpdate) -> FrameReport {
        FrameReport {
            frame_index: u.frame_index,
            time_s: u.time_s,
            // Established tracks only: tentative tracks are the tracker's
            // internal hypothesis set, not reportable targets.
            targets: u
                .established()
                .map(|t| TargetReport {
                    id: Some(t.id.0),
                    position: t.position,
                    velocity: Some(t.velocity),
                    held: t.phase == TrackPhase::Coasting,
                    pos_var: Some(t.pos_var),
                    innovation: t.innovation,
                })
                .collect(),
        }
    }
}

impl FramePipeline for MultiWiTrack {
    fn num_rx(&self) -> usize {
        self.array.num_rx()
    }

    fn process_sweeps(&mut self, per_rx: &[&[f64]]) -> Option<FrameReport> {
        self.push_sweeps(per_rx).map(FrameReport::from)
    }

    fn process_sweeps_flat(
        &mut self,
        flat: &[f64],
        samples_per_sweep: usize,
    ) -> Option<FrameReport> {
        self.push_sweeps_flat(flat, samples_per_sweep)
            .map(FrameReport::from)
    }

    fn process_sweeps_flat_q(
        &mut self,
        flat: &[i16],
        samples_per_sweep: usize,
        scale: f64,
    ) -> Option<FrameReport> {
        self.push_sweeps_flat_q(flat, samples_per_sweep, scale)
            .map(FrameReport::from)
    }

    fn reset(&mut self) {
        MultiWiTrack::reset(self);
    }

    fn attach_stage_stats(&mut self, stats: witrack_obs::StageStats) {
        MultiWiTrack::attach_stage_stats(self, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;
    use witrack_fmcw::SweepConfig;

    /// A sweep fine enough to separate two people (0.44 m bins) but cheap
    /// enough for debug-mode tests.
    fn mtt_sweep() -> SweepConfig {
        SweepConfig::witrack_mid()
    }

    fn mtt_cfg() -> MttConfig {
        let base = witrack_core::WiTrackConfig {
            sweep: mtt_sweep(),
            max_round_trip_m: 40.0,
            ..witrack_core::WiTrackConfig::witrack_default()
        };
        MttConfig::with_base(base)
    }

    /// Dechirped sweeps for point reflectors at `points`, one per antenna.
    fn sweeps_for(cfg: &MttConfig, array: &AntennaArray, points: &[Vec3]) -> Vec<Vec<f64>> {
        let sw = &cfg.base.sweep;
        let n = sw.samples_per_sweep();
        (0..array.num_rx())
            .map(|k| {
                let mut out = vec![0.0; n];
                for &p in points {
                    let rt = array.round_trip(p, k);
                    let tau = rt / 299_792_458.0;
                    let beat = sw.beat_for_tof(tau);
                    let phase = 2.0 * PI * sw.start_freq_hz * tau;
                    for (i, o) in out.iter_mut().enumerate() {
                        let t = i as f64 / sw.sample_rate_hz;
                        *o += (2.0 * PI * beat * t + phase).cos();
                    }
                }
                out
            })
            .collect()
    }

    fn push_frame(wt: &mut MultiWiTrack, sweeps: &[Vec<f64>]) -> Option<MttUpdate> {
        let refs: Vec<&[f64]> = sweeps.iter().map(|v| v.as_slice()).collect();
        let mut out = None;
        for _ in 0..wt.config().base.sweep.sweeps_per_frame {
            if let Some(u) = wt.push_sweeps(&refs) {
                out = Some(u);
            }
        }
        out
    }

    #[test]
    fn empty_scene_produces_no_tracks() {
        let cfg = mtt_cfg();
        let mut wt = MultiWiTrack::new(cfg).unwrap();
        let n = cfg.base.sweep.samples_per_sweep();
        let silent = vec![vec![0.0; n]; 3];
        for _ in 0..20 {
            if let Some(u) = push_frame(&mut wt, &silent) {
                assert!(u.tracks.is_empty());
            }
        }
    }

    #[test]
    fn two_separated_walkers_become_two_confirmed_tracks() {
        let cfg = mtt_cfg();
        let mut wt = MultiWiTrack::new(cfg).unwrap();
        let array = wt.array().clone();
        let mut last = None;
        for f in 0..120 {
            let s = f as f64 / 120.0;
            let a = Vec3::new(-1.5 + 1.0 * s, 4.0 + 0.5 * s, 1.1);
            let b = Vec3::new(1.5 - 1.0 * s, 7.0 - 0.5 * s, 0.9);
            let sweeps = sweeps_for(&cfg, &array, &[a, b]);
            if let Some(u) = push_frame(&mut wt, &sweeps) {
                last = Some((u, a, b));
            }
        }
        let (u, a, b) = last.expect("frames emitted");
        let confirmed: Vec<&TrackSnapshot> = u
            .tracks
            .iter()
            .filter(|t| t.phase == TrackPhase::Confirmed)
            .collect();
        assert_eq!(confirmed.len(), 2, "tracks: {:?}", u.tracks);
        // Each true position is matched by exactly one confirmed track.
        for truth in [a, b] {
            let nearest = confirmed
                .iter()
                .map(|t| t.position.distance(truth))
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 0.6, "no track near {truth}: {:?}", u.tracks);
        }
    }

    #[test]
    fn single_walker_matches_single_target_semantics() {
        let cfg = mtt_cfg();
        let mut wt = MultiWiTrack::new(cfg).unwrap();
        let array = wt.array().clone();
        let mut errs = Vec::new();
        for f in 0..120 {
            let s = f as f64 / 120.0;
            let p = Vec3::new(-1.0 + 2.0 * s, 4.0 + 2.0 * s, 1.2);
            let sweeps = sweeps_for(&cfg, &array, &[p]);
            if let Some(u) = push_frame(&mut wt, &sweeps) {
                if f > 20 {
                    let est: Vec<&TrackSnapshot> = u.established().collect();
                    assert_eq!(est.len(), 1, "frame {f}: {:?}", u.tracks);
                    errs.push(est[0].position.distance(p));
                }
            }
        }
        assert!(errs.len() > 80);
        let med = witrack_dsp::stats::median(&errs);
        assert!(med < 0.4, "median 3D error {med}");
    }

    #[test]
    fn vanished_target_coasts_then_dies() {
        let cfg = mtt_cfg();
        let mut wt = MultiWiTrack::new(cfg).unwrap();
        let array = wt.array().clone();
        for f in 0..40 {
            let p = Vec3::new(0.0, 4.0 + 0.02 * f as f64, 1.0);
            let sweeps = sweeps_for(&cfg, &array, &[p]);
            push_frame(&mut wt, &sweeps);
        }
        assert_eq!(wt.live_tracks(), 1);
        // Target vanishes (static scene): the track coasts...
        let n = cfg.base.sweep.samples_per_sweep();
        let silent = vec![vec![0.0; n]; 3];
        let mut phases = Vec::new();
        for _ in 0..(cfg.max_coast_frames + 10) {
            if let Some(u) = push_frame(&mut wt, &silent) {
                phases.extend(u.tracks.iter().map(|t| t.phase));
            }
        }
        assert!(phases.contains(&TrackPhase::Coasting), "never coasted");
        // ...and is eventually dropped.
        assert_eq!(wt.live_tracks(), 0);
    }

    #[test]
    fn reset_clears_tracks_but_not_ids() {
        let cfg = mtt_cfg();
        let mut wt = MultiWiTrack::new(cfg).unwrap();
        let array = wt.array().clone();
        for f in 0..20 {
            let p = Vec3::new(0.0, 4.0 + 0.05 * f as f64, 1.0);
            let sweeps = sweeps_for(&cfg, &array, &[p]);
            push_frame(&mut wt, &sweeps);
        }
        let first_ids: Vec<TrackId> = wt.tracks.iter().map(|t| t.id).collect();
        assert!(!first_ids.is_empty());
        wt.reset();
        assert_eq!(wt.live_tracks(), 0);
        for f in 0..20 {
            let p = Vec3::new(0.0, 4.0 + 0.05 * f as f64, 1.0);
            let sweeps = sweeps_for(&cfg, &array, &[p]);
            push_frame(&mut wt, &sweeps);
        }
        assert!(
            wt.tracks.iter().all(|t| !first_ids.contains(&t.id)),
            "ids recycled"
        );
    }

    #[test]
    #[should_panic]
    fn wrong_antenna_count_panics() {
        let cfg = mtt_cfg();
        let mut wt = MultiWiTrack::new(cfg).unwrap();
        let sweep = vec![0.0; cfg.base.sweep.samples_per_sweep()];
        let _ = wt.push_sweeps(&[&sweep, &sweep]);
    }
}
