//! Fusion-engine configuration: gates, lifecycle, zones, event tuning.

use witrack_core::FallConfig;
use witrack_dsp::kalman::KalmanConfig;
use witrack_geom::Vec3;

/// A named axis-aligned floor region of the world frame (occupancy and
/// enter/exit events are reported per zone). Zones may overlap; a track
/// belongs to the *first* zone (in configuration order) containing it.
#[derive(Debug, Clone, PartialEq)]
pub struct Zone {
    /// Stable zone identifier (carried on the wire).
    pub id: u32,
    /// Human-readable label for logs and UIs.
    pub name: String,
    /// World-frame x extent (m).
    pub x: (f64, f64),
    /// World-frame y extent (m).
    pub y: (f64, f64),
}

impl Zone {
    /// Whether `p` lies inside the zone's floor footprint (z is ignored —
    /// a fallen person is still in the room).
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.x.0 && p.x <= self.x.1 && p.y >= self.y.0 && p.y <= self.y.1
    }
}

/// Configuration of a [`crate::FusionEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct FuseConfig {
    /// Fusion epoch length (s): per-sensor reports whose timestamps land
    /// in the same epoch are fused together. Matches the sensors' frame
    /// period (12.5 ms at the paper configuration).
    pub frame_period_s: f64,
    /// Mahalanobis-squared association gate: an observation may only be
    /// assigned to a world track when the per-axis normalized squared
    /// distance `Σ Δ²/(σ²_track + σ²_obs)` stays below this. 16 ≈ the
    /// 99.9 % ellipsoid for 3 degrees of freedom.
    pub gate_mahalanobis_sq: f64,
    /// Lower bound (m, one standard deviation per axis) applied to every
    /// reported observation uncertainty before gating/merging — guards
    /// against over-confident upstream covariances locking fusion onto
    /// one sensor.
    pub obs_std_floor_m: f64,
    /// Per-axis standard deviation (m) assumed for observations whose
    /// report carries no covariance (the single-target backend).
    pub default_obs_std_m: f64,
    /// Variance multiplier applied to *held* observations (the upstream
    /// tracker was coasting/interpolating). A held report is the
    /// sensor's prediction, strictly less informative than a
    /// measurement; without this, a sensor holding a stale position
    /// (the single-target pipeline holds indefinitely, §4.4) would pull
    /// a fused track with full measurement weight while the body walks
    /// away under another sensor's fresh fixes.
    pub held_obs_var_inflation: f64,
    /// Accepted epochs before a tentative world track is reported.
    /// Observations already passed a per-sensor confirmation gauntlet, so
    /// this is short.
    pub confirm_hits: usize,
    /// Consecutive empty epochs that kill a tentative world track.
    pub tentative_max_misses: usize,
    /// Consecutive empty epochs a confirmed world track may coast
    /// through — the cross-sensor handoff window: a track leaving sensor
    /// A's coverage must survive until sensor B's tracker confirms it.
    pub max_coast_frames: usize,
    /// Minimum distance (m) between an initiation cluster and every live
    /// track for a new world track to be born. Larger values also block
    /// wall-mirror multipath ghosts, which are always born close to the
    /// body that casts them; association keeps *existing* tracks apart
    /// at any range, so only co-located births are deferred.
    pub min_new_track_separation_m: f64,
    /// Radius (m) within which unclaimed observations from *different*
    /// sensors cluster into one initiation candidate — on the order of
    /// the cross-sensor surface-point disagreement (a torso diameter)
    /// plus noise, and intentionally independent of the (often much
    /// larger) separation radius above.
    pub init_cluster_radius_m: f64,
    /// World tracks whose fused speed exceeds this are dropped (same
    /// ghost-pruning rationale as the per-sensor tracker).
    pub max_speed_mps: f64,
    /// Corroboration window: a track sitting where ≥ 2 sensors *declare*
    /// coverage ([`crate::Registration::set_coverage`]) but drawing
    /// observations from at most one of them for more than this many
    /// consecutive epochs is dropped as a per-sensor ghost (real bodies
    /// corroborate across sensors; each sensor's multipath ghosts land in
    /// different world positions). Must comfortably exceed a sensor's
    /// track-confirmation time so a real body entering the overlap is
    /// corroborated before the window closes. `0` disables the rule
    /// (also disabled wherever no coverage is declared).
    pub max_uncorroborated_epochs: usize,
    /// How far inside a declared coverage boundary a position must sit
    /// to count as expected (guards against edge flapping).
    pub coverage_margin_m: f64,
    /// How long (s) a challenger sensor must *sustain* its advantage
    /// (fresh measurements against a held incumbent, or half the
    /// incumbent's variance) before it steals a track's anchor. At a
    /// fading coverage edge the old sensor flickers between measuring
    /// and holding; without patience every flicker would emit a handoff
    /// pair. An incumbent that stops contributing entirely is replaced
    /// immediately — the patience only applies while it still reports.
    pub handoff_patience_s: f64,
    /// World-filter tuning (per-axis constant-velocity Kalman; the
    /// measurement noise field is unused — each observation brings its
    /// own variance).
    pub kalman: KalmanConfig,
    /// Fall-rule tuning applied to fused world tracks.
    pub fall: FallConfig,
    /// Track age (s) before fused elevation starts feeding the fall
    /// detector. A newborn track's filter carries a birth transient
    /// (early elevation estimates are the noisiest the track will ever
    /// produce); letting it into the detector's window inflates the
    /// apparent pre-fall height, and the §6.2 rule then latches a real
    /// fall as a too-slow sit.
    pub fall_warmup_s: f64,
    /// Occupancy/event zones.
    pub zones: Vec<Zone>,
    /// Liveness: seconds of silence (no reports between engine ticks)
    /// before a registered sensor is demoted to `Suspect`. `0` disables
    /// the liveness state machine entirely (ticks become no-ops and the
    /// watermark behaves as before).
    pub suspect_timeout_s: f64,
    /// Liveness: seconds of silence before a `Suspect` sensor is
    /// declared `Dead` — removed from the watermark (epochs close on the
    /// surviving set), excluded from coverage expectations, its tracks
    /// left to coast until another sensor reacquires them. Must exceed
    /// [`FuseConfig::suspect_timeout_s`].
    pub dead_timeout_s: f64,
    /// Clock-drift tolerance: EWMA coefficient tracking each sensor's
    /// offset between its report timestamps and the epoch grid. The
    /// offset is subtracted before epoch rounding, so a sensor whose
    /// clock drifts slowly (≪ half a frame period between consecutive
    /// reports) keeps pairing with its peers even after the accumulated
    /// drift exceeds several periods. `0` disables the correction.
    pub clock_drift_alpha: f64,
}

impl Default for FuseConfig {
    fn default() -> Self {
        FuseConfig {
            frame_period_s: 0.0125,
            gate_mahalanobis_sq: 16.0,
            obs_std_floor_m: 0.1,
            default_obs_std_m: 0.25,
            held_obs_var_inflation: 4.0,
            confirm_hits: 2,
            tentative_max_misses: 3,
            // ~4 s at 80 fps: long enough to bridge a walk across an
            // occlusion boundary between two sensors' coverage.
            max_coast_frames: 320,
            min_new_track_separation_m: 1.0,
            init_cluster_radius_m: 1.0,
            max_speed_mps: 6.0,
            // ~2.5 s at 80 fps: an order of magnitude beyond per-sensor
            // confirmation, far below a ghost's dwell time.
            max_uncorroborated_epochs: 200,
            coverage_margin_m: 0.75,
            handoff_patience_s: 0.25,
            kalman: KalmanConfig {
                process_accel_std: 4.0,
                measurement_std: 0.2, // unused: observations carry variance
                initial_pos_var: 0.5,
                initial_vel_var: 4.0,
            },
            fall: FallConfig::default(),
            fall_warmup_s: 0.5,
            zones: Vec::new(),
            // 20 frame periods of silence raises suspicion; a dead
            // verdict waits most of a second so a GC pause or burst
            // retransmit does not amputate a healthy sensor.
            suspect_timeout_s: 0.25,
            dead_timeout_s: 1.0,
            clock_drift_alpha: 0.05,
        }
    }
}

impl FuseConfig {
    /// Fluent construction from the defaults:
    /// `FuseConfig::builder().zones(..).fall(..).build()`.
    pub fn builder() -> FuseConfigBuilder {
        FuseConfigBuilder {
            cfg: FuseConfig::default(),
        }
    }

    /// Returns a copy with the given zones.
    #[deprecated(since = "0.9.0", note = "use `FuseConfig::builder().zones(..)`")]
    pub fn with_zones(mut self, zones: Vec<Zone>) -> FuseConfig {
        self.zones = zones;
        self
    }

    /// Effective per-axis variance for an observation: the reported
    /// variance (or the default when absent), floored, and inflated for
    /// held (predicted rather than measured) reports.
    pub(crate) fn effective_var(&self, reported: Option<Vec3>, held: bool) -> Vec3 {
        let floor = self.obs_std_floor_m * self.obs_std_floor_m;
        let default = self.default_obs_std_m * self.default_obs_std_m;
        let v = reported.unwrap_or(Vec3::new(default, default, default));
        let scale = if held {
            self.held_obs_var_inflation
        } else {
            1.0
        };
        Vec3::new(v.x.max(floor), v.y.max(floor), v.z.max(floor)) * scale
    }
}

/// Fluent construction for [`FuseConfig`] — see [`FuseConfig::builder`].
///
/// Starts from [`FuseConfig::default`]; any field the builder does not
/// cover can still be set by struct update on the built value.
#[derive(Debug, Clone)]
pub struct FuseConfigBuilder {
    cfg: FuseConfig,
}

impl FuseConfigBuilder {
    /// Start from `base` instead of the defaults.
    pub fn from_config(base: FuseConfig) -> FuseConfigBuilder {
        FuseConfigBuilder { cfg: base }
    }

    /// Fusion epoch length (s).
    pub fn frame_period_s(mut self, s: f64) -> Self {
        self.cfg.frame_period_s = s;
        self
    }

    /// Replaces the occupancy/event zones.
    pub fn zones(mut self, zones: Vec<Zone>) -> Self {
        self.cfg.zones = zones;
        self
    }

    /// Appends one occupancy/event zone.
    pub fn zone(mut self, zone: Zone) -> Self {
        self.cfg.zones.push(zone);
        self
    }

    /// Fall-rule tuning applied to fused world tracks.
    pub fn fall(mut self, fall: FallConfig) -> Self {
        self.cfg.fall = fall;
        self
    }

    /// Track age (s) before elevation feeds the fall detector.
    pub fn fall_warmup_s(mut self, s: f64) -> Self {
        self.cfg.fall_warmup_s = s;
        self
    }

    /// Liveness: silence (s) before a sensor is demoted to `Suspect`.
    pub fn suspect_timeout_s(mut self, s: f64) -> Self {
        self.cfg.suspect_timeout_s = s;
        self
    }

    /// Liveness: silence (s) before a `Suspect` sensor is declared dead.
    pub fn dead_timeout_s(mut self, s: f64) -> Self {
        self.cfg.dead_timeout_s = s;
        self
    }

    /// Consecutive empty epochs a confirmed world track may coast.
    pub fn max_coast_frames(mut self, frames: usize) -> Self {
        self.cfg.max_coast_frames = frames;
        self
    }

    /// The finished configuration.
    pub fn build(self) -> FuseConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone_containment_ignores_elevation() {
        let z = Zone {
            id: 1,
            name: "lab".into(),
            x: (-3.0, 3.0),
            y: (0.0, 10.0),
        };
        assert!(z.contains(Vec3::new(0.0, 5.0, 1.0)));
        assert!(z.contains(Vec3::new(0.0, 5.0, 0.05)), "fallen is still in");
        assert!(!z.contains(Vec3::new(5.0, 5.0, 1.0)));
    }

    #[test]
    fn effective_variance_floors_defaults_and_inflates_held() {
        let cfg = FuseConfig::default();
        let floor = cfg.obs_std_floor_m * cfg.obs_std_floor_m;
        let v = cfg.effective_var(Some(Vec3::new(1e-9, 0.5, 0.02)), false);
        assert_eq!(v.x, floor, "overconfident x floored");
        assert_eq!(v.y, 0.5, "honest y kept");
        let d = cfg.effective_var(None, false);
        let def = cfg.default_obs_std_m * cfg.default_obs_std_m;
        assert_eq!(d, Vec3::new(def, def, def));
        // A held report is a prediction: strictly less trusted.
        let h = cfg.effective_var(None, true);
        assert_eq!(h, d * cfg.held_obs_var_inflation);
    }

    #[test]
    fn builder_layers_fields_over_the_defaults() {
        let z = Zone {
            id: 2,
            name: "bed".into(),
            x: (0.0, 2.0),
            y: (0.0, 2.0),
        };
        let cfg = FuseConfig::builder()
            .frame_period_s(0.025)
            .zone(z.clone())
            .suspect_timeout_s(0.5)
            .dead_timeout_s(2.0)
            .max_coast_frames(100)
            .build();
        assert_eq!(cfg.frame_period_s, 0.025);
        assert_eq!(cfg.zones, vec![z]);
        assert_eq!(cfg.suspect_timeout_s, 0.5);
        assert_eq!(cfg.dead_timeout_s, 2.0);
        assert_eq!(cfg.max_coast_frames, 100);
        // Untouched fields keep their defaults.
        assert_eq!(
            cfg.gate_mahalanobis_sq,
            FuseConfig::default().gate_mahalanobis_sq
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_with_zones_matches_the_builder() {
        let zones = vec![Zone {
            id: 9,
            name: "door".into(),
            x: (-1.0, 1.0),
            y: (-1.0, 1.0),
        }];
        let old = FuseConfig::default().with_zones(zones.clone());
        let new = FuseConfig::builder().zones(zones).build();
        assert_eq!(old, new);
    }
}
