//! The world-model fusion engine: per-sensor track reports in, one
//! coherent set of world tracks (plus fleet events) out.
//!
//! Every sensor runs its own pipeline and reports [`FrameReport`]s in its
//! own local frame. [`FusionEngine`] registers those observations into
//! the world frame (via [`Registration`]), groups them into fusion
//! *epochs* (one per sensor frame period), associates them to world
//! tracks with a Mahalanobis-gated assignment (reusing the exact
//! Hungarian solver of `witrack-mtt`), and merges matched observations
//! into each track's per-axis constant-velocity Kalman state with the
//! observation's *own* reported covariance — a covariance-weighted merge,
//! so a sensor seeing a person broadside (small variance) outweighs one
//! seeing them at the edge of coverage.
//!
//! Epoch close-out is **watermarked**: an epoch fuses once every active
//! sensor has reported at or past it, so shard-thread interleaving never
//! splits one instant's observations across epochs. A sensor that goes
//! quiet for more than [`FusionEngine::MAX_SENSOR_LAG_EPOCHS`] epochs is
//! dropped from the watermark (and its sessions' world tracks coast until
//! another sensor reacquires them — the handoff path).

use crate::config::FuseConfig;
use crate::events::WorldEvent;
use crate::registration::Registration;
use std::collections::BTreeMap;
use witrack_core::fall::FallDetector;
use witrack_core::FrameReport;
use witrack_dsp::kalman::Kalman1D;
use witrack_geom::Vec3;
use witrack_mtt::{AssignmentSolver, CostMatrix};

/// Stable identifier of a world track, unique within one engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorldTrackId(pub u64);

impl std::fmt::Display for WorldTrackId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "W{}", self.0)
    }
}

/// Lifecycle phase of a world track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Tentative,
    Confirmed,
    Coasting,
    Dead,
}

/// One observation, already registered into the world frame.
#[derive(Debug, Clone, Copy)]
struct Obs {
    sensor: u32,
    position: Vec3,
    /// Per-axis variance, world frame, floored (m²).
    var: Vec3,
    /// The reporting tracker was coasting (prediction, not measurement).
    held: bool,
}

struct WorldTrack {
    id: WorldTrackId,
    phase: Phase,
    kx: Kalman1D,
    ky: Kalman1D,
    kz: Kalman1D,
    hits: usize,
    consecutive_miss_epochs: u64,
    /// Consecutive epochs spent where ≥ 2 sensors declare coverage while
    /// at most one contributed an observation (the ghost signature).
    uncorroborated_epochs: u64,
    /// Whether ≥ 2 sensors ever agreed on this track in one epoch. An
    /// established-but-never-corroborated track is *quarantined* from
    /// reports (and events) while it sits where ≥ 2 live sensors declare
    /// coverage: real bodies corroborate there almost immediately, so
    /// the quarantine only ever hides per-sensor ghosts drifting in from
    /// a coverage boundary.
    corroborated_ever: bool,
    /// Fused epochs lived (drives the fall-rule warmup).
    age_epochs: u64,
    /// A sensor challenging for the anchor, with its consecutive-epoch
    /// advantage streak (handoff patience).
    challenger: Option<(u32, u64)>,
    falls: FallDetector,
    zone: Option<u32>,
    primary: Option<u32>,
}

impl WorldTrack {
    fn new(id: WorldTrackId, seed: &Obs, corroborated: bool, cfg: &FuseConfig) -> WorldTrack {
        let mut t = WorldTrack {
            id,
            phase: Phase::Tentative,
            kx: Kalman1D::new(cfg.kalman),
            ky: Kalman1D::new(cfg.kalman),
            kz: Kalman1D::new(cfg.kalman),
            hits: 1,
            consecutive_miss_epochs: 0,
            uncorroborated_epochs: 0,
            corroborated_ever: corroborated,
            age_epochs: 0,
            challenger: None,
            falls: FallDetector::new(cfg.fall),
            zone: None,
            primary: Some(seed.sensor),
        };
        t.absorb(seed, 0.0);
        t
    }

    fn position(&self) -> Vec3 {
        Vec3::new(
            self.kx.position().expect("seeded at construction"),
            self.ky.position().expect("seeded at construction"),
            self.kz.position().expect("seeded at construction"),
        )
    }

    fn velocity(&self) -> Vec3 {
        Vec3::new(
            self.kx.velocity().expect("seeded at construction"),
            self.ky.velocity().expect("seeded at construction"),
            self.kz.velocity().expect("seeded at construction"),
        )
    }

    fn position_variance(&self) -> Vec3 {
        Vec3::new(
            self.kx.position_variance(),
            self.ky.position_variance(),
            self.kz.position_variance(),
        )
    }

    /// Folds one observation into the fused state (`dt = 0` for the
    /// second and later sensors of the same epoch).
    fn absorb(&mut self, obs: &Obs, dt: f64) {
        self.kx.update_with_noise(obs.position.x, dt, obs.var.x);
        self.ky.update_with_noise(obs.position.y, dt, obs.var.y);
        self.kz.update_with_noise(obs.position.z, dt, obs.var.z);
    }

    /// Time-advances the state through an empty epoch span.
    fn coast(&mut self, dt: f64) {
        self.kx.predict(dt);
        self.ky.predict(dt);
        self.kz.predict(dt);
    }

    fn is_established(&self) -> bool {
        matches!(self.phase, Phase::Confirmed | Phase::Coasting)
    }
}

/// A fused world track at one epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorldTrackSnapshot {
    /// Stable world-track identifier.
    pub id: WorldTrackId,
    /// Fused position, world frame (m).
    pub position: Vec3,
    /// Fused velocity, world frame (m/s).
    pub velocity: Vec3,
    /// Per-axis fused position variance (m²); grows while coasting.
    pub pos_var: Vec3,
    /// `true` while no sensor is observing the track (prediction only).
    pub coasting: bool,
    /// Sensors whose observations were merged this epoch.
    pub contributors: u8,
    /// The sensor currently anchoring the track (most recent
    /// lowest-variance contributor), if any ever has.
    pub primary_sensor: Option<u32>,
}

/// One fused epoch: the world-track set plus the events the epoch fired.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldFrame {
    /// Epoch counter (`time_s / frame_period`, rounded).
    pub epoch: u64,
    /// Epoch time (s).
    pub time_s: f64,
    /// All established world tracks.
    pub tracks: Vec<WorldTrackSnapshot>,
    /// Events fired during this epoch, in a deterministic order.
    pub events: Vec<WorldEvent>,
}

/// Liveness phase of a registered sensor, driven by
/// [`FusionEngine::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorLiveness {
    /// Reporting within the suspect timeout.
    Live,
    /// Silent past [`crate::FuseConfig::suspect_timeout_s`]; the
    /// watermark still waits for it (the short-lag grace window).
    Suspect,
    /// Silent past [`crate::FuseConfig::dead_timeout_s`]; removed from
    /// the watermark so epochs close on the surviving set. Its tracks
    /// coast; a later report revives it in place.
    Dead,
}

impl SensorLiveness {
    /// Stable lowercase name (gauges, dumps).
    pub fn name(&self) -> &'static str {
        match self {
            SensorLiveness::Live => "live",
            SensorLiveness::Suspect => "suspect",
            SensorLiveness::Dead => "dead",
        }
    }

    /// Numeric encoding for gauges: 0 live, 1 suspect, 2 dead.
    pub fn as_gauge(&self) -> i64 {
        match self {
            SensorLiveness::Live => 0,
            SensorLiveness::Suspect => 1,
            SensorLiveness::Dead => 2,
        }
    }
}

/// One liveness state change, drained via
/// [`FusionEngine::take_liveness_transitions`] (anomaly recording,
/// gauges).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LivenessTransition {
    /// The sensor that changed state.
    pub sensor_id: u32,
    /// State before the change.
    pub from: SensorLiveness,
    /// State after the change.
    pub to: SensorLiveness,
    /// Tick-clock seconds of silence that triggered a demotion; 0 for a
    /// recovery.
    pub silence_s: f64,
}

/// Per-sensor health bookkeeping (liveness + clock drift).
#[derive(Debug, Clone, Copy)]
struct SensorHealth {
    liveness: SensorLiveness,
    /// Reports ever ingested from this sensor.
    reports: u64,
    /// `reports` as of the last tick that saw progress.
    seen_reports: u64,
    /// Tick-clock time the current silence began (None until observed).
    silent_since_s: Option<f64>,
    /// EWMA estimate of the sensor's clock offset from the epoch grid.
    drift_offset_s: f64,
}

impl SensorHealth {
    fn new() -> SensorHealth {
        SensorHealth {
            liveness: SensorLiveness::Live,
            reports: 0,
            seen_reports: 0,
            silent_since_s: None,
            drift_offset_s: 0.0,
        }
    }
}

/// Engine health counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Reports from sensors absent from the registration table (dropped).
    pub unregistered_reports: u64,
    /// Targets carrying a NaN/Inf coordinate (shed at the door — one
    /// non-finite measurement would poison a Kalman state forever).
    pub nonfinite_observations: u64,
    /// Epochs fused so far.
    pub epochs_fused: u64,
    /// Observations that failed every association gate and no initiation
    /// cluster wanted (typically per-sensor ghosts).
    pub orphan_observations: u64,
    /// Single-sensor initiation clusters refused because ≥ 2 sensors
    /// declared coverage there (see
    /// [`FuseConfig::max_uncorroborated_epochs`]).
    pub suppressed_initiations: u64,
    /// Tracks dropped by the corroboration rule.
    pub ghosts_suppressed: u64,
    /// Sensors demoted to [`SensorLiveness::Dead`] by the liveness tick.
    pub sensors_died: u64,
    /// Dead sensors that reported again and rejoined the watermark.
    pub sensors_recovered: u64,
}

/// The cross-sensor fusion engine for one room (one shared world frame).
pub struct FusionEngine {
    cfg: FuseConfig,
    registration: Registration,
    tracks: Vec<WorldTrack>,
    /// Observations buffered per epoch until the watermark passes them.
    pending: BTreeMap<u64, Vec<Obs>>,
    /// Newest epoch each sensor has reported (drives the watermark).
    latest_by_sensor: BTreeMap<u32, u64>,
    /// Per-sensor liveness and drift state, keyed like the registration.
    health: BTreeMap<u32, SensorHealth>,
    /// Liveness changes not yet drained by the owner.
    liveness_log: Vec<LivenessTransition>,
    last_fused_epoch: Option<u64>,
    next_id: u64,
    occupancy: BTreeMap<u32, u32>,
    cost: CostMatrix,
    solver: AssignmentSolver,
    stats: FusionStats,
    /// Handoff latency histogram (ns a challenger waited before taking
    /// the anchor), when the owner attached one.
    handoff_latency: Option<std::sync::Arc<witrack_obs::Histo>>,
}

impl FusionEngine {
    /// A sensor this many epochs behind the fleet's newest is considered
    /// dead and stops holding the watermark back.
    pub const MAX_SENSOR_LAG_EPOCHS: u64 = 8;

    /// Creates an engine over the given registration table. Every
    /// registered sensor starts at epoch 0 in the watermark, so fusion
    /// waits for the whole roster to report (or fall
    /// [`Self::MAX_SENSOR_LAG_EPOCHS`] behind) before closing an epoch.
    pub fn new(cfg: FuseConfig, registration: Registration) -> FusionEngine {
        let latest_by_sensor = registration.sensor_ids().map(|id| (id, 0)).collect();
        let health = registration
            .sensor_ids()
            .map(|id| (id, SensorHealth::new()))
            .collect();
        FusionEngine {
            cfg,
            registration,
            tracks: Vec::new(),
            pending: BTreeMap::new(),
            latest_by_sensor,
            health,
            liveness_log: Vec::new(),
            last_fused_epoch: None,
            next_id: 0,
            occupancy: BTreeMap::new(),
            cost: CostMatrix::new(0, 0),
            solver: AssignmentSolver::new(),
            stats: FusionStats::default(),
            handoff_latency: None,
        }
    }

    /// Attaches a histogram recording handoff latency: the time (ns of
    /// world time) between a challenger first out-measuring the
    /// incumbent anchor and the anchor actually switching.
    pub fn attach_handoff_histo(&mut self, histo: std::sync::Arc<witrack_obs::Histo>) {
        self.handoff_latency = Some(histo);
    }

    /// The registration table in use.
    pub fn registration(&self) -> &Registration {
        &self.registration
    }

    /// The configuration in use.
    pub fn config(&self) -> &FuseConfig {
        &self.cfg
    }

    /// Health counters.
    pub fn stats(&self) -> FusionStats {
        self.stats
    }

    /// Live world tracks (tentative included).
    pub fn live_tracks(&self) -> usize {
        self.tracks.len()
    }

    /// Fusion epoch lag: how far the newest sensor report has run ahead
    /// of the watermark (the oldest epoch an active sensor is still at).
    /// 0 when idle or perfectly in step; a persistently large lag means
    /// one sensor is stalling the room's fusion.
    pub fn watermark_lag_epochs(&self) -> u64 {
        let Some(&newest) = self.latest_by_sensor.values().max() else {
            return 0;
        };
        let active_floor = newest.saturating_sub(Self::MAX_SENSOR_LAG_EPOCHS);
        let watermark = self
            .latest_by_sensor
            .values()
            .filter(|&&e| e >= active_floor)
            .min()
            .copied()
            .unwrap_or(newest);
        newest.saturating_sub(watermark)
    }

    /// Ingests one sensor's frame report. Returns the world frames of
    /// every epoch this report's arrival allowed to close (usually zero
    /// or one).
    pub fn push_report(&mut self, sensor_id: u32, report: &FrameReport) -> Vec<WorldFrame> {
        let Some(pose) = self.registration.get(sensor_id) else {
            self.stats.unregistered_reports += 1;
            return Vec::new();
        };
        let period = self.cfg.frame_period_s;
        let alpha = self.cfg.clock_drift_alpha;
        let health = self
            .health
            .entry(sensor_id)
            .or_insert_with(SensorHealth::new);
        health.reports += 1;
        health.silent_since_s = None;
        if health.liveness != SensorLiveness::Live {
            let from = health.liveness;
            health.liveness = SensorLiveness::Live;
            if from == SensorLiveness::Dead {
                self.stats.sensors_recovered += 1;
            }
            self.liveness_log.push(LivenessTransition {
                sensor_id,
                from,
                to: SensorLiveness::Live,
                silence_s: 0.0,
            });
        }
        // Clock-drift correction: subtract the sensor's tracked offset
        // from the epoch grid before rounding, then fold the residual
        // into the offset estimate. Slow drift (≪ period/2 between
        // consecutive reports) never splits one instant across epochs,
        // even once the accumulated offset spans several periods.
        let corrected_s = report.time_s - health.drift_offset_s;
        let epoch = (corrected_s / period).round().max(0.0) as u64;
        if alpha > 0.0 {
            let residual = corrected_s - epoch as f64 * period;
            health.drift_offset_s += alpha * residual;
        }
        // A report older than anything still pending folds into the
        // oldest open epoch (a 12.5 ms attribution slip, ~1 cm of walker
        // motion) rather than being lost.
        let epoch = match self.last_fused_epoch {
            Some(last) if epoch <= last => last + 1,
            _ => epoch,
        };
        let bucket = self.pending.entry(epoch).or_default();
        for t in &report.targets {
            let p = t.position;
            let var_ok = t
                .pos_var
                .is_none_or(|v| v.x.is_finite() && v.y.is_finite() && v.z.is_finite());
            if !(p.x.is_finite() && p.y.is_finite() && p.z.is_finite() && var_ok) {
                self.stats.nonfinite_observations += 1;
                continue;
            }
            bucket.push(Obs {
                sensor: sensor_id,
                position: pose.apply(t.position),
                var: pose.rotate_variances(self.cfg.effective_var(t.pos_var, t.held)),
                held: t.held,
            });
        }
        let newest = self
            .latest_by_sensor
            .get(&sensor_id)
            .copied()
            .unwrap_or(0)
            .max(epoch);
        self.latest_by_sensor.insert(sensor_id, newest);
        self.drain_watermarked()
    }

    /// Forgets a sensor (session teardown): it stops holding the
    /// watermark back immediately. Its tracks coast like any other loss
    /// of coverage. A clean teardown marks the sensor `Dead` without
    /// logging a transition (it is not an anomaly); a later report
    /// revives it.
    pub fn remove_sensor(&mut self, sensor_id: u32) -> Vec<WorldFrame> {
        self.latest_by_sensor.remove(&sensor_id);
        if let Some(h) = self.health.get_mut(&sensor_id) {
            h.liveness = SensorLiveness::Dead;
            h.silent_since_s = None;
        }
        self.drain_watermarked()
    }

    /// Current liveness of a registered sensor.
    pub fn sensor_liveness(&self, sensor_id: u32) -> Option<SensorLiveness> {
        self.health.get(&sensor_id).map(|h| h.liveness)
    }

    /// Drains the liveness transitions accumulated since the last call
    /// (demotions from [`Self::tick`], recoveries from
    /// [`Self::push_report`]).
    pub fn take_liveness_transitions(&mut self) -> Vec<LivenessTransition> {
        std::mem::take(&mut self.liveness_log)
    }

    /// Advances the liveness clock. `now_s` is any monotone seconds
    /// source (the owner's wall clock); reports themselves carry sensor
    /// time, so silence is measured purely between ticks: a sensor whose
    /// report count has not moved since the previous tick is silent.
    ///
    /// Demotes silent sensors `Live → Suspect → Dead` per the configured
    /// timeouts. A death removes the sensor from the watermark and
    /// drains whatever epochs that unblocks; when *no* sensor remains in
    /// the watermark, everything still pending is force-closed so the
    /// room's consumers see the outage (coasting tracks) rather than a
    /// frozen stream. Returns the world frames those closures produced.
    pub fn tick(&mut self, now_s: f64) -> Vec<WorldFrame> {
        let suspect_after = self.cfg.suspect_timeout_s;
        let dead_after = self.cfg.dead_timeout_s;
        if suspect_after <= 0.0 {
            return Vec::new();
        }
        let mut died: Vec<u32> = Vec::new();
        for (&id, h) in self.health.iter_mut() {
            if h.reports > h.seen_reports {
                h.seen_reports = h.reports;
                h.silent_since_s = Some(now_s);
                continue;
            }
            let since = *h.silent_since_s.get_or_insert(now_s);
            let silence_s = now_s - since;
            let next = match h.liveness {
                SensorLiveness::Live if silence_s >= suspect_after => SensorLiveness::Suspect,
                SensorLiveness::Suspect if silence_s >= dead_after.max(suspect_after) => {
                    SensorLiveness::Dead
                }
                _ => continue,
            };
            self.liveness_log.push(LivenessTransition {
                sensor_id: id,
                from: h.liveness,
                to: next,
                silence_s,
            });
            h.liveness = next;
            if next == SensorLiveness::Dead {
                self.stats.sensors_died += 1;
                died.push(id);
            }
        }
        if died.is_empty() {
            return Vec::new();
        }
        for id in died {
            self.latest_by_sensor.remove(&id);
        }
        let mut out = self.drain_watermarked();
        if self.latest_by_sensor.is_empty() && !self.pending.is_empty() {
            out.extend(self.flush());
        }
        out
    }

    /// Fuses everything still pending regardless of the watermark (end
    /// of stream).
    pub fn flush(&mut self) -> Vec<WorldFrame> {
        let epochs: Vec<u64> = self.pending.keys().copied().collect();
        epochs.into_iter().map(|e| self.fuse_epoch(e)).collect()
    }

    /// Fuses every pending epoch at or below the watermark.
    fn drain_watermarked(&mut self) -> Vec<WorldFrame> {
        let Some(&newest) = self.latest_by_sensor.values().max() else {
            return Vec::new();
        };
        let active_floor = newest.saturating_sub(Self::MAX_SENSOR_LAG_EPOCHS);
        let watermark = self
            .latest_by_sensor
            .values()
            .filter(|&&e| e >= active_floor)
            .min()
            .copied()
            .unwrap_or(newest);
        let mut out = Vec::new();
        while let Some(&epoch) = self.pending.keys().next() {
            if epoch > watermark {
                break;
            }
            out.push(self.fuse_epoch(epoch));
        }
        out
    }

    /// Normalized squared distance between a predicted track position and
    /// an observation, per-axis variances summed.
    fn mahalanobis_sq(pred: Vec3, track_var: Vec3, obs: &Obs) -> f64 {
        let d = pred - obs.position;
        d.x * d.x / (track_var.x + obs.var.x)
            + d.y * d.y / (track_var.y + obs.var.y)
            + d.z * d.z / (track_var.z + obs.var.z)
    }

    /// Closes one epoch: associate → merge → initiate → lifecycle →
    /// events → snapshot.
    fn fuse_epoch(&mut self, epoch: u64) -> WorldFrame {
        let observations = self.pending.remove(&epoch).unwrap_or_default();
        let period = self.cfg.frame_period_s;
        let epochs_since = self
            .last_fused_epoch
            .map(|last| epoch.saturating_sub(last).max(1))
            .unwrap_or(1);
        let dt = period * epochs_since as f64;
        let time_s = epoch as f64 * period;
        self.last_fused_epoch = Some(epoch);
        self.stats.epochs_fused += 1;

        // --- Association: per sensor, established tracks before
        // tentative ones (a tentative ghost must never outbid a confirmed
        // track for its own observations).
        let mut by_sensor: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, o) in observations.iter().enumerate() {
            by_sensor.entry(o.sensor).or_default().push(i);
        }
        let n_tracks = self.tracks.len();
        let mut claimed = vec![false; observations.len()];
        let mut updated = vec![false; n_tracks];
        let mut fresh = vec![false; n_tracks];
        let mut contributors = vec![0u8; n_tracks];
        // Best contributor per track: fresh beats held, then lower total
        // variance (`(held, variance, sensor)` — lexicographic).
        let mut best_contrib: Vec<Option<(bool, f64, u32)>> = vec![None; n_tracks];
        // The incumbent anchor's contribution this epoch (`(variance,
        // held)`), when it contributed — drives handoff hysteresis.
        let mut incumbent_contrib: Vec<Option<(f64, bool)>> = vec![None; n_tracks];

        let established: Vec<usize> = (0..n_tracks)
            .filter(|&i| self.tracks[i].is_established())
            .collect();
        let tentative: Vec<usize> = (0..n_tracks)
            .filter(|&i| !self.tracks[i].is_established())
            .collect();
        for pass in [&established, &tentative] {
            if pass.is_empty() {
                continue;
            }
            for obs_of_sensor in by_sensor.values() {
                let available: Vec<usize> = obs_of_sensor
                    .iter()
                    .copied()
                    .filter(|&i| !claimed[i])
                    .collect();
                if available.is_empty() {
                    continue;
                }
                self.cost.reset(pass.len(), available.len());
                for (pi, &ti) in pass.iter().enumerate() {
                    let track = &self.tracks[ti];
                    // Tracks already advanced this epoch predict from now.
                    let pred_dt = if updated[ti] { 0.0 } else { dt };
                    let pred = track.position() + track.velocity() * pred_dt;
                    let var = track.position_variance();
                    for (ci, &oi) in available.iter().enumerate() {
                        let d2 = Self::mahalanobis_sq(pred, var, &observations[oi]);
                        if d2 < self.cfg.gate_mahalanobis_sq {
                            self.cost.set(pi, ci, d2);
                        }
                    }
                }
                let assignment = self.solver.solve(&self.cost);
                for (pi, ci) in assignment.row_to_col.iter().enumerate() {
                    let Some(ci) = *ci else { continue };
                    let (ti, oi) = (pass[pi], available[ci]);
                    let obs = &observations[oi];
                    let step = if updated[ti] { 0.0 } else { dt };
                    self.tracks[ti].absorb(obs, step);
                    claimed[oi] = true;
                    updated[ti] = true;
                    fresh[ti] |= !obs.held;
                    contributors[ti] = contributors[ti].saturating_add(1);
                    let total_var = obs.var.x + obs.var.y + obs.var.z;
                    if best_contrib[ti].is_none_or(|(held, v, _)| (obs.held, total_var) < (held, v))
                    {
                        best_contrib[ti] = Some((obs.held, total_var, obs.sensor));
                    }
                    if self.tracks[ti].primary == Some(obs.sensor) {
                        incumbent_contrib[ti] = Some((total_var, obs.held));
                    }
                }
            }
        }

        // Live-aware expectation: how many sensors with a *live session*
        // declare coverage of a world point. Drives every corroboration
        // decision below; always 0 when the rule is disabled. "Live"
        // uses the same lag cutoff as the watermark — a registered
        // sensor that never connects (or wedges) must stop generating
        // expectations, or it would permanently suppress real tracks in
        // its declared overlap.
        let corroboration_on = self.cfg.max_uncorroborated_epochs > 0;
        let registration = &self.registration;
        let live_sensors = &self.latest_by_sensor;
        let active_floor = live_sensors
            .values()
            .max()
            .copied()
            .unwrap_or(0)
            .saturating_sub(Self::MAX_SENSOR_LAG_EPOCHS);
        let margin = self.cfg.coverage_margin_m;
        let expected_of = |p: Vec3| {
            if corroboration_on {
                registration.expected_observers_where(p, margin, |id| {
                    live_sensors.get(&id).is_some_and(|&e| e >= active_floor)
                })
            } else {
                0
            }
        };

        // --- Initiation: cluster unclaimed *fresh* observations across
        // sensors (two sensors discovering the same person must become
        // ONE world track), then seed tentative tracks away from live
        // ones.
        let mut born: Vec<Vec3> = Vec::new();
        for i in 0..observations.len() {
            if claimed[i] || observations[i].held {
                if !claimed[i] {
                    self.stats.orphan_observations += 1;
                }
                continue;
            }
            claimed[i] = true;
            let anchor = observations[i];
            // Inverse-variance-weighted cluster mean, one obs per sensor.
            let mut weight = Vec3::new(1.0 / anchor.var.x, 1.0 / anchor.var.y, 1.0 / anchor.var.z);
            let mut acc = Vec3::new(
                anchor.position.x * weight.x,
                anchor.position.y * weight.y,
                anchor.position.z * weight.z,
            );
            let mut cluster_sensors = vec![anchor.sensor];
            let mut min_var = anchor.var;
            for (j, other) in observations.iter().enumerate() {
                if claimed[j]
                    || other.held
                    || cluster_sensors.contains(&other.sensor)
                    || other.position.distance(anchor.position) > self.cfg.init_cluster_radius_m
                {
                    continue;
                }
                claimed[j] = true;
                cluster_sensors.push(other.sensor);
                let w = Vec3::new(1.0 / other.var.x, 1.0 / other.var.y, 1.0 / other.var.z);
                acc += Vec3::new(
                    other.position.x * w.x,
                    other.position.y * w.y,
                    other.position.z * w.z,
                );
                weight += w;
                min_var = min_var.min(other.var);
            }
            let center = Vec3::new(acc.x / weight.x, acc.y / weight.y, acc.z / weight.z);
            let too_close = self
                .tracks
                .iter()
                .map(|t| t.position())
                .chain(born.iter().copied())
                .any(|q| q.distance(center) < self.cfg.min_new_track_separation_m);
            if too_close {
                continue;
            }
            // Corroboration at birth: where ≥ 2 live sensors declare
            // coverage, a single sensor's say-so is not enough to seed a
            // track — a real body there shows up in both sensors'
            // streams (and clusters across them above), a multipath
            // ghost only in one.
            if cluster_sensors.len() < 2 && expected_of(center) >= 2 {
                self.stats.suppressed_initiations += 1;
                continue;
            }
            let id = WorldTrackId(self.next_id);
            self.next_id += 1;
            let seed = Obs {
                sensor: anchor.sensor,
                position: center,
                var: min_var,
                held: false,
            };
            self.tracks.push(WorldTrack::new(
                id,
                &seed,
                cluster_sensors.len() >= 2,
                &self.cfg,
            ));
            born.push(center);
        }

        // --- Lifecycle, merges-into-events, zones, occupancy.
        let mut events: Vec<WorldEvent> = Vec::new();
        for (ti, track) in self.tracks.iter_mut().enumerate() {
            let newly_born = ti >= n_tracks;
            if newly_born {
                continue; // seeded this epoch; lifecycle starts next one
            }
            track.age_epochs += epochs_since;
            let expected = expected_of(track.position());
            if contributors[ti] >= 2 {
                track.corroborated_ever = true;
            }
            if updated[ti] {
                if fresh[ti] {
                    track.hits += 1;
                    track.consecutive_miss_epochs = 0;
                    // Confirmation requires corroboration where ≥ 2 live
                    // sensors declare coverage: a tentative track fed by
                    // one sensor alone there stays tentative (unreported)
                    // until a second sensor agrees — or the rule below
                    // expires it as a ghost.
                    let corroboration_ok =
                        !corroboration_on || contributors[ti] >= 2 || expected < 2;
                    match track.phase {
                        Phase::Tentative
                            if track.hits >= self.cfg.confirm_hits && corroboration_ok =>
                        {
                            track.phase = Phase::Confirmed;
                            events.push(WorldEvent::TrackBorn {
                                track: track.id,
                                time_s,
                                position: track.position(),
                            });
                        }
                        Phase::Coasting => track.phase = Phase::Confirmed,
                        _ => {}
                    }
                }
                // Held-only epochs freeze the lifecycle: the upstream
                // tracker is predicting, which localizes but is not
                // evidence of presence.
            } else {
                track.coast(dt);
                track.consecutive_miss_epochs += epochs_since;
                match track.phase {
                    Phase::Tentative => {
                        if track.consecutive_miss_epochs > self.cfg.tentative_max_misses as u64 {
                            track.phase = Phase::Dead;
                        }
                    }
                    Phase::Confirmed | Phase::Coasting => {
                        track.phase =
                            if track.consecutive_miss_epochs > self.cfg.max_coast_frames as u64 {
                                if track.corroborated_ever || expected < 2 {
                                    events.push(WorldEvent::TrackLost {
                                        track: track.id,
                                        time_s,
                                        position: track.position(),
                                    });
                                }
                                Phase::Dead
                            } else {
                                Phase::Coasting
                            };
                    }
                    Phase::Dead => {}
                }
            }
            // Ghost pruning: superhuman fused speed.
            if track.phase != Phase::Dead && track.velocity().norm() > self.cfg.max_speed_mps {
                if track.is_established() && (track.corroborated_ever || expected < 2) {
                    events.push(WorldEvent::TrackLost {
                        track: track.id,
                        time_s,
                        position: track.position(),
                    });
                }
                track.phase = Phase::Dead;
            }
            // Ghost pruning: persistent lack of corroboration. A track
            // parked where ≥ 2 live sensors declare coverage but fed by
            // at most one of them is a per-sensor artifact — real bodies
            // corroborate; registered ghosts land in different world
            // positions per sensor and never do.
            if corroboration_on && track.phase != Phase::Dead {
                if expected >= 2 && contributors[ti] < 2 {
                    track.uncorroborated_epochs += epochs_since;
                    if track.uncorroborated_epochs > self.cfg.max_uncorroborated_epochs as u64 {
                        if track.is_established() && track.corroborated_ever {
                            events.push(WorldEvent::TrackLost {
                                track: track.id,
                                time_s,
                                position: track.position(),
                            });
                        }
                        self.stats.ghosts_suppressed += 1;
                        track.phase = Phase::Dead;
                    }
                } else {
                    track.uncorroborated_epochs = 0;
                }
            }
            // Quarantine: an established track that has *never* been
            // corroborated emits no events and appears in no snapshot
            // while it sits where ≥ 2 live sensors should see it.
            let visible = track.is_established() && (track.corroborated_ever || expected < 2);
            if track.phase == Phase::Dead || !visible {
                continue;
            }

            // Handoff: the anchoring sensor changed. With hysteresis —
            // the anchor only moves when the incumbent went silent,
            // degraded to held predictions while the challenger measures
            // fresh, or is clearly outclassed on variance; two sensors
            // seeing a track about equally well must not flap the anchor
            // every epoch.
            if let Some((best_held, best_var, sensor)) = best_contrib[ti] {
                match track.primary {
                    Some(prev) if prev != sensor => {
                        let mut switch = false;
                        // Epochs the challenger waited for the anchor
                        // (this epoch included) — the handoff latency.
                        let mut waited_epochs = epochs_since;
                        match incumbent_contrib[ti] {
                            // The incumbent contributed nothing at all:
                            // it is gone; replace it immediately.
                            None => switch = true,
                            Some((iv, inc_held)) => {
                                let advantage = (inc_held && !best_held) || best_var < 0.5 * iv;
                                if advantage {
                                    let streak = match track.challenger {
                                        Some((s, n)) if s == sensor => n + epochs_since,
                                        _ => epochs_since,
                                    };
                                    if streak as f64 * period >= self.cfg.handoff_patience_s {
                                        switch = true;
                                        waited_epochs = streak;
                                    } else {
                                        track.challenger = Some((sensor, streak));
                                    }
                                } else {
                                    track.challenger = None;
                                }
                            }
                        }
                        if switch {
                            if let Some(h) = &self.handoff_latency {
                                h.record((waited_epochs as f64 * period * 1e9) as u64);
                            }
                            events.push(WorldEvent::Handoff {
                                track: track.id,
                                from_sensor: prev,
                                to_sensor: sensor,
                                time_s,
                            });
                            track.primary = Some(sensor);
                            track.challenger = None;
                        }
                    }
                    None => track.primary = Some(sensor),
                    _ => track.challenger = None,
                }
            }

            // Fall rule on the fused world elevation — once the track is
            // past its birth transient (the filter's earliest elevation
            // estimates would poison the detector's window maximum).
            let p = track.position();
            if track.age_epochs as f64 * period >= self.cfg.fall_warmup_s {
                if let Some(fall) = track.falls.push(time_s, p.z) {
                    events.push(WorldEvent::Fall {
                        track: track.id,
                        time_s,
                        from_z: fall.from_z,
                        to_z: fall.to_z,
                    });
                }
            }

            // Zone transitions.
            let now_zone = self.cfg.zones.iter().find(|z| z.contains(p)).map(|z| z.id);
            if now_zone != track.zone {
                if let Some(old) = track.zone {
                    events.push(WorldEvent::ZoneExited {
                        track: track.id,
                        zone: old,
                        time_s,
                    });
                }
                if let Some(new) = now_zone {
                    events.push(WorldEvent::ZoneEntered {
                        track: track.id,
                        zone: new,
                        time_s,
                    });
                }
                track.zone = now_zone;
            }
        }
        // Contributor counts are indexed by pre-initiation position; pin
        // them to ids before the retain below shifts indices.
        let contrib_by_id: BTreeMap<WorldTrackId, u8> = self
            .tracks
            .iter()
            .take(n_tracks)
            .enumerate()
            .map(|(i, t)| (t.id, contributors[i]))
            .collect();
        self.tracks.retain(|t| t.phase != Phase::Dead);

        // Occupancy per zone (visible established tracks), change-triggered.
        for zone in &self.cfg.zones {
            let count = self
                .tracks
                .iter()
                .filter(|t| {
                    t.is_established()
                        && (t.corroborated_ever || expected_of(t.position()) < 2)
                        && zone.contains(t.position())
                })
                .count() as u32;
            let prev = self.occupancy.get(&zone.id).copied().unwrap_or(0);
            if count != prev {
                self.occupancy.insert(zone.id, count);
                events.push(WorldEvent::OccupancyChanged {
                    zone: zone.id,
                    count,
                    time_s,
                });
            }
        }

        // --- Snapshot (visible established tracks only).
        let tracks = self
            .tracks
            .iter()
            .filter(|t| {
                t.is_established() && (t.corroborated_ever || expected_of(t.position()) < 2)
            })
            .map(|t| WorldTrackSnapshot {
                id: t.id,
                position: t.position(),
                velocity: t.velocity(),
                pos_var: t.position_variance(),
                coasting: t.phase == Phase::Coasting,
                contributors: contrib_by_id.get(&t.id).copied().unwrap_or(0),
                primary_sensor: t.primary,
            })
            .collect();

        WorldFrame {
            epoch,
            time_s,
            tracks,
            events,
        }
    }

    /// Lifts a per-sensor pointing gesture (§6.1) into the world frame:
    /// the direction is rotated by the sensor's extrinsic and the gesture
    /// is attributed to the nearest established world track within
    /// `max_attr_dist_m` of the (registered) gesture origin.
    ///
    /// Returns `None` when the sensor is unregistered.
    pub fn lift_pointing(
        &self,
        sensor_id: u32,
        time_s: f64,
        origin_local: Vec3,
        direction_local: Vec3,
        max_attr_dist_m: f64,
    ) -> Option<WorldEvent> {
        let pose = self.registration.get(sensor_id)?;
        let origin = pose.apply(origin_local);
        let direction = pose.rotate(direction_local).normalized_or_zero();
        let track = self
            .tracks
            .iter()
            .filter(|t| t.is_established())
            .map(|t| (t.id, t.position().distance(origin)))
            .filter(|&(_, d)| d <= max_attr_dist_m)
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
            .map(|(id, _)| id);
        Some(WorldEvent::Pointing {
            track,
            sensor: sensor_id,
            time_s,
            direction,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Zone;
    use std::f64::consts::PI;
    use witrack_core::TargetReport;
    use witrack_geom::RigidTransform;

    const PERIOD: f64 = 0.0125;

    /// Two sensors facing each other across a 10 m room: sensor 0 at the
    /// world origin (identity), sensor 1 on the far wall looking back.
    fn two_sensor_registration() -> (Registration, RigidTransform) {
        let world_from_s1 = RigidTransform::from_yaw(PI, Vec3::new(0.0, 10.0, 0.0));
        (
            Registration::new()
                .with_sensor(0, RigidTransform::IDENTITY)
                .with_sensor(1, world_from_s1),
            world_from_s1,
        )
    }

    fn report(epoch: u64, targets: Vec<TargetReport>) -> FrameReport {
        FrameReport {
            frame_index: epoch,
            time_s: epoch as f64 * PERIOD,
            targets,
        }
    }

    fn target(id: u64, position: Vec3, std: f64) -> TargetReport {
        TargetReport {
            id: Some(id),
            position,
            velocity: None,
            held: false,
            pos_var: Some(Vec3::new(std * std, std * std, std * std)),
            innovation: None,
        }
    }

    /// Feeds both sensors one walker's world position for `epochs`
    /// frames, sensor `k` seeing it through its own extrinsic.
    fn run_two_sensor_walk(
        engine: &mut FusionEngine,
        world_from_s1: &RigidTransform,
        epochs: std::ops::Range<u64>,
        world_pos: impl Fn(u64) -> Vec3,
    ) -> Vec<WorldFrame> {
        let s1_from_world = world_from_s1.inverse();
        let mut frames = Vec::new();
        for e in epochs {
            let p = world_pos(e);
            frames.extend(engine.push_report(0, &report(e, vec![target(1, p, 0.15)])));
            frames.extend(
                engine.push_report(1, &report(e, vec![target(9, s1_from_world.apply(p), 0.2)])),
            );
        }
        frames
    }

    #[test]
    fn non_finite_observations_are_shed_at_the_door() {
        let (reg, _) = two_sensor_registration();
        let mut engine = FusionEngine::new(FuseConfig::default(), reg);
        let mut frames = Vec::new();
        for e in 1..30u64 {
            let good = target(1, Vec3::new(0.0, 3.0, 1.0), 0.15);
            let poisoned = target(2, Vec3::new(f64::NAN, 5.0, 1.0), 0.15);
            let mut bad_var = target(3, Vec3::new(2.0, 5.0, 1.0), 0.15);
            bad_var.pos_var = Some(Vec3::new(f64::INFINITY, 0.01, 0.01));
            frames.extend(engine.push_report(0, &report(e, vec![good, poisoned, bad_var])));
        }
        assert_eq!(engine.stats().nonfinite_observations, 29 * 2);
        // Only the finite observation made it into the world, and what
        // it produced is itself finite.
        assert_eq!(engine.live_tracks(), 1);
        let last = frames.last().expect("world frames still emit");
        assert_eq!(last.tracks.len(), 1);
        let p = last.tracks[0].position;
        assert!(p.x.is_finite() && p.y.is_finite() && p.z.is_finite());
    }

    #[test]
    fn two_sensors_one_walker_is_one_world_track() {
        let (reg, world_from_s1) = two_sensor_registration();
        let mut engine = FusionEngine::new(FuseConfig::default(), reg);
        let frames = run_two_sensor_walk(&mut engine, &world_from_s1, 1..40, |e| {
            Vec3::new(0.0, 3.0 + 0.0125 * e as f64, 1.0)
        });
        assert_eq!(engine.live_tracks(), 1, "duplicate world tracks");
        let last = frames.last().unwrap();
        assert_eq!(last.tracks.len(), 1);
        let t = &last.tracks[0];
        assert_eq!(t.contributors, 2, "both sensors should merge");
        assert!(!t.coasting);
        assert!(t.position.distance(Vec3::new(0.0, 3.5, 1.0)) < 0.3);
        // Fused variance must be tighter than the better single sensor's
        // reported variance (0.15² per axis).
        assert!(t.pos_var.x < 0.15 * 0.15, "fusion did not tighten x");
        assert!(frames
            .iter()
            .flat_map(|f| &f.events)
            .any(|e| matches!(e, WorldEvent::TrackBorn { .. })));
    }

    #[test]
    fn watermark_waits_for_the_slower_sensor() {
        let (reg, world_from_s1) = two_sensor_registration();
        let mut engine = FusionEngine::new(FuseConfig::default(), reg);
        let p = Vec3::new(1.0, 5.0, 1.0);
        let s1_from_world = world_from_s1.inverse();
        // Sensor 1 reports first so the engine knows both sensors; then
        // sensor 0 racing ahead must not close epochs sensor 1 has not
        // reached.
        assert!(engine
            .push_report(1, &report(1, vec![target(9, s1_from_world.apply(p), 0.2)]))
            .is_empty());
        let mut fused = engine.push_report(0, &report(1, vec![target(1, p, 0.15)]));
        assert_eq!(fused.len(), 1, "both sensors at epoch 1: it closes");
        assert!(engine
            .push_report(0, &report(2, vec![target(1, p, 0.15)]))
            .is_empty());
        assert!(engine
            .push_report(0, &report(3, vec![target(1, p, 0.15)]))
            .is_empty());
        fused = engine.push_report(1, &report(3, vec![target(9, s1_from_world.apply(p), 0.2)]));
        assert_eq!(fused.len(), 2, "sensor 1 catching up closes 2 and 3");
        // A torn-down sensor stops holding the watermark back.
        assert!(engine
            .push_report(0, &report(4, vec![target(1, p, 0.15)]))
            .is_empty());
        let drained = engine.remove_sensor(1);
        assert_eq!(drained.len(), 1, "teardown releases epoch 4");
    }

    #[test]
    fn handoff_preserves_identity_and_fires_event() {
        let (reg, world_from_s1) = two_sensor_registration();
        let cfg = FuseConfig::default();
        let mut engine = FusionEngine::new(cfg, reg);
        let s1_from_world = world_from_s1.inverse();
        let walk = |e: u64| Vec3::new(0.0, 2.0 + 0.02 * e as f64, 1.0);
        let mut frames = Vec::new();
        // Phase 1: only sensor 0 sees the walker (sensor 1 reports empty).
        for e in 1..60 {
            frames.extend(engine.push_report(0, &report(e, vec![target(1, walk(e), 0.15)])));
            frames.extend(engine.push_report(1, &report(e, vec![])));
        }
        let id_before = frames.last().unwrap().tracks[0].id;
        // Phase 2: coverage gap — NEITHER sensor sees them (occlusion).
        for e in 60..120 {
            frames.extend(engine.push_report(0, &report(e, vec![])));
            frames.extend(engine.push_report(1, &report(e, vec![])));
        }
        assert!(
            frames.last().unwrap().tracks[0].coasting,
            "track should coast through the gap"
        );
        // Phase 3: sensor 1 reacquires on the far side.
        for e in 120..180 {
            frames.extend(engine.push_report(0, &report(e, vec![])));
            frames.extend(engine.push_report(
                1,
                &report(e, vec![target(7, s1_from_world.apply(walk(e)), 0.2)]),
            ));
        }
        let last = frames.last().unwrap();
        assert_eq!(last.tracks.len(), 1, "handoff must not duplicate");
        assert_eq!(last.tracks[0].id, id_before, "identity lost in handoff");
        assert!(!last.tracks[0].coasting);
        assert_eq!(last.tracks[0].primary_sensor, Some(1));
        assert!(
            frames.iter().flat_map(|f| &f.events).any(|e| matches!(
                e,
                WorldEvent::Handoff {
                    from_sensor: 0,
                    to_sensor: 1,
                    ..
                }
            )),
            "no handoff event"
        );
    }

    #[test]
    fn two_walkers_stay_two_tracks() {
        let (reg, world_from_s1) = two_sensor_registration();
        let mut engine = FusionEngine::new(FuseConfig::default(), reg);
        let s1_from_world = world_from_s1.inverse();
        let a = |e: u64| Vec3::new(-1.5, 3.0 + 0.02 * e as f64, 1.0);
        let b = |e: u64| Vec3::new(1.5, 7.0 - 0.02 * e as f64, 1.0);
        let mut last = None;
        for e in 1..80 {
            engine.push_report(
                0,
                &report(e, vec![target(1, a(e), 0.15), target(2, b(e), 0.15)]),
            );
            let fused = engine.push_report(
                1,
                &report(
                    e,
                    vec![
                        target(8, s1_from_world.apply(a(e)), 0.2),
                        target(9, s1_from_world.apply(b(e)), 0.2),
                    ],
                ),
            );
            if let Some(f) = fused.into_iter().last() {
                last = Some(f);
            }
        }
        let last = last.unwrap();
        assert_eq!(last.tracks.len(), 2, "tracks: {:?}", last.tracks);
        let mut near_a = 0;
        let mut near_b = 0;
        for t in &last.tracks {
            if t.position.distance(a(79)) < 0.5 {
                near_a += 1;
            }
            if t.position.distance(b(79)) < 0.5 {
                near_b += 1;
            }
        }
        assert_eq!((near_a, near_b), (1, 1));
    }

    #[test]
    fn zones_occupancy_and_fall_fire_world_events() {
        let (reg, world_from_s1) = two_sensor_registration();
        let cfg = FuseConfig::builder()
            .zone(Zone {
                id: 1,
                name: "near".into(),
                x: (-3.0, 3.0),
                y: (0.0, 5.0),
            })
            .zone(Zone {
                id: 2,
                name: "far".into(),
                x: (-3.0, 3.0),
                y: (5.0, 10.0),
            })
            .build();
        let mut engine = FusionEngine::new(cfg, reg);
        // Walk from the near zone into the far zone...
        let frames = run_two_sensor_walk(&mut engine, &world_from_s1, 1..200, |e| {
            Vec3::new(0.0, 3.0 + 0.02 * e as f64, 1.0)
        });
        let events: Vec<&WorldEvent> = frames.iter().flat_map(|f| &f.events).collect();
        assert!(events
            .iter()
            .any(|e| matches!(e, WorldEvent::ZoneEntered { zone: 1, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, WorldEvent::ZoneExited { zone: 1, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, WorldEvent::ZoneEntered { zone: 2, .. })));
        assert!(events.iter().any(|e| matches!(
            e,
            WorldEvent::OccupancyChanged {
                zone: 2,
                count: 1,
                ..
            }
        )));
        // ...then fall: fast elevation collapse observed by both sensors.
        let mut all_events = Vec::new();
        for e in 200..800 {
            let z = match e {
                200..=520 => 1.0,
                521..=560 => 1.0 - 0.9 * (e - 520) as f64 / 40.0,
                _ => 0.1,
            };
            let fused = run_two_sensor_walk(&mut engine, &world_from_s1, e..e + 1, |_| {
                Vec3::new(0.0, 7.0, z)
            });
            all_events.extend(fused.into_iter().flat_map(|f| f.events));
        }
        assert!(
            all_events
                .iter()
                .any(|e| matches!(e, WorldEvent::Fall { .. })),
            "no world fall event: {} events",
            all_events.len()
        );
    }

    #[test]
    fn single_sensor_ghosts_are_suppressed_where_coverage_overlaps() {
        // Both sensors cover the mid-hallway. A real walker at y = 6 is
        // reported by both; sensor 0 also reports a persistent multipath
        // ghost at y = 5 that sensor 1 (which covers that spot too)
        // never sees. The ghost must not become a world track — while a
        // genuinely exclusive-region body (y = 2, sensor 0 only) must.
        let world_from_s1 = RigidTransform::from_yaw(PI, Vec3::new(0.0, 12.0, 0.0));
        let reg = Registration::new()
            .with_sensor(0, RigidTransform::IDENTITY)
            .with_sensor(1, world_from_s1)
            .with_coverage(0, 8.0)
            .with_coverage(1, 8.0);
        let cfg = FuseConfig {
            max_uncorroborated_epochs: 40,
            coverage_margin_m: 0.5,
            ..FuseConfig::default()
        };
        let mut engine = FusionEngine::new(cfg, reg);
        let s1_from_world = world_from_s1.inverse();
        let real = Vec3::new(0.0, 6.0, 1.0);
        let ghost = Vec3::new(0.0, 5.0, 1.0);
        let exclusive = Vec3::new(0.5, 2.0, 1.0);
        let mut last = None;
        for e in 1..200 {
            engine.push_report(
                0,
                &report(
                    e,
                    vec![
                        target(1, real, 0.15),
                        target(2, ghost, 0.15),
                        target(3, exclusive, 0.15),
                    ],
                ),
            );
            let fused = engine.push_report(
                1,
                &report(e, vec![target(9, s1_from_world.apply(real), 0.2)]),
            );
            if let Some(f) = fused.into_iter().next_back() {
                last = Some(f);
            }
        }
        let last = last.unwrap();
        assert_eq!(
            last.tracks.len(),
            2,
            "ghost leaked or real track lost: {:?}",
            last.tracks
        );
        assert!(last.tracks.iter().any(|t| t.position.distance(real) < 0.5));
        assert!(
            last.tracks
                .iter()
                .any(|t| t.position.distance(exclusive) < 0.5),
            "exclusive-region body must survive with one sensor"
        );
        assert!(
            !last.tracks.iter().any(|t| t.position.distance(ghost) < 0.5),
            "uncorroborated ghost became a world track"
        );
        let stats = engine.stats();
        assert!(stats.suppressed_initiations > 0, "{stats:?}");
    }

    #[test]
    fn unregistered_sensors_are_counted_not_fused() {
        let (reg, _) = two_sensor_registration();
        let mut engine = FusionEngine::new(FuseConfig::default(), reg);
        let out = engine.push_report(
            77,
            &report(1, vec![target(1, Vec3::new(0.0, 5.0, 1.0), 0.1)]),
        );
        assert!(out.is_empty());
        assert_eq!(engine.stats().unregistered_reports, 1);
        assert_eq!(engine.live_tracks(), 0);
    }

    #[test]
    fn pointing_lifts_into_world_frame() {
        let (reg, world_from_s1) = two_sensor_registration();
        let mut engine = FusionEngine::new(FuseConfig::default(), reg);
        let frames = run_two_sensor_walk(&mut engine, &world_from_s1, 1..20, |_| {
            Vec3::new(0.0, 7.0, 1.0)
        });
        assert!(!frames.is_empty());
        // Sensor 1 sees a gesture pointing along its local +y (its
        // boresight): in the world frame that is −y.
        let local_origin = world_from_s1.inverse().apply(Vec3::new(0.0, 7.0, 1.0));
        let ev = engine
            .lift_pointing(1, 0.25, local_origin, Vec3::Y, 2.0)
            .unwrap();
        match ev {
            WorldEvent::Pointing {
                track,
                direction,
                sensor,
                ..
            } => {
                assert_eq!(sensor, 1);
                assert!(track.is_some(), "gesture near the track must attribute");
                assert!(direction.distance(-Vec3::Y) < 1e-9, "{direction}");
            }
            other => panic!("wrong event {other:?}"),
        }
        assert!(engine
            .lift_pointing(99, 0.0, Vec3::ZERO, Vec3::Y, 2.0)
            .is_none());
    }

    #[test]
    fn silent_sensor_no_longer_stalls_epoch_closure() {
        // Regression: before the liveness tick, a registered sensor that
        // NEVER reported held the watermark at its seed epoch 0 forever —
        // a short burst from the healthy sensor would never fuse.
        let (reg, _) = two_sensor_registration();
        let cfg = FuseConfig {
            suspect_timeout_s: 0.05,
            dead_timeout_s: 0.1,
            ..FuseConfig::default()
        };
        let mut engine = FusionEngine::new(cfg, reg);
        let p = Vec3::new(0.5, 4.0, 1.0);
        for e in 1..5 {
            assert!(
                engine
                    .push_report(0, &report(e, vec![target(1, p, 0.15)]))
                    .is_empty(),
                "sensor 1 silent: watermark stalled (the pre-fix behavior)"
            );
        }
        // The tick observes the silence, demotes 1 to Suspect then Dead,
        // and the death releases every pending epoch. Sensor 0 reports
        // between ticks, so only sensor 1 accumulates silence.
        assert!(engine.tick(0.0).is_empty(), "first tick only arms");
        engine.push_report(0, &report(5, vec![target(1, p, 0.15)]));
        assert!(engine.tick(0.06).is_empty(), "suspect: still waiting");
        assert_eq!(engine.sensor_liveness(0), Some(SensorLiveness::Live));
        assert_eq!(engine.sensor_liveness(1), Some(SensorLiveness::Suspect));
        engine.push_report(0, &report(6, vec![target(1, p, 0.15)]));
        let frames = engine.tick(0.2);
        assert_eq!(engine.sensor_liveness(1), Some(SensorLiveness::Dead));
        assert_eq!(frames.len(), 6, "death closes epochs 1..=6");
        assert_eq!(engine.stats().sensors_died, 1);
        let kinds: Vec<(SensorLiveness, SensorLiveness)> = engine
            .take_liveness_transitions()
            .iter()
            .map(|t| (t.from, t.to))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (SensorLiveness::Live, SensorLiveness::Suspect),
                (SensorLiveness::Suspect, SensorLiveness::Dead),
            ]
        );
        // Epochs now close on the surviving sensor alone.
        let live_only = engine.push_report(0, &report(7, vec![target(1, p, 0.15)]));
        assert_eq!(live_only.len(), 1, "surviving set fuses without sensor 1");
        // Recovery: the silent sensor returns and rejoins the watermark.
        let s1_from_world = RigidTransform::from_yaw(PI, Vec3::new(0.0, 10.0, 0.0)).inverse();
        engine.push_report(1, &report(8, vec![target(9, s1_from_world.apply(p), 0.2)]));
        assert_eq!(engine.sensor_liveness(1), Some(SensorLiveness::Live));
        assert_eq!(engine.stats().sensors_recovered, 1);
        let recovered = engine.take_liveness_transitions();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].from, SensorLiveness::Dead);
        assert_eq!(recovered[0].to, SensorLiveness::Live);
        let after = engine.push_report(0, &report(9, vec![target(1, p, 0.15)]));
        assert_eq!(
            after.iter().map(|f| f.epoch).collect::<Vec<_>>(),
            vec![8],
            "epoch 9 must wait for the recovered sensor again"
        );
    }

    #[test]
    fn all_sensors_dead_force_closes_pending_epochs() {
        let (reg, world_from_s1) = two_sensor_registration();
        let cfg = FuseConfig {
            suspect_timeout_s: 0.05,
            dead_timeout_s: 0.1,
            ..FuseConfig::default()
        };
        let mut engine = FusionEngine::new(cfg, reg);
        let p = Vec3::new(0.0, 5.0, 1.0);
        run_two_sensor_walk(&mut engine, &world_from_s1, 1..10, |_| p);
        // Both sensors go silent mid-stream with epoch 10 pending on one
        // side only.
        engine.push_report(0, &report(10, vec![target(1, p, 0.15)]));
        engine.tick(0.0);
        engine.tick(0.06);
        let frames = engine.tick(0.2);
        assert_eq!(engine.stats().sensors_died, 2);
        assert_eq!(frames.len(), 1, "orphan epoch 10 force-closed");
        assert_eq!(frames[0].epoch, 10);
        assert!(
            frames[0].tracks.iter().all(|t| !t.coasting),
            "epoch 10 still had sensor 0's observation"
        );
    }

    #[test]
    fn liveness_disabled_keeps_ticks_inert() {
        let (reg, _) = two_sensor_registration();
        let cfg = FuseConfig {
            suspect_timeout_s: 0.0,
            ..FuseConfig::default()
        };
        let mut engine = FusionEngine::new(cfg, reg);
        engine.push_report(
            0,
            &report(1, vec![target(1, Vec3::new(0.0, 5.0, 1.0), 0.15)]),
        );
        for t in [0.0, 1.0, 60.0] {
            assert!(engine.tick(t).is_empty());
        }
        assert_eq!(engine.sensor_liveness(1), Some(SensorLiveness::Live));
        assert!(engine.take_liveness_transitions().is_empty());
    }

    #[test]
    fn clock_drift_is_tracked_and_epochs_stay_paired() {
        // Sensor 1's clock drifts linearly, accumulating +2 frame
        // periods by the end of the run. Without correction its reports
        // land one then two epochs late and single-instant fusion splits;
        // with the EWMA offset both sensors keep fusing into the same
        // epoch with 2 contributors.
        let (reg, world_from_s1) = two_sensor_registration();
        let mut engine = FusionEngine::new(FuseConfig::default(), reg);
        let s1_from_world = world_from_s1.inverse();
        let p = |e: u64| Vec3::new(0.0, 3.0 + 0.01 * e as f64, 1.0);
        let epochs = 400u64;
        let drift_per_epoch = 2.0 * PERIOD / epochs as f64; // ≪ PERIOD/2
        let mut last = None;
        for e in 1..=epochs {
            engine.push_report(0, &report(e, vec![target(1, p(e), 0.15)]));
            let drifted = FrameReport {
                frame_index: e,
                time_s: e as f64 * PERIOD + e as f64 * drift_per_epoch,
                targets: vec![target(9, s1_from_world.apply(p(e)), 0.2)],
            };
            if let Some(f) = engine.push_report(1, &drifted).into_iter().last() {
                last = Some(f);
            }
        }
        let last = last.unwrap();
        assert_eq!(last.tracks.len(), 1, "drift split the walker");
        assert_eq!(
            last.tracks[0].contributors, 2,
            "drifted sensor fell out of its epoch"
        );
    }

    #[test]
    fn flush_closes_everything_pending() {
        let (reg, _) = two_sensor_registration();
        let mut engine = FusionEngine::new(FuseConfig::default(), reg);
        engine.push_report(
            0,
            &report(1, vec![target(1, Vec3::new(0.0, 5.0, 1.0), 0.1)]),
        );
        engine.push_report(1, &report(2, vec![]));
        // Epoch 2 is still open (sensor 0 has not reached it).
        let flushed = engine.flush();
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].epoch, 2);
        assert!(engine.flush().is_empty());
    }
}
