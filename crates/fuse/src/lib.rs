//! witrack-fuse: cross-sensor track fusion, world model, and fleet
//! events.
//!
//! WiTrack localizes bodies *per device*; its headline applications —
//! through-wall tracking, fall alerts, gesture control (§6) — only become
//! a deployable system once many sensors covering overlapping spaces
//! agree on one world. This crate is that layer:
//!
//! * [`registration`] — which rigid (SE(3)) transform carries each
//!   sensor's local frame into the shared world frame; surveyed or
//!   auto-calibrated from one shared calibration walk
//!   ([`Registration::calibrate`], built on
//!   [`witrack_geom::align_point_sets`]).
//! * [`world`] — the [`FusionEngine`]: per-sensor
//!   [`FrameReport`](witrack_core::FrameReport)s in, fused
//!   [`WorldFrame`]s out. Observations are grouped into watermarked
//!   epochs, gated with a Mahalanobis test against each world track's
//!   covariance (newly exported from the `witrack-mtt` Kalman),
//!   associated with the Hungarian solver, and merged
//!   covariance-weighted. A track whose sensor loses coverage coasts
//!   until another sensor reacquires it — identity survives the handoff.
//! * [`events`] — fleet-level events lifted from per-sensor appliers to
//!   world tracks: zone occupancy, falls on fused elevation, handoffs,
//!   pointing gestures registered into world coordinates.
//! * [`config`] — gates, lifecycle windows, zones.
//!
//! The serving layer (`witrack-serve`) runs one engine per room behind
//! its wire protocol (`Subscribe`/`WorldUpdate`/`Event` messages), so
//! clients subscribe to *rooms*, not raw sensors.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod events;
pub mod registration;
pub mod world;

pub use config::{FuseConfig, FuseConfigBuilder, Zone};
pub use events::WorldEvent;
pub use registration::{CalibrationConfig, CalibrationError, Registration, TrackSample};
pub use world::{
    FusionEngine, FusionStats, LivenessTransition, SensorLiveness, WorldFrame, WorldTrackId,
    WorldTrackSnapshot,
};
