//! Fleet-level events: the §6 applications lifted from one sensor's
//! track to the fused world model.
//!
//! The paper demonstrates fall alerting and gesture control against a
//! single device's output (§6.1–6.2). At fleet scale those signals must
//! fire on *world* tracks — a fall seen partially by two sensors is one
//! fall, and occupancy is a property of a room, not of a sensor.

use crate::world::WorldTrackId;
use witrack_geom::Vec3;

/// One discrete fleet-level event, stamped with the world-frame epoch
/// time it fired at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorldEvent {
    /// A world track reached confirmed status (a person is now present).
    TrackBorn {
        /// The new track.
        track: WorldTrackId,
        /// Epoch time (s).
        time_s: f64,
        /// Where they appeared (world frame).
        position: Vec3,
    },
    /// A confirmed world track was dropped (left coverage or stopped
    /// moving for longer than the coast window).
    TrackLost {
        /// The departed track.
        track: WorldTrackId,
        /// Epoch time (s).
        time_s: f64,
        /// Last fused position (world frame).
        position: Vec3,
    },
    /// A fused track satisfied the §6.2 fall rule on its world elevation.
    Fall {
        /// Who fell.
        track: WorldTrackId,
        /// Epoch time (s).
        time_s: f64,
        /// Elevation before the drop (m).
        from_z: f64,
        /// Elevation after the drop (m).
        to_z: f64,
    },
    /// A track entered a configured zone.
    ZoneEntered {
        /// The track.
        track: WorldTrackId,
        /// The zone id.
        zone: u32,
        /// Epoch time (s).
        time_s: f64,
    },
    /// A track left a configured zone.
    ZoneExited {
        /// The track.
        track: WorldTrackId,
        /// The zone id.
        zone: u32,
        /// Epoch time (s).
        time_s: f64,
    },
    /// A zone's established-track count changed.
    OccupancyChanged {
        /// The zone id.
        zone: u32,
        /// New occupant count.
        count: u32,
        /// Epoch time (s).
        time_s: f64,
    },
    /// A track's anchoring sensor changed — the cross-coverage handoff
    /// the world model exists to make seamless.
    Handoff {
        /// The track that switched sensors.
        track: WorldTrackId,
        /// The sensor that was anchoring it.
        from_sensor: u32,
        /// The sensor now anchoring it.
        to_sensor: u32,
        /// Epoch time (s).
        time_s: f64,
    },
    /// A §6.1 pointing gesture, estimated by one sensor and lifted into
    /// the world frame (direction rotated by that sensor's extrinsic,
    /// attributed to the nearest world track).
    Pointing {
        /// The world track that pointed, when one was near the gesture.
        track: Option<WorldTrackId>,
        /// The sensor that estimated the gesture.
        sensor: u32,
        /// Gesture time (s).
        time_s: f64,
        /// Pointing direction, world frame (unit-ish).
        direction: Vec3,
    },
}

impl WorldEvent {
    /// The event timestamp (s).
    pub fn time_s(&self) -> f64 {
        match *self {
            WorldEvent::TrackBorn { time_s, .. }
            | WorldEvent::TrackLost { time_s, .. }
            | WorldEvent::Fall { time_s, .. }
            | WorldEvent::ZoneEntered { time_s, .. }
            | WorldEvent::ZoneExited { time_s, .. }
            | WorldEvent::OccupancyChanged { time_s, .. }
            | WorldEvent::Handoff { time_s, .. }
            | WorldEvent::Pointing { time_s, .. } => time_s,
        }
    }

    /// Short machine-readable label for logs and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            WorldEvent::TrackBorn { .. } => "track_born",
            WorldEvent::TrackLost { .. } => "track_lost",
            WorldEvent::Fall { .. } => "fall",
            WorldEvent::ZoneEntered { .. } => "zone_entered",
            WorldEvent::ZoneExited { .. } => "zone_exited",
            WorldEvent::OccupancyChanged { .. } => "occupancy_changed",
            WorldEvent::Handoff { .. } => "handoff",
            WorldEvent::Pointing { .. } => "pointing",
        }
    }
}
