//! Sensor registration: which rigid transform carries each sensor's local
//! frame into the shared world frame.
//!
//! Extrinsics come from one of two places:
//!
//! * **Surveyed** — the installer measured each unit's mounting pose and
//!   configures a [`RigidTransform`] per sensor id.
//! * **Auto-calibrated** — one person walks the space while every sensor
//!   tracks them; [`Registration::calibrate`] aligns each sensor's
//!   trajectory onto a reference sensor's with the closed-form
//!   least-squares solution ([`witrack_geom::align_point_sets`]), pairing
//!   samples by timestamp.

use std::collections::BTreeMap;
use witrack_geom::rigid::{align_point_sets, AlignError};
use witrack_geom::{RigidTransform, Vec3};

/// The fleet's sensor→world transform table, with optional per-sensor
/// coverage ranges.
///
/// Coverage is what lets fusion use *negative* information: a body that
/// two sensors should both see but only one reports is far more likely a
/// multipath ghost than a person — single-sensor ghosts land in
/// different world positions after registration, so they never
/// corroborate. Sensors without a declared range are simply never
/// "expected", which disables that reasoning for them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registration {
    poses: BTreeMap<u32, RigidTransform>,
    /// Declared slant-range coverage (m from the sensor origin), by id.
    coverage: BTreeMap<u32, f64>,
}

impl Registration {
    /// An empty table.
    pub fn new() -> Registration {
        Registration::default()
    }

    /// Builder form: adds (or replaces) one sensor's world-from-sensor
    /// transform.
    pub fn with_sensor(
        mut self,
        sensor_id: u32,
        world_from_sensor: RigidTransform,
    ) -> Registration {
        self.insert(sensor_id, world_from_sensor);
        self
    }

    /// Adds (or replaces) one sensor's world-from-sensor transform.
    ///
    /// # Panics
    /// Panics when the transform is non-finite or its rotation is not
    /// orthonormal to ~1e-6 (a corrupt extrinsic would silently poison
    /// every fused position).
    pub fn insert(&mut self, sensor_id: u32, world_from_sensor: RigidTransform) {
        assert!(
            world_from_sensor.is_finite() && world_from_sensor.orthonormality_error() < 1e-6,
            "sensor {sensor_id}: extrinsic is not a rigid transform"
        );
        self.poses.insert(sensor_id, world_from_sensor);
    }

    /// Builder form of [`Self::set_coverage`].
    pub fn with_coverage(mut self, sensor_id: u32, range_m: f64) -> Registration {
        self.set_coverage(sensor_id, range_m);
        self
    }

    /// Declares `sensor_id`'s usable slant range (m from its mounting
    /// origin). Enables corroboration reasoning for positions inside it.
    ///
    /// # Panics
    /// Panics when the sensor is unregistered or the range is not
    /// finite and positive.
    pub fn set_coverage(&mut self, sensor_id: u32, range_m: f64) {
        assert!(
            self.poses.contains_key(&sensor_id),
            "sensor {sensor_id} not registered"
        );
        assert!(
            range_m.is_finite() && range_m > 0.0,
            "sensor {sensor_id}: coverage must be positive, got {range_m}"
        );
        self.coverage.insert(sensor_id, range_m);
    }

    /// How many sensors *declare* they can see world point `p`, keeping
    /// `margin_m` clear of the boundary (positions near a coverage edge
    /// should not flap between expected/unexpected as the filter
    /// jitters).
    pub fn expected_observers(&self, p: Vec3, margin_m: f64) -> usize {
        self.expected_observers_where(p, margin_m, |_| true)
    }

    /// [`Self::expected_observers`], restricted to sensors `include`
    /// accepts — the fusion engine passes its live-session set, so a
    /// torn-down sensor's declared coverage stops generating
    /// expectations.
    pub fn expected_observers_where(
        &self,
        p: Vec3,
        margin_m: f64,
        mut include: impl FnMut(u32) -> bool,
    ) -> usize {
        self.coverage
            .iter()
            .filter(|(&id, &range)| {
                include(id)
                    && self
                        .poses
                        .get(&id)
                        .is_some_and(|pose| p.distance(pose.translation) <= range - margin_m)
            })
            .count()
    }

    /// The world-from-sensor transform of `sensor_id`, if registered.
    pub fn get(&self, sensor_id: u32) -> Option<&RigidTransform> {
        self.poses.get(&sensor_id)
    }

    /// Whether `sensor_id` is registered.
    pub fn contains(&self, sensor_id: u32) -> bool {
        self.poses.contains_key(&sensor_id)
    }

    /// Registered sensor ids, ascending.
    pub fn sensor_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.poses.keys().copied()
    }

    /// Number of registered sensors.
    pub fn len(&self) -> usize {
        self.poses.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.poses.is_empty()
    }
}

/// Why auto-calibration refused a trajectory pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CalibrationError {
    /// The reference sensor's trajectory is missing from the input.
    MissingReference,
    /// Too few time-paired samples between a sensor and the reference
    /// (needs ≥ 3, more in practice).
    TooFewPairs {
        /// The sensor that could not be paired.
        sensor_id: u32,
    },
    /// The underlying point-set alignment failed (degenerate trajectory).
    Align {
        /// The sensor whose alignment failed.
        sensor_id: u32,
        /// The geometric reason.
        source: AlignError,
    },
    /// The alignment succeeded but its residual exceeds the caller's
    /// bound — the two sensors probably tracked *different* walkers.
    ResidualTooLarge {
        /// The sensor whose fit was poor.
        sensor_id: u32,
        /// The fitted RMS residual (m).
        rms: f64,
    },
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::MissingReference => write!(f, "reference trajectory missing"),
            CalibrationError::TooFewPairs { sensor_id } => {
                write!(f, "sensor {sensor_id}: too few time-paired samples")
            }
            CalibrationError::Align { sensor_id, source } => {
                write!(f, "sensor {sensor_id}: {source}")
            }
            CalibrationError::ResidualTooLarge { sensor_id, rms } => {
                write!(f, "sensor {sensor_id}: residual {rms:.3} m too large")
            }
        }
    }
}

impl std::error::Error for CalibrationError {}

/// A timestamped local-frame track sample of the calibration walker.
pub type TrackSample = (f64, Vec3);

/// Tuning for [`Registration::calibrate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// Maximum timestamp difference (s) for two samples to pair.
    pub max_pair_dt_s: f64,
    /// Minimum paired samples per sensor.
    pub min_pairs: usize,
    /// Maximum acceptable RMS alignment residual (m).
    pub max_rms_residual_m: f64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            max_pair_dt_s: 0.010,
            min_pairs: 32,
            max_rms_residual_m: 0.5,
        }
    }
}

impl Registration {
    /// Auto-calibrates a fleet from one shared calibration walk.
    ///
    /// `trajectories` maps each sensor id to its *local-frame* track of
    /// the (single) calibration walker. The reference sensor's frame is
    /// placed at `world_from_reference` (use the identity to make the
    /// reference frame the world frame); every other sensor's extrinsic
    /// is `world_from_reference ∘ align(other → reference)`.
    ///
    /// Pairing is by timestamp: each non-reference sample pairs with the
    /// nearest reference sample within `cfg.max_pair_dt_s` (both streams
    /// must be time-sorted).
    pub fn calibrate(
        reference: u32,
        world_from_reference: RigidTransform,
        trajectories: &BTreeMap<u32, Vec<TrackSample>>,
        cfg: &CalibrationConfig,
    ) -> Result<Registration, CalibrationError> {
        let ref_track = trajectories
            .get(&reference)
            .ok_or(CalibrationError::MissingReference)?;
        let mut reg = Registration::new().with_sensor(reference, world_from_reference);
        for (&sensor_id, track) in trajectories {
            if sensor_id == reference {
                continue;
            }
            let (src, dst) = pair_by_time(track, ref_track, cfg.max_pair_dt_s);
            if src.len() < cfg.min_pairs.max(3) {
                return Err(CalibrationError::TooFewPairs { sensor_id });
            }
            let alignment = align_point_sets(&src, &dst)
                .map_err(|source| CalibrationError::Align { sensor_id, source })?;
            if alignment.rms_residual > cfg.max_rms_residual_m {
                return Err(CalibrationError::ResidualTooLarge {
                    sensor_id,
                    rms: alignment.rms_residual,
                });
            }
            reg.insert(
                sensor_id,
                world_from_reference.compose(&alignment.transform),
            );
        }
        Ok(reg)
    }
}

/// Pairs each `src` sample with the nearest-in-time `dst` sample within
/// `max_dt`. Both inputs must be time-sorted; the scan is linear.
fn pair_by_time(src: &[TrackSample], dst: &[TrackSample], max_dt: f64) -> (Vec<Vec3>, Vec<Vec3>) {
    let mut out_src = Vec::new();
    let mut out_dst = Vec::new();
    let mut j = 0usize;
    for &(t, p) in src {
        while j + 1 < dst.len() && (dst[j + 1].0 - t).abs() <= (dst[j].0 - t).abs() {
            j += 1;
        }
        if dst.is_empty() {
            break;
        }
        if (dst[j].0 - t).abs() <= max_dt {
            out_src.push(p);
            out_dst.push(dst[j].1);
        }
    }
    (out_src, out_dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn walk(n: usize) -> Vec<TrackSample> {
        (0..n)
            .map(|i| {
                let t = i as f64 * 0.0125;
                (
                    t,
                    Vec3::new(
                        2.0 * (0.4 * t).sin(),
                        5.0 + 1.5 * (0.7 * t).cos(),
                        1.0 + 0.05 * t,
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn calibrate_recovers_relative_pose() {
        // Sensor 0 is the reference; sensor 1 is mounted across the room,
        // yawed 135° — its local view of the same walk.
        let world_from_s1 = RigidTransform::from_yaw(0.75 * PI, Vec3::new(9.0, 2.0, 0.0));
        let s1_from_world = world_from_s1.inverse();
        let walk_world = walk(240);
        let mut trajectories = BTreeMap::new();
        trajectories.insert(0, walk_world.clone());
        trajectories.insert(
            1,
            walk_world
                .iter()
                .map(|&(t, p)| (t, s1_from_world.apply(p)))
                .collect(),
        );
        let reg = Registration::calibrate(
            0,
            RigidTransform::IDENTITY,
            &trajectories,
            &CalibrationConfig::default(),
        )
        .unwrap();
        let fitted = reg.get(1).unwrap();
        for &(_, p) in &trajectories[&1] {
            assert!(
                fitted.apply(p).distance(world_from_s1.apply(p)) < 1e-8,
                "calibrated pose disagrees"
            );
        }
    }

    #[test]
    fn calibrate_with_offset_clocks_still_pairs() {
        // Sensor 1's samples are offset by 4 ms — within pairing
        // tolerance, so calibration still succeeds (with some residual
        // from the walker's motion over 4 ms).
        let world_from_s1 = RigidTransform::from_yaw(PI / 2.0, Vec3::new(4.0, 0.0, 0.0));
        let s1_from_world = world_from_s1.inverse();
        let mut trajectories = BTreeMap::new();
        trajectories.insert(0, walk(240));
        trajectories.insert(
            1,
            walk(240)
                .iter()
                .map(|&(t, p)| (t + 0.004, s1_from_world.apply(p)))
                .collect(),
        );
        let reg = Registration::calibrate(
            0,
            RigidTransform::IDENTITY,
            &trajectories,
            &CalibrationConfig::default(),
        )
        .unwrap();
        let fitted = reg.get(1).unwrap();
        let p = Vec3::new(1.0, 5.0, 1.0);
        assert!(fitted.apply(s1_from_world.apply(p)).distance(p) < 0.05);
    }

    #[test]
    fn calibrate_rejects_mismatched_walks() {
        // Sensor 1 tracked a *different* (and non-rigidly related) path:
        // the fit's residual must trip the bound rather than silently
        // registering garbage.
        let mut trajectories = BTreeMap::new();
        trajectories.insert(0, walk(240));
        trajectories.insert(
            1,
            walk(240)
                .iter()
                .map(|&(t, _)| {
                    (
                        t,
                        Vec3::new(3.0 * (2.3 * t).cos(), 4.0 * (1.1 * t).sin(), 0.5 * t),
                    )
                })
                .collect(),
        );
        let err = Registration::calibrate(
            0,
            RigidTransform::IDENTITY,
            &trajectories,
            &CalibrationConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CalibrationError::ResidualTooLarge { sensor_id: 1, .. }
        ));
    }

    #[test]
    fn missing_reference_and_sparse_pairs_are_refused() {
        let mut trajectories: BTreeMap<u32, Vec<TrackSample>> = BTreeMap::new();
        trajectories.insert(1, walk(100));
        assert_eq!(
            Registration::calibrate(
                0,
                RigidTransform::IDENTITY,
                &trajectories,
                &CalibrationConfig::default()
            )
            .unwrap_err(),
            CalibrationError::MissingReference
        );
        trajectories.insert(0, walk(100));
        trajectories.insert(2, walk(5)); // too few samples to pair
        let err = Registration::calibrate(
            0,
            RigidTransform::IDENTITY,
            &trajectories,
            &CalibrationConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, CalibrationError::TooFewPairs { sensor_id: 2 });
    }

    #[test]
    fn expected_observers_counts_declared_coverage() {
        let reg = Registration::new()
            .with_sensor(0, RigidTransform::IDENTITY)
            .with_sensor(1, RigidTransform::from_yaw(PI, Vec3::new(0.0, 12.0, 0.0)))
            .with_coverage(0, 8.0)
            .with_coverage(1, 8.0);
        // Mid-hallway: both; near an end: one; margin shrinks the reach.
        assert_eq!(reg.expected_observers(Vec3::new(0.0, 6.0, 1.0), 0.5), 2);
        assert_eq!(reg.expected_observers(Vec3::new(0.0, 2.0, 1.0), 0.5), 1);
        assert_eq!(reg.expected_observers(Vec3::new(0.0, 7.8, 1.0), 0.5), 1);
        assert_eq!(reg.expected_observers(Vec3::new(0.0, 7.8, 1.0), 5.0), 0);
        // Without declarations nothing is ever expected.
        let bare = Registration::new().with_sensor(0, RigidTransform::IDENTITY);
        assert_eq!(bare.expected_observers(Vec3::new(0.0, 1.0, 1.0), 0.5), 0);
    }

    #[test]
    #[should_panic]
    fn coverage_for_unregistered_sensor_is_rejected() {
        let _ = Registration::new().with_coverage(3, 5.0);
    }

    #[test]
    #[should_panic]
    fn corrupt_extrinsic_is_rejected() {
        let mut bad = RigidTransform::IDENTITY;
        bad.rotation[0][0] = 2.0;
        let _ = Registration::new().with_sensor(0, bad);
    }
}
