//! Offline stand-in for `rand` (see `crates/compat/README.md`).
//!
//! Provides the rand-0.9-style surface the workspace uses: the [`Rng`]
//! trait with `random::<T>()`, [`SeedableRng`], and [`rngs::StdRng`]. The
//! generator is SplitMix64 — statistically solid for simulation noise and
//! deterministic per seed, which is all consumers rely on. The stream
//! differs from upstream `StdRng` (ChaCha12), so seeds do not reproduce
//! upstream sequences, only their own.

/// Types that can be drawn uniformly from an RNG (stand-in for the
/// `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` from the standard-uniform distribution
    /// (`f64`/`f32` in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: SplitMix64 (Steele, Lea & Flood 2014).
    /// Passes BigCrush on its own output; one multiply-xor-shift chain per
    /// draw, so it is also the cheapest reasonable choice for the hot
    /// simulator loops.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_uniform_range_and_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn works_through_unsized_generic() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
