//! Offline stand-in for `criterion` (see `crates/compat/README.md`).
//!
//! A small wall-clock benchmark runner with criterion's API shape:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], and the
//! `criterion_group!`/`criterion_main!` macros. No statistics engine — each
//! benchmark is warmed up, then timed over enough iterations to fill a
//! fixed measurement window, and the mean time per iteration is printed as
//! `name ... <time>/iter`. Honors `--bench` (ignored) and filters by any
//! bare CLI argument, like the real harness.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in favor
/// of `std::hint::black_box`, which the workspace already uses directly).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the configured number of iterations, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_time(per_iter: f64) -> String {
    if per_iter >= 1.0 {
        format!("{per_iter:.3} s")
    } else if per_iter >= 1e-3 {
        format!("{:.3} ms", per_iter * 1e3)
    } else if per_iter >= 1e-6 {
        format!("{:.3} µs", per_iter * 1e6)
    } else {
        format!("{:.1} ns", per_iter * 1e9)
    }
}

/// The benchmark driver.
pub struct Criterion {
    measurement_window: Duration,
    warmup_window: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with("--") && !a.is_empty());
        Criterion {
            measurement_window: Duration::from_millis(400),
            warmup_window: Duration::from_millis(100),
            filter,
        }
    }
}

impl Criterion {
    /// Criterion's sample-count knob; the stand-in scales its measurement
    /// window with it so heavier suites still complete quickly.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.measurement_window = Duration::from_millis(10 * n.max(10) as u64);
        self
    }

    /// Accepted for compatibility; the stand-in has no statistics to tune.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_window = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Criterion {
        self.run(name.into(), f);
        self
    }

    /// Opens a named group; the stand-in just prefixes benchmark names.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.into(),
        }
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, name: String, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warm up with single iterations to estimate the per-iter cost.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warmup_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut warm_time = Duration::ZERO;
        while warmup_start.elapsed() < self.warmup_window && warm_iters < 1_000_000 {
            f(&mut b);
            warm_time += b.elapsed;
            warm_iters += b.iters;
        }
        let per_iter = (warm_time.as_secs_f64() / warm_iters.max(1) as f64).max(1e-9);
        // One measured batch sized to fill the window.
        let iters = (self.measurement_window.as_secs_f64() / per_iter).clamp(1.0, 1e7) as u64;
        b.iters = iters;
        f(&mut b);
        let mean = b.elapsed.as_secs_f64() / iters as f64;
        println!("{name:<50} {:>12}/iter ({iters} iters)", format_time(mean));
    }
}

/// A named group of benchmarks (criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name.into());
        self.criterion.run(full, f);
        self
    }

    /// Ends the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// Declares a benchmark group, in both criterion syntaxes.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
