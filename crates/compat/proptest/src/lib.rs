//! Offline stand-in for `proptest` (see `crates/compat/README.md`).
//!
//! Implements the subset the workspace's property tests use: [`Strategy`]
//! over numeric ranges, tuples, `prop_map`, and [`collection::vec`]; the
//! [`proptest!`] macro with `#![proptest_config(...)]`; and panic-based
//! `prop_assert!` macros. Cases are generated deterministically (SplitMix64
//! seeded by case index), so failures reproduce exactly; there is no
//! shrinking — the failing inputs are printed by the assertion itself.

use std::ops::Range;

/// Deterministic per-case random source.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the `case`-th test case.
    pub fn for_case(case: u64) -> TestRng {
        TestRng {
            state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filters generated values; retries until `f` passes (bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 10000 consecutive cases",
            self.whence
        );
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128).max(1) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*
    };
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// A fixed value as a strategy (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and length drawn from
    /// `len` (half-open, like proptest's size ranges).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: lengths in `len`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts inside a `proptest!` body (panic-based in the stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); ) => {};
    (@impl ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases as u64 {
                let mut __rng = $crate::TestRng::for_case(__case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}
