//! Offline stand-in for `parking_lot` (see `crates/compat/README.md`).
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly. A poisoned std lock
//! (a panic while held) just hands back the inner guard — parking_lot has
//! no poisoning, so neither does the stand-in.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates the lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Non-poisoning mutex.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
