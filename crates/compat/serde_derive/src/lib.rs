//! Offline stand-in for `serde_derive` (see `crates/compat/README.md`).
//!
//! Emits empty impls of the marker traits in the stand-in `serde` crate.
//! Supports plain (non-generic) structs and enums, which is all the
//! workspace derives on; a type with generic parameters gets no impl (the
//! derive is then a no-op, which still compiles as long as no bound
//! requires it).

use proc_macro::{TokenStream, TokenTree};

/// Finds the type name in a `struct`/`enum` item and whether it has
/// generic parameters.
fn type_name(input: TokenStream) -> Option<(String, bool)> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // Skip outer attributes: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = tokens.next();
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    if let Some(TokenTree::Ident(name)) = tokens.next() {
                        let generic = matches!(
                            tokens.peek(),
                            Some(TokenTree::Punct(p)) if p.as_char() == '<'
                        );
                        return Some((name.to_string(), generic));
                    }
                    return None;
                }
                // `pub`, `pub(crate)`, doc idents, etc. — keep scanning.
            }
            _ => {}
        }
    }
    None
}

fn empty_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    match type_name(input) {
        Some((name, false)) => format!("impl {trait_path} for {name} {{}}")
            .parse()
            .expect("valid impl tokens"),
        _ => TokenStream::new(),
    }
}

/// Derives the stand-in `serde::Serialize` marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "::serde::Serialize")
}

/// Derives the stand-in `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "::serde::Deserialize<'_>")
}
