//! Offline stand-in for `serde` (see `crates/compat/README.md`).
//!
//! The workspace uses serde only to mark config/model types as
//! serializable; nothing serializes at runtime in the offline build. The
//! traits are object-unsafe markers and the derives emit empty impls, so
//! `#[derive(Serialize, Deserialize)]` and `T: Serialize` bounds compile
//! unchanged.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}

macro_rules! impl_primitives {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_primitives!(
    bool, char, f32, f64, i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<T: Serialize + ?Sized> Serialize for &T {}
