//! Observability for the WiTrack serving stack: a dependency-free,
//! lock-free telemetry core.
//!
//! Three pieces, each usable on a hot path without allocation or
//! locking after setup:
//!
//! - [`Histo`] — a fixed, log₂-bucketed latency histogram of 64 atomic
//!   buckets. Records are one `fetch_add` per bucket plus running
//!   count/sum/min/max; snapshots are mergeable and expose
//!   p50/p90/p99/max.
//! - [`Registry`] — labeled counter/gauge/histogram handles keyed by
//!   `(subsystem, name, label)` where the label is a sensor id, room
//!   id, or shard index. Registration takes a lock once; the returned
//!   handles are `Arc`-backed atomics, so the hot path never touches
//!   the registry again. [`Registry::snapshot`] walks everything for
//!   wire export, and [`Registry::render_text`] produces a
//!   Prometheus-style text exposition for logs and CI artifacts.
//! - [`FlightRecorder`] — a fixed-size, lock-free ring of recent
//!   anomaly records (drops, rejects, sequence gaps, shed updates,
//!   ghost quarantines, handoffs) with relative timestamps and two
//!   numeric labels, dumpable on demand for post-mortem.
//!
//! The crate is intentionally free of dependencies (it sits *below*
//! dsp in the workspace graph, so even transform-plan caches can count
//! into it) and free of `unsafe`.

pub mod histo;
pub mod recorder;
pub mod registry;

pub use histo::{bucket_index, Histo, HistoSnapshot, NUM_BUCKETS};
pub use recorder::{Anomaly, AnomalyKind, FlightRecorder};
pub use registry::{Counter, Gauge, Label, MetricKey, MetricSample, MetricValue, Registry};

use std::sync::Arc;

/// Per-frame pipeline stage histograms (nanoseconds): the paper's
/// range-profile, contour-detect, and associate/solve stages. Attached
/// to a `FramePipeline` by the serving layer; pipelines record into
/// whichever stages they actually run.
#[derive(Clone)]
pub struct StageStats {
    /// Range profiling (sweep → range profile; the CZT work).
    pub profile: Arc<Histo>,
    /// Background subtraction + contour detection (+ denoising).
    pub detect: Arc<Histo>,
    /// Association / geometric solve / track update.
    pub associate: Arc<Histo>,
}

impl StageStats {
    /// Fresh, unregistered stage histograms (tests, standalone benches).
    pub fn detached() -> StageStats {
        StageStats {
            profile: Arc::new(Histo::new()),
            detect: Arc::new(Histo::new()),
            associate: Arc::new(Histo::new()),
        }
    }

    /// Stage histograms registered under `("pipeline", <stage>_ns)` with
    /// the given label. Repeated calls with the same label share the
    /// same underlying histograms.
    pub fn registered(registry: &Registry, label: Label) -> StageStats {
        StageStats {
            profile: registry.histo("pipeline", "profile_ns", label),
            detect: registry.histo("pipeline", "detect_ns", label),
            associate: registry.histo("pipeline", "associate_ns", label),
        }
    }
}

/// The process-wide registry, for subsystems with no natural owner to
/// hang per-instance state off (e.g. the dsp transform-plan caches).
/// Engine-scoped metrics live in each engine's own [`Registry`]; full
/// snapshots merge both.
pub fn global() -> &'static Registry {
    static GLOBAL: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}
