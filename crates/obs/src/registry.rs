//! Labeled metric registry: counters, gauges, and histograms keyed by
//! `(subsystem, name, label)`.
//!
//! Registration (first lookup of a key) takes a mutex once and returns
//! a cheap `Arc`-backed handle; every subsequent operation on the
//! handle is a relaxed atomic — no allocation, no locking, no registry
//! involvement. Snapshots walk the whole map for wire export or text
//! exposition.

use crate::histo::{Histo, HistoSnapshot};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The label dimension of a metric key: which sensor, room, or shard a
/// series belongs to (or none).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Label {
    /// Process- or engine-wide series.
    Global,
    /// Per-sensor series.
    Sensor(u32),
    /// Per-room series.
    Room(u32),
    /// Per-shard series.
    Shard(u32),
}

impl Label {
    /// `(dimension name, value)` for rendering; `None` for `Global`.
    pub fn dimension(&self) -> Option<(&'static str, u32)> {
        match self {
            Label::Global => None,
            Label::Sensor(id) => Some(("sensor", *id)),
            Label::Room(id) => Some(("room", *id)),
            Label::Shard(id) => Some(("shard", *id)),
        }
    }
}

/// Full identity of one metric series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricKey {
    /// Owning subsystem (`"engine"`, `"shard"`, `"pipeline"`, ...).
    pub subsystem: &'static str,
    /// Series name within the subsystem.
    pub name: &'static str,
    /// Label dimension.
    pub label: Label,
}

/// A monotone counter handle (cloning shares the underlying cell).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (tests, placeholders).
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous-value gauge handle (cloning shares the cell).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not attached to any registry (tests, placeholders).
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Raises the value to at least `v` (running maximum).
    #[inline]
    pub fn raise_to(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histo(Arc<Histo>),
}

/// One series' value in a snapshot.
// The histogram variant carries its 64 inline buckets (~0.5 KiB); snapshots
// are built once per stats pull, off the hot path, so the inline size is
// cheaper than boxing every histogram series.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram snapshot.
    Histo(HistoSnapshot),
}

/// One series in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Series identity.
    pub key: MetricKey,
    /// Point-in-time value.
    pub value: MetricValue,
}

/// The metric registry. Create one per engine (tests stay isolated);
/// use [`crate::global`] for process-wide subsystems.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<HashMap<MetricKey, Metric>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let len = self.inner.lock().map(|m| m.len()).unwrap_or(0);
        f.debug_struct("Registry").field("series", &len).finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter at `(subsystem, name, label)`, registering it on
    /// first use.
    ///
    /// # Panics
    /// Panics if the key is already registered as a different kind.
    pub fn counter(&self, subsystem: &'static str, name: &'static str, label: Label) -> Counter {
        let key = MetricKey {
            subsystem,
            name,
            label,
        };
        let mut map = self.inner.lock().expect("registry poisoned");
        match map
            .entry(key)
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("{subsystem}/{name} registered as non-counter"),
        }
    }

    /// The gauge at `(subsystem, name, label)`, registering it on first
    /// use.
    ///
    /// # Panics
    /// Panics if the key is already registered as a different kind.
    pub fn gauge(&self, subsystem: &'static str, name: &'static str, label: Label) -> Gauge {
        let key = MetricKey {
            subsystem,
            name,
            label,
        };
        let mut map = self.inner.lock().expect("registry poisoned");
        match map
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("{subsystem}/{name} registered as non-gauge"),
        }
    }

    /// The histogram at `(subsystem, name, label)`, registering it on
    /// first use.
    ///
    /// # Panics
    /// Panics if the key is already registered as a different kind.
    pub fn histo(&self, subsystem: &'static str, name: &'static str, label: Label) -> Arc<Histo> {
        let key = MetricKey {
            subsystem,
            name,
            label,
        };
        let mut map = self.inner.lock().expect("registry poisoned");
        match map
            .entry(key)
            .or_insert_with(|| Metric::Histo(Arc::new(Histo::new())))
        {
            Metric::Histo(h) => Arc::clone(h),
            _ => panic!("{subsystem}/{name} registered as non-histogram"),
        }
    }

    /// Every registered series with its current value, sorted by key
    /// (deterministic output for tests and diffs).
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let map = self.inner.lock().expect("registry poisoned");
        let mut out: Vec<MetricSample> = map
            .iter()
            .map(|(key, metric)| MetricSample {
                key: *key,
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histo(h) => MetricValue::Histo(h.snapshot()),
                },
            })
            .collect();
        out.sort_by_key(|s| s.key);
        out
    }

    /// Prometheus-style text exposition of the whole registry.
    ///
    /// Counters and gauges emit one line each; histograms emit
    /// `_count`, `_sum`, and `quantile`-labeled p50/p90/p99/max lines.
    pub fn render_text(&self) -> String {
        render_samples(&self.snapshot())
    }
}

/// Renders samples (e.g. from one or more registries) as
/// Prometheus-style text.
pub fn render_samples(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    for s in samples {
        let base = format!("witrack_{}_{}", s.key.subsystem, s.key.name);
        let label = match s.key.label.dimension() {
            None => String::new(),
            Some((dim, id)) => format!("{dim}=\"{id}\""),
        };
        // `{label}` / `{label,extra}` / `{extra}` / `` as applicable.
        let series = |extra: &str| -> String {
            let joined = match (label.is_empty(), extra.is_empty()) {
                (true, true) => return String::new(),
                (false, true) => label.clone(),
                (true, false) => extra.to_string(),
                (false, false) => format!("{label},{extra}"),
            };
            format!("{{{joined}}}")
        };
        match &s.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{base}{} {v}", series(""));
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{base}{} {v}", series(""));
            }
            MetricValue::Histo(h) => {
                let _ = writeln!(out, "{base}_count{} {}", series(""), h.count);
                let _ = writeln!(out, "{base}_sum{} {}", series(""), h.sum);
                for (q, v) in [
                    ("0.5", h.p50()),
                    ("0.9", h.p90()),
                    ("0.99", h.p99()),
                    ("1.0", if h.count == 0 { 0 } else { h.max }),
                ] {
                    let _ = writeln!(out, "{base}{} {v}", series(&format!("quantile=\"{q}\"")));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_across_lookups() {
        let r = Registry::new();
        let a = r.counter("engine", "batches_in", Label::Global);
        let b = r.counter("engine", "batches_in", Label::Global);
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(b.get(), 4);
    }

    #[test]
    fn labels_separate_series() {
        let r = Registry::new();
        r.counter("shard", "frames", Label::Shard(0)).add(5);
        r.counter("shard", "frames", Label::Shard(1)).add(7);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].value, MetricValue::Counter(5));
        assert_eq!(snap[1].value, MetricValue::Counter(7));
    }

    #[test]
    #[should_panic(expected = "registered as non-counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.gauge("x", "y", Label::Global);
        let _ = r.counter("x", "y", Label::Global);
    }

    #[test]
    fn text_exposition_shape() {
        let r = Registry::new();
        r.counter("engine", "batches_in", Label::Global).add(2);
        r.gauge("shard", "queue_depth", Label::Shard(3)).set(-1);
        r.histo("pipeline", "profile_ns", Label::Global).record(100);
        let text = r.render_text();
        assert!(text.contains("witrack_engine_batches_in 2\n"), "{text}");
        assert!(
            text.contains("witrack_shard_queue_depth{shard=\"3\"} -1\n"),
            "{text}"
        );
        assert!(
            text.contains("witrack_pipeline_profile_ns_count 1\n"),
            "{text}"
        );
        assert!(
            text.contains("witrack_pipeline_profile_ns{quantile=\"0.99\"} 100\n"),
            "{text}"
        );
    }
}
