//! The flight recorder: a fixed-size, lock-free ring of recent anomaly
//! records for post-mortem of chaos and failover runs.
//!
//! Writers claim a slot with one `fetch_add` on a global cursor and
//! publish through a per-slot sequence lock (version odd while writing,
//! even when stable) — no locks, no allocation, no `unsafe`. Readers
//! ([`FlightRecorder::dump`]) copy every stable slot and skip any slot
//! a concurrent writer is mid-publish on; every field is an atomic, so
//! a racing read can at worst observe (and then discard) a mixed
//! record, never tear a value.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// What kind of anomaly a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AnomalyKind {
    /// A batch dropped at ingress (queue full under `DropNewest`).
    Drop = 1,
    /// A batch rejected (bad shape, stale sequence, unknown sensor...);
    /// `b` carries the reject code.
    Reject = 2,
    /// A forward sequence gap; `value` is the gap size.
    SeqGap = 3,
    /// An update/world frame shed to a lagging subscriber.
    Shed = 4,
    /// A fused track suppressed as an uncorroborated ghost.
    GhostQuarantine = 5,
    /// A world track's anchoring sensor changed; `value` is the handoff
    /// latency in nanoseconds (time the challenger waited).
    Handoff = 6,
    /// A frame failed to decode (bad magic, bad payload, mutated bytes);
    /// `b` carries the connection id when known.
    Corrupt = 7,
    /// A transport stalled (no frames for longer than expected); `value`
    /// is the observed stall duration in nanoseconds.
    Stall = 8,
    /// A client re-established its transport after a failure; `value` is
    /// the backoff that preceded the attempt, in nanoseconds.
    Reconnect = 9,
    /// A registered sensor went silent past the liveness timeout and was
    /// removed from the fusion watermark; `a` is the sensor id.
    SensorDead = 10,
    /// A previously dead sensor reported again and rejoined the
    /// watermark; `a` is the sensor id.
    SensorRecovered = 11,
    /// A TCP stream ended mid-frame (EOF inside a length-prefixed
    /// frame); `value` is the byte offset reached inside the frame.
    TruncatedStream = 12,
}

impl AnomalyKind {
    fn from_u8(v: u8) -> Option<AnomalyKind> {
        Some(match v {
            1 => AnomalyKind::Drop,
            2 => AnomalyKind::Reject,
            3 => AnomalyKind::SeqGap,
            4 => AnomalyKind::Shed,
            5 => AnomalyKind::GhostQuarantine,
            6 => AnomalyKind::Handoff,
            7 => AnomalyKind::Corrupt,
            8 => AnomalyKind::Stall,
            9 => AnomalyKind::Reconnect,
            10 => AnomalyKind::SensorDead,
            11 => AnomalyKind::SensorRecovered,
            12 => AnomalyKind::TruncatedStream,
            _ => return None,
        })
    }

    /// Stable lowercase name (exposition, dumps).
    pub fn name(&self) -> &'static str {
        match self {
            AnomalyKind::Drop => "drop",
            AnomalyKind::Reject => "reject",
            AnomalyKind::SeqGap => "seq_gap",
            AnomalyKind::Shed => "shed",
            AnomalyKind::GhostQuarantine => "ghost_quarantine",
            AnomalyKind::Handoff => "handoff",
            AnomalyKind::Corrupt => "corrupt",
            AnomalyKind::Stall => "stall",
            AnomalyKind::Reconnect => "reconnect",
            AnomalyKind::SensorDead => "sensor_dead",
            AnomalyKind::SensorRecovered => "sensor_recovered",
            AnomalyKind::TruncatedStream => "truncated_stream",
        }
    }
}

/// One recorded anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Anomaly {
    /// Global record ordinal (monotone across the whole run).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub time_us: u64,
    /// Anomaly kind.
    pub kind: AnomalyKind,
    /// First label (by convention: sensor id, room id, or conn id).
    pub a: u64,
    /// Second label (by convention: shard, reject code, or peer id).
    pub b: u64,
    /// Kind-specific magnitude (gap size, latency ns, ...).
    pub value: u64,
}

#[derive(Default)]
struct Slot {
    /// Seqlock version: odd while a writer owns the slot.
    version: AtomicU64,
    seq: AtomicU64,
    time_us: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    value: AtomicU64,
}

/// A lock-free ring of the most recent anomalies.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    cursor: AtomicU64,
    epoch: Instant,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` records (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::default()).collect(),
            cursor: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever written (≥ what [`Self::dump`] returns).
    pub fn total_recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Records one anomaly, overwriting the oldest when full.
    pub fn record(&self, kind: AnomalyKind, a: u64, b: u64, value: u64) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let time_us = self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64;
        // Claim: version becomes odd. A racing writer lapping this slot
        // makes the version observably inconsistent, which dump() skips.
        slot.version.fetch_add(1, Ordering::Acquire);
        slot.seq.store(seq, Ordering::Relaxed);
        slot.time_us.store(time_us, Ordering::Relaxed);
        slot.kind.store(kind as u8 as u64, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.value.store(value, Ordering::Relaxed);
        // Publish: version even again.
        slot.version.fetch_add(1, Ordering::Release);
    }

    /// Copies every stable record, oldest first. Slots a writer is
    /// mid-publish on (and records overwritten mid-read) are skipped.
    pub fn dump(&self) -> Vec<Anomaly> {
        let mut out: Vec<Anomaly> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 == 0 || v1 % 2 == 1 {
                continue; // never written, or write in progress
            }
            let rec = Anomaly {
                seq: slot.seq.load(Ordering::Relaxed),
                time_us: slot.time_us.load(Ordering::Relaxed),
                kind: match AnomalyKind::from_u8(slot.kind.load(Ordering::Relaxed) as u8) {
                    Some(k) => k,
                    None => continue,
                },
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
                value: slot.value.load(Ordering::Relaxed),
            };
            let v2 = slot.version.load(Ordering::Acquire);
            if v1 == v2 {
                out.push(rec);
            }
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Human-readable dump, one line per record (logs, CI artifacts).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in self.dump() {
            let _ = writeln!(
                out,
                "#{} +{}us {} a={} b={} value={}",
                r.seq,
                r.time_us,
                r.kind.name(),
                r.a,
                r.b,
                r.value
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_come_back_in_order() {
        let fr = FlightRecorder::new(8);
        fr.record(AnomalyKind::Drop, 1, 0, 0);
        fr.record(AnomalyKind::SeqGap, 2, 0, 5);
        fr.record(AnomalyKind::Reject, 3, 7, 0);
        let dump = fr.dump();
        assert_eq!(dump.len(), 3);
        assert_eq!(dump[0].kind, AnomalyKind::Drop);
        assert_eq!(dump[1].value, 5);
        assert_eq!(dump[2].b, 7);
        assert_eq!(fr.total_recorded(), 3);
    }

    #[test]
    fn chaos_kinds_round_trip_through_the_ring() {
        let fr = FlightRecorder::new(16);
        let kinds = [
            AnomalyKind::Corrupt,
            AnomalyKind::Stall,
            AnomalyKind::Reconnect,
            AnomalyKind::SensorDead,
            AnomalyKind::SensorRecovered,
            AnomalyKind::TruncatedStream,
        ];
        for (i, k) in kinds.iter().enumerate() {
            fr.record(*k, i as u64, 0, 0);
        }
        let dump = fr.dump();
        assert_eq!(dump.len(), kinds.len());
        for (rec, k) in dump.iter().zip(&kinds) {
            assert_eq!(rec.kind, *k, "kind survives the u8 round trip");
            assert!(!rec.kind.name().is_empty());
        }
    }

    #[test]
    fn ring_keeps_only_the_newest() {
        let fr = FlightRecorder::new(4);
        for i in 0..10u64 {
            fr.record(AnomalyKind::Shed, i, 0, 0);
        }
        let dump = fr.dump();
        assert_eq!(dump.len(), 4);
        let seqs: Vec<u64> = dump.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn concurrent_writers_never_corrupt_a_dump() {
        use std::sync::Arc;
        let fr = Arc::new(FlightRecorder::new(64));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let fr = Arc::clone(&fr);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        fr.record(AnomalyKind::Drop, t, 0, i);
                    }
                })
            })
            .collect();
        // Dump concurrently with the writers; every record that comes
        // back must be well-formed.
        for _ in 0..50 {
            for r in fr.dump() {
                assert_eq!(r.kind, AnomalyKind::Drop);
                assert!(r.a < 4);
                assert!(r.value < 1000);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(fr.total_recorded(), 4000);
        assert_eq!(fr.dump().len(), 64);
    }
}
