//! Log₂-bucketed, lock-free latency histogram.
//!
//! 64 fixed buckets: bucket `i` covers `[2^i, 2^(i+1))`, with bucket 0
//! additionally absorbing 0 and 1. That spans 1 ns to ~584 years at a
//! constant ≤ 2× relative resolution — coarse, but a p99 that doubles
//! always moves at least one bucket, which is the granularity a perf
//! gate needs. Recording is four relaxed atomic RMWs (bucket, count,
//! sum, min/max); there is no locking anywhere.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of histogram buckets.
pub const NUM_BUCKETS: usize = 64;

/// The bucket holding `v`: `floor(log2(max(v, 1)))`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (saturating at `u64::MAX`).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A lock-free histogram of `u64` values (by convention: nanoseconds
/// for latencies). All methods take `&self`; share via `Arc`.
pub struct Histo {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` until the first record.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histo {
    fn default() -> Histo {
        Histo::new()
    }
}

impl Histo {
    /// An empty histogram.
    pub fn new() -> Histo {
        Histo {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records the elapsed time since `start`, in nanoseconds.
    #[inline]
    pub fn record_since(&self, start: Instant) {
        self.record(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy. Concurrent writers may be mid-record, so
    /// the copied `count`/`sum` can lead or lag the bucket totals by a
    /// few records; quantiles are computed against the bucket totals,
    /// which are self-consistent.
    pub fn snapshot(&self) -> HistoSnapshot {
        let buckets: [u64; NUM_BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        HistoSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time, mergeable copy of a [`Histo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoSnapshot {
    /// Per-bucket record counts.
    pub buckets: [u64; NUM_BUCKETS],
    /// Total records.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistoSnapshot {
    fn default() -> HistoSnapshot {
        HistoSnapshot {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistoSnapshot {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the containing bucket's upper
    /// bound, clamped to the observed `[min, max]`. Returns 0 when
    /// empty. Monotone in `q` and always within `[min, max]`.
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        // Rank of the target record, 1-based, ceil(q * total) clamped.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let raw = bucket_upper(i);
                // A torn concurrent snapshot can have min/max lagging the
                // buckets; only clamp when they are coherent.
                return if self.min <= self.max {
                    raw.clamp(self.min, self.max)
                } else {
                    raw
                };
            }
        }
        self.max
    }

    /// Median (p50) estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// p90 estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// p99 estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds `other` into `self` (shard merge).
    pub fn merge(&mut self, other: &HistoSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histo::new();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_value_pins_all_quantiles() {
        let h = Histo::new();
        h.record(777);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 777);
        assert_eq!(s.max, 777);
        // Upper bound of bucket 9 is 1023, but clamping to [min, max]
        // pins the estimate to the exact value.
        assert_eq!(s.p50(), 777);
        assert_eq!(s.p99(), 777);
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let h = Histo::new();
        // 90 small values, 10 large ones: p50 must land small, p99 large.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert!(s.p50() < 200, "p50 = {}", s.p50());
        assert!(s.p99() >= 524_288, "p99 = {}", s.p99());
        assert!(s.p99() <= 1_000_000, "p99 = {}", s.p99());
    }
}
