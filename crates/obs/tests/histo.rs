//! Property and concurrency tests for the histogram core.

use proptest::prelude::*;
use std::sync::Arc;
use witrack_obs::{bucket_index, Histo, HistoSnapshot, NUM_BUCKETS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every recorded value lands in exactly the bucket covering it:
    /// bucket `i` is `[2^i, 2^(i+1))` with 0 and 1 folded into bucket 0.
    #[test]
    fn values_land_in_the_correct_bucket(v in 0u64..u64::MAX) {
        let h = Histo::new();
        h.record(v);
        let s = h.snapshot();
        let i = bucket_index(v);
        prop_assert_eq!(s.buckets[i], 1);
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), 1);
        // The bucket's range really contains v.
        let lo = if i == 0 { 0 } else { 1u64 << i };
        prop_assert!(v >= lo);
        if i < 63 {
            prop_assert!(v < (1u64 << (i + 1)));
        }
    }

    /// Merging per-shard snapshots equals recording everything into one
    /// histogram.
    #[test]
    fn merge_of_shards_equals_whole(
        a in collection::vec(0u64..1_000_000_000, 0..64),
        b in collection::vec(0u64..1_000_000_000, 0..64),
        c in collection::vec(0u64..1_000_000_000, 0..64),
    ) {
        let whole = Histo::new();
        let shards: Vec<Histo> = (0..3).map(|_| Histo::new()).collect();
        for (shard, values) in shards.iter().zip([&a, &b, &c]) {
            for &v in values.iter() {
                shard.record(v);
                whole.record(v);
            }
        }
        let mut merged = HistoSnapshot::default();
        for shard in &shards {
            merged.merge(&shard.snapshot());
        }
        prop_assert_eq!(merged, whole.snapshot());
    }

    /// Quantiles are monotone in q and bounded by the observed min/max.
    #[test]
    fn quantiles_monotone_and_bounded(
        values in collection::vec(0u64..10_000_000_000, 1..128),
    ) {
        let h = Histo::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        let qs: Vec<u64> = [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| s.quantile(q))
            .collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {qs:?}");
        }
        for &q in &qs {
            prop_assert!(q >= lo && q <= hi, "quantile {q} outside [{lo}, {hi}]");
        }
    }
}

/// Eight threads hammer one histogram; the total count, sum of buckets,
/// and per-thread value ranges must all come out exact.
#[test]
fn concurrent_records_are_never_lost() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50_000;
    let h = Arc::new(Histo::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Spread across buckets: values in [1, 2^20).
                    h.record((i.wrapping_mul(2654435761).wrapping_add(t) % (1 << 20)) | 1);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let s = h.snapshot();
    assert_eq!(s.count, THREADS * PER_THREAD);
    assert_eq!(s.buckets.iter().sum::<u64>(), THREADS * PER_THREAD);
    assert!(s.min >= 1);
    assert!(s.max < (1 << 20));
    assert!(s.buckets[..NUM_BUCKETS].iter().take(20).sum::<u64>() == THREADS * PER_THREAD);
}
